"""Additional compaction coverage: strides, periods, higher degree."""

import pytest

from repro.core import count, sum_poly
from repro.qpoly import Polynomial


class TestPeriodicTails:
    @pytest.mark.parametrize("m,r", [(2, 0), (3, 1), (4, 3), (5, 2)])
    def test_residue_class_counts(self, m, r):
        text = "%d | i - %d and 0 <= i <= n" % (m, r)
        result = count(text, ["i"])
        compact = result.compacted()
        for n in range(0, 4 * m + 6):
            want = sum(1 for i in range(0, n + 1) if i % m == r % m)
            assert compact.evaluate(n=n) == want, (m, r, n)

    def test_combined_strides_period_lcm(self):
        result = count("2 | i and 3 | i + 1 and 0 <= i <= n", ["i"])
        compact = result.compacted()
        for n in range(0, 30):
            want = sum(
                1 for i in range(0, n + 1) if i % 2 == 0 and (i + 1) % 3 == 0
            )
            assert compact.evaluate(n=n) == want, n

    def test_quadratic_with_period(self):
        result = sum_poly("2 | i and 1 <= i <= n", ["i"], "i*i")
        compact = result.compacted()
        for n in range(0, 20):
            want = sum(i * i for i in range(1, n + 1) if i % 2 == 0)
            assert compact.evaluate(n=n) == want, n


class TestShapes:
    def test_cubic_tail(self):
        result = sum_poly(
            "1 <= i <= n and 1 <= j <= i", ["i", "j"], "i*j"
        )
        compact = result.compacted()
        assert len(compact.terms) >= 1
        for n in range(0, 9):
            want = sum(
                i * j for i in range(1, n + 1) for j in range(1, i + 1)
            )
            assert compact.evaluate(n=n) == want

    def test_tail_guard_is_single_constraint(self):
        compact = count("1 <= i <= n and 1 <= j <= i", ["i", "j"]).compacted()
        tail = compact.terms[0]
        assert len(tail.guard.constraints) == 1

    def test_point_terms_are_equalities(self):
        compact = count(
            "1 <= i <= n and 3 <= j <= i and j <= k <= 5", ["i", "j", "k"]
        ).compacted()
        for term in compact.terms[1:]:
            assert any(c.is_eq() for c in term.guard.constraints)

    def test_evaluation_agreement_everywhere(self):
        text = "n <= 4*i and 3*i <= 2*n + 9"
        raw = count(text, ["i"])
        compact = raw.compacted()
        for n in range(-3, 40):
            assert compact.evaluate(n=n) == raw.evaluate(n=n), n
