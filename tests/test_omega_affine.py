"""Affine expression tests."""

import pytest
from hypothesis import given, strategies as st

from repro.omega.affine import Affine

envs = st.fixed_dictionaries(
    {"x": st.integers(-10, 10), "y": st.integers(-10, 10)}
)

affines = st.builds(
    Affine,
    st.fixed_dictionaries(
        {"x": st.integers(-5, 5), "y": st.integers(-5, 5)}
    ),
    st.integers(-10, 10),
)


class TestConstruction:
    def test_zero_coeffs_dropped(self):
        assert Affine({"x": 0}, 3) == Affine({}, 3)

    def test_var(self):
        assert Affine.var("x").coeff("x") == 1

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Affine({"x": 1.5})
        with pytest.raises(TypeError):
            Affine({}, 1.5)

    def test_immutable(self):
        a = Affine.var("x")
        with pytest.raises(AttributeError):
            a.const = 3


class TestArithmetic:
    @given(affines, affines, envs)
    def test_add(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines, affines, envs)
    def test_sub(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(affines, st.integers(-6, 6), envs)
    def test_scale(self, a, k, env):
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    @given(affines)
    def test_neg_involution(self, a):
        assert -(-a) == a

    def test_int_coercion(self):
        assert (Affine.var("x") + 3).const == 3
        assert (3 + Affine.var("x")).const == 3
        assert (3 - Affine.var("x")).coeff("x") == -1

    def test_exact_div(self):
        a = Affine({"x": 4, "y": -6}, 8)
        assert a.exact_div(2) == Affine({"x": 2, "y": -3}, 4)

    def test_exact_div_rejects(self):
        with pytest.raises(ValueError):
            Affine({"x": 3}, 1).exact_div(2)


class TestQueries:
    def test_content(self):
        assert Affine({"x": 4, "y": -6}, 5).content() == 2
        assert Affine({}, 5).content() == 0

    def test_uses(self):
        a = Affine({"x": 1})
        assert a.uses("x") and not a.uses("y")

    def test_substitute(self):
        a = Affine({"x": 2, "y": 1}, 3)
        b = a.substitute("x", Affine({"y": 1}, -1))  # x := y - 1
        for y in range(-5, 5):
            assert b.evaluate({"y": y}) == 2 * (y - 1) + y + 3

    def test_substitute_absent(self):
        a = Affine({"y": 1})
        assert a.substitute("x", Affine({}, 99)) == a

    def test_rename_merges(self):
        a = Affine({"x": 2, "y": 3})
        assert a.rename({"y": "x"}) == Affine({"x": 5})

    def test_to_polynomial(self):
        a = Affine({"x": 2}, 1)
        assert a.to_polynomial().evaluate({"x": 3}) == 7


class TestDisplay:
    def test_str(self):
        assert str(Affine({"x": 1, "y": -2}, 3)) == "x - 2*y + 3"

    def test_str_zero(self):
        assert str(Affine()) == "0"

    def test_str_leading_minus(self):
        assert str(Affine({"x": -1})) == "-x"
