"""Internal invariants of the summation recursion's case splits.

The multiple-bound split (Section 4.4 steps 3-4) and the residue split
must partition the region: every point in exactly one piece.  These
tests check the partition property directly, independent of the final
counts.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import count
from repro.core.convex import _Ctx, _residue_split, _split_bounds, _sum
from repro.core.options import DEFAULT_OPTIONS
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.qpoly import Polynomial


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


class TestMultiBoundSplitPartition:
    def _pieces(self, conj, v, split_uppers):
        lowers, uppers, rest = conj.bounds_on(v)
        captured = []

        import repro.core.convex as cx

        original = cx._sum

        def capture(c, cvars, z, ctx):
            captured.append(c)
            return []

        cx._sum = capture
        try:
            _split_bounds(
                conj, (v,), Polynomial.one, _Ctx(DEFAULT_OPTIONS), v,
                lowers, uppers, rest, split_uppers,
            )
        finally:
            cx._sum = original
        return captured

    @given(
        st.lists(st.integers(-4, 6), min_size=2, max_size=3, unique=True),
        st.integers(-2, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_upper_split_partitions(self, upper_consts, lo):
        cons = [geq({"v": 1}, -lo)]
        for c in upper_consts:
            cons.append(geq({"v": -1, "m": 1}, c))  # v <= m + c
        conj = Conjunct(cons)
        pieces = self._pieces(conj, "v", True)
        assert len(pieces) == len(upper_consts)
        for m in range(-2, 6):
            for v in range(lo, m + max(upper_consts) + 1):
                inside = conj.satisfied_by({"v": v, "m": m})
                hits = sum(
                    1 for p in pieces if p.is_satisfied({"v": v, "m": m})
                )
                assert hits == (1 if inside else 0), (v, m)

    @given(st.lists(st.integers(-4, 4), min_size=2, max_size=3, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_lower_split_partitions(self, lower_consts):
        cons = [geq({"v": -1}, 10)]
        for c in lower_consts:
            cons.append(geq({"v": 1, "m": -1}, -c))  # v >= m + c
        conj = Conjunct(cons)
        pieces = self._pieces(conj, "v", False)
        for m in range(-2, 4):
            for v in range(m - 6, 11):
                inside = conj.satisfied_by({"v": v, "m": m})
                hits = sum(
                    1 for p in pieces if p.is_satisfied({"v": v, "m": m})
                )
                assert hits == (1 if inside else 0), (v, m)


class TestEndToEndSplitCounting:
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 6),
        st.integers(0, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_min_of_two_symbolic_uppers(self, a, b, n, m):
        text = "1 <= v and v <= n and v <= m"
        r = count(text, ["v"])
        assert r.evaluate(n=n, m=m) == max(min(n, m), 0)

    @given(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_three_uppers(self, n, m, k):
        text = "1 <= v and v <= n and v <= m and v <= k"
        r = count(text, ["v"])
        assert r.evaluate(n=n, m=m, k=k) == max(min(n, m, k), 0)

    @given(st.integers(-4, 6), st.integers(-4, 6))
    @settings(max_examples=30, deadline=None)
    def test_max_of_two_lowers(self, n, m):
        text = "n <= v and m <= v and v <= 8"
        r = count(text, ["v"])
        assert r.evaluate(n=n, m=m) == max(8 - max(n, m) + 1, 0)
