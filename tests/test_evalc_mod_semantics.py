"""Pin the mod convention for negative arguments (paper Section 4.1).

The paper defines ``e mod c`` (c > 0) as the unique residue in
``[0, c)`` -- i.e. mathematical mod, which is Python's ``%`` with a
positive modulus, NOT C's truncated remainder.  Three independent
implementations must agree, at negative arguments especially:

* the quasi-polynomial atoms (``qpoly.atoms.evaluate_atom``),
* the brute-force oracle's stride test (``testkit.oracle.oracle_eval``),
* the generated code of the evalc compiler.

A disagreement here would make answers silently wrong exactly on
negative symbol values, which the default fuzz envs barely sample --
hence the explicit pin.
"""

import pytest

from repro.core import count
from repro.evalc import compile_sum
from repro.presburger.parser import parse
from repro.qpoly import ModAtom
from repro.qpoly.atoms import evaluate_atom
from repro.testkit.oracle import oracle_count, oracle_eval


@pytest.mark.parametrize("e", range(-12, 13))
@pytest.mark.parametrize("c", [2, 3, 5])
def test_mod_atom_is_nonnegative_residue(e, c):
    atom = ModAtom({"x": 1}, 0, c)
    value = evaluate_atom(atom, {"x": e})
    assert 0 <= value < c
    assert (e - value) % c == 0
    # The paper's definition, spelled out: e mod c == e - c*floor(e/c).
    assert value == e - c * (e // c)


@pytest.mark.parametrize("e", range(-12, 13))
@pytest.mark.parametrize("c", [2, 3, 5])
def test_oracle_stride_agrees_with_mod_atom(e, c):
    formula = parse("%d | (x + %d)" % (c, 0))
    atom = ModAtom({"x": 1}, 0, c)
    assert oracle_eval(formula, {"x": e}) == (
        evaluate_atom(atom, {"x": e}) == 0
    )


def test_compiled_mod_agrees_at_negative_symbols():
    """End to end: an answer with (n mod 3) atoms, served compiled,
    equals the interpreted result and the brute-force oracle at
    negative and zero n."""
    formula_text = "1 <= i and i <= n and 3 | (i + n)"
    result = count(formula_text, ["i"])
    compiled = compile_sum(result)
    formula = parse(formula_text)
    for n in range(-9, 10):
        env = {"n": n}
        interpreted = result.evaluate(env)
        assert compiled.at(env) == interpreted
        assert oracle_count(formula, ["i"], env) == interpreted


def test_compiled_table_mod_agrees_at_negative_symbols():
    result = count("1 <= i and i <= n and 2 | (i + m)", ["i"])
    compiled = compile_sum(result)
    for m in (-4, -3, 0, 1):
        want = [
            (n, result.evaluate({"n": n, "m": m})) for n in range(-6, 12)
        ]
        assert compiled.table("n", range(-6, 12), m=m) == want


def test_generated_source_uses_python_mod():
    """The emitted code relies on Python % returning the non-negative
    residue for positive moduli; guard against a rewrite to C-style
    fmod/trunc semantics slipping in."""
    result = count("1 <= i and i <= n and 3 | (i + n)", ["i"])
    compiled = compile_sum(result)
    assert "%" in compiled.source
    assert compiled.at({"n": -5}) == 0
    assert compiled.at({"n": 5}) == result.evaluate({"n": 5})
