"""Shadow and splintering tests (§2.1, §5.2, Figure 1)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.eliminate import (
    dark_shadow,
    eliminate_exact,
    eliminate_exact_disjoint,
    elimination_is_exact,
    project_onto,
    real_shadow,
    splinters,
)
from repro.omega.problem import Conjunct


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


def solset(conj, variables, box=12):
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(variables)):
        if conj.is_satisfied(dict(zip(variables, vals))):
            out.add(vals)
    return out


def paper_5_2_example():
    """0 <= 3β - α <= 7  ∧  1 <= α - 2β <= 5 (eliminate β)."""
    return Conjunct(
        [
            geq({"b": 3, "a": -1}),
            geq({"b": -3, "a": 1}, 7),
            geq({"a": 1, "b": -2}, -1),
            geq({"a": -1, "b": 2}, 5),
        ]
    )


PAPER_5_2_SOLUTIONS = {3} | set(range(5, 28)) | {29}


class TestShadows:
    def test_real_shadow_paper_example(self):
        # The scanned paper prints "3 <= a <= 27", but that contradicts
        # its own solution list (a = 29 is a solution and the real
        # shadow must contain every solution); rational feasibility is
        # in fact 3 <= a <= 29, verified by enumeration here.
        shadow = real_shadow(paper_5_2_example(), "b")
        assert solset(shadow, ("a",), 40) == {(a,) for a in range(3, 30)}

    def test_dark_shadow_paper_example(self):
        # Similarly the print says "5 <= a <= 25"; the pairwise dark
        # shadow is 5 <= a <= 27, still a subset of the true solutions
        # (which is all the dark shadow promises).
        dark = dark_shadow(paper_5_2_example(), "b")
        assert solset(dark, ("a",), 40) == {(a,) for a in range(5, 28)}
        assert solset(dark, ("a",), 40) <= {
            (a,) for a in PAPER_5_2_SOLUTIONS
        }

    def test_exact_solutions_paper_example(self):
        # the paper: solutions are a = 3, 5 <= a <= 27, a = 29
        conj = paper_5_2_example()
        want = {
            (a,)
            for a in range(-5, 45)
            if any(
                0 <= 3 * b - a <= 7 and 1 <= a - 2 * b <= 5
                for b in range(-50, 50)
            )
        }
        assert want == {(a,) for a in PAPER_5_2_SOLUTIONS}
        got = set()
        for piece in eliminate_exact(conj, "b"):
            got |= solset(piece, ("a",), 45)
        assert got == want

    def test_disjoint_variant_paper_example(self):
        pieces = eliminate_exact_disjoint(paper_5_2_example(), "b")
        hits = {}
        for i, piece in enumerate(pieces):
            for point in solset(piece, ("a",), 45):
                hits.setdefault(point, []).append(i)
        assert set(hits) == {(a,) for a in PAPER_5_2_SOLUTIONS}
        assert all(len(v) == 1 for v in hits.values())

    def test_unbounded_side(self):
        conj = Conjunct([geq({"z": 1, "x": -1})])  # only a lower bound
        assert eliminate_exact(conj, "z") == [Conjunct.true()]

    def test_dark_subset_of_real(self):
        conj = paper_5_2_example()
        dark = solset(dark_shadow(conj, "b"), ("a",), 40)
        real = solset(real_shadow(conj, "b"), ("a",), 40)
        assert dark <= real


class TestExactness:
    def test_unit_coefficients_exact(self):
        conj = Conjunct([geq({"z": 1, "x": -1}), geq({"z": -1}, 9)])
        assert elimination_is_exact(conj, "z")

    def test_nonunit_both_sides_inexact(self):
        conj = Conjunct([geq({"z": 2, "x": -1}), geq({"z": -3}, 9)])
        assert not elimination_is_exact(conj, "z")

    def test_unit_lowers_exact(self):
        conj = Conjunct([geq({"z": 1, "x": -1}), geq({"z": -3}, 9)])
        assert elimination_is_exact(conj, "z")

    def test_splinters_empty_when_exact(self):
        conj = Conjunct([geq({"z": 1, "x": -1}), geq({"z": -1}, 9)])
        assert splinters(conj, "z") == []


class TestProjectOnto:
    def test_projection_example_2_1(self):
        # the paper §2.1: x = 6i + 9j - 7, 1<=i<=8, 1<=j<=5
        conj = Conjunct(
            [
                geq({"i": 1}, -1),
                geq({"i": -1}, 8),
                geq({"j": 1}, -1),
                geq({"j": -1}, 5),
                Constraint.eq(Affine({"x": -1, "i": 6, "j": 9}, -7)),
            ]
        )
        want = {
            (6 * i + 9 * j - 7,)
            for i in range(1, 9)
            for j in range(1, 6)
        }
        pieces = project_onto(conj, ("x",))
        got = set()
        for p in pieces:
            got |= solset(p, ("x",), 90)
        assert got == want
        assert len(want) == 25  # the count the paper reports in Ex. 4

    def test_projection_disjoint(self):
        conj = Conjunct(
            [
                geq({"i": 1}, -1),
                geq({"i": -1}, 8),
                geq({"j": 1}, -1),
                geq({"j": -1}, 5),
                Constraint.eq(Affine({"x": -1, "i": 6, "j": 9}, -7)),
            ]
        )
        pieces = project_onto(conj, ("x",), disjoint=True)
        hits = {}
        for i, p in enumerate(pieces):
            for point in solset(p, ("x",), 90):
                hits.setdefault(point, []).append(i)
        assert all(len(v) == 1 for v in hits.values())
        assert len(hits) == 25


@given(
    st.lists(
        st.tuples(
            st.integers(-3, 3),
            st.integers(-3, 3),
            st.integers(-10, 10),
        ),
        min_size=2,
        max_size=4,
    )
)
@settings(max_examples=50, deadline=None)
def test_exact_elimination_property(constraints):
    """eliminate_exact computes exactly ∃z over random conjuncts."""
    cons = [geq({"x": 1}, 8), geq({"x": -1}, 8)]
    for cz, cx, const in constraints:
        cons.append(geq({"z": cz, "x": cx}, const))
    conj = Conjunct(cons)
    want = solset(conj.with_wildcards(["z"]), ("x",), 8)
    got = set()
    for piece in eliminate_exact(conj, "z"):
        got |= solset(piece, ("x",), 8)
    assert got == want
