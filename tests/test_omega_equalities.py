"""Equality elimination tests: unimodular route and Pugh's mod-hat."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.equalities import (
    eliminate_wildcards_from_equality,
    mod_hat_eliminate,
    mod_hat_reduce,
    solve_unit,
    substitute_fractional,
    unimodular_mix,
)
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable


def solset(conj, variables, box=10):
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(variables)):
        if conj.is_satisfied(dict(zip(variables, vals))):
            out.add(vals)
    return out


class TestSolveUnit:
    def test_basic(self):
        eq = Constraint.eq(Affine({"x": 1, "y": -2}, 3))  # x == 2y - 3
        conj = Conjunct([eq, Constraint.geq(Affine({"x": 1}))])
        solved, repl = solve_unit(conj, eq, "x")
        assert repl == Affine({"y": 2}, -3)
        assert not solved.uses("x")
        # x >= 0 became 2y - 3 >= 0, i.e. y >= 2 after tightening
        assert solset(solved, ("y",)) == set(
            (y,) for y in range(2, 11)
        )

    def test_negative_coefficient(self):
        eq = Constraint.eq(Affine({"x": -1, "y": 1}))  # y == x
        conj = Conjunct([eq])
        solved, repl = solve_unit(conj, eq, "x")
        assert repl == Affine({"y": 1})

    def test_rejects_nonunit(self):
        eq = Constraint.eq(Affine({"x": 2, "y": 1}))
        with pytest.raises(ValueError):
            solve_unit(Conjunct([eq]), eq, "x")


class TestUnimodularMix:
    def test_preserves_solutions(self):
        # 3x + 5y == 1 with box bounds: mixing must preserve the
        # solution count (it is a lattice bijection).
        eq = Constraint.eq(Affine({"x": 3, "y": 5}, -1))
        bounds = [
            Constraint.geq(Affine({"x": 1}, 8)),
            Constraint.geq(Affine({"x": -1}, 8)),
            Constraint.geq(Affine({"y": 1}, 8)),
            Constraint.geq(Affine({"y": -1}, 8)),
        ]
        conj = Conjunct([eq] + bounds)
        before = solset(conj, ("x", "y"))
        mix = unimodular_mix(conj, eq, ["x", "y"])
        assert abs(mix.pivot_coeff) == 1  # gcd(3, 5)
        after = solset(mix.conjunct, tuple(mix.new_vars), box=40)
        assert len(after) == len(before)
        # the mapping reproduces original solutions
        recovered = set()
        for vals in after:
            env = dict(zip(mix.new_vars, vals))
            recovered.add(
                (mix.mapping["x"].evaluate(env), mix.mapping["y"].evaluate(env))
            )
        assert recovered == before

    def test_gcd_pivot(self):
        eq = Constraint.eq(Affine({"x": 4, "y": 6}, -2))
        conj = Conjunct([eq])
        mix = unimodular_mix(conj, eq, ["x", "y"])
        assert abs(mix.pivot_coeff) == 2

    def test_single_variable_identity(self):
        eq = Constraint.eq(Affine({"x": 3, "n": 1}))
        conj = Conjunct([eq])
        mix = unimodular_mix(conj, eq, ["x"])
        assert mix.new_vars == ["x"]


class TestSubstituteFractional:
    def test_scales_constraints(self):
        # v = n/2 into v >= 1:  n - 2 >= 0
        conj = Conjunct([Constraint.geq(Affine({"v": 1}, -1))])
        out = substitute_fractional(conj, "v", Affine({"n": 1}), 2)
        assert solset(out, ("n",)) == {(n,) for n in range(2, 11)}

    def test_untouched_constraints_kept(self):
        conj = Conjunct(
            [Constraint.geq(Affine({"m": 1})), Constraint.geq(Affine({"v": 1}))]
        )
        out = substitute_fractional(conj, "v", Affine({"n": 1}), 3)
        assert Constraint.geq(Affine({"m": 1})) in out.constraints

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            substitute_fractional(Conjunct(), "v", Affine(), 0)


class TestEliminateWildcards:
    def test_unit_wildcard_solved(self):
        # ∃w: w == x + 1 ∧ w <= 5  =>  x <= 4
        eq = Constraint.eq(Affine({"w": 1, "x": -1}, -1))
        conj = Conjunct([eq, Constraint.geq(Affine({"w": -1}, 5))], ["w"])
        out = eliminate_wildcards_from_equality(conj, eq)
        assert out.consumed
        assert solset(out.conjunct, ("x",)) == {(x,) for x in range(-10, 5)}

    def test_nonunit_becomes_stride(self):
        # ∃w: 2w == x ∧ w >= 1  =>  x even and x >= 2
        eq = Constraint.equal(Affine({"w": 2}), Affine.var("x"))
        conj = Conjunct([eq, Constraint.geq(Affine({"w": 1}, -1))], ["w"])
        out = eliminate_wildcards_from_equality(conj, eq).conjunct.normalize()
        want = {(x,) for x in range(2, 11, 2)}
        assert solset(out, ("x",)) == want
        assert out.stride_only()

    def test_two_wildcards(self):
        # ∃w,u: 2w + 4u == x ∧ 0 <= w <= 1: x even (w,u mix to gcd 2)
        eq = Constraint.eq(Affine({"w": 2, "u": 4, "x": -1}))
        conj = Conjunct(
            [eq, Constraint.geq(Affine({"w": 1})), Constraint.geq(Affine({"w": -1}, 1))],
            ["w", "u"],
        )
        out = eliminate_wildcards_from_equality(conj, eq).conjunct
        assert solset(out, ("x",)) == {(x,) for x in range(-10, 11, 2)}


class TestModHat:
    def test_single_step_shrinks(self):
        eq = Constraint.eq(Affine({"x": 3, "y": 5}, 1))
        step = mod_hat_reduce(Conjunct([eq]), eq, "x")
        assert step.sigma is not None
        new_eq = step.conjunct.normalize().eqs()[0]
        assert max(abs(c) for _, c in new_eq.expr.coeffs) < 5

    def test_rejects_unit(self):
        eq = Constraint.eq(Affine({"x": 1, "y": 5}))
        with pytest.raises(ValueError):
            mod_hat_reduce(Conjunct([eq]), eq, "x")

    @given(
        st.integers(-6, 6).filter(lambda k: abs(k) > 1),
        st.integers(-6, 6).filter(bool),
        st.integers(-10, 10),
    )
    @settings(max_examples=40)
    def test_full_elimination_preserves_satisfiability(self, a, b, c):
        eq = Constraint.eq(Affine({"x": a, "y": b}, c))
        box = [
            Constraint.geq(Affine({"x": 1}, 7)),
            Constraint.geq(Affine({"x": -1}, 7)),
            Constraint.geq(Affine({"y": 1}, 7)),
            Constraint.geq(Affine({"y": -1}, 7)),
        ]
        conj = Conjunct([eq] + box)
        brute = any(
            a * x + b * y + c == 0
            for x in range(-7, 8)
            for y in range(-7, 8)
        )
        out = mod_hat_eliminate(conj, eq)
        assert satisfiable(out) == brute
