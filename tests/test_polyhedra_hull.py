"""Convex hull constraint tests."""

import itertools

import pytest

from repro.omega.problem import Conjunct
from repro.polyhedra.hull import convex_hull_constraints, hull_formula


def integer_points(points, variables, box=4):
    cons = convex_hull_constraints(points, variables)
    conj = Conjunct(cons)
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(variables)):
        if conj.is_satisfied(dict(zip(variables, vals))):
            out.add(vals)
    return out


class TestFullDimensional:
    def test_five_point_stencil(self):
        pts = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
        assert integer_points(pts, ["x", "y"]) == set(pts)

    def test_nine_point_stencil(self):
        pts = [(a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)]
        assert integer_points(pts, ["x", "y"]) == set(pts)

    def test_four_point_hull_contains_center(self):
        # the diamond without its center: the hull closes the hole
        pts = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        assert integer_points(pts, ["x", "y"]) == set(pts) | {(0, 0)}

    def test_triangle(self):
        pts = [(0, 0), (3, 0), (0, 3)]
        got = integer_points(pts, ["x", "y"])
        assert got == {
            (x, y) for x in range(4) for y in range(4) if x + y <= 3
        }

    def test_3d_cube(self):
        pts = list(itertools.product((0, 1), repeat=3))
        assert integer_points(pts, ["x", "y", "z"], box=2) == set(pts)

    def test_duplicates_ignored(self):
        pts = [(0, 0), (0, 0), (2, 0), (0, 2)]
        got = integer_points(pts, ["x", "y"])
        assert (1, 1) in got and (2, 2) not in got


class TestLowerDimensional:
    def test_single_point(self):
        assert integer_points([(2, 3)], ["x", "y"]) == {(2, 3)}

    def test_collinear_segment(self):
        pts = [(0, 0), (2, 2)]
        assert integer_points(pts, ["x", "y"]) == {(0, 0), (1, 1), (2, 2)}

    def test_1d(self):
        assert integer_points([(0,), (4,)], ["x"], box=6) == {
            (x,) for x in range(5)
        }

    def test_segment_in_3d(self):
        pts = [(0, 0, 0), (0, 2, 2)]
        got = integer_points(pts, ["x", "y", "z"], box=3)
        assert got == {(0, 0, 0), (0, 1, 1), (0, 2, 2)}


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convex_hull_constraints([], ["x"])

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            convex_hull_constraints([(1, 2), (1,)], ["x", "y"])

    def test_var_count(self):
        with pytest.raises(ValueError):
            convex_hull_constraints([(1, 2)], ["x"])

    def test_formula_wrapper(self):
        f = hull_formula([(0,), (3,)], ["x"])
        assert f.evaluate({"x": 2}) and not f.evaluate({"x": 4})
