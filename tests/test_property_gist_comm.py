"""More hypothesis properties: gist semantics and block-cyclic owners."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.apps import BlockCyclicDistribution
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.redundancy import gist, remove_redundant
from repro.omega.satisfiability import equivalent, satisfiable

rows = st.lists(
    st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-6, 6)),
    min_size=1,
    max_size=3,
)


def conjunct_of(spec, box=7):
    cons = []
    for v in ("x", "y"):
        cons.append(Constraint.geq(Affine({v: 1}, box)))
        cons.append(Constraint.geq(Affine({v: -1}, box)))
    for a, b, c in spec:
        cons.append(Constraint.geq(Affine({"x": a, "y": b}, c)))
    return Conjunct(cons)


@given(rows, rows)
@settings(max_examples=50, deadline=None)
def test_gist_defining_property(p_spec, q_spec):
    """(gist P given Q) ∧ Q  ≡  P ∧ Q, always."""
    p, q = conjunct_of(p_spec), conjunct_of(q_spec)
    g = gist(p, q)
    assert equivalent(g.merge(q), p.merge(q))


@given(rows, rows)
@settings(max_examples=30, deadline=None)
def test_gist_no_more_constraints(p_spec, q_spec):
    p, q = conjunct_of(p_spec), conjunct_of(q_spec)
    g = gist(p, q)
    if satisfiable(p.merge(q)):
        assert len(g.constraints) <= len(p.normalize().constraints)


@given(rows)
@settings(max_examples=40, deadline=None)
def test_remove_redundant_preserves_set(spec):
    conj = conjunct_of(spec)
    out = remove_redundant(conj)
    assert equivalent(conj, out)


@given(st.integers(1, 5), st.integers(2, 6), st.integers(10, 60))
@settings(max_examples=20, deadline=None)
def test_block_cyclic_owner_function(block, procs, extent):
    """The owner formula matches (t // block) % procs for random
    parameters, and ownership partitions the template."""
    dist = BlockCyclicDistribution(block=block, procs=procs)
    f = dist.owner_formula("t", "p")
    for t in range(0, extent):
        owners = [p for p in range(procs) if f.evaluate({"t": t, "p": p})]
        assert owners == [(t // block) % procs], (block, procs, t)


@given(st.integers(1, 4), st.integers(2, 4))
@settings(max_examples=12, deadline=None)
def test_block_cyclic_counts_partition(block, procs):
    extent = block * procs * 3 - 1
    dist = BlockCyclicDistribution(block=block, procs=procs)
    per = dist.elements_per_processor("0 <= t <= %d" % extent)
    counts = [per.evaluate(p=p) for p in range(procs)]
    assert sum(counts) == extent + 1
    assert max(counts) - min(counts) <= block
