"""End-to-end scenarios beyond the paper's own examples.

Each scenario drives the whole stack (parser → disjoint DNF → engine →
applications) on a realistic kernel and validates against brute force.
"""

import pytest

from conftest import brute_count, grid
from repro.apps import (
    ArrayRef,
    Loop,
    LoopNest,
    Statement,
    count_flops,
    count_iterations,
    is_load_balanced,
    memory_locations_touched,
)
from repro.core import count, sum_poly
from repro.presburger.parser import parse


class TestMatMul:
    """C[i,j] += A[i,k] * B[k,j] over n×n×n."""

    def nest(self):
        return LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n"), Loop("k", 1, "n")],
            [
                Statement(
                    flops=2,
                    refs=[
                        ArrayRef("C", ["i", "j"]),
                        ArrayRef("A", ["i", "k"]),
                        ArrayRef("B", ["k", "j"]),
                    ],
                )
            ],
        )

    def test_flops(self):
        flops = count_flops(self.nest())
        for n in range(0, 6):
            assert flops.evaluate(n=n) == 2 * n ** 3

    def test_footprints(self):
        nest = self.nest()
        for array in ("A", "B", "C"):
            locs = memory_locations_touched(nest, array)
            for n in range(0, 6):
                assert locs.evaluate(n=n) == n * n, array

    def test_balanced(self):
        ok, per = is_load_balanced(self.nest())
        assert ok
        assert per.evaluate(i=1, n=5) == 50


class TestBandedSolver:
    """Banded triangular update: j within a band of width w around i."""

    TEXT = "1 <= i <= n and i <= j and j <= i + w and j <= n"

    def test_count(self):
        r = count(self.TEXT, ["i", "j"])
        f = parse(self.TEXT)
        for env in grid(n=range(0, 7), w=range(0, 4)):
            assert r.evaluate(env) == brute_count(f, ["i", "j"], env, box=12)

    def test_weighted(self):
        r = sum_poly(self.TEXT, ["i", "j"], "j - i")
        for n in range(0, 7):
            for w in range(0, 4):
                want = sum(
                    j - i
                    for i in range(1, n + 1)
                    for j in range(i, min(i + w, n) + 1)
                )
                assert r.evaluate(n=n, w=w) == want


class TestRedBlackSweep:
    """Red-black Gauss-Seidel: update points with i + j even."""

    def nest(self):
        return LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")],
            [Statement(flops=4, guard="2 | i + j")],
        )

    def test_half_the_points(self):
        flops = count_flops(self.nest())
        for n in range(0, 9):
            red = sum(
                1
                for i in range(1, n + 1)
                for j in range(1, n + 1)
                if (i + j) % 2 == 0
            )
            assert flops.evaluate(n=n) == 4 * red

    def test_symbolic_form_has_parity(self):
        flops = count_flops(self.nest()).simplified()
        text = str(flops)
        assert "mod 2" in text or len(flops.terms) > 1


class TestTiledLoop:
    """A loop tiled by 8: tile index and intra-tile offset."""

    TEXT = (
        "0 <= t and 0 <= o <= 7 and i = 8*t + o and 1 <= i <= n"
    )

    def test_iterations_match_untiled(self):
        r = count(self.TEXT, ["t", "o", "i"])
        for n in range(0, 30):
            assert r.evaluate(n=n) == max(n, 0)

    def test_tiles_touched(self):
        r = count(
            "exists o, i: 0 <= o <= 7 and i = 8*t + o and 1 <= i <= n and 0 <= t",
            ["t"],
        )
        for n in range(0, 40):
            want = len({(i - 0) // 8 for i in range(1, n + 1)})
            assert r.evaluate(n=n) == want


class TestHistogramPrivatization:
    """Decide if privatizing a histogram pays: compare update count
    against the histogram's size."""

    def test_updates_vs_bins(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [Statement(flops=1, refs=[ArrayRef("h", ["i mod 16"])])],
        )
        updates = count_iterations(nest)
        bins = memory_locations_touched(nest, "h")
        for n in (4, 16, 40):
            assert updates.evaluate(n=n) == n
            assert bins.evaluate(n=n) == min(n, 16)
