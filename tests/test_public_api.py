"""Public API surface tests: the names README promises exist and work."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        r = repro.count("1 <= i and i < j and j <= n", over=["i", "j"])
        assert str(r) == "(Σ : n - 2 >= 0 : 1/2*n**2 - 1/2*n)"
        assert r.evaluate(n=10) == 45

    def test_sum_poly_shortcut(self):
        s = repro.sum_poly("1 <= i <= n", ["i"], "i")
        assert s.evaluate(n=4) == 10

    def test_count_bounds(self):
        lo, hi = repro.count_bounds("1 <= i and 3*i <= n", ["i"])
        assert lo.exactness == "lower" and hi.exactness == "upper"

    def test_parse_and_dnf(self):
        f = repro.parse("1 <= x <= 5 or x = 9")
        clauses = repro.to_disjoint_dnf(f)
        assert len(clauses) == 2

    def test_simplify(self):
        out = repro.simplify(repro.parse("x >= 1 and x >= 0"))
        assert len(out) == 1 and len(out[0].constraints) == 1


class TestSubpackages:
    def test_omega_exports(self):
        from repro.omega import (
            eliminate_exact,
            gist,
            project_onto,
            remove_redundant,
            satisfiable,
        )

    def test_apps_exports(self):
        from repro.apps import (
            BlockCyclicDistribution,
            balanced_chunks,
            cache_lines_touched,
            count_flops,
            memory_locations_touched,
        )

    def test_baselines_exports(self):
        from repro.baselines import (
            hp_nested_sum,
            inclusion_exclusion_count,
            naive_nested_sum,
            tawbi_count,
        )

    def test_polyhedra_exports(self):
        from repro.polyhedra import summarize_offsets, zero_one_formula
