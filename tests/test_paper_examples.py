"""Integration tests: every worked example in the paper, end to end.

Each test reproduces one numbered result from the paper and checks it
against brute force (and, where the paper gives a closed form, against
that form).
"""

from fractions import Fraction

import pytest

from repro.core import count, sum_poly
from repro.presburger.parser import parse
from repro.qpoly import ModAtom, Polynomial


class TestIntroTable:
    """The table of simple summations in the introduction."""

    def test_constant_range(self):
        assert count("1 <= i <= 10", ["i"]).evaluate({}) == 10

    def test_n_range(self):
        r = count("1 <= i <= n", ["i"])
        (t,) = r.terms
        assert str(t.value) == "n"
        assert t.guard.is_satisfied({"n": 1}) and not t.guard.is_satisfied({"n": 0})

    def test_square(self):
        r = count("1 <= i <= n and 1 <= j <= n", ["i", "j"])
        (t,) = r.terms
        assert str(t.value) == "n**2"

    def test_strict_triangle(self):
        r = count("1 <= i and i < j and j <= n", ["i", "j"])
        (t,) = r.terms
        n = Polynomial.variable("n")
        assert t.value == (n * n - n) / 2
        # guard 2 <= n, as the paper prints
        assert t.guard.is_satisfied({"n": 2}) and not t.guard.is_satisfied({"n": 1})


class TestMathematicaBug:
    def test_guarded_answer(self):
        r = count("1 <= i <= n and i <= j <= m", ["i", "j"])
        for n in range(0, 8):
            for m in range(0, 8):
                want = sum(
                    1 for i in range(1, n + 1) for j in range(i, m + 1)
                )
                assert r.evaluate(n=n, m=m) == want
        # the 1 <= m < n region where Mathematica is wrong: m(m+1)/2
        for m in range(1, 6):
            assert r.evaluate(n=m + 3, m=m) == m * (m + 1) // 2


class TestSection21Projection:
    def test_solution_set(self):
        f = parse(
            "exists i, j: 1 <= i <= 8 and 1 <= j <= 5 and x = 6*i + 9*j - 7"
        )
        want = {6 * i + 9 * j - 7 for i in range(1, 9) for j in range(1, 6)}
        got = {x for x in range(0, 100) if f.evaluate({"x": x})}
        assert got == want
        # "all numbers between 8 and 86 that have remainder 2 when
        # divided by 3, except for 11 and 83"
        assert want == {
            x for x in range(8, 87) if x % 3 == 2 and x not in (11, 83)
        }


class TestExample1Tawbi:
    TEXT = "1 <= i <= n and 1 <= j <= i and j <= k <= m"

    def test_two_pieces(self):
        r = count(self.TEXT, ["i", "j", "k"])
        assert len(r.terms) == 2

    def test_closed_forms(self):
        # paper: (n <= m piece) n²m/2 - n³/6 + nm/2 + n/6
        r = count(self.TEXT, ["i", "j", "k"])
        n, m = Polynomial.variable("n"), Polynomial.variable("m")
        values = {str(t.value) for t in r.terms}
        first = (
            n * n * m * Fraction(1, 2)
            - n ** 3 * Fraction(1, 6)
            + n * m * Fraction(1, 2)
            + n * Fraction(1, 6)
        )
        second = (
            m * m * n * Fraction(1, 2)
            - m ** 3 * Fraction(1, 6)
            + n * m * Fraction(1, 2)
            + m * Fraction(1, 6)
        )
        got = {t.value for t in r.terms}
        assert got == {first, second}

    def test_brute_force(self):
        r = count(self.TEXT, ["i", "j", "k"])
        for n in range(0, 6):
            for m in range(0, 7):
                want = sum(
                    1
                    for i in range(1, n + 1)
                    for j in range(1, i + 1)
                    for k in range(j, m + 1)
                )
                assert r.evaluate(n=n, m=m) == want


class TestExample2HP:
    TEXT = "1 <= i <= n and 3 <= j <= i and j <= k <= 5"

    def test_brute_force(self):
        r = count(self.TEXT, ["i", "j", "k"])
        for n in range(0, 12):
            want = sum(
                1
                for i in range(1, n + 1)
                for j in range(3, i + 1)
                for k in range(j, 6)
            )
            assert r.evaluate(n=n) == want

    def test_linear_tail(self):
        # paper: for n >= 5 the answer is 6n - 16
        r = count(self.TEXT, ["i", "j", "k"])
        for n in range(5, 12):
            assert r.evaluate(n=n) == 6 * n - 16

    def test_small_region_values(self):
        # paper (after simplification): 5n - 12 on 3 <= n < 5
        r = count(self.TEXT, ["i", "j", "k"])
        for n in (3, 4):
            assert r.evaluate(n=n) == 5 * n - 12


class TestExample3HP:
    def test_n_squared(self):
        r = count(
            "1 <= i <= 2*n and 1 <= j <= i and i + j <= 2*n", ["i", "j"]
        ).simplified()
        (t,) = r.terms
        assert str(t.value) == "n**2"
        assert t.guard.is_satisfied({"n": 1})


class TestExample4FST:
    def test_25_locations(self):
        r = count(
            "exists i, j: 1 <= i <= 8 and 1 <= j <= 5 and x = 6*i + 9*j - 7",
            ["x"],
        )
        assert r.evaluate({}) == 25


class TestExample5SOR:
    SUMMARIZED = (
        "1 <= x and 1 <= y and x <= N and y <= N and 3 <= x + y and "
        "x + y <= 2*N - 1 and 2 - N <= x - y and x - y <= N - 2"
    )

    def test_symbolic_n_squared_minus_4(self):
        r = count(self.SUMMARIZED, ["x", "y"]).simplified()
        (t,) = r.terms
        n = Polynomial.variable("N")
        assert t.value == n * n - 4
        assert t.guard.is_satisfied({"N": 3})
        assert not t.guard.is_satisfied({"N": 2})

    def test_numeric_500(self):
        r = count(self.SUMMARIZED, ["x", "y"])
        assert r.evaluate(N=500) == 249996

    def test_cache_lines_16000(self):
        f = (
            "exists i, j, di, dj: 2 <= i <= 499 and 2 <= j <= 499 and "
            "0 - 1 <= di + dj and di + dj <= 1 and "
            "0 - 1 <= di - dj and di - dj <= 1 and "
            "x = floor((i + di - 1)/16) and y = j + dj"
        )
        assert count(f, ["x", "y"]).evaluate({}) == 16000


class TestExample6:
    TEXT = "1 <= i and 1 <= j <= n and 2*i <= 3*j"

    def test_final_quasi_polynomial(self):
        r = count(self.TEXT, ["i", "j"]).simplified()
        (t,) = r.terms
        n = Polynomial.variable("n")
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        # the paper's final answer: (3n² + 2n - (n mod 2)) / 4
        assert t.value == (3 * n * n + 2 * n - m) / 4

    def test_brute_force(self):
        r = count(self.TEXT, ["i", "j"])
        for n in range(0, 14):
            want = sum(
                1
                for j in range(1, n + 1)
                for i in range(1, 3 * j // 2 + 1)
                if 2 * i <= 3 * j
            )
            assert r.evaluate(n=n) == want


class TestSection26Timing:
    def test_simplification_shape(self):
        from repro.presburger.simplify import simplify

        f = parse(
            "1 <= i <= 2*n and 1 <= ip <= 2*n and i = ip and "
            "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
            "     i2 <= i and i2 = ip and 2*j2 = i2) and "
            "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
            "     i2 <= i and i2 = ip and 2*j2 + 1 = i2)"
        )
        out = simplify(f)
        assert len(out) == 2
        # semantics: i = ip ∈ {1, 2n}
        for n in range(1, 5):
            got = {
                (i, ip)
                for i in range(1, 2 * n + 1)
                for ip in range(1, 2 * n + 1)
                if any(
                    c.is_satisfied({"i": i, "ip": ip, "n": n}) for c in out
                )
            }
            assert got == {(1, 1), (2 * n, 2 * n)}
