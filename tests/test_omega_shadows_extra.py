"""Additional shadow/elimination edge cases and stress tests."""

import itertools

import pytest

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.eliminate import (
    dark_shadow,
    eliminate_exact,
    project_onto,
    real_shadow,
    splinters,
)
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


class TestClassicGaps:
    def test_omega_nightmare(self):
        """Pugh's "omega nightmare" family: 27 <= 11x + 13y <= 45,
        -10 <= 7x - 9y <= 4 — rationally feasible, integrally empty."""
        conj = Conjunct(
            [
                geq({"x": 11, "y": 13}, -27),
                geq({"x": -11, "y": -13}, 45),
                geq({"x": 7, "y": -9}, 10),
                geq({"x": -7, "y": 9}, 4),
            ]
        )
        # brute force confirms emptiness
        assert not any(
            27 <= 11 * x + 13 * y <= 45 and -10 <= 7 * x - 9 * y <= 4
            for x in range(-20, 21)
            for y in range(-20, 21)
        )
        assert not satisfiable(conj)

    def test_omega_nightmare_real_relaxation_nonempty(self):
        conj = Conjunct(
            [
                geq({"x": 11, "y": 13}, -27),
                geq({"x": -11, "y": -13}, 45),
                geq({"x": 7, "y": -9}, 10),
                geq({"x": -7, "y": 9}, 4),
            ]
        )
        shadow = real_shadow(conj, "y")
        # rationally the region projects to a nonempty x-interval
        assert shadow is not None and satisfiable(shadow)


class TestEliminationEdges:
    def test_variable_absent(self):
        conj = Conjunct([geq({"x": 1})])
        assert eliminate_exact(conj, "zz") == [conj.normalize()]

    def test_equality_shortcut(self):
        conj = Conjunct(
            [Constraint.eq(Affine({"z": 2, "x": -1})), geq({"z": 1}, -1)]
        )
        pieces = eliminate_exact(conj, "z")
        got = set()
        for p in pieces:
            got |= {
                x for x in range(-2, 20) if p.is_satisfied({"x": x})
            }
        assert got == {x for x in range(2, 20, 2)}

    def test_infeasible_input(self):
        conj = Conjunct([geq({"z": 1}, -5), geq({"z": -1}, 3), geq({"x": 1})])
        assert eliminate_exact(conj, "z") == []

    def test_splinter_count_bounded(self):
        conj = Conjunct(
            [geq({"z": 3, "x": -1}), geq({"z": -5, "x": 1}, 7)]
        )
        sp = splinters(conj, "z")
        # per the formula: one lower bound, i in 0..(a·b - a - b)/a
        assert 0 < len(sp) <= 3


class TestProjectOntoMulti:
    def test_two_eliminations(self):
        # x = i + j, 1<=i<=3, 1<=j<=2
        conj = Conjunct(
            [
                geq({"i": 1}, -1),
                geq({"i": -1}, 3),
                geq({"j": 1}, -1),
                geq({"j": -1}, 2),
                Constraint.eq(Affine({"x": 1, "i": -1, "j": -1})),
            ]
        )
        pieces = project_onto(conj, ("x",))
        got = set()
        for p in pieces:
            got |= {x for x in range(0, 10) if p.is_satisfied({"x": x})}
        assert got == {2, 3, 4, 5}

    def test_keep_everything(self):
        conj = Conjunct([geq({"x": 1}), geq({"y": 1})])
        assert project_onto(conj, ("x", "y")) == [conj.normalize()]

    def test_project_to_nothing(self):
        conj = Conjunct([geq({"x": 1}), geq({"x": -1}, 5)])
        pieces = project_onto(conj, ())
        assert len(pieces) == 1 and pieces[0].is_trivial_true()


class TestDeepChains:
    @pytest.mark.parametrize("depth", [3, 4, 5])
    def test_chained_equalities(self, depth):
        """x1 = 2x0, x2 = 2x1 ... projected to the last variable."""
        cons = [geq({"x0": 1}), geq({"x0": -1}, 3)]
        for k in range(1, depth):
            cons.append(
                Constraint.eq(Affine({"x%d" % k: 1, "x%d" % (k - 1): -2}))
            )
        conj = Conjunct(cons)
        last = "x%d" % (depth - 1)
        pieces = project_onto(conj, (last,))
        got = set()
        for p in pieces:
            got |= {
                v for v in range(0, 4 * 2 ** depth) if p.is_satisfied({last: v})
            }
        scale = 2 ** (depth - 1)
        assert got == {scale * t for t in range(0, 4)}
