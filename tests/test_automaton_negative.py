"""Negative-coordinate edge cases: the two's-complement sign contract.

The automaton decides sign on the *last* letter of an LSBF word, so
every off-by-one in sign handling shows up first at negative
coordinates, at two's-complement boundaries (-2^k, -2^k - 1 and
neighbours), and in strides over negatives (Python's floor-mod
convention).  These tests pin that behaviour against brute force so a
regression cannot hide behind mostly-positive fuzz traffic.
"""

import itertools

import pytest

from repro.automaton import (
    build_automaton,
    count_box,
    count_exact,
    member,
)
from repro.presburger.parser import parse


def solutions(text, over, box):
    f = parse(text)
    return {
        vals
        for vals in itertools.product(
            range(-box, box + 1), repeat=len(over)
        )
        if f.evaluate(dict(zip(over, vals)))
    }


#: Formulas whose solution sets live mostly or entirely below zero.
NEGATIVE_CASES = [
    ("-10 <= i <= -1", ["i"]),
    ("i = -7", ["i"]),
    ("i <= -1 and -12 <= i and 2 | i", ["i"]),
    ("3 | (i + 1) and -9 <= i <= -2", ["i"]),
    ("-2*i + 3*j <= 5 and -4 <= i <= 4 and -3 <= j <= 6", ["i", "j"]),
    ("i + j = -5 and -8 <= i <= 8", ["i", "j"]),
    ("i < 0 and j < 0 and i + j >= -9", ["i", "j"]),
    ("-6 <= i <= -3 or (i = 0 or 1 <= i <= 2)", ["i"]),
]


@pytest.mark.parametrize("text,over", NEGATIVE_CASES)
def test_negative_membership_matches_brute_force(text, over):
    aut = build_automaton(parse(text), over)
    want = solutions(text, over, 14)
    for vals in itertools.product(range(-14, 15), repeat=len(over)):
        assert member(aut, vals) == (vals in want), (text, vals)


@pytest.mark.parametrize("text,over", NEGATIVE_CASES)
def test_negative_counts_match_brute_force(text, over):
    aut = build_automaton(parse(text), over)
    want = solutions(text, over, 14)
    assert count_box(aut, -14, 14) == len(want), text


def test_power_of_two_boundaries():
    # -2^(k-1) is the one value whose minimal word is all-zero except
    # the sign letter; its neighbours need one more letter.
    for k in (2, 3, 4, 5, 6):
        lo = -(2 ** (k - 1))
        aut = build_automaton(parse("i = %d" % lo), ["i"])
        assert count_exact(aut) == 1
        assert member(aut, [lo])
        assert not member(aut, [lo - 1])
        assert not member(aut, [lo + 1])


def test_negative_stride_uses_floor_mod():
    # 3 | (i + 2): solutions ... -8, -5, -2, 1, 4 ... -- the automaton
    # must agree with Python's floor mod, not truncation toward zero.
    aut = build_automaton(parse("3 | (i + 2)"), ["i"])
    for i in range(-20, 21):
        assert member(aut, [i]) == ((i + 2) % 3 == 0), i


def test_asymmetric_box_straddling_zero():
    text = "2 | (i + j)"
    aut = build_automaton(parse(text), ["i", "j"])
    want = sum(
        1
        for i in range(-13, 6)
        for j in range(-3, 12)
        if (i + j) % 2 == 0
    )
    assert count_box(aut, (-13, -3), (5, 11)) == want


def test_all_negative_box():
    aut = build_automaton(parse("i + j <= -4"), ["i", "j"])
    want = sum(
        1 for i in range(-9, -1) for j in range(-9, -1) if i + j <= -4
    )
    assert count_box(aut, -9, -2) == want


def test_minus_one_is_all_ones():
    # -1 is the all-ones word at every width; a common sign bug is to
    # accept it in sets it does not belong to (or drop it from ones it
    # does).
    aut_in = build_automaton(parse("-3 <= i <= 0"), ["i"])
    aut_out = build_automaton(parse("0 <= i <= 3"), ["i"])
    assert member(aut_in, [-1])
    assert not member(aut_out, [-1])
