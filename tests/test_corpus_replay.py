"""Replay every regression-corpus entry as a tier-1 test.

Each JSON file under ``tests/corpus/`` is a shrunk (or directly
pinned) fuzz counterexample: a formula, the variables counted over,
sampled symbol environments, and the name of the check that once
failed.  Replaying them forever keeps fixed bugs fixed, at brute-force
oracle cost only (the formulas are tiny by construction).

Add entries with ``python -m repro fuzz --corpus tests/corpus`` or
:func:`repro.testkit.corpus.save_case`.
"""

import os

import pytest

from repro.testkit.checks import CHECKS, run_check
from repro.testkit.corpus import load_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = list(load_corpus(CORPUS_DIR))


def test_corpus_is_not_empty():
    assert ENTRIES, "tests/corpus/ should ship at least one entry"


@pytest.mark.parametrize(
    "path,case,check",
    ENTRIES,
    ids=[os.path.basename(p) for p, _, _ in ENTRIES],
)
def test_corpus_entry_passes(path, case, check):
    names = [check] if check in CHECKS else list(CHECKS)
    for name in names:
        failure = run_check(name, case)
        assert failure is None, "%s: %s" % (os.path.basename(path), failure)
