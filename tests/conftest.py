"""Shared test helpers: brute-force oracles.

Every symbolic result in this library can be checked by enumerating
integer points.  The helpers here are the referees: slow, obviously
correct counting/summation used to validate the engine.
"""

import itertools
import os
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Set, Tuple

import pytest

from repro.core.memo import clear_answer_memo
from repro.omega.constraints import reset_fresh_counter
from repro.omega.problem import Conjunct
from repro.presburger.ast import Formula

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is a test dep
    _hyp_settings = None

if _hyp_settings is not None:
    # ``ci`` pins hypothesis to its derandomized mode: examples are
    # derived from the test body alone, so tier-1 cannot flake on an
    # unlucky random draw.  Select it with HYPOTHESIS_PROFILE=ci (the
    # CI workflow does); the default profile keeps random exploration
    # for local runs, where a fresh failing example is a feature.
    _hyp_settings.register_profile("ci", derandomize=True)
    _hyp_settings.register_profile("dev", _hyp_settings.get_profile("default"))
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _deterministic_fresh_names():
    """Restart the wildcard-name counter before every test.

    ``fresh_var`` is a process-global counter, so printed guards (and
    anything golden-string asserted) would otherwise depend on which
    tests ran earlier in the session.  Resetting is safe across the
    persistent satisfiability cache: cached answers are pure functions
    of conjunct content, names included.

    The answer memo is cleared for a different reason: tests that
    assert on engine-work counters (sat_calls and friends) must see a
    cold recursion, not an answer served from a formula some earlier
    test already counted.
    """
    reset_fresh_counter()
    clear_answer_memo()
    yield


def enumerate_conjunct(
    conj: Conjunct, variables: Sequence[str], box: int = 8, env: Mapping[str, int] = ()
) -> Set[Tuple[int, ...]]:
    """Integer solutions of the free variables within [-box, box]^d."""
    env = dict(env)
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(variables)):
        point = dict(env)
        point.update(zip(variables, vals))
        if conj.is_satisfied(point):
            out.add(vals)
    return out


def enumerate_formula(
    formula: Formula, variables: Sequence[str], box: int = 8, env: Mapping[str, int] = ()
) -> Set[Tuple[int, ...]]:
    env = dict(env)
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(variables)):
        point = dict(env)
        point.update(zip(variables, vals))
        if formula.evaluate(point):
            out.add(vals)
    return out


def brute_count(
    formula: Formula,
    over: Sequence[str],
    env: Mapping[str, int],
    box: int = 30,
) -> int:
    """Count solutions by enumeration (count variables in [-box, box])."""
    return len(enumerate_formula(formula, over, box, env))


def brute_sum(
    formula: Formula,
    over: Sequence[str],
    z,
    env: Mapping[str, int],
    box: int = 30,
) -> Fraction:
    total = Fraction(0)
    for vals in enumerate_formula(formula, over, box, env):
        point = dict(env)
        point.update(zip(over, vals))
        total += z.evaluate(point)
    return total


def assert_clauses_cover(
    clauses: Iterable[Conjunct],
    expected: Set[Tuple[int, ...]],
    variables: Sequence[str],
    box: int = 8,
    disjoint: bool = False,
    env: Mapping[str, int] = (),
):
    """Union of the clauses equals ``expected``; optionally disjoint."""
    hits: Dict[Tuple[int, ...], int] = {}
    for clause in clauses:
        for point in enumerate_conjunct(clause, variables, box, env):
            hits[point] = hits.get(point, 0) + 1
    assert set(hits) == expected, (
        "missing: %s extra: %s"
        % (sorted(expected - set(hits))[:5], sorted(set(hits) - expected)[:5])
    )
    if disjoint:
        overlaps = {p: n for p, n in hits.items() if n > 1}
        assert not overlaps, "overlapping points: %s" % (
            sorted(overlaps)[:5],
        )


def check_symbolic_count(
    formula_text: str,
    over: Sequence[str],
    symbol_values: Sequence[Mapping[str, int]],
    box: int = 30,
):
    """Engine count vs brute force at each symbol assignment."""
    from repro.core import count
    from repro.presburger import parse

    formula = parse(formula_text)
    result = count(formula, over)
    for env in symbol_values:
        want = brute_count(formula, over, env, box)
        got = result.evaluate(env)
        assert got == want, (formula_text, dict(env), got, want)
    return result


def grid(**ranges) -> list:
    """All symbol assignments over the given ranges: grid(n=range(5))."""
    keys = list(ranges)
    return [
        dict(zip(keys, vals))
        for vals in itertools.product(*(ranges[k] for k in keys))
    ]
