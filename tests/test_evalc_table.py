"""Table-plan tests: the bisect-indexed piecewise evaluator.

``CompiledSum.table(var, values, **fixed)`` may build a *plan*: per
residue class of the answer's period, a sorted list of piece
thresholds plus dense integer coefficient vectors, served by bisect +
Horner.  The plan is an optimization only -- every test here compares
against the interpreted ``SymbolicSum.table`` output, and the
no-plan fallbacks must produce identical results.
"""

import pytest

from repro.core import count, sum_poly
from repro.evalc import clear_cache, compile_sum
from repro.evalc.compiler import _MAX_PERIOD, build_table_plan


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _interp_table(result, var, values, **fixed):
    env = dict(fixed)
    out = []
    for v in values:
        env[var] = v
        out.append((v, result.evaluate(env)))
    return out


class TestPlanCorrectness:
    def test_polynomial_pieces(self):
        result = count("1 <= i and i < j and j <= n", ["i", "j"])
        compiled = compile_sum(result)
        values = range(-8, 25)
        assert compiled.table("n", values) == _interp_table(
            result, "n", values
        )

    def test_residue_classes(self):
        result = count("1 <= i and 3*i <= n and 2 | (i + n)", ["i"])
        compiled = compile_sum(result)
        values = range(-12, 40)
        assert compiled.table("n", values) == _interp_table(
            result, "n", values
        )

    def test_fixed_symbols(self):
        result = count(
            "1 <= i and i <= n and 1 <= j and j <= m and 2 | (i + j)",
            ["i", "j"],
        )
        compiled = compile_sum(result)
        for m in (-3, 0, 1, 7):
            values = range(-5, 20)
            assert compiled.table("n", values, m=m) == _interp_table(
                result, "n", values, m=m
            )

    def test_negative_and_stepped_ranges(self):
        result = count("1 <= i and 2*i <= n", ["i"])
        compiled = compile_sum(result)
        for values in (range(10, -10, -1), range(-9, 30, 7)):
            assert compiled.table("n", values) == _interp_table(
                result, "n", values
            )

    def test_sum_plan_keeps_fraction_types(self):
        result = sum_poly("1 <= i and i <= n", ["i"], "i")
        compiled = compile_sum(result)
        values = range(-3, 12)
        want = _interp_table(result, "n", values)
        got = compiled.table("n", values)
        assert got == want
        for (_, g), (_, w) in zip(got, want):
            assert type(g) is type(w)


class TestPlanMachinery:
    def test_plan_builds_for_simple_answer(self):
        result = count("1 <= i and i <= n and 2 | i", ["i"])
        plan = build_table_plan(result, "n", {})
        assert plan is not None
        assert plan.period % 2 == 0
        for v in range(-9, 9):
            assert plan.value_at(v) == result.evaluate({"n": v})

    def test_plan_refuses_unfixed_symbol(self):
        result = count(
            "1 <= i and i <= n and 1 <= j and j <= m", ["i", "j"]
        )
        assert build_table_plan(result, "n", {}) is None
        assert build_table_plan(result, "n", {"m": 5}) is not None

    def test_plan_refuses_huge_period(self):
        # A stride past _MAX_PERIOD: no plan, but table() still
        # answers (per-point compiled fallback).
        assert 1024 > _MAX_PERIOD
        result = count("1 <= i and i <= n and 1024 | n", ["i"])
        assert build_table_plan(result, "n", {}) is None
        compiled = compile_sum(result)
        values = list(range(-4, 30)) + [1023, 1024, 1025, 2048]
        assert compiled.table("n", values) == _interp_table(
            result, "n", values
        )

    def test_plan_cache_reuse(self):
        result = count("1 <= i and i <= n and 2 | (i + m)", ["i"])
        compiled = compile_sum(result)
        compiled.table("n", range(5), m=1)
        plan_a = compiled._plan_for("n", {"m": 1})
        plan_b = compiled._plan_for("n", {"m": 1})
        assert plan_a is plan_b
        assert compiled._plan_for("n", {"m": 2}) is not plan_a

    def test_result_table_routes_through_plan(self):
        # SymbolicSum.table and CompiledSum.table agree end to end.
        result = count("1 <= i and 3*i <= n and 2 | (i + n)", ["i"])
        values = range(-6, 25)
        assert result.table("n", values) == _interp_table(
            result, "n", values
        )
