"""Iteration/flop counting and machine balance tests (§1.1)."""

from fractions import Fraction

import pytest

from repro.apps import (
    ArrayRef,
    Loop,
    LoopNest,
    Statement,
    count_flops,
    count_iterations,
    machine_balance,
)
from repro.apps.counting import statement_executions


def triangular(n_flops=1):
    return LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "i")],
        [Statement(flops=n_flops)],
    )


class TestIterations:
    def test_rectangular(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "m")], [Statement()]
        )
        r = count_iterations(nest)
        for n in range(0, 5):
            for m in range(0, 5):
                assert r.evaluate(n=n, m=m) == max(n, 0) * max(m, 0)

    def test_triangular(self):
        r = count_iterations(triangular())
        for n in range(0, 8):
            assert r.evaluate(n=n) == n * (n + 1) // 2

    def test_strided(self):
        nest = LoopNest([Loop("i", 1, "n", step=2)], [Statement()])
        r = count_iterations(nest)
        for n in range(0, 12):
            assert r.evaluate(n=n) == len(range(1, n + 1, 2))

    def test_guarded(self):
        nest = LoopNest(
            [Loop("i", 1, "n")], [Statement(guard="3 | i")]
        )
        r = count_flops(nest)
        for n in range(0, 12):
            assert r.evaluate(n=n) == len(
                [i for i in range(1, n + 1) if i % 3 == 0]
            )


class TestFlops:
    def test_scaling(self):
        r = count_flops(triangular(n_flops=6))
        for n in range(0, 6):
            assert r.evaluate(n=n) == 3 * n * (n + 1)

    def test_multiple_statements(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")],
            [Statement(flops=2), Statement(flops=3, depth=1)],
        )
        r = count_flops(nest)
        for n in range(0, 6):
            assert r.evaluate(n=n) == 2 * n * n + 3 * n

    def test_statement_executions(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")],
            [Statement(), Statement(depth=1)],
        )
        assert statement_executions(nest, nest.statements[1]).evaluate(n=4) == 4


class TestMachineBalance:
    def test_stream_like(self):
        # one flop per element touched: balance 1
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [Statement(flops=1, refs=[ArrayRef("a", ["i"])])],
        )
        assert machine_balance(nest, n=100) == 1

    def test_reuse_raises_balance(self):
        # n^2 flops over 2n-1 locations (a[i+j] diagonal access)
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")],
            [Statement(flops=1, refs=[ArrayRef("a", ["i + j"])])],
        )
        assert machine_balance(nest, n=10) == Fraction(100, 19)

    def test_no_memory(self):
        nest = LoopNest([Loop("i", 1, "n")], [Statement()])
        with pytest.raises(ValueError):
            machine_balance(nest, n=10)
