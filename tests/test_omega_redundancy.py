"""Redundant-constraint removal and the gist operator (§2.3)."""

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.redundancy import (
    constraint_redundant,
    gist,
    remove_redundant,
)
from repro.omega.satisfiability import equivalent


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


class TestRedundant:
    def test_paper_example(self):
        # "x + y >= 10 is made redundant by x + y >= 5" -- wait, the
        # paper says e >= 10 is made redundant by e >= 5? No: x+y>=5
        # is redundant GIVEN x+y>=10.
        strong = geq({"x": 1, "y": 1}, -10)
        weak = geq({"x": 1, "y": 1}, -5)
        conj = Conjunct([strong, weak])
        assert constraint_redundant(conj, weak)
        assert not constraint_redundant(conj, strong)

    def test_remove_keeps_tightest(self):
        conj = Conjunct([geq({"x": 1}, -10), geq({"x": 1}, -5)])
        out = remove_redundant(conj)
        assert list(out.constraints) == [geq({"x": 1}, -10)]

    def test_nontrivial_combination(self):
        # x >= 0, y >= 0 make x + y >= -1 redundant (needs the
        # complete test; no single constraint implies it)
        conj = Conjunct(
            [geq({"x": 1}), geq({"y": 1}), geq({"x": 1, "y": 1}, 1)]
        )
        out = remove_redundant(conj)
        assert geq({"x": 1, "y": 1}, 1) not in out.constraints
        assert len(out.constraints) == 2

    def test_integer_only_redundancy(self):
        # over the integers x >= 1 implies 2x >= 2 (tightened forms equal)
        conj = Conjunct([geq({"x": 1}, -1), geq({"x": 2}, -1)])
        out = remove_redundant(conj)
        assert len(out.constraints) == 1

    def test_preserves_semantics(self):
        conj = Conjunct(
            [
                geq({"x": 1}),
                geq({"y": 1}),
                geq({"x": 1, "y": 2}, 3),
                geq({"x": 2, "y": 1}, -4),
                geq({"x": 1, "y": 1}, -1),
            ]
        )
        out = remove_redundant(conj)
        assert equivalent(conj, out)
        assert len(out.constraints) <= len(conj.constraints)


class TestGist:
    def test_paper_semantics(self):
        # gist P given Q: (gist P given Q) ∧ Q  ≡  P ∧ Q
        p = Conjunct([geq({"x": 1}, -2), geq({"y": 1}, -3)])
        q = Conjunct([geq({"x": 1}, -5)])  # x >= 5 already known
        g = gist(p, q)
        assert geq({"x": 1}, -2) not in g.constraints  # implied by q
        assert geq({"y": 1}, -3) in g.constraints
        assert equivalent(g.merge(q), p.merge(q))

    def test_gist_true(self):
        p = Conjunct([geq({"x": 1})])
        g = gist(p, p)
        assert g.is_trivial_true()

    def test_gist_infeasible_combination(self):
        p = Conjunct([geq({"x": 1}, -5)])
        q = Conjunct([geq({"x": -1}, 3)])  # x <= 3 contradicts x >= 5
        g = gist(p, q)
        from repro.omega.satisfiability import satisfiable

        assert not satisfiable(g)

    def test_gist_keeps_strides(self):
        p = Conjunct.true().add_stride(2, Affine.var("x"))
        q = Conjunct([geq({"x": 1})])
        g = gist(p, q)
        assert len(g.eqs()) == 1  # the stride survives

    def test_gist_with_stride_context(self):
        # knowing 4 | x, the constraint 2 | x is uninteresting
        p = Conjunct.true().add_stride(2, Affine.var("x"))
        q = Conjunct.true().add_stride(4, Affine.var("x"))
        g = gist(p, q)
        assert equivalent(g.merge(q), p.merge(q))


class TestInfeasibleCanonicalization:
    """remove_redundant and gist agree on the canonical FALSE conjunct.

    Regression: remove_redundant used to hand an infeasible conjunct
    back unchanged, while gist canonicalized it to ``-1 >= 0`` --
    callers comparing the two (or switching between them) saw two
    different spellings of FALSE.
    """

    def test_normalize_detectable_infeasibility(self):
        # x >= 5 and x <= 3: normalize itself sees the empty interval
        conj = Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)])
        out = remove_redundant(conj)
        assert out == Conjunct.false()

    def test_deep_infeasibility(self):
        # x >= 1, y >= 1, x + y <= 1: every pair is consistent, only
        # the complete integer test sees the contradiction
        conj = Conjunct(
            [geq({"x": 1}, -1), geq({"y": 1}, -1), geq({"x": -1, "y": -1}, 1)]
        )
        assert conj.normalize() is not None  # normalize can't tell
        out = remove_redundant(conj)
        assert out == Conjunct.false()

    def test_matches_gist_canonical_false(self):
        conj = Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)])
        assert remove_redundant(conj) == gist(conj, Conjunct.true())

    def test_infeasible_with_context(self):
        # conj alone is fine; the context contradicts it
        conj = Conjunct([geq({"x": 1}, -5)])
        context = Conjunct([geq({"x": -1}, 3)])
        assert remove_redundant(conj, context) == Conjunct.false()

    def test_keep_nonredundant_infeasible(self):
        from repro.omega.redundancy import keep_nonredundant

        kept = keep_nonredundant(
            [geq({"x": 1}, -5), geq({"x": -1}, 3), geq({"y": 1})]
        )
        assert kept == list(Conjunct.false().constraints)

    def test_feasible_unchanged_by_the_fix(self):
        conj = Conjunct([geq({"x": 1}, -10), geq({"x": 1}, -5)])
        out = remove_redundant(conj)
        assert list(out.constraints) == [geq({"x": 1}, -10)]
