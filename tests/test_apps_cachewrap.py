"""Generalized (wrapping / unaligned) cache mappings tests."""

import pytest

from repro.apps import ArrayRef, Loop, LoopNest, Statement
from repro.apps.cachewrap import (
    cache_lines_worst_alignment,
    cache_lines_wrapped,
)


def small_nest(n_rows):
    return LoopNest(
        [Loop("i", 1, n_rows), Loop("j", 1, 3)],
        [Statement(refs=[ArrayRef("a", ["i", "j"])])],
    )


def brute_lines(n_rows, cols, rows_extent, line, align):
    touched = {
        (i, j) for i in range(1, n_rows + 1) for j in range(1, cols + 1)
    }
    return len(
        {
            ((i - 1) + (j - 1) * rows_extent + align) // line
            for i, j in touched
        }
    )


class TestWrapped:
    def test_matches_brute_force(self):
        r = cache_lines_wrapped(small_nest(5), "a", line_size=4, rows=5)
        assert r.evaluate({}) == brute_lines(5, 3, 5, 4, 0)

    def test_wrapping_differs_from_simple_mapping(self):
        # rows=5, line=4: lines cross column boundaries, so the wrapped
        # count (ceil(15/4) = 4) is lower than the per-column mapping
        # (2 lines per column x 3 columns = 6).
        r = cache_lines_wrapped(small_nest(5), "a", line_size=4, rows=5)
        assert r.evaluate({}) == 4

    def test_alignment_shifts_count(self):
        for align in range(4):
            r = cache_lines_wrapped(
                small_nest(5), "a", line_size=4, rows=5, alignment=align
            )
            assert r.evaluate({}) == brute_lines(5, 3, 5, 4, align)

    def test_larger_rows_padding(self):
        # rows extent larger than the touched region: gaps between
        # columns, more lines
        r = cache_lines_wrapped(small_nest(5), "a", line_size=4, rows=8)
        assert r.evaluate({}) == brute_lines(5, 3, 8, 4, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cache_lines_wrapped(small_nest(3), "a", line_size=0, rows=3)
        with pytest.raises(ValueError):
            cache_lines_wrapped(small_nest(3), "a", line_size=4, rows=3, alignment=7)
        nest1d = LoopNest(
            [Loop("i", 1, 5)], [Statement(refs=[ArrayRef("a", ["i"])])]
        )
        with pytest.raises(ValueError):
            cache_lines_wrapped(nest1d, "a", line_size=4, rows=3)


class TestWorstAlignment:
    def test_bound_is_max(self):
        align, worst = cache_lines_worst_alignment(
            small_nest(5), "a", line_size=4, rows=5
        )
        per_align = [brute_lines(5, 3, 5, 4, a) for a in range(4)]
        assert worst == max(per_align)
        assert brute_lines(5, 3, 5, 4, align) == worst

    def test_worst_at_least_aligned(self):
        _, worst = cache_lines_worst_alignment(
            small_nest(5), "a", line_size=4, rows=5
        )
        aligned = cache_lines_wrapped(
            small_nest(5), "a", line_size=4, rows=5
        ).evaluate({})
        assert worst >= aligned
