"""Polynomial arithmetic and structure tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.qpoly import ModAtom, Polynomial

envs = st.fixed_dictionaries(
    {"x": st.integers(-8, 8), "y": st.integers(-8, 8), "n": st.integers(-8, 8)}
)


def random_poly():
    x, y, n = (Polynomial.variable(v) for v in "xyn")
    return st.sampled_from(
        [
            x * x + 2 * y - 3,
            (x + y) ** 2,
            x * y * n - Fraction(1, 2) * x,
            Polynomial.constant(7),
            Polynomial.zero,
            x ** 3 - y ** 3,
        ]
    )


class TestBasics:
    def test_zero_and_one(self):
        assert Polynomial.zero.is_zero()
        assert Polynomial.one.constant_value() == 1

    def test_constant_value_nonconstant_raises(self):
        with pytest.raises(ValueError):
            Polynomial.variable("x").constant_value()

    def test_equality_ignores_zero_coeffs(self):
        x = Polynomial.variable("x")
        assert x - x == Polynomial.zero

    def test_from_affine(self):
        p = Polynomial.from_affine({"i": 2, "j": -1}, 3)
        assert p.evaluate({"i": 5, "j": 1}) == 12

    def test_fraction_coefficients(self):
        p = Polynomial.variable("x") * Fraction(1, 3)
        assert p.evaluate({"x": 2}) == Fraction(2, 3)

    def test_immutability(self):
        p = Polynomial.variable("x")
        with pytest.raises(AttributeError):
            p.terms = {}


class TestArithmetic:
    @given(random_poly(), random_poly(), envs)
    @settings(max_examples=60)
    def test_add_homomorphic(self, p, q, env):
        assert (p + q).evaluate(env) == p.evaluate(env) + q.evaluate(env)

    @given(random_poly(), random_poly(), envs)
    @settings(max_examples=60)
    def test_mul_homomorphic(self, p, q, env):
        assert (p * q).evaluate(env) == p.evaluate(env) * q.evaluate(env)

    @given(random_poly(), envs)
    @settings(max_examples=40)
    def test_neg_sub(self, p, env):
        assert (p - p).is_zero()
        assert (-p).evaluate(env) == -p.evaluate(env)

    @given(random_poly(), st.integers(0, 4), envs)
    @settings(max_examples=40)
    def test_pow(self, p, k, env):
        assert (p ** k).evaluate(env) == p.evaluate(env) ** k

    def test_pow_negative_raises(self):
        with pytest.raises(ValueError):
            Polynomial.variable("x") ** -1

    def test_scalar_div(self):
        p = Polynomial.variable("x") / 4
        assert p.evaluate({"x": 2}) == Fraction(1, 2)


class TestStructure:
    def test_degree(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x ** 3 * y + y ** 2
        assert p.degree_in("x") == 3
        assert p.degree_in("y") == 2
        assert p.total_degree() == 4

    def test_coefficients_in(self):
        x, n = Polynomial.variable("x"), Polynomial.variable("n")
        p = 3 * x ** 2 + n * x - 5
        by = p.coefficients_in("x")
        assert by[2].constant_value() == 3
        assert by[1] == n
        assert by[0].constant_value() == -5

    def test_coefficients_in_rejects_mod_capture(self):
        p = Polynomial.atom(ModAtom({"x": 1}, 0, 2))
        with pytest.raises(ValueError):
            p.coefficients_in("x")

    def test_substitute(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x ** 2 + 1
        q = p.substitute("x", y - 1)
        assert q == y ** 2 - 2 * y + 2

    def test_substitute_into_mod_atom(self):
        p = Polynomial.atom(ModAtom({"x": 1}, 0, 4))
        q = p.substitute("x", Polynomial.from_affine({"y": 2}, 1))
        for y in range(-6, 6):
            assert q.evaluate({"y": y}) == (2 * y + 1) % 4

    def test_substitute_nonaffine_into_mod_raises(self):
        p = Polynomial.atom(ModAtom({"x": 1}, 0, 4))
        with pytest.raises(ValueError):
            p.substitute("x", Polynomial.variable("y") ** 2)

    def test_variables_includes_mod_atoms(self):
        p = Polynomial.atom(ModAtom({"n": 1}, 0, 2)) + Polynomial.variable("m")
        assert set(p.variables()) == {"n", "m"}

    def test_rename(self):
        p = Polynomial.variable("x") * Polynomial.atom(ModAtom({"x": 1}, 0, 2))
        q = p.rename({"x": "t"})
        for t in range(-4, 4):
            assert q.evaluate({"t": t}) == t * (t % 2)

    def test_as_integer_affine(self):
        p = Polynomial.from_affine({"i": 2}, -1)
        assert p.as_integer_affine() == ({"i": 2}, -1)

    def test_as_integer_affine_rejects_quadratic(self):
        with pytest.raises(ValueError):
            (Polynomial.variable("i") ** 2).as_integer_affine()

    def test_as_integer_affine_rejects_fractions(self):
        with pytest.raises(ValueError):
            (Polynomial.variable("i") / 2).as_integer_affine()


class TestDisplay:
    def test_str_sorted_by_degree(self):
        x = Polynomial.variable("x")
        assert str(x ** 2 - x) == "x**2 - x"

    def test_str_zero(self):
        assert str(Polynomial.zero) == "0"

    def test_str_mod_atom(self):
        p = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        assert "mod 2" in str(p)
