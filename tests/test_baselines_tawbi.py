"""Tawbi baseline tests (§6 Example 1)."""

import pytest

from repro.baselines import tawbi_count, tawbi_sum
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse


def clause(text):
    (c,) = to_dnf(parse(text))
    return c


class TestExample1:
    TEXT = "1 <= i <= n and 1 <= j <= i and j <= k <= m"

    def test_piece_count_matches_paper(self):
        """The paper: Tawbi's splitting yields 3 pieces where the free
        elimination order needs only 2."""
        _, pieces = tawbi_count(clause(self.TEXT), ["k", "j", "i"])
        assert pieces == 3
        ours = count(self.TEXT, ["i", "j", "k"])
        assert len(ours.terms) == 2

    def test_result_correct(self):
        r, _ = tawbi_count(clause(self.TEXT), ["k", "j", "i"])
        for n in range(0, 5):
            for m in range(0, 6):
                want = sum(
                    1
                    for i in range(1, n + 1)
                    for j in range(1, i + 1)
                    for k in range(j, m + 1)
                )
                assert r.evaluate({"n": n, "m": m}) == want

    def test_agrees_with_engine(self):
        tw, _ = tawbi_count(clause(self.TEXT), ["k", "j", "i"])
        ours = count(self.TEXT, ["i", "j", "k"])
        for n in range(0, 5):
            for m in range(0, 6):
                env = {"n": n, "m": m}
                assert tw.evaluate(env) == ours.evaluate(env)


class TestMechanics:
    def test_simple_rectangle(self):
        r, pieces = tawbi_count(clause("1 <= i <= n and 1 <= j <= m"), ["j", "i"])
        assert pieces == 1
        assert r.evaluate({"n": 3, "m": 4}) == 12

    def test_polynomial_summand(self):
        r, _ = tawbi_sum(clause("1 <= i <= n"), ["i"], "i")
        for n in range(0, 8):
            assert r.evaluate({"n": n}) == n * (n + 1) // 2

    def test_order_sensitivity(self):
        # summing i before j forces a split that the other order avoids
        text = "1 <= i <= n and i <= j <= n"
        _, pieces_ij = tawbi_count(clause(text), ["j", "i"])
        _, pieces_ji = tawbi_count(clause(text), ["i", "j"])
        assert pieces_ij == 1  # j's bounds are single: no split
        assert pieces_ji >= 1

    def test_unit_coefficient_restriction(self):
        with pytest.raises(ValueError):
            tawbi_count(clause("1 <= 2*i <= n"), ["i"])

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            tawbi_count(clause("1 <= i"), ["i"])
