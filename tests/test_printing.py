"""Display / round-trip tests: printed forms re-parse to equivalents."""

import pytest

from repro.core import count
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.presburger.parser import parse
from repro.presburger.simplify import formulas_equivalent


class TestAffineDisplay:
    CASES = [
        (Affine({"x": 1}), "x"),
        (Affine({"x": -1}), "-x"),
        (Affine({"x": 2, "y": -3}, 1), "2*x - 3*y + 1"),
        (Affine({}, -7), "-7"),
        (Affine({}, 0), "0"),
    ]

    @pytest.mark.parametrize("affine,text", CASES, ids=[c[1] for c in CASES])
    def test_str(self, affine, text):
        assert str(affine) == text


class TestConjunctDisplay:
    def test_true(self):
        assert str(Conjunct.true()) == "TRUE"

    def test_plain(self):
        c = Conjunct([Constraint.geq(Affine({"x": 1}, -1))])
        assert str(c) == "x - 1 >= 0"

    def test_stride_pretty(self):
        c = Conjunct.true().add_stride(3, Affine({"x": 1}, 2))
        assert "3 | (x + 2)" in str(c)

    def test_hidden_wildcards_shown(self):
        c = Conjunct(
            [
                Constraint.geq(Affine({"w": 1, "x": 1})),
                Constraint.geq(Affine({"w": -1, "x": 1})),
            ],
            ["w"],
        )
        assert str(c).startswith("exists w")


class TestResultDisplay:
    def test_unconditional_term(self):
        r = count("1 <= i <= 10", ["i"])
        assert str(r) == "(Σ : 10)"

    def test_guarded_term(self):
        r = count("1 <= i <= n", ["i"])
        assert str(r) == "(Σ : n - 1 >= 0 : n)"


class TestGuardRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "1 <= i <= n",
            "1 <= i <= n and 2 | i",
            "1 <= i and 3*i <= n",
        ],
    )
    def test_guard_parses_back(self, text):
        """Printed guards use the same syntax the parser accepts."""
        r = count(text, ["i"]).simplified()
        for term in r.terms:
            printed = str(term.guard)
            if printed == "TRUE" or printed.startswith("exists"):
                continue
            reparsed = parse(printed)
            for n in range(0, 12):
                assert reparsed.evaluate({"n": n}) == term.guard.is_satisfied(
                    {"n": n}
                )


class TestFormulaDisplay:
    def test_connectives(self):
        f = parse("1 <= x and (x <= 5 or x = 9)")
        text = str(f)
        assert "and" in text and "or" in text
        g = parse(text.replace("(", " ( ").replace(")", " ) "))
        assert formulas_equivalent(f, g)
