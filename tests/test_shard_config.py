"""Shard keyspace ownership: hash-prefix partition and config knobs."""

import hashlib
import random

import pytest

from repro.shard.config import (
    DEFAULT_PREFIX_BITS,
    MAX_PREFIX_BITS,
    ShardConfig,
    ShardSlice,
    shard_of,
)


def _random_hashes(n, seed=0):
    rng = random.Random(seed)
    return [
        hashlib.sha256(b"%d" % rng.randrange(10**12)).hexdigest()
        for _ in range(n)
    ]


class TestShardOf:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7, 16])
    def test_partition_is_total_and_disjoint(self, count):
        """Every key is owned by exactly one shard: slices are a
        partition of the keyspace by construction."""
        slices = [
            ShardSlice(DEFAULT_PREFIX_BITS, count, i) for i in range(count)
        ]
        for key in _random_hashes(500):
            owners = [s.index for s in slices if s.owns(key)]
            assert owners == [shard_of(key, count)]

    def test_ownership_agrees_between_router_and_slice(self):
        for key in _random_hashes(200, seed=1):
            for count in (2, 4, 5):
                s = ShardSlice(DEFAULT_PREFIX_BITS, count, 0)
                assert s.owner(key) == shard_of(key, count)

    def test_spread_is_roughly_even(self):
        """16 prefix bits over 4 shards: no shard gets everything."""
        counts = [0, 0, 0, 0]
        for key in _random_hashes(2000, seed=2):
            counts[shard_of(key, 4)] += 1
        assert min(counts) > 300  # ~500 expected per shard

    def test_single_shard_owns_everything(self):
        s = ShardSlice(DEFAULT_PREFIX_BITS, 1, 0)
        assert all(s.owns(k) for k in _random_hashes(50, seed=3))

    def test_prefix_bits_bounds(self):
        key = _random_hashes(1)[0]
        assert shard_of(key, 2, bits=1) in (0, 1)
        assert shard_of(key, 2, bits=MAX_PREFIX_BITS) in (0, 1)
        with pytest.raises(ValueError):
            shard_of(key, 2, bits=0)
        with pytest.raises(ValueError):
            shard_of(key, 2, bits=MAX_PREFIX_BITS + 1)
        with pytest.raises(ValueError):
            shard_of(key, 0)


class TestShardSlice:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSlice(16, 0, 0)
        with pytest.raises(ValueError):
            ShardSlice(16, 4, 4)
        with pytest.raises(ValueError):
            ShardSlice(16, 4, -1)
        with pytest.raises(ValueError):
            ShardSlice(0, 4, 0)


class TestShardConfig:
    def test_defaults(self):
        config = ShardConfig()
        assert config.shards == 4
        assert config.prefix_bits == DEFAULT_PREFIX_BITS
        assert config.replica is True
        assert config.queue_limit == 256

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_N", "8")
        monkeypatch.setenv("REPRO_SHARD_BITS", "12")
        monkeypatch.setenv("REPRO_SHARD_REPLICA", "off")
        monkeypatch.setenv("REPRO_SHARD_QUEUE", "32")
        config = ShardConfig.from_env()
        assert config.shards == 8
        assert config.prefix_bits == 12
        assert config.replica is False
        assert config.queue_limit == 32

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_N", "8")
        assert ShardConfig.from_env(shards=2).shards == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(shards=0)
        with pytest.raises(ValueError):
            ShardConfig(prefix_bits=0)
        with pytest.raises(ValueError):
            ShardConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ShardConfig(replica_limit=0)

    def test_slice_for(self):
        config = ShardConfig(shards=3, prefix_bits=10)
        s = config.slice_for(2)
        assert (s.bits, s.count, s.index) == (10, 3, 2)


class TestServeConfigSharding:
    """The daemon side: REPRO_SHARD_INDEX is the opt-in."""

    def test_index_requires_count(self):
        from repro.serve.daemon import ServeConfig

        with pytest.raises(ValueError):
            ServeConfig(shard_index=0)
        with pytest.raises(ValueError):
            ServeConfig(shard_index=3, shard_count=3)

    def test_stray_shard_n_does_not_slice_a_standalone_daemon(
        self, monkeypatch
    ):
        from repro.serve.daemon import ServeConfig

        monkeypatch.setenv("REPRO_SHARD_N", "4")
        monkeypatch.delenv("REPRO_SHARD_INDEX", raising=False)
        config = ServeConfig.from_env()
        assert config.shard_index is None
        assert config.shard_slice() is None

    def test_supervisor_environment_slices_the_daemon(self, monkeypatch):
        from repro.serve.daemon import ServeConfig

        monkeypatch.setenv("REPRO_SHARD_INDEX", "1")
        monkeypatch.setenv("REPRO_SHARD_N", "4")
        monkeypatch.setenv("REPRO_SHARD_BITS", "16")
        s = ServeConfig.from_env().shard_slice()
        assert (s.bits, s.count, s.index) == (16, 4, 1)
        for key in _random_hashes(100, seed=4):
            assert s.owns(key) == (shard_of(key, 4) == 1)
