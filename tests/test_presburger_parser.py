"""Formula parser tests."""

import pytest

from repro.presburger.parser import ParseError, parse, parse_expr


class TestChains:
    def test_simple_bound(self):
        f = parse("1 <= i <= 10")
        assert {i for i in range(-5, 20) if f.evaluate({"i": i})} == set(
            range(1, 11)
        )

    def test_strict(self):
        f = parse("0 < i < 4")
        assert {i for i in range(-5, 10) if f.evaluate({"i": i})} == {1, 2, 3}

    def test_mixed_chain(self):
        f = parse("1 <= i < j <= 5")
        sols = {
            (i, j)
            for i in range(0, 7)
            for j in range(0, 7)
            if f.evaluate({"i": i, "j": j})
        }
        assert sols == {(i, j) for i in range(1, 5) for j in range(i + 1, 6)}

    def test_equality(self):
        f = parse("x = 2*y + 1")
        assert f.evaluate({"x": 5, "y": 2})
        assert not f.evaluate({"x": 4, "y": 2})

    def test_not_equal(self):
        f = parse("x != 3")
        assert f.evaluate({"x": 2}) and not f.evaluate({"x": 3})

    def test_greater(self):
        f = parse("x >= 3 and y > x")
        assert f.evaluate({"x": 3, "y": 4})
        assert not f.evaluate({"x": 3, "y": 3})


class TestConnectives:
    def test_precedence_and_binds_tighter(self):
        f = parse("x = 1 and x = 2 or x = 3")
        assert f.evaluate({"x": 3})
        assert not f.evaluate({"x": 1})

    def test_not(self):
        f = parse("not x = 3")
        assert f.evaluate({"x": 2})

    def test_parenthesized_formula(self):
        f = parse("(x = 1 or x = 2) and x != 1")
        assert f.evaluate({"x": 2}) and not f.evaluate({"x": 1})

    def test_true_false(self):
        assert parse("true").evaluate({})
        assert not parse("false").evaluate({})


class TestQuantifiers:
    def test_exists(self):
        f = parse("exists a: x = 2*a and 0 <= a <= 3")
        assert {x for x in range(-2, 10) if f.evaluate({"x": x})} == {0, 2, 4, 6}

    def test_exists_multi(self):
        f = parse("exists a, b: x = 2*a + 3*b and 0 <= a <= 1 and 0 <= b <= 1")
        assert {x for x in range(-1, 8) if f.evaluate({"x": x})} == {0, 2, 3, 5}

    def test_forall(self):
        # all t in 0..3 satisfy x >= t  <=>  x >= 3
        f = parse("forall t: not (0 <= t <= 3) or x >= t")
        assert {x for x in range(-2, 6) if f.evaluate({"x": x})} == {3, 4, 5}

    def test_body_extends_right(self):
        f = parse("exists a: x = 2*a and 0 <= a <= 4")
        assert sorted(f.free_variables()) == ["x"]


class TestNonlinear:
    def test_floor(self):
        f = parse("floor(x/3) = 2")
        assert {x for x in range(0, 12) if f.evaluate({"x": x})} == {6, 7, 8}

    def test_ceil(self):
        f = parse("ceil(x/3) = 2")
        assert {x for x in range(0, 12) if f.evaluate({"x": x})} == {4, 5, 6}

    def test_mod(self):
        f = parse("x mod 4 = 1")
        assert {x for x in range(-4, 10) if f.evaluate({"x": x})} == {-3, 1, 5, 9}

    def test_mod_of_expression(self):
        f = parse("(2*x + 1) mod 3 = 0")
        assert {x for x in range(0, 10) if f.evaluate({"x": x})} == {1, 4, 7}

    def test_divides(self):
        f = parse("3 divides (x + 1)")
        assert {x for x in range(0, 10) if f.evaluate({"x": x})} == {2, 5, 8}

    def test_pipe_divides(self):
        f = parse("3 | x + 1")
        assert f.evaluate({"x": 2}) and not f.evaluate({"x": 3})

    def test_floor_in_equality_with_vars(self):
        # the paper's HPF mapping: l = t - 4p - 32*floor(t/32)
        f = parse("c = floor(t/32)")
        assert f.evaluate({"t": 65, "c": 2})
        assert not f.evaluate({"t": 65, "c": 1})


class TestErrors:
    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("x #")

    def test_missing_comparison(self):
        with pytest.raises(ParseError):
            parse("x + 1")

    def test_nonlinear_product(self):
        with pytest.raises(ParseError):
            parse("x*y = 3")

    def test_nonconstant_stride(self):
        with pytest.raises(ParseError):
            parse("n | x")

    def test_keyword_as_variable(self):
        with pytest.raises(ParseError):
            parse("exists and: true")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse("x = 1 y")

    def test_constant_times_expr_ok(self):
        f = parse("2*(x + 1) = 6")
        assert f.evaluate({"x": 2})
