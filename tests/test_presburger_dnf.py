"""DNF conversion tests, negation handling included (§2.5)."""

import pytest

from conftest import assert_clauses_cover, enumerate_formula
from repro.presburger.dnf import DnfExplosion, to_dnf
from repro.presburger.parser import parse


CASES = [
    ("1 <= x <= 5", ("x",)),
    ("1 <= x <= 5 or 8 <= x <= 9", ("x",)),
    ("not (2 <= x <= 6) and 0 <= x <= 8", ("x",)),
    ("x != 3 and 1 <= x <= 5", ("x",)),
    ("not (2 | x) and 0 <= x <= 8", ("x",)),
    ("not (3 | x + 1) and 0 <= x <= 8", ("x",)),
    ("exists a: x = 3*a and 0 <= a <= 2", ("x",)),
    ("not (exists a: x = 3*a) and 0 <= x <= 8", ("x",)),
    ("forall t: not (1 <= t <= 3) or x >= t", ("x",)),
    (
        "1 <= x <= 6 and 1 <= y <= 6 and not (x = y)",
        ("x", "y"),
    ),
    (
        "not (exists a: x = 2*a and y = a + 1) and 0 <= x <= 6 and 0 <= y <= 6",
        ("x", "y"),
    ),
    ("x mod 2 = 0 or x mod 3 = 0", ("x",)),
]


@pytest.mark.parametrize("text,variables", CASES, ids=[c[0][:40] for c in CASES])
def test_dnf_preserves_semantics(text, variables):
    f = parse(text)
    want = enumerate_formula(f, variables, box=8)
    assert_clauses_cover(to_dnf(f), want, variables, box=8)


class TestStructure:
    def test_true(self):
        clauses = to_dnf(parse("true"))
        assert len(clauses) == 1 and clauses[0].is_trivial_true()

    def test_false(self):
        assert to_dnf(parse("false")) == []

    def test_contradiction_pruned(self):
        clauses = to_dnf(parse("x >= 5 and x <= 3"))
        assert clauses == []

    def test_negated_equality_two_clauses(self):
        clauses = to_dnf(parse("not x = 0"))
        assert len(clauses) == 2

    def test_negated_stride_fanout(self):
        clauses = to_dnf(parse("not (5 | x)"))
        assert len(clauses) == 4  # residues 1..4

    def test_exists_becomes_wildcards(self):
        (clause,) = to_dnf(parse("exists a: x = 2*a and a >= 0"))
        assert len(clause.wildcards) == 1

    def test_distribution(self):
        f = parse("(x = 1 or x = 2) and (y = 1 or y = 2)")
        assert len(to_dnf(f)) == 4

    def test_explosion_guard(self):
        # 15 binary disjunctions over distinct variables give 2^15
        # mutually satisfiable clauses -- nothing to prune, so the
        # product must hit the cap.
        text = " and ".join(
            "(x%d = 0 or x%d = 1)" % (i, i) for i in range(15)
        )
        with pytest.raises(DnfExplosion):
            to_dnf(parse(text))

    def test_infeasible_product_pruned_not_exploded(self):
        # The same shape over a single variable is almost entirely
        # contradictory; incremental pruning must collapse it instead
        # of raising.  (x=0 or x=1) and (x=1 or x=2) and ... leaves no
        # consistent assignment after three conjuncts.
        text = " and ".join(
            "(x = %d or x = %d)" % (i, i + 1) for i in range(15)
        )
        assert to_dnf(parse(text)) == []
