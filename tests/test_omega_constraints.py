"""Constraint type tests."""

import pytest

from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint, fresh_var


class TestConstruction:
    def test_geq(self):
        c = Constraint.geq(Affine({"x": 1}, -3))
        assert c.is_geq() and not c.is_eq()

    def test_leq_builder(self):
        c = Constraint.leq(Affine.var("x"), Affine.const_expr(5))
        assert c.satisfied({"x": 5}) and not c.satisfied({"x": 6})

    def test_equal_builder(self):
        c = Constraint.equal(Affine.var("x"), Affine({"y": 2}))
        assert c.satisfied({"x": 4, "y": 2})

    def test_eq_sign_canonical(self):
        a = Constraint.eq(Affine({"x": 1, "y": -2}, 3))
        b = Constraint.eq(Affine({"x": -1, "y": 2}, -3))
        assert a == b

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Constraint(Affine(), "leq")

    def test_immutable(self):
        c = Constraint.geq(Affine.var("x"))
        with pytest.raises(AttributeError):
            c.kind = EQ


class TestQueries:
    def test_trivial_true(self):
        assert Constraint.geq(Affine.const_expr(0)).is_trivial_true()
        assert Constraint.eq(Affine.const_expr(0)).is_trivial_true()

    def test_trivial_false(self):
        assert Constraint.geq(Affine.const_expr(-1)).is_trivial_false()
        assert Constraint.eq(Affine.const_expr(2)).is_trivial_false()

    def test_nontrivial(self):
        c = Constraint.geq(Affine.var("x"))
        assert not c.is_trivial_true() and not c.is_trivial_false()

    def test_coeff(self):
        c = Constraint.geq(Affine({"x": 3, "y": -1}))
        assert c.coeff("x") == 3 and c.coeff("z") == 0


class TestTransforms:
    def test_negate_geq(self):
        c = Constraint.geq(Affine({"x": 1}, -3))  # x >= 3
        n = c.negate_geq()  # x <= 2
        for x in range(0, 7):
            assert c.satisfied({"x": x}) != n.satisfied({"x": x})

    def test_negate_eq_rejected(self):
        with pytest.raises(ValueError):
            Constraint.eq(Affine.var("x")).negate_geq()

    def test_substitute(self):
        c = Constraint.geq(Affine({"x": 2}, -4))  # 2x >= 4
        s = c.substitute("x", Affine({"y": 1}, 1))  # x := y + 1
        assert s.satisfied({"y": 1}) and not s.satisfied({"y": 0})

    def test_rename(self):
        c = Constraint.geq(Affine.var("x"))
        assert c.rename({"x": "t"}).uses("t")


class TestFreshVar:
    def test_unique(self):
        names = {fresh_var() for _ in range(100)}
        assert len(names) == 100

    def test_prefix(self):
        assert fresh_var("zz").startswith("_zz")
