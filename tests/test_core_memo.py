"""The answer memo: hits, renames, freshness, bounds, persistence.

The memo is a process-global cache threaded through every node of the
counting recursion, so these tests drive it through the public
``count`` / ``sum_poly`` API and observe it through the stats
counters -- the same way a user would diagnose it.
"""

import json
import os

from hypothesis import given, settings, strategies as st

from repro.core import count, stats, sum_poly
from repro.core.memo import (
    answer_memo_enabled,
    answer_memo_info,
    clear_answer_memo,
    set_answer_memo,
)
from repro.omega.constraints import reset_fresh_counter
from repro.presburger.parser import parse
from repro.presburger.dnf import to_dnf

SPLINTERY = "1 <= i <= n and 1 <= j <= m and 3*j <= 2*i + n and 2 | (i + j)"


def _snap(name):
    return stats.stats_snapshot()[name]


class TestWarmHits:
    def test_second_count_is_answered_from_the_memo(self):
        with stats.collecting_stats() as counters:
            count(SPLINTERY, ["i", "j"])
            cold_sat = counters["sat_calls"]
            assert counters["answer_memo_hits"] == 0
            assert counters["answer_memo_misses"] > 0
            stats.reset_stats()
            count(SPLINTERY, ["i", "j"])
            assert counters["answer_memo_hits"] >= 1
            assert counters["answer_memo_misses"] == 0
            assert counters["sat_calls"] == 0 < cold_sat

    def test_warm_answer_is_byte_identical_and_correct(self):
        reset_fresh_counter()
        cold = sum_poly(SPLINTERY, ["i", "j"], "i*j")
        reset_fresh_counter()
        warm = sum_poly(SPLINTERY, ["i", "j"], "i*j")
        assert json.dumps(cold.to_json(), sort_keys=True) == json.dumps(
            warm.to_json(), sort_keys=True
        )
        env = {"n": 17, "m": 11}
        assert cold.evaluate(env) == warm.evaluate(env) == 4721

    def test_memo_off_matches_memo_on(self):
        reset_fresh_counter()
        on = count(SPLINTERY, ["i", "j"])
        previous = set_answer_memo(0)
        try:
            assert not answer_memo_enabled()
            reset_fresh_counter()
            off = count(SPLINTERY, ["i", "j"])
        finally:
            set_answer_memo(previous)
        assert json.dumps(on.to_json(), sort_keys=True) == json.dumps(
            off.to_json(), sort_keys=True
        )

    def test_count_image_via_smith_reuses_across_calls(self):
        from repro.core.projected import (
            ProjectedClause,
            count_image,
            count_image_via_smith,
        )
        from repro.intarith import IntMatrix
        from repro.omega.affine import Affine
        from repro.omega.constraints import Constraint

        clause = ProjectedClause(
            ["a", "b"],
            [
                Constraint.geq(Affine.var("a") - 1),
                Constraint.geq(Affine.var("n") - Affine.var("a")),
                Constraint.geq(Affine.var("b")),
                Constraint.geq(Affine.var("n") - Affine.var("b")),
            ],
            IntMatrix([[2, 0], [0, 3]]),
            [Affine.const_expr(0), Affine.const_expr(1)],
        )
        with stats.collecting_stats() as counters:
            first = count_image_via_smith(clause)
            stats.reset_stats()
            second = count_image_via_smith(clause)
            # Fresh β̂ names notwithstanding, the repeat run is answered
            # entirely from the memo (the canonical key renames bound
            # variables away) without touching the solver.
            assert counters["answer_memo_hits"] >= 1
            assert counters["sat_calls"] == 0
        env = {"n": 12}
        assert first.evaluate(env) == second.evaluate(env)
        assert count_image(clause).evaluate(env) == first.evaluate(env)


class TestRenameOnHit:
    def test_hit_across_free_symbol_names(self):
        with stats.collecting_stats() as counters:
            a = count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
            stats.reset_stats()
            b = count("1 <= p <= N and 1 <= q <= p", ["p", "q"])
            assert counters["answer_memo_hits"] >= 1
            assert counters["answer_memo_renames"] >= 1
        assert a.symbols() == ["n"]
        assert b.symbols() == ["N"]
        for v in range(0, 9):
            assert a.evaluate({"n": v}) == b.evaluate({"N": v})

    def test_distinct_free_symbols_do_not_collide(self):
        # n vs a literal constant in the same slot: different keys.
        a = count("1 <= i <= n", ["i"])
        b = count("1 <= i <= 7", ["i"])
        assert a.evaluate({"n": 7}) == b.evaluate({}) == 7


class TestFreshness:
    def test_mutating_a_returned_answer_does_not_poison_the_memo(self):
        first = count(SPLINTERY, ["i", "j"])
        want = first.evaluate({"n": 17, "m": 11})
        # Polynomial.terms is an exposed mutable dict; vandalize every
        # value of the answer we were handed.
        for term in first.terms:
            for key in list(term.value.terms):
                term.value.terms[key] = term.value.terms[key] * 1000 + 1
        assert first.evaluate({"n": 17, "m": 11}) != want
        second = count(SPLINTERY, ["i", "j"])  # served from the memo
        assert second.evaluate({"n": 17, "m": 11}) == want

    def test_hits_return_independent_objects(self):
        a = count(SPLINTERY, ["i", "j"])
        b = count(SPLINTERY, ["i", "j"])
        for ta, tb in zip(a.terms, b.terms):
            assert ta.value is not tb.value
            assert ta.value.terms is not tb.value.terms


class TestBounds:
    def test_capacity_evicts_lru(self):
        previous = set_answer_memo(3)
        try:
            with stats.collecting_stats() as counters:
                for k in range(1, 7):
                    count("1 <= i <= %d*n" % k, ["i"])
                assert counters["answer_memo_evictions"] > 0
            info = answer_memo_info()
            assert info["limit"] == 3
            assert info["size"] <= 3
        finally:
            set_answer_memo(previous)

    def test_zero_capacity_disables_and_clears(self):
        count(SPLINTERY, ["i", "j"])
        assert answer_memo_info()["size"] > 0
        previous = set_answer_memo(0)
        try:
            assert answer_memo_info()["size"] == 0
            with stats.collecting_stats() as counters:
                count(SPLINTERY, ["i", "j"])
                assert counters["answer_memo_hits"] == 0
                assert counters["answer_memo_misses"] == 0
            assert answer_memo_info()["size"] == 0
        finally:
            set_answer_memo(previous)

    def test_clear_answer_memo_forces_recomputation(self):
        count(SPLINTERY, ["i", "j"])
        clear_answer_memo()
        with stats.collecting_stats() as counters:
            count(SPLINTERY, ["i", "j"])
            assert counters["answer_memo_hits"] == 0
            assert counters["sat_calls"] > 0


class TestPieceMemo:
    def test_eliminate_exact_decomposition_is_memoized(self):
        from repro.omega.eliminate import eliminate_exact

        clause = to_dnf(
            parse("exists k: 1 <= i <= n and 2*i <= 3*k and 5*k <= 4*n")
        )[0]
        (wild,) = clause.wildcards
        with stats.collecting_stats() as counters:
            first = eliminate_exact(clause, wild)
            stats.reset_stats()
            second = eliminate_exact(clause, wild)
            assert counters["answer_memo_hits"] >= 1
            assert counters["fm_eliminations"] == 0
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert str(a) == str(b)


class TestPersistence:
    def test_roots_survive_a_memory_clear_via_the_disk_layer(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_ANSWER_DB", os.path.join(str(tmp_path), "answers.sqlite")
        )
        reset_fresh_counter()
        cold = count(SPLINTERY, ["i", "j"])
        clear_answer_memo()  # memory gone; sqlite root layer remains
        reset_fresh_counter()
        with stats.collecting_stats() as counters:
            warm = count(SPLINTERY, ["i", "j"])
            assert counters["answer_memo_hits"] >= 1
            assert counters["sat_calls"] == 0
        assert json.dumps(cold.to_json(), sort_keys=True) == json.dumps(
            warm.to_json(), sort_keys=True
        )

    def test_unusable_db_path_degrades_to_no_persistence(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_ANSWER_DB",
            os.path.join(str(tmp_path), "missing", "nested", "db.sqlite3"),
        )
        # A directory that cannot be created must not break counting.
        monkeypatch.setattr(os, "makedirs", _raise_oserror)
        assert count("1 <= i <= n", ["i"]).evaluate({"n": 5}) == 5


def _raise_oserror(*args, **kwargs):
    raise OSError("read-only filesystem (simulated)")


_NAMES = ("n", "m", "N", "len", "stride")


class TestRenamePermutationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        perm=st.permutations(_NAMES),
        points=st.lists(
            st.tuples(st.integers(-4, 18), st.integers(-4, 18)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_cached_answer_renamed_back_evaluates_like_cold(
        self, perm, points
    ):
        """The free-symbol rename path is semantics-preserving.

        Count a template cold under one pair of symbol names, then
        count alpha-variants under permuted names: every variant is
        answered from the memo through the recorded free-symbol
        permutation, and must evaluate (value and int-vs-Fraction
        type) exactly like a cold recomputation at random points.
        """
        a, b = perm[0], perm[1]
        template = (
            "1 <= i <= %s and 1 <= j <= %s and 3*j <= 2*i + %s and 2 | (i + j)"
        )
        # Seed the memo under one fixed vocabulary...
        clear_answer_memo()
        reset_fresh_counter()
        count(template % ("seedA", "seedB", "seedA"), ["i", "j"])
        # ...then count the permuted-name variant: answered from the
        # memo through the free-symbol rename.
        with stats.collecting_stats() as counters:
            warm = count(template % (a, b, a), ["i", "j"])
            assert counters["answer_memo_hits"] >= 1
            assert counters["answer_memo_renames"] >= 1

        previous = set_answer_memo(0)
        try:
            reset_fresh_counter()
            cold = count(template % (a, b, a), ["i", "j"])
        finally:
            set_answer_memo(previous)

        for na, nb in points:
            got = warm.evaluate({a: na, b: nb})
            want = cold.evaluate({a: na, b: nb})
            assert got == want
            assert type(got) is type(want)
