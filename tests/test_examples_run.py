"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_shows_paper_answers():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    out = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    ).stdout
    assert "3/4*n**2 + 1/2*n - 1/4*((n) mod 2)" in out  # Example 6
    assert "338350" in out  # Σ i² for n=100


def test_cache_analysis_matches_paper():
    script = next(p for p in EXAMPLES if p.name == "cache_analysis.py")
    out = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    ).stdout
    assert "249996" in out
    assert "16000" in out
