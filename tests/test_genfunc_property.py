"""Property tests for the generating-function backend (ci profile).

Three invariants over randomly generated *boxed* formulas (every
count variable carries explicit finite bounds, so the whole family is
in the genfunc fragment):

* ``count(backend="genfunc")`` equals the recursion backend equals a
  brute-force enumeration oracle;
* the genfunc answer is byte-identical across two runs after the
  deterministic wildcard relabel (cold caches, reset fresh-name
  counter) -- determinism, not just value equality;
* on formulas with a free symbolic constant the router's fallback
  output is byte-identical to calling the recursion directly.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_count
from repro.core import count
from repro.core.memo import clear_answer_memo
from repro.genfunc import genfunc_count_value
from repro.omega.constraints import reset_fresh_counter
from repro.omega.satisfiability import clear_sat_cache
from repro.presburger.parser import parse


def reset_engine_state():
    """Cold-run the engine: no memoized answers, no cached sat
    verdicts, wildcard names restarted from zero."""
    clear_sat_cache()
    clear_answer_memo()
    reset_fresh_counter()

BOX = 12


@st.composite
def boxed_atoms(draw, variables):
    """One atom over ``variables``: inequality, stride, or equality."""
    kind = draw(st.sampled_from(["le", "mod", "eq"]))
    coeffs = [draw(st.integers(-4, 4)) for _ in variables]
    const = draw(st.integers(-10, 10))
    lhs = " + ".join(
        "%d*%s" % (c, v) for c, v in zip(coeffs, variables)
    ) or "0"
    if kind == "le":
        return "%s <= %d" % (lhs, const)
    if kind == "eq":
        return "%s == %d" % (lhs, const)
    mod = draw(st.integers(2, 7))
    rem = draw(st.integers(0, mod - 1))
    return "(%s) mod %d == %d" % (lhs, mod, rem)


@st.composite
def boxed_formulas(draw):
    """A concrete formula where every variable is explicitly boxed."""
    nvars = draw(st.integers(1, 2))
    variables = ["i", "j"][:nvars]
    box = " and ".join(
        "-%d <= %s <= %d" % (BOX, v, BOX) for v in variables
    )
    natoms = draw(st.integers(0, 3))
    atoms = [draw(boxed_atoms(variables)) for _ in range(natoms)]
    joiner = draw(st.sampled_from([" and ", " or "]))
    if atoms:
        body = joiner.join(
            ("not (%s)" % a) if draw(st.booleans()) else a for a in atoms
        )
        text = "%s and (%s)" % (box, body)
    else:
        text = box
    return text, variables


@given(boxed_formulas())
@settings(max_examples=40, deadline=None)
def test_genfunc_matches_recursion_and_brute_force(case):
    text, variables = case
    formula = parse(text)
    want = brute_count(formula, variables, {}, box=BOX + 1)
    routed = count(formula, variables, backend="genfunc").evaluate({})
    direct = genfunc_count_value(formula, variables)
    rec = count(formula, variables).evaluate({})
    assert routed == direct == rec == want


@given(boxed_formulas())
@settings(max_examples=25, deadline=None)
def test_genfunc_answer_is_deterministic(case):
    """Byte-identical serialization across cold runs: the wildcard
    relabel in the answer pipeline must make run order invisible."""
    text, variables = case
    runs = []
    for _ in range(2):
        reset_engine_state()
        answer = count(text, variables, backend="genfunc")
        runs.append(json.dumps(answer.to_json(), sort_keys=True))
    assert runs[0] == runs[1]


@given(boxed_formulas(), st.integers(0, 6))
@settings(max_examples=20, deadline=None)
def test_symbolic_fallback_is_byte_identical(case, shift):
    """Adding a free symbolic bound pushes the formula out of the
    fragment; the router must then defer to the recursion exactly."""
    text, variables = case
    symbolic = "%s and %s <= n + %d" % (text, variables[0], shift)
    reset_engine_state()
    rec = count(symbolic, variables)
    reset_engine_state()
    routed = count(symbolic, variables, backend="genfunc")
    assert json.dumps(routed.to_json(), sort_keys=True) == json.dumps(
        rec.to_json(), sort_keys=True
    )
