"""Formula AST construction and semantics tests."""

import pytest

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Not,
    Or,
    StrideAtom,
    TrueF,
)


def x_ge(k):
    return Atom.geq(Affine.var("x") - k)


class TestSmartConstructors:
    def test_and_flattens(self):
        f = And.of(x_ge(1), And.of(x_ge(2), x_ge(3)))
        assert len(f.children) == 3

    def test_and_true_unit(self):
        assert And.of(TrueF, x_ge(1)) is not TrueF
        assert And.of(TrueF, TrueF) is TrueF

    def test_and_false_absorbs(self):
        assert And.of(x_ge(1), FalseF) is FalseF

    def test_or_false_unit(self):
        assert Or.of(FalseF, FalseF) is FalseF

    def test_or_true_absorbs(self):
        assert Or.of(x_ge(1), TrueF) is TrueF

    def test_single_child_unwrapped(self):
        assert And.of(x_ge(1)) is not None
        assert not isinstance(And.of(x_ge(1)), And)

    def test_operators(self):
        f = x_ge(1) & ~x_ge(5) | x_ge(10)
        assert isinstance(f, Or)


class TestFreeVariables:
    def test_atom(self):
        assert Atom.equal(Affine.var("x"), Affine.var("y")).free_variables() == (
            "x",
            "y",
        )

    def test_quantifier_binds(self):
        f = Exists(["y"], Atom.equal(Affine.var("x"), Affine.var("y")))
        assert f.free_variables() == ("x",)

    def test_stride_atom(self):
        assert StrideAtom(2, Affine.var("n")).free_variables() == ("n",)

    def test_quantifier_needs_vars(self):
        with pytest.raises(ValueError):
            Exists([], TrueF)


class TestSubstitution:
    def test_atom_substitution_folds(self):
        f = Atom.geq(Affine.var("x"))
        assert f.substitute_values({"x": 1}) is TrueF
        assert f.substitute_values({"x": -1}) is FalseF

    def test_stride_substitution_folds(self):
        f = StrideAtom(3, Affine.var("x"))
        assert f.substitute_values({"x": 6}) is TrueF
        assert f.substitute_values({"x": 7}) is FalseF

    def test_capture_avoidance(self):
        # substituting y := x into (∃x: y <= x) must not capture
        inner = Atom.leq(Affine.var("y"), Affine.var("x"))
        f = Exists(["x"], inner)
        g = f.substitute_affine({"y": Affine.var("x")})
        # for any x there is a bound var above it: still always true
        assert g.evaluate({"x": 5})
        assert g.evaluate({"x": -100})

    def test_bound_var_not_substituted(self):
        f = Exists(["y"], Atom.equal(Affine.var("y"), Affine.var("x")))
        g = f.substitute_values({"y": 99})  # y is bound: no-op modulo rename
        assert g.evaluate({"x": 3})


class TestEvaluate:
    def test_forall_via_exists(self):
        f = Forall(["t"], Or.of(Not(Atom.geq(Affine.var("t"))), x_ge(0)))
        assert f.evaluate({"x": 0})

    def test_unassigned_raises(self):
        with pytest.raises(ValueError):
            x_ge(0).evaluate({})

    def test_nested_quantifiers(self):
        # ∃a ∀t∈[0,2]: x + a >= t   always true (choose a large)
        f = Exists(
            ["a"],
            Forall(
                ["t"],
                Or.of(
                    Not(
                        And.of(
                            Atom.geq(Affine.var("t")),
                            Atom.geq(2 - Affine.var("t")),
                        )
                    ),
                    Atom.geq(Affine.var("x") + Affine.var("a") - Affine.var("t")),
                ),
            ),
        )
        assert f.evaluate({"x": -50})
