"""Unit tests for the elementary integer helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.intarith import (
    ceil_div,
    ext_gcd,
    floor_div,
    gcd_list,
    lcm_list,
    sym_mod,
)


class TestFloorCeilDiv:
    def test_floor_positive(self):
        assert floor_div(7, 3) == 2

    def test_floor_negative_numerator(self):
        assert floor_div(-7, 3) == -3

    def test_floor_negative_denominator(self):
        assert floor_div(7, -3) == -3

    def test_floor_both_negative(self):
        assert floor_div(-7, -3) == 2

    def test_ceil_positive(self):
        assert ceil_div(7, 3) == 3

    def test_ceil_negative(self):
        assert ceil_div(-7, 3) == -2

    def test_exact_division(self):
        assert floor_div(9, 3) == ceil_div(9, 3) == 3

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)

    @given(st.integers(-100, 100), st.integers(-20, 20).filter(bool))
    def test_floor_matches_math(self, a, b):
        assert floor_div(a, b) == math.floor(a / b)

    @given(st.integers(-100, 100), st.integers(-20, 20).filter(bool))
    def test_ceil_matches_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestExtGcd:
    def test_simple(self):
        g, x, y = ext_gcd(12, 18)
        assert g == 6 and 12 * x + 18 * y == 6

    def test_coprime(self):
        g, x, y = ext_gcd(7, 5)
        assert g == 1 and 7 * x + 5 * y == 1

    def test_zero(self):
        g, x, y = ext_gcd(0, 5)
        assert g == 5 and 5 * y == 5

    @given(st.integers(-200, 200), st.integers(-200, 200))
    def test_bezout_identity(self, a, b):
        g, x, y = ext_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g
        assert g >= 0


class TestGcdLcmList:
    def test_gcd_empty(self):
        assert gcd_list([]) == 0

    def test_gcd_mixed_signs(self):
        assert gcd_list([-4, 6, 10]) == 2

    def test_gcd_short_circuit(self):
        assert gcd_list([3, 5, 1000000]) == 1

    def test_lcm_empty(self):
        assert lcm_list([]) == 1

    def test_lcm_basic(self):
        assert lcm_list([4, 6]) == 12

    def test_lcm_with_zero(self):
        assert lcm_list([4, 0, 6]) == 0

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=5))
    def test_lcm_divisible_by_all(self, values):
        m = lcm_list(values)
        assert all(m % v == 0 for v in values)


class TestSymMod:
    def test_in_range(self):
        for a in range(-20, 20):
            r = sym_mod(a, 5)
            assert -5 < 2 * r <= 5
            assert (a - r) % 5 == 0

    def test_half_point_positive(self):
        # r must be in (-b/2, b/2]: for b=4, sym_mod(2) == 2 not -2
        assert sym_mod(2, 4) == 2
        assert sym_mod(6, 4) == 2
        assert sym_mod(3, 4) == -1

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            sym_mod(3, 0)

    @given(st.integers(-1000, 1000), st.integers(1, 50))
    def test_congruence_and_range(self, a, b):
        r = sym_mod(a, b)
        assert (a - r) % b == 0
        assert -b < 2 * r <= b
