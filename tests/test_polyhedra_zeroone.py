"""0-1 programming summarization tests (§5.1.1)."""

from conftest import enumerate_formula
from repro.polyhedra.zeroone import zero_one_formula, zero_one_summary

FIVE_POINT = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
FOUR_POINT = [(-1, 0), (1, 0), (0, -1), (0, 1)]
NINE_POINT = [(a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)]


class TestZeroOneFormula:
    def test_exactly_the_points(self):
        f = zero_one_formula(FIVE_POINT, ["x", "y"])
        assert enumerate_formula(f, ("x", "y"), 3) == set(FIVE_POINT)

    def test_four_point(self):
        f = zero_one_formula(FOUR_POINT, ["x", "y"])
        assert enumerate_formula(f, ("x", "y"), 3) == set(FOUR_POINT)

    def test_nine_point(self):
        f = zero_one_formula(NINE_POINT, ["x", "y"])
        assert enumerate_formula(f, ("x", "y"), 3) == set(NINE_POINT)

    def test_single_point(self):
        f = zero_one_formula([(2, 5)], ["x", "y"])
        assert enumerate_formula(f, ("x", "y"), 6) == {(2, 5)}


class TestZeroOneSummary:
    def test_five_point_simplifies(self):
        """The paper: "the Omega test can summarize 4-point and 5-point
        stencils specified this way"."""
        clauses, ok = zero_one_summary(FIVE_POINT, ["x", "y"])
        assert ok, "expected a compact summary, got %d clauses" % len(clauses)
        got = set()
        for c in clauses:
            for x in range(-3, 4):
                for y in range(-3, 4):
                    if c.is_satisfied({"x": x, "y": y}):
                        got.add((x, y))
        assert got == set(FIVE_POINT)

    def test_semantics_always_preserved(self):
        for pts in (FOUR_POINT, FIVE_POINT):
            clauses, _ = zero_one_summary(pts, ["x", "y"])
            got = set()
            for c in clauses:
                for x in range(-3, 4):
                    for y in range(-3, 4):
                        if c.is_satisfied({"x": x, "y": y}):
                            got.add((x, y))
            assert got == set(pts), pts
