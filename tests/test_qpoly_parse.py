"""Polynomial summand parser tests."""

import pytest

from repro.qpoly.parse import PolynomialParseError, parse_polynomial


class TestParse:
    def test_affine(self):
        p = parse_polynomial("2*i - 3*j + 7")
        assert p.evaluate({"i": 1, "j": 2}) == 3

    def test_product(self):
        p = parse_polynomial("i*i + i*j")
        assert p.evaluate({"i": 2, "j": 3}) == 10

    def test_power(self):
        p = parse_polynomial("i**3 - 1")
        assert p.evaluate({"i": 2}) == 7

    def test_parentheses(self):
        p = parse_polynomial("(i + j)**2")
        assert p.evaluate({"i": 1, "j": 2}) == 9

    def test_unary_minus(self):
        p = parse_polynomial("-i * -j")
        assert p.evaluate({"i": 2, "j": 3}) == 6

    def test_constant(self):
        assert parse_polynomial("42").constant_value() == 42

    def test_precedence(self):
        p = parse_polynomial("1 + 2*i**2")
        assert p.evaluate({"i": 3}) == 19

    def test_trailing_garbage(self):
        with pytest.raises(PolynomialParseError):
            parse_polynomial("i + )")

    def test_bad_exponent(self):
        with pytest.raises(PolynomialParseError):
            parse_polynomial("i**j")

    def test_unclosed_paren(self):
        with pytest.raises(PolynomialParseError):
            parse_polynomial("(i + j")

    def test_empty(self):
        with pytest.raises(PolynomialParseError):
            parse_polynomial("")
