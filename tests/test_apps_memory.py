"""Memory-location and cache-line counting tests (§6 Ex. 4 and 5)."""

import pytest

from repro.apps import (
    ArrayRef,
    Loop,
    LoopNest,
    Statement,
    cache_lines_touched,
    memory_locations_touched,
)

FIVE_POINT_REFS = [
    ArrayRef("a", ["i", "j"]),
    ArrayRef("a", ["i - 1", "j"]),
    ArrayRef("a", ["i + 1", "j"]),
    ArrayRef("a", ["i", "j - 1"]),
    ArrayRef("a", ["i", "j + 1"]),
]


def sor_nest(upper="N - 1"):
    return LoopNest(
        [Loop("i", 2, upper), Loop("j", 2, upper)],
        [Statement(flops=6, refs=FIVE_POINT_REFS)],
    )


def brute_locations(N):
    return {
        (i + di, j + dj)
        for i in range(2, N)
        for j in range(2, N)
        for di, dj in ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))
    }


class TestExample4:
    def test_count_25(self):
        nest = LoopNest(
            [Loop("i", 1, 8), Loop("j", 1, 5)],
            [Statement(refs=[ArrayRef("a", ["6*i + 9*j - 7"])])],
        )
        r = memory_locations_touched(nest, "a")
        assert r.evaluate({}) == 25  # the paper's Example 4

    def test_unreferenced_array(self):
        nest = LoopNest([Loop("i", 1, 5)], [Statement()])
        with pytest.raises(ValueError):
            memory_locations_touched(nest, "a")


class TestExample5SOR:
    def test_symbolic_locations(self):
        r = memory_locations_touched(sor_nest(), "a")
        for N in range(1, 10):
            assert r.evaluate(N=N) == len(brute_locations(N)), N

    def test_numeric_500(self):
        r = memory_locations_touched(sor_nest(), "a")
        assert r.evaluate(N=500) == 249996  # the paper's figure 2

    def test_union_route_agrees(self):
        hull = memory_locations_touched(sor_nest(), "a", use_hull=True)
        union = memory_locations_touched(sor_nest(), "a", use_hull=False)
        for N in (3, 5, 10, 50):
            assert hull.evaluate(N=N) == union.evaluate(N=N)

    def test_cache_lines_numeric(self):
        r = cache_lines_touched(sor_nest(), "a", line_size=16)
        assert r.evaluate(N=500) == 16000  # the paper's figure

    def test_cache_lines_symbolic(self):
        r = cache_lines_touched(sor_nest(), "a", line_size=16)
        for N in (2, 3, 4, 16, 17, 18, 33, 100):
            want = len(
                {((x - 1) // 16, y) for x, y in brute_locations(N)}
            )
            assert r.evaluate(N=N) == want, N

    def test_cache_lines_other_line_size(self):
        r = cache_lines_touched(sor_nest(), "a", line_size=4)
        for N in (3, 4, 5, 9, 12):
            want = len({((x - 1) // 4, y) for x, y in brute_locations(N)})
            assert r.evaluate(N=N) == want, N


class TestMultipleStatements:
    def test_disjoint_refs_in_two_statements(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [
                Statement(refs=[ArrayRef("a", ["i"])]),
                Statement(refs=[ArrayRef("a", ["i + n"])]),
            ],
        )
        r = memory_locations_touched(nest, "a")
        for n in range(0, 8):
            want = len(
                {i for i in range(1, n + 1)}
                | {i + n for i in range(1, n + 1)}
            )
            assert r.evaluate(n=n) == want

    def test_overlapping_refs_counted_once(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [
                Statement(refs=[ArrayRef("a", ["i"])]),
                Statement(refs=[ArrayRef("a", ["i + 1"])]),
            ],
        )
        r = memory_locations_touched(nest, "a")
        for n in range(0, 8):
            want = len(set(range(1, n + 1)) | set(range(2, n + 2)))
            assert r.evaluate(n=n) == want
