"""Cross-validation: independent algorithms must agree.

The engine (disjoint DNF), inclusion-exclusion [FST91], Tawbi's fixed
order and the HP min/max calculus are four largely independent
implementations of the same mathematics; on their common domain they
must produce identical numbers.  Randomized agreement here catches
bugs a single-oracle test could miss.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import hp_nested_sum, inclusion_exclusion_count, tawbi_count
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse

intervals = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 6)),
    min_size=2,
    max_size=4,
)


@given(intervals, st.integers(0, 6))
@settings(max_examples=30, deadline=None)
def test_engine_vs_inclusion_exclusion(spec, n):
    text = " or ".join(
        "(%d <= x <= %d + n)" % (lo, lo + ln) for lo, ln in spec
    )
    clauses = to_dnf(parse(text))
    engine = count(clauses, ["x"])
    ie, _ = inclusion_exclusion_count(clauses, ["x"])
    assert engine.evaluate(n=n) == ie.evaluate(n=n)


@st.composite
def convex_nests(draw):
    """Random 3-var unit-coefficient convex problems."""
    lines = ["1 <= i <= n"]
    lo = draw(st.integers(1, 3))
    lines.append("%d <= j <= i" % lo)
    upper = draw(st.sampled_from(["j <= k <= m", "1 <= k <= j", "j <= k <= n"]))
    lines.append(upper)
    return " and ".join(lines)


@given(convex_nests(), st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_engine_vs_tawbi(text, n, m):
    (clause,) = to_dnf(parse(text))
    engine = count(text, ["i", "j", "k"])
    tawbi, _ = tawbi_count(clause, ["k", "j", "i"])
    env = {"n": n, "m": m}
    assert engine.evaluate(env) == tawbi.evaluate(env)


@given(convex_nests(), st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_engine_vs_hp(text, n, m):
    (clause,) = to_dnf(parse(text))
    engine = count(text, ["i", "j", "k"])
    hp = hp_nested_sum(clause, ["k", "j", "i"], 1)
    env = {"n": n, "m": m}
    assert engine.evaluate(env) == hp.evaluate(env)


@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(0, 10),
)
@settings(max_examples=25, deadline=None)
def test_strategies_agree_where_exact(a, b, n):
    """EXACT (symbolic mod) and SPLINTER must agree everywhere."""
    from repro.core import Strategy, SumOptions

    text = "n <= %d*i and %d*i <= 2*n + 3" % (b, a)
    exact = count(text, ["i"], SumOptions(strategy=Strategy.EXACT))
    splinter = count(text, ["i"], SumOptions(strategy=Strategy.SPLINTER))
    assert exact.evaluate(n=n) == splinter.evaluate(n=n)
