"""Tests for SymbolicSum convenience helpers and total_footprint."""

from repro.apps import ArrayRef, Loop, LoopNest, Statement
from repro.apps.memory import total_footprint
from repro.core import count


class TestAsFunction:
    def test_callable(self):
        f = count("1 <= i <= n", ["i"]).as_function()
        assert f(n=7) == 7
        assert f(n=-1) == 0


class TestTable:
    def test_series(self):
        r = count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
        table = r.table("n", range(0, 5))
        assert table == [(0, 0), (1, 1), (2, 3), (3, 6), (4, 10)]

    def test_fixed_symbols(self):
        r = count("1 <= i <= n and i <= m", ["i"])
        table = r.table("n", [1, 5, 10], m=3)
        assert table == [(1, 1), (5, 3), (10, 3)]


class TestTotalFootprint:
    def test_two_arrays(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [
                Statement(
                    refs=[ArrayRef("a", ["i"]), ArrayRef("b", ["2*i"])]
                )
            ],
        )
        # a touches n cells, b touches n cells (distinct addresses of b)
        assert total_footprint(nest, n=10) == 20

    def test_shared_array_counted_once(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [
                Statement(refs=[ArrayRef("a", ["i"])]),
                Statement(refs=[ArrayRef("a", ["i + 1"])]),
            ],
        )
        assert total_footprint(nest, n=10) == 11
