"""Load balance and balanced chunk scheduling tests ([TF92], [HP93a])."""

import pytest

from repro.apps import (
    Loop,
    LoopNest,
    Statement,
    balanced_chunks,
    flops_by_outer_iteration,
    is_load_balanced,
)


def triangular():
    return LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "i")], [Statement(flops=2)]
    )


def rectangular():
    return LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "m")], [Statement(flops=3)]
    )


class TestPerIteration:
    def test_triangular_work(self):
        per = flops_by_outer_iteration(triangular())
        for i in range(1, 6):
            assert per.evaluate(i=i, n=10) == 2 * i

    def test_rectangular_work(self):
        per = flops_by_outer_iteration(rectangular())
        assert per.evaluate(i=3, n=10, m=7) == 21


class TestIsBalanced:
    def test_rectangular_balanced(self):
        balanced, _ = is_load_balanced(rectangular())
        assert balanced

    def test_triangular_unbalanced(self):
        balanced, per = is_load_balanced(triangular())
        assert not balanced

    def test_guarded_unbalanced(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "m")],
            [Statement(flops=1, guard="j <= i")],
        )
        balanced, _ = is_load_balanced(nest)
        assert not balanced


class TestBalancedChunks:
    def test_chunks_partition(self):
        chunks = balanced_chunks(triangular(), 4, {"n": 100})
        assert chunks[0][0] == 1 and chunks[-1][1] == 100
        for (a, b, _), (c, d, _) in zip(chunks, chunks[1:]):
            assert c == b + 1
        assert sum(c[2] for c in chunks) == 100 * 101  # 2 * n(n+1)/2

    def test_chunks_near_equal(self):
        chunks = balanced_chunks(triangular(), 4, {"n": 100})
        total = sum(c[2] for c in chunks)
        for _, _, flops in chunks:
            # within one outer iteration's work of the ideal quarter
            assert abs(flops - total / 4) <= 2 * 100

    def test_triangle_cuts_shrink(self):
        # balanced chunk scheduling gives the first processor the most
        # iterations (they are cheap) -- the [HP93a] motivation
        chunks = balanced_chunks(triangular(), 4, {"n": 100})
        sizes = [b - a + 1 for a, b, _ in chunks]
        assert sizes[0] > sizes[-1]

    def test_rectangular_even_split(self):
        chunks = balanced_chunks(rectangular(), 4, {"n": 80, "m": 5})
        sizes = [b - a + 1 for a, b, _ in chunks]
        assert sizes == [20, 20, 20, 20]

    def test_empty_loop(self):
        chunks = balanced_chunks(triangular(), 2, {"n": 0})
        assert all(c[2] == 0 for c in chunks)
