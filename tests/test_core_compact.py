"""Compaction tests: piecewise answers collapse to tail + points."""

import pytest

from repro.core import Strategy, SumOptions, count, sum_poly
from repro.core.compact import compact_single_symbol
from repro.qpoly import Polynomial


class TestCompactExamples:
    def test_sor_collapses_to_paper_form(self):
        """The uniform-set route yields several exact pieces; compaction
        recovers the paper's single (N >= 3 : N² - 4)."""
        from repro.apps import (
            ArrayRef,
            Loop,
            LoopNest,
            Statement,
            memory_locations_touched,
        )

        sor = LoopNest(
            [Loop("i", 2, "N - 1"), Loop("j", 2, "N - 1")],
            [
                Statement(
                    refs=[
                        ArrayRef("a", ["i", "j"]),
                        ArrayRef("a", ["i - 1", "j"]),
                        ArrayRef("a", ["i + 1", "j"]),
                        ArrayRef("a", ["i", "j - 1"]),
                        ArrayRef("a", ["i", "j + 1"]),
                    ]
                )
            ],
        )
        c = memory_locations_touched(sor, "a").compacted()
        assert len(c.terms) == 1
        (term,) = c.terms
        n = Polynomial.variable("N")
        assert term.value == n * n - 4
        assert term.guard.is_satisfied({"N": 3})
        assert not term.guard.is_satisfied({"N": 2})

    def test_example2_tail_plus_point(self):
        r = count(
            "1 <= i <= n and 3 <= j <= i and j <= k <= 5", ["i", "j", "k"]
        ).compacted()
        for n in range(0, 12):
            want = sum(
                1
                for i in range(1, n + 1)
                for j in range(3, i + 1)
                for k in range(j, 6)
            )
            assert r.evaluate(n=n) == want
        # one linear tail (6n - 16 for n >= 4) + the n = 3 point
        assert len(r.terms) == 2

    def test_quasi_polynomial_preserved(self):
        r = count("1 <= i and 1 <= j <= n and 2*i <= 3*j", ["i", "j"])
        c = r.compacted()
        assert len(c.terms) == 1
        for n in range(0, 15):
            assert c.evaluate(n=n) == r.evaluate(n=n)

    def test_strided_answer(self):
        r = count("3 | i and 0 <= i <= n", ["i"]).compacted()
        for n in range(0, 20):
            assert r.evaluate(n=n) == n // 3 + 1

    def test_union_compacts(self):
        r = count("(1 <= x <= n) or (3 <= x <= n + 2)", ["x"]).compacted()
        for n in range(0, 10):
            want = len(set(range(1, n + 1)) | set(range(3, n + 3)))
            assert r.evaluate(n=n) == want


class TestPreconditions:
    def test_two_symbols_unchanged(self):
        r = count("1 <= i <= n and i <= m", ["i"])
        assert r.compacted().terms == compact_single_symbol(
            r.simplified()
        ).terms

    def test_empty_sum(self):
        r = count("1 <= i <= 0", ["i"])
        assert r.compacted().terms == ()

    def test_constant_answer(self):
        r = count("1 <= i <= 10", ["i"]).compacted()
        assert r.evaluate({}) == 10

    def test_approximate_tag_preserved(self):
        opts = SumOptions(strategy=Strategy.UPPER)
        r = count("1 <= i and 7*i <= n", ["i"], opts).compacted()
        assert r.exactness == "upper"

    def test_explicit_symbol_mismatch(self):
        r = count("1 <= i <= n", ["i"])
        out = compact_single_symbol(r, symbol="zz")
        assert out is r


class TestExactness:
    @pytest.mark.parametrize("a,b", [(2, 3), (3, 4), (5, 2)])
    def test_random_rational_regions(self, a, b):
        text = "n <= %d*i and %d*i <= 3*n + 7" % (b, a)
        r = count(text, ["i"])
        c = r.compacted()
        for n in range(0, 40):
            assert c.evaluate(n=n) == r.evaluate(n=n), (a, b, n)

    def test_polynomial_summand(self):
        r = sum_poly("1 <= i <= n and 1 <= j <= i", ["i", "j"], "j")
        c = r.compacted()
        for n in range(0, 10):
            assert c.evaluate(n=n) == r.evaluate(n=n)
