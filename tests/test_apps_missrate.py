"""Cache-effectiveness model tests."""

from fractions import Fraction

from repro.apps import ArrayRef, Loop, LoopNest, Statement
from repro.apps.missrate import estimate_cache_behavior, flush_threshold


def stream(upper="n"):
    return LoopNest(
        [Loop("i", 1, upper)],
        [Statement(flops=1, refs=[ArrayRef("a", ["i"])])],
    )


class TestEstimate:
    def test_fitting_loop_compulsory_only(self):
        est = estimate_cache_behavior(
            stream(), "a", cache_lines=1024, line_size=16, n=1000
        )
        assert not est.flushes_cache
        assert est.lines_touched == 63  # ceil-ish of 1000/16 span
        assert est.estimated_misses == est.lines_touched
        assert est.miss_rate == Fraction(63, 1000)

    def test_flushing_loop(self):
        est = estimate_cache_behavior(
            stream(), "a", cache_lines=8, line_size=16, n=1000
        )
        assert est.flushes_cache
        assert est.estimated_misses >= est.lines_touched

    def test_references_counted(self):
        nest = LoopNest(
            [Loop("i", 1, "n")],
            [Statement(refs=[ArrayRef("a", ["i"]), ArrayRef("a", ["i + 1"])])],
        )
        est = estimate_cache_behavior(
            nest, "a", cache_lines=4096, line_size=16, n=100
        )
        assert est.references == 200

    def test_empty_loop(self):
        est = estimate_cache_behavior(
            stream(), "a", cache_lines=64, line_size=16, n=0
        )
        assert est.references == 0 and est.miss_rate == 0


class TestFlushThreshold:
    def test_threshold_is_monotone(self):
        table = flush_threshold(
            stream(), "a", cache_lines=16, symbol="n",
            search_range=range(50, 500, 50), line_size=16,
        )
        values = [table[k] for k in sorted(table)]
        # once it flushes it keeps flushing as n grows
        assert values == sorted(values)
        assert values[0] is False and values[-1] is True

    def test_2d_example_5_style(self):
        sor = LoopNest(
            [Loop("i", 2, "N - 1"), Loop("j", 2, "N - 1")],
            [Statement(flops=6, refs=[ArrayRef("a", ["i", "j"])])],
        )
        table = flush_threshold(
            sor, "a", cache_lines=2048, symbol="N",
            search_range=[100, 200, 500],
        )
        assert table[100] is False and table[500] is True
