"""Convex-sum engine tests (Section 4.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import brute_count, brute_sum, grid
from repro.core import count, sum_poly
from repro.core.convex import UnboundedSumError, sum_over_conjunct
from repro.core.options import DEFAULT_OPTIONS
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse
from repro.qpoly import Polynomial
from repro.qpoly.parse import parse_polynomial


def exact_check(text, over, z, envs, box=40):
    formula = parse(text)
    zp = parse_polynomial(z) if isinstance(z, str) else Polynomial.constant(z)
    result = sum_poly(formula, over, zp)
    assert result.exactness == "exact"
    for env in envs:
        want = brute_sum(formula, over, zp, env, box)
        got = result.evaluate(env)
        assert got == want, (text, env, got, want)
    return result


class TestRectangular:
    def test_constant_range(self):
        r = count("1 <= i <= 10", ["i"])
        assert r.evaluate({}) == 10

    def test_symbolic_range(self):
        exact_check("1 <= i <= n", ["i"], 1, grid(n=range(-3, 8)))

    def test_two_dims(self):
        exact_check(
            "1 <= i <= n and 1 <= j <= m",
            ["i", "j"],
            1,
            grid(n=range(0, 5), m=range(0, 5)),
        )

    def test_summing_polynomial(self):
        exact_check("1 <= i <= n", ["i"], "i*i", grid(n=range(0, 8)))

    def test_negative_bounds(self):
        exact_check("0 - n <= i <= n", ["i"], "i + n", grid(n=range(0, 6)))


class TestTriangular:
    def test_lower_triangle(self):
        exact_check(
            "1 <= i <= n and 1 <= j <= i", ["i", "j"], 1, grid(n=range(0, 7))
        )

    def test_strict_triangle(self):
        exact_check(
            "1 <= i and i < j and j <= n", ["i", "j"], 1, grid(n=range(0, 7))
        )

    def test_weighted_triangle(self):
        exact_check(
            "1 <= j <= i and i <= n", ["i", "j"], "j", grid(n=range(0, 7))
        )

    def test_three_deep(self):
        exact_check(
            "1 <= i <= n and i <= j <= n and j <= k <= n",
            ["i", "j", "k"],
            1,
            grid(n=range(0, 6)),
            box=8,
        )


class TestMultipleBounds:
    def test_two_uppers(self):
        exact_check(
            "1 <= i <= n and i <= m",
            ["i"],
            1,
            grid(n=range(0, 5), m=range(0, 5)),
        )

    def test_two_lowers(self):
        exact_check(
            "n <= i and m <= i and i <= 10",
            ["i"],
            1,
            grid(n=range(-2, 4), m=range(-2, 4)),
            box=14,
        )

    def test_diamond(self):
        exact_check(
            "1 <= x + y and x + y <= n and 1 <= x - y and x - y <= n",
            ["x", "y"],
            1,
            grid(n=range(0, 7)),
            box=10,
        )


class TestRationalBounds:
    def test_floor_upper(self):
        exact_check("1 <= i and 3*i <= n", ["i"], 1, grid(n=range(-1, 15)))

    def test_floor_upper_sum(self):
        exact_check("1 <= i and 3*i <= n", ["i"], "i", grid(n=range(0, 15)))

    def test_ceil_lower(self):
        exact_check("n <= 2*i and i <= 10", ["i"], 1, grid(n=range(-3, 12)), box=14)

    def test_both_rational(self):
        exact_check(
            "n <= 3*i and 2*i <= m",
            ["i"],
            1,
            grid(n=range(0, 7), m=range(0, 9)),
        )

    def test_rational_inner_bound(self):
        # bound of j depends on i through a coefficient: 2j <= i
        exact_check(
            "1 <= i <= n and 1 <= j and 2*j <= i",
            ["i", "j"],
            1,
            grid(n=range(0, 9)),
        )

    def test_paper_4_2_1(self):
        # (Σ i : 1 <= i <= floor(n/3) : i): §4.2.1's running example
        r = exact_check("1 <= i and 3*i <= n", ["i"], "i", grid(n=range(0, 20)))
        s = r.simplified()
        # one compact quasi-polynomial term with (n mod 3) atoms
        assert len(s.terms) == 1


class TestEqualities:
    def test_determined_variable(self):
        exact_check("i = n and 0 <= n", ["i"], 1, grid(n=range(-2, 4)))

    def test_coupled_pair(self):
        exact_check(
            "i + j = n and 0 <= i <= n and 0 <= j",
            ["i", "j"],
            1,
            grid(n=range(0, 8)),
        )

    def test_scaled_equality(self):
        # 2i = n: one solution when n even, none otherwise
        exact_check("2*i = n and 0 <= i", ["i"], 1, grid(n=range(-2, 10)))

    def test_diophantine(self):
        exact_check(
            "3*i + 5*j = n and 0 <= i <= 20 and 0 <= j <= 20",
            ["i", "j"],
            1,
            grid(n=range(0, 16)),
            box=25,
        )


class TestStrides:
    def test_even_numbers(self):
        exact_check("2 | i and 0 <= i <= n", ["i"], 1, grid(n=range(0, 12)))

    def test_stride_with_offset(self):
        exact_check(
            "3 | i + 1 and 0 <= i <= n", ["i"], 1, grid(n=range(0, 12))
        )

    def test_stride_sum(self):
        exact_check("2 | i and 0 <= i <= n", ["i"], "i", grid(n=range(0, 12)))

    def test_two_strides(self):
        exact_check(
            "2 | i and 3 | i and 0 <= i <= n", ["i"], 1, grid(n=range(0, 20))
        )

    def test_stride_on_symbol(self):
        exact_check(
            "1 <= i <= n and 2 | n", ["i"], 1, grid(n=range(0, 8))
        )


class TestWildcards:
    def test_exists_shaping_region(self):
        exact_check(
            "exists w: w <= i <= w + 1 and 0 <= w <= n",
            ["i"],
            1,
            grid(n=range(0, 7)),
        )

    def test_exists_projection(self):
        exact_check(
            "exists a: i = 3*a and 1 <= a <= n", ["i"], 1, grid(n=range(0, 7)),
            box=25,
        )


class TestErrors:
    def test_unbounded(self):
        with pytest.raises(UnboundedSumError):
            count("i >= 0", ["i"])

    def test_unconstrained(self):
        with pytest.raises(UnboundedSumError):
            count("1 <= j <= 3", ["i", "j"])

    def test_infeasible_is_zero(self):
        r = count("1 <= i <= 0", ["i"])
        assert r.evaluate({}) == 0


@given(
    st.integers(0, 3),
    st.integers(1, 3),
    st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_random_simplex_sums(p, a, b):
    """Σ i^p over a random scaled triangle vs brute force."""
    text = "1 <= i and %d*i <= %d*j and j <= n" % (a, b)
    formula = parse(text)
    z = Polynomial.variable("i") ** p
    result = sum_poly(formula, ["i", "j"], z)
    for n in range(0, 6):
        want = brute_sum(formula, ["i", "j"], z, {"n": n}, box=3 * n + 5)
        assert result.evaluate({"n": n}) == want
