"""Naive CAS summation baseline tests (the paper's introduction)."""

from fractions import Fraction

from repro.baselines import naive_nested_sum
from repro.core import count


class TestNaive:
    def test_mathematica_example(self):
        """The paper: Mathematica reports Σ_{i=1}^{n} Σ_{j=i}^{m} 1
        as n(2m - n + 1)/2, valid only for 1 <= n <= m."""
        p = naive_nested_sum([("i", "1", "n"), ("j", "i", "m")], 1)
        for n in range(1, 6):
            for m in range(n, 8):  # valid region
                assert p.evaluate({"n": n, "m": m}) == Fraction(
                    n * (2 * m - n + 1), 2
                )

    def test_wrong_outside_valid_region(self):
        """1 <= m < n: the correct answer is m(m+1)/2, the naive
        formula disagrees (the paper's point)."""
        p = naive_nested_sum([("i", "1", "n"), ("j", "i", "m")], 1)
        wrong = 0
        for n in range(1, 8):
            for m in range(1, n):
                true = m * (m + 1) // 2
                if p.evaluate({"n": n, "m": m}) != true:
                    wrong += 1
        assert wrong > 0

    def test_engine_correct_everywhere(self):
        r = count("1 <= i <= n and i <= j <= m", ["i", "j"])
        for n in range(0, 8):
            for m in range(0, 8):
                want = sum(1 for i in range(1, n + 1) for j in range(i, m + 1))
                assert r.evaluate(n=n, m=m) == want

    def test_agrees_on_nonempty_rectangles(self):
        p = naive_nested_sum([("i", "1", "n"), ("j", "1", "m")], "i*j")
        for n in range(1, 6):
            for m in range(1, 6):
                want = sum(
                    i * j
                    for i in range(1, n + 1)
                    for j in range(1, m + 1)
                )
                assert p.evaluate({"n": n, "m": m}) == want

    def test_polynomial_summand(self):
        p = naive_nested_sum([("i", "1", "n")], "i**2")
        assert p.evaluate({"n": 4}) == 30
