"""Load generator: corpus building, alpha variants, replay, summaries."""

import asyncio
import json
import random

import pytest

from repro.__main__ import main
from repro.serve.daemon import ServeConfig
from repro.serve.loadgen import (
    DEFAULT_BASE_REQUESTS,
    alpha_variant,
    base_requests,
    build_requests,
    run_inprocess,
    summarize,
)
from repro.service.request import JobRequest


class TestAlphaVariant:
    def test_same_content_hash_different_spelling(self):
        rng = random.Random(7)
        for obj in DEFAULT_BASE_REQUESTS:
            if not obj.get("over"):
                continue
            variant = alpha_variant(obj, rng)
            assert variant["formula"] != obj["formula"]
            assert variant["over"] != obj["over"]
            assert (
                JobRequest.from_json(variant).content_hash()
                == JobRequest.from_json(obj).content_hash()
            )

    def test_no_over_vars_is_identity(self):
        rng = random.Random(0)
        simp = {"kind": "simplify", "formula": "x >= 1"}
        assert alpha_variant(simp, rng) == simp

    def test_poly_is_renamed_consistently(self):
        rng = random.Random(3)
        obj = {
            "kind": "sum",
            "formula": "1 <= i <= n",
            "over": ["i"],
            "poly": "i*i",
        }
        variant = alpha_variant(obj, rng)
        new_var = variant["over"][0]
        assert new_var in variant["poly"]
        assert (
            JobRequest.from_json(variant).content_hash()
            == JobRequest.from_json(obj).content_hash()
        )


class TestBuildRequests:
    def test_cycles_base_with_unique_ids(self):
        base = base_requests()
        reqs = build_requests(base, 20)
        assert len(reqs) == 20
        assert len({r["id"] for r in reqs}) == 20
        assert reqs[0]["formula"] == reqs[len(base)]["formula"]

    def test_rename_mix_is_deterministic_per_seed(self):
        base = base_requests()
        a = build_requests(base, 30, rename_mix=0.5, seed=11)
        b = build_requests(base, 30, rename_mix=0.5, seed=11)
        assert a == b
        c = build_requests(base, 30, rename_mix=0.5, seed=12)
        assert a != c

    def test_jsonl_corpus_file(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": "count", "formula": "1 <= i <= n",
                                 "over": ["i"]}) + "\n")
            fh.write("\n")  # blank lines tolerated
        base = base_requests(str(path))
        assert len(base) == 1
        assert base[0]["id"] == "line1"

    def test_empty_corpus_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError):
            base_requests(str(path))


class TestSummarize:
    def test_exact_percentiles_and_partition(self):
        records = [
            {"id": "a", "ok": True, "tier": "cold", "ms": 100.0},
            {"id": "b", "ok": True, "tier": "warm", "ms": 1.0},
            {"id": "c", "ok": True, "tier": "warm", "ms": 3.0},
            {"id": "d", "ok": False, "tier": "front", "ms": 0.5},
        ]
        summary = summarize(records, wall=2.0, clients=2)
        assert summary["requests"] == 4
        assert summary["ok"] == 3 and summary["errors"] == 1
        assert summary["throughput_rps"] == 2.0
        assert summary["tiers"]["warm"]["count"] == 2
        assert summary["tiers"]["warm"]["p50_ms"] == 3.0
        assert summary["tiers"]["cold"]["max_ms"] == 100.0
        assert "serve" not in summary

    def test_serve_snapshot_is_attached(self):
        summary = summarize([], wall=0.0, clients=1, serve_snapshot={"x": 1})
        assert summary["serve"] == {"x": 1}


class TestRunInprocess:
    def test_second_pass_is_all_warm(self, tmp_path):
        base = base_requests()
        reqs = build_requests(base, len(base), rename_mix=0.0)
        config = ServeConfig(
            cache_path=str(tmp_path / "lg.sqlite"), workers=2
        )
        results = asyncio.run(
            run_inprocess(reqs, clients=4, config=config, passes=2)
        )
        (pass1, _), (pass2, _) = results
        assert pass1["errors"] == 0 and pass2["errors"] == 0
        counters = pass2["serve"]["counters"]
        # Every unique job computed exactly once, in pass 1.
        assert counters["cold_jobs"] == len(base)
        assert "warm" in pass2["tiers"] and "cold" not in pass2["tiers"]
        assert pass2["serve"]["hit_rates"]["warm"] > 0.4

    def test_rename_mix_still_counts_each_job_once(self, tmp_path):
        base = [base_requests()[0]]  # one job, many renamed copies
        reqs = build_requests(base, 12, rename_mix=0.9, seed=5)
        config = ServeConfig(
            cache_path=str(tmp_path / "lg.sqlite"), workers=2
        )
        results = asyncio.run(
            run_inprocess(reqs, clients=6, config=config, passes=1)
        )
        summary, records = results[0]
        assert summary["errors"] == 0
        # All 12 share one content hash: exactly one cold dispatch,
        # everything else warm or coalesced.
        assert summary["serve"]["counters"]["cold_jobs"] == 1
        assert len(records) == 12


class TestCLI:
    def test_loadgen_main_writes_summary_json(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        code = main(
            [
                "loadgen",
                "--requests",
                "8",
                "--clients",
                "2",
                "--cache",
                str(tmp_path / "lg.sqlite"),
                "--json",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["requests"] == 8 and doc["errors"] == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == doc
