"""Bernoulli numbers and Faulhaber polynomials (Section 4.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.intarith.bernoulli import (
    HARDCODED_POWER_SUMS,
    bernoulli,
    faulhaber_coefficients,
    power_sum_value,
)


class TestBernoulli:
    def test_known_values(self):
        assert bernoulli(0) == 1
        assert bernoulli(1) == Fraction(1, 2)  # the +1/2 convention
        assert bernoulli(2) == Fraction(1, 6)
        assert bernoulli(4) == Fraction(-1, 30)
        assert bernoulli(12) == Fraction(-691, 2730)

    def test_odd_vanish(self):
        for n in (3, 5, 7, 9, 11):
            assert bernoulli(n) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bernoulli(-1)


class TestFaulhaber:
    def test_hardcoded_table_matches_general_formula(self):
        # The paper hard-codes p <= 10; our table must equal Faulhaber.
        for p, coeffs in HARDCODED_POWER_SUMS.items():
            assert coeffs == faulhaber_coefficients(p), p

    def test_f0_is_n(self):
        assert faulhaber_coefficients(0) == (Fraction(0), Fraction(1))

    def test_f1_is_triangular(self):
        c = faulhaber_coefficients(1)
        assert c == (Fraction(0), Fraction(1, 2), Fraction(1, 2))

    def test_high_power_beyond_table(self):
        # p = 13 exercises the general path (table stops at 10)
        want = sum(Fraction(i) ** 13 for i in range(1, 8))
        assert power_sum_value(13, 7) == want

    @given(st.integers(0, 8), st.integers(0, 25))
    @settings(max_examples=80)
    def test_matches_direct_sum(self, p, n):
        assert power_sum_value(p, n) == sum(
            Fraction(i) ** p for i in range(1, n + 1)
        )

    @given(st.integers(0, 6), st.integers(-10, 10), st.integers(0, 12))
    @settings(max_examples=80)
    def test_telescoping_identity(self, p, lower, length):
        """F_p(U) - F_p(L-1) equals the direct sum for any L <= U --
        including negative bounds (this is what lets the engine skip
        the four-piece decomposition)."""
        upper = lower + length
        direct = sum(Fraction(i) ** p for i in range(lower, upper + 1))
        tele = power_sum_value(p, upper) - power_sum_value(p, lower - 1)
        assert tele == direct

    def test_f_p_zero_is_zero(self):
        for p in range(8):
            assert power_sum_value(p, 0) == 0
