"""Edge cases across the Presburger layer that earlier files skip."""

import pytest

from conftest import assert_clauses_cover, enumerate_formula
from repro.presburger import parse, simplify, to_disjoint_dnf, to_dnf
from repro.presburger.simplify import formulas_equivalent


class TestDegenerateFormulas:
    def test_tautology(self):
        clauses = to_dnf(parse("x = x"))
        assert len(clauses) == 1 and clauses[0].is_trivial_true()

    def test_contradiction_via_stride(self):
        assert to_disjoint_dnf(parse("2 | x and 2 | x + 1")) == []

    def test_double_negation(self):
        f = parse("not (not (1 <= x <= 3))")
        want = enumerate_formula(f, ("x",), 6)
        assert_clauses_cover(to_dnf(f), want, ("x",), 6)
        assert want == {(1,), (2,), (3,)}

    def test_forall_vacuous(self):
        # ∀t: t != t + 1 is always true
        f = parse("forall t: t != t + 1")
        assert f.evaluate({})

    def test_exists_unsatisfiable_body(self):
        f = parse("exists t: t >= 1 and t <= 0")
        assert to_dnf(f) == []


class TestNestedQuantifiers:
    def test_exists_exists(self):
        f = parse("exists a: exists b: x = 2*a + 3*b and 0 <= a <= 1 and 0 <= b <= 1")
        got = {x for x in range(-1, 8) if f.evaluate({"x": x})}
        assert got == {0, 2, 3, 5}

    def test_exists_under_negation_under_exists(self):
        # x reachable as 2a for a in 1..4 that is NOT a multiple of 3
        f = parse(
            "exists a: x = 2*a and 1 <= a <= 4 and not (exists b: a = 3*b)"
        )
        got = {x for x in range(0, 10) if f.evaluate({"x": x})}
        assert got == {2, 4, 8}

    def test_shadowing_names(self):
        # inner 'a' shadows outer 'a'
        f = parse("exists a: x = a and 1 <= a <= 2 and (exists a: y = a and 5 <= a <= 6)")
        assert f.evaluate({"x": 1, "y": 5})
        assert not f.evaluate({"x": 5, "y": 5})


class TestSimplifyModes:
    def test_non_aggressive_keeps_redundant(self):
        f = parse("x >= 0 and x >= 5")
        lazy = simplify(f, aggressive=False)
        eager = simplify(f, aggressive=True)
        assert len(eager[0].constraints) <= len(lazy[0].constraints)
        assert formulas_equivalent(f, f)

    def test_simplify_equivalence_preserved(self):
        f = parse(
            "(1 <= x <= 10 and not (4 <= x <= 6)) or x = 5"
        )
        out = simplify(f)
        want = enumerate_formula(f, ("x",), 12)
        assert_clauses_cover(out, want, ("x",), 12)


class TestLargeStrides:
    def test_modulus_16(self):
        f = parse("16 | x and 0 <= x <= 64")
        got = enumerate_formula(f, ("x",), 70)
        assert got == {(0,), (16,), (32,), (48,), (64,)}

    def test_negated_large_stride_clause_count(self):
        clauses = to_dnf(parse("not (16 | x)"))
        assert len(clauses) == 15
