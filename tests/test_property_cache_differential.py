"""Differential test: memoization must never change any count.

Randomized small conjuncts are counted three ways -- brute-force
enumeration over a box, the engine with its caches enabled (the
default: satisfiability LRU + per-instance normalize memo), and the
engine with every cache disabled.  All three must agree exactly.
"""

import random

import pytest

from repro.core import count_conjunct
from repro.omega import satisfiability as sat
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, reset_fresh_counter
from repro.omega.problem import Conjunct, set_normalize_memo

BOX = 4  # count variables live in [-BOX, BOX]


def _random_conjunct(rng, variables):
    """Box bounds plus a few random constraints; optional stride."""
    cons = []
    for v in variables:
        cons.append(Constraint.geq(Affine({v: 1}, BOX)))  # v >= -BOX
        cons.append(Constraint.geq(Affine({v: -1}, BOX)))  # v <= BOX
    for _ in range(rng.randint(1, 3)):
        coeffs = {
            v: rng.randint(-3, 3)
            for v in rng.sample(variables, rng.randint(1, len(variables)))
        }
        coeffs = {v: c for v, c in coeffs.items() if c}
        if not coeffs:
            continue
        cons.append(Constraint.geq(Affine(coeffs, rng.randint(-5, 5))))
    conj = Conjunct(cons)
    if rng.random() < 0.4:
        modulus = rng.randint(2, 4)
        v = rng.choice(variables)
        conj = conj.add_stride(
            modulus, Affine({v: 1}, rng.randint(0, modulus - 1))
        )
    return conj


def _brute_force(conj, variables):
    import itertools

    total = 0
    for vals in itertools.product(
        range(-BOX, BOX + 1), repeat=len(variables)
    ):
        if conj.is_satisfied(dict(zip(variables, vals))):
            total += 1
    return total


def _engine_count(conj, variables):
    result = count_conjunct(conj, variables)
    value = result.evaluate({})
    assert result.exactness == "exact"
    return value


@pytest.fixture
def _caches_off():
    """Disable the satisfiability LRU and the normalize memo."""
    previous_limit = sat.sat_cache_info()["limit"]
    previous_memo = set_normalize_memo(False)
    sat.set_sat_cache_limit(0)
    sat.clear_sat_cache()
    yield
    sat.set_sat_cache_limit(previous_limit)
    set_normalize_memo(previous_memo)


def _cases(n_cases, n_vars, seed):
    rng = random.Random(seed)
    variables = ["x", "y", "z"][:n_vars]
    return [(_random_conjunct(rng, variables), variables) for _ in range(n_cases)]


class TestDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_two_variables(self, seed, _caches_off):
        for conj, variables in _cases(4, 2, seed):
            reset_fresh_counter(1000)
            want = _brute_force(conj, variables)
            # caches are OFF (fixture): the reference run
            cold = _engine_count(conj, variables)
            assert cold == want, str(conj)
            # now ON: rebuild the conjunct so no memo state leaks in
            sat.set_sat_cache_limit(200000)
            set_normalize_memo(True)
            try:
                reset_fresh_counter(1000)
                warm_conj = Conjunct(conj.constraints, conj.wildcards)
                warm = _engine_count(warm_conj, variables)
                again = _engine_count(warm_conj, variables)  # memo reuse
            finally:
                sat.set_sat_cache_limit(0)
                sat.clear_sat_cache()
                set_normalize_memo(False)
            assert warm == want, str(conj)
            assert again == want, str(conj)

    @pytest.mark.parametrize("seed", [100, 101])
    def test_three_variables(self, seed, _caches_off):
        for conj, variables in _cases(2, 3, seed):
            reset_fresh_counter(1000)
            want = _brute_force(conj, variables)
            cold = _engine_count(conj, variables)
            assert cold == want, str(conj)
            sat.set_sat_cache_limit(200000)
            set_normalize_memo(True)
            try:
                reset_fresh_counter(1000)
                warm = _engine_count(Conjunct(conj.constraints, conj.wildcards), variables)
            finally:
                sat.set_sat_cache_limit(0)
                sat.clear_sat_cache()
                set_normalize_memo(False)
            assert warm == want, str(conj)

    def test_tiny_lru_matches_unbounded(self):
        """A pathologically small LRU still returns identical counts."""
        rng = random.Random(7)
        conj = _random_conjunct(rng, ["x", "y"])
        want = _brute_force(conj, ["x", "y"])
        previous = sat.sat_cache_info()["limit"]
        try:
            sat.set_sat_cache_limit(4)
            sat.clear_sat_cache()
            got = _engine_count(
                Conjunct(conj.constraints, conj.wildcards), ["x", "y"]
            )
        finally:
            sat.set_sat_cache_limit(previous)
            sat.clear_sat_cache()
        assert got == want
