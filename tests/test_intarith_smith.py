"""Hermite and Smith normal form tests (§4.5.2 substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.intarith import IntMatrix, hermite_normal_form, smith_normal_form

matrices = st.tuples(st.integers(1, 4), st.integers(1, 4)).flatmap(
    lambda nm: st.lists(
        st.lists(st.integers(-7, 7), min_size=nm[1], max_size=nm[1]),
        min_size=nm[0],
        max_size=nm[0],
    ).map(IntMatrix)
)


class TestHermite:
    def test_single_row_gcd(self):
        h, v = hermite_normal_form(IntMatrix([[6, 9, 15]]))
        assert h.rows[0][0] == 3  # gcd(6, 9, 15)
        assert h.rows[0][1] == h.rows[0][2] == 0

    def test_transform_relation(self):
        m = IntMatrix([[2, 4], [1, 3]])
        h, v = hermite_normal_form(m)
        assert m * v == h

    def test_unimodular(self):
        m = IntMatrix([[2, 4, 6], [1, 3, 5]])
        _, v = hermite_normal_form(m)
        assert abs(v.determinant()) == 1

    def test_zero_matrix(self):
        m = IntMatrix([[0, 0], [0, 0]])
        h, v = hermite_normal_form(m)
        assert h == m

    def test_rejects_fractions(self):
        from fractions import Fraction

        with pytest.raises(ValueError):
            hermite_normal_form(IntMatrix([[Fraction(1, 2)]]))

    @given(matrices)
    @settings(max_examples=60)
    def test_property(self, m):
        h, v = hermite_normal_form(m)
        assert m * v == h
        assert abs(v.determinant()) == 1
        # Staircase shape: the pivot column advances by at most one per
        # row, and pivot entries (first nonzero scanning rows top-down
        # within each column's stair) are positive.
        pivot_col = 0
        for i in range(h.nrows):
            row = h.rows[i]
            tail = [j for j in range(pivot_col, h.ncols) if row[j]]
            if tail:
                assert tail == [pivot_col], (i, row)
                assert row[pivot_col] > 0
                pivot_col += 1
            if pivot_col >= h.ncols:
                break


class TestSmith:
    def test_diagonal_divisibility(self):
        m = IntMatrix([[2, 4, 4], [-6, 6, 12], [10, -4, -16]])
        u, d, v = smith_normal_form(m)
        assert u * m * v == d
        diag = [d[i, i] for i in range(3)]
        for a, b in zip(diag, diag[1:]):
            if a:
                assert b % a == 0

    def test_identity(self):
        u, d, v = smith_normal_form(IntMatrix.identity(3))
        assert d == IntMatrix.identity(3)

    def test_rank_deficient(self):
        m = IntMatrix([[1, 2], [2, 4]])
        u, d, v = smith_normal_form(m)
        assert u * m * v == d
        assert d[1, 1] == 0

    def test_rectangular(self):
        m = IntMatrix([[4, 6]])
        u, d, v = smith_normal_form(m)
        assert u * m * v == d
        assert d[0, 0] == 2

    def test_off_diagonal_zero(self):
        m = IntMatrix([[3, 1], [7, 5]])
        u, d, v = smith_normal_form(m)
        assert d[0, 1] == 0 and d[1, 0] == 0

    @given(matrices)
    @settings(max_examples=60)
    def test_property(self, m):
        u, d, v = smith_normal_form(m)
        assert u * m * v == d
        assert abs(u.determinant()) == 1
        assert abs(v.determinant()) == 1
        k = min(d.nrows, d.ncols)
        for i in range(d.nrows):
            for j in range(d.ncols):
                if i != j:
                    assert d[i, j] == 0
        diag = [d[i, i] for i in range(k)]
        assert all(x >= 0 for x in diag)
        for a, b in zip(diag, diag[1:]):
            if a:
                assert b % a == 0
            else:
                assert b == 0
