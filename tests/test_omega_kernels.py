"""Dense row kernels: backend switch, round-trips, pinned edge cases.

The ``repro.omega.kernels`` substrate must be byte-identical to the
dict-backed Affine path.  Beyond the fuzz-level differential check
(``kernels_backend`` in the testkit), this file pins the normalize
edge cases the dense sweep re-implements -- opposed-pair collapse,
stride representative tie-breaking, empty-interval kill -- against
*both* backends explicitly, plus the row-level building blocks.
"""

import pytest

from repro.omega import kernels
from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint
from repro.omega.kernels import (
    EQ_ROW,
    GEQ_ROW,
    bounds_profiles,
    bounds_split,
    constraint_from_row,
    fm_combine,
    kernels_backend,
    normalize_rows,
    rows_from_constraints,
    set_kernels_backend,
)
from repro.omega.problem import Conjunct


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


def eq(coeffs, const=0):
    return Constraint.eq(Affine(coeffs, const))


@pytest.fixture(params=["dense", "dict"])
def backend(request):
    previous = set_kernels_backend(request.param)
    yield request.param
    set_kernels_backend(previous)


class TestBackendSwitch:
    def test_default_is_dense(self):
        assert kernels_backend() in ("dense", "dict")

    def test_set_returns_previous(self):
        start = kernels_backend()
        try:
            assert set_kernels_backend("dict") == start
            assert kernels_backend() == "dict"
            assert set_kernels_backend("dense") == "dict"
            assert kernels_backend() == "dense"
        finally:
            set_kernels_backend(start)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_kernels_backend("sparse")

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        with pytest.raises(ValueError):
            kernels._init_backend()
        monkeypatch.setenv("REPRO_KERNELS", "dict")
        kernels._init_backend()
        assert kernels_backend() == "dict"
        monkeypatch.delenv("REPRO_KERNELS")
        kernels._init_backend()
        assert kernels_backend() == "dense"


class TestRowRoundTrip:
    def test_rows_from_constraints_layout(self):
        cons = (geq({"y": 2, "x": -1}, 7), eq({"x": 3, "z": 5}, -4))
        index, pos, rows = rows_from_constraints(cons)
        assert index == ("x", "y", "z")
        assert pos == {"x": 2, "y": 3, "z": 4}
        assert rows == ((GEQ_ROW, 7, -1, 2, 0), (EQ_ROW, -4, 3, 0, 5))

    def test_round_trip_preserves_constraints(self):
        cons = (
            geq({"a": 4, "c": -9}, 1),
            eq({"b": 2, "c": 3}, 0),
            geq({}, 5),
        )
        index, _, rows = rows_from_constraints(cons)
        back = tuple(constraint_from_row(index, row) for row in rows)
        assert back == cons

    def test_materialized_constraints_hash_like_originals(self):
        c = geq({"a": 4, "c": -9}, 1)
        index, _, rows = rows_from_constraints((c,))
        rebuilt = constraint_from_row(index, rows[0])
        assert rebuilt == c and hash(rebuilt) == hash(c)


class TestNormalizeRowsKernel:
    def test_gcd_tighten_floor_division(self):
        # 2x - 3 >= 0 tightens to x - 2 >= 0 (floor, not truncation).
        _, _, rows = rows_from_constraints((geq({"x": 2}, -3),))
        eq_rows, geq_rows = normalize_rows(rows)
        assert eq_rows == [] and geq_rows == [(GEQ_ROW, -2, 1)]

    def test_constant_rows(self):
        _, _, rows = rows_from_constraints((geq({}, 3), geq({"x": 1}, 0)))
        assert normalize_rows(rows) == ([], [(GEQ_ROW, 0, 1)])
        _, _, rows = rows_from_constraints((geq({}, -1),))
        assert normalize_rows(rows) is None
        _, _, rows = rows_from_constraints((eq({}, 2),))
        assert normalize_rows(rows) is None

    def test_eq_divisibility_kill(self):
        _, _, rows = rows_from_constraints((eq({"x": 2, "y": 4}, -3),))
        assert normalize_rows(rows) is None

    def test_parallel_merge_keeps_tightest(self):
        _, _, rows = rows_from_constraints(
            (geq({"x": 1}, -5), geq({"x": 1}, -3), geq({"x": 2}, -6))
        )
        assert normalize_rows(rows) == ([], [(GEQ_ROW, -5, 1)])


class TestPinnedEdgeCases:
    """The ISSUE-named normalize edge cases, pinned per backend."""

    def test_opposed_pair_collapse_single_eq(self, backend):
        # x + 2y >= 4 and x + 2y <= 4 pin the expression: exactly one
        # EQ must come out, sign-canonical, with both GEQs consumed.
        conj = Conjunct(
            [geq({"x": 1, "y": 2}, -4), geq({"x": -1, "y": -2}, 4)]
        ).normalize()
        assert list(conj.constraints) == [eq({"x": 1, "y": 2}, -4)]

    def test_opposed_pair_scaled_copies_still_single_eq(self, backend):
        # The same interval arriving as scaled duplicates collapses to
        # the same single equality.
        conj = Conjunct(
            [
                geq({"x": 2, "y": 4}, -8),
                geq({"x": 1, "y": 2}, -4),
                geq({"x": -3, "y": -6}, 12),
            ]
        ).normalize()
        assert list(conj.constraints) == [eq({"x": 1, "y": 2}, -4)]

    def test_empty_interval_kill(self, backend):
        # x + y >= 5 and x + y <= 3: empty interval, conjunct dies.
        conj = Conjunct(
            [geq({"x": 1, "y": 1}, -5), geq({"x": -1, "y": -1}, 3)]
        ).normalize()
        assert conj is None

    def test_stride_representative_tie_break(self, backend):
        # 3w == n + 1 and 3w' == -n - 1 describe the same stride; the
        # canonical representative is the lexicographically smaller of
        # the residue pair (r0 vs r1 in _finish_normalize), so both
        # spellings normalize to the identical constraint.
        a = Conjunct([eq({"w": 3, "n": -1}, -1)], ["w"]).normalize()
        b = Conjunct([eq({"w": 3, "n": 1}, 1)], ["w"]).normalize()
        (wa,) = a.wildcards
        (wb,) = b.wildcards
        assert [c.rename({wb: wa}) for c in b.constraints] == list(
            a.constraints
        )
        assert a.constraints[0].is_eq()
        # And normalization is a fixed point: no oscillation between
        # the two representatives on repeated passes.
        assert a.normalize() is a

    def test_wildcard_free_rows_match_dict_backend(self):
        cases = [
            [geq({"x": 2, "y": -4}, 7), geq({"x": -2, "y": 4}, -7)],
            [geq({"x": 6, "y": 9}, 3), geq({"x": 2, "y": 3}, 1)],
            [eq({"x": 4, "y": 6}, 2), geq({"x": 1}, 0)],
            [geq({}, 0), geq({"z": 5}, -7), geq({"z": -5}, 7)],
        ]
        for cons in cases:
            previous = set_kernels_backend("dense")
            try:
                dense = Conjunct(cons).normalize()
                set_kernels_backend("dict")
                dict_ = Conjunct(cons).normalize()
            finally:
                set_kernels_backend(previous)
            if dense is None or dict_ is None:
                assert dense is None and dict_ is None
            else:
                assert dense.constraints == dict_.constraints
                assert dense.wildcards == dict_.wildcards


class TestBoundsKernels:
    CONS = (
        geq({"x": 2, "y": 1}, 0),   # lower bound on x
        geq({"x": -3, "z": 1}, 5),  # upper bound on x
        geq({"y": 1, "z": -1}, 2),  # rest
    )

    def test_bounds_split(self):
        _, pos, rows = rows_from_constraints(self.CONS)
        lowers, uppers, rest = bounds_split(rows, pos["x"])
        assert [r[pos["x"]] for r in lowers] == [2]
        assert [r[pos["x"]] for r in uppers] == [-3]
        assert len(rest) == 1

    def test_bounds_split_rejects_eq_rows(self):
        _, pos, rows = rows_from_constraints(
            (eq({"x": 1, "y": 1}, 0), geq({"x": 1}, 0))
        )
        with pytest.raises(ValueError):
            bounds_split(rows, pos["x"])

    def test_bounds_profiles_matches_bounds_on(self):
        index, pos, rows = rows_from_constraints(self.CONS)
        profiles = bounds_profiles(rows, len(index) + 2)
        conj = Conjunct(self.CONS)
        for v in index:
            lowers, uppers, _ = conj.bounds_on(v)
            n_lo, n_up, unit_lo, unit_up = profiles[pos[v]]
            assert n_lo == len(lowers)
            assert n_up == len(uppers)
            assert unit_lo == all(b == 1 for b, _ in lowers)
            assert unit_up == all(a == 1 for a, _ in uppers)

    def test_conjunct_bounds_profiles_agree_across_backends(self):
        conj_cons = self.CONS
        previous = set_kernels_backend("dense")
        try:
            dense = Conjunct(conj_cons).bounds_profiles()
            set_kernels_backend("dict")
            dict_ = Conjunct(conj_cons).bounds_profiles()
        finally:
            set_kernels_backend(previous)
        assert dense == dict_


class TestFmCombine:
    def test_matches_dict_shadow(self):
        from repro.omega.eliminate import dark_shadow, real_shadow

        cons = (
            geq({"z": 2, "x": 1}, 0),
            geq({"z": 3, "y": -1}, 4),
            geq({"z": -2, "x": 3}, 9),
            geq({"x": 1, "y": 1}, 6),
        )
        for dark in (False, True):
            previous = set_kernels_backend("dense")
            try:
                shadow = dark_shadow if dark else real_shadow
                dense = shadow(Conjunct(cons), "z")
                set_kernels_backend("dict")
                dict_ = shadow(Conjunct(cons), "z")
            finally:
                set_kernels_backend(previous)
            assert dense.constraints == dict_.constraints

    def test_reuses_untouched_rows(self):
        cons = (
            geq({"z": 2, "x": 1}, 0),
            geq({"z": -3, "y": 1}, 0),
            geq({"x": 1, "y": 1}, 6),
            geq({"x": -1}, 9),
        )
        _, pos, rows = rows_from_constraints(cons)
        new_rows, reused, one_sided = fm_combine(rows, pos["z"], False)
        assert not one_sided
        assert reused == 2  # the two z-free rows carried over verbatim
        assert rows[2] in new_rows and rows[3] in new_rows

    def test_one_sided_elimination(self):
        cons = (geq({"z": 1, "x": 1}, 0), geq({"x": 1}, 3))
        _, pos, rows = rows_from_constraints(cons)
        new_rows, reused, one_sided = fm_combine(rows, pos["z"], False)
        assert one_sided
        assert new_rows == (rows[1],)
        assert reused == 1

    def test_dark_shadow_constant(self):
        # 2z >= -x, 3z <= y: real combine 2y - 3(-x) = 3x + 2y >= 0;
        # dark subtracts (a-1)(b-1) = 2.
        cons = (geq({"z": 2, "x": 1}, 0), geq({"z": -3, "y": 1}, 0))
        _, pos, rows = rows_from_constraints(cons)
        real, _, _ = fm_combine(rows, pos["z"], False)
        dark, _, _ = fm_combine(rows, pos["z"], True)
        assert len(real) == len(dark) == 1
        assert real[0][1] - dark[0][1] == 2
        assert real[0][pos["z"]] == 0


class TestEndToEndDifferential:
    FORMULAS = [
        ("1 <= i and i <= n and 2 | i", ["i"]),
        (
            "1 <= i and i <= n and 1 <= j and j <= i"
            " and 3*j <= 2*i + 4 and 6 | (i + 2*j)",
            ["i", "j"],
        ),
        ("0 <= i and 2*i <= n and 3 | (n + i)", ["i"]),
    ]

    def test_counts_byte_identical(self):
        import json

        from repro.core import count
        from repro.core.memo import clear_answer_memo
        from repro.omega.constraints import reset_fresh_counter
        from repro.omega.satisfiability import clear_sat_cache

        outs = {}
        for name in ("dense", "dict"):
            previous = set_kernels_backend(name)
            try:
                serialized = []
                for formula, over in self.FORMULAS:
                    clear_sat_cache()
                    clear_answer_memo()
                    reset_fresh_counter()
                    serialized.append(
                        json.dumps(
                            count(formula, over).to_json(), sort_keys=True
                        )
                    )
                outs[name] = serialized
            finally:
                set_kernels_backend(previous)
        assert outs["dense"] == outs["dict"]
