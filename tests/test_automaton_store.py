"""The persistent automaton store: restarts keep resident DFAs.

A "restart" is simulated by clearing the in-process resident LRU:
whatever survives must have come back from the ``automata`` diskcache
table, not from memory.
"""

import pytest

from repro.automaton import (
    automaton_for,
    automaton_store_info,
    clear_automaton_cache,
    has_resident_automaton,
    member,
    set_automaton_store,
)
from repro.automaton.store import (
    AUTOMATON_SCHEMA_VERSION,
    deserialize_automaton,
    disk_key,
    serialize_automaton,
    store_contains,
    store_get,
    store_put,
)
from repro.core import stats

FORMULA = "0 <= i <= 12 and 0 <= j <= 12 and i + j <= 12 and 2 | (i + j)"
OVER = ["i", "j"]


@pytest.fixture
def store(tmp_path):
    previous_explicit = set_automaton_store(str(tmp_path / "auto.sqlite"))
    clear_automaton_cache()
    yield
    set_automaton_store(previous_explicit)
    clear_automaton_cache()


def _count_points(aut):
    return sum(
        1
        for i in range(13)
        for j in range(13)
        if i + j <= 12 and (i + j) % 2 == 0
    )


class TestSerialization:
    def test_round_trip_preserves_semantics(self, store):
        aut = automaton_for(FORMULA, OVER)
        clone = deserialize_automaton(serialize_automaton(aut))
        assert clone is not None
        assert clone.nbits == aut.nbits
        assert clone.variables == tuple(aut.variables)
        for i in range(13):
            for j in range(13):
                assert member(clone, (i, j)) == member(aut, (i, j))

    def test_corrupt_documents_are_misses_not_errors(self, store):
        aut = automaton_for(FORMULA, OVER)
        good = serialize_automaton(aut)
        assert deserialize_automaton(good) is not None
        for breakage in (
            {"schema": AUTOMATON_SCHEMA_VERSION + 1},
            {"engine": "0.0.0-other"},
            {"initial": 10**9},
            {"initial": -1},
            {"delta": []},
            {"delta": [row[:-1] for row in good["delta"]]},
            {"delta": [[10**9] * len(good["delta"][0])]},
            {"accept": good["accept"][:-1]},
            {"nbits": "many"},
        ):
            assert deserialize_automaton(dict(good, **breakage)) is None
        assert deserialize_automaton({}) is None

    def test_disk_key_covers_schema_and_engine(self):
        assert disk_key("k") != disk_key("k2")
        assert len(disk_key("k")) == 64


class TestPersistence:
    def test_restart_keeps_the_resident_set(self, store):
        stats.reset_stats()
        stats.enable_stats()
        try:
            aut = automaton_for(FORMULA, OVER)
            builds = stats.stats_snapshot().get("automaton_builds", 0)
            assert builds == 1
            assert stats.stats_snapshot().get("automaton_disk_writes") == 1

            # "Restart": the resident LRU is gone, the disk row is not.
            clear_automaton_cache()
            assert has_resident_automaton(FORMULA, OVER)

            again = automaton_for(FORMULA, OVER)
            snap = stats.stats_snapshot()
            assert snap.get("automaton_builds", 0) == 1  # no rebuild
            assert snap.get("automaton_disk_hits") == 1
            assert member(again, (3, 5)) is True
            assert member(again, (3, 6)) is False
        finally:
            stats.disable_stats()

    def test_alpha_variant_hits_the_same_row(self, store):
        automaton_for(FORMULA, OVER)
        clear_automaton_cache()
        renamed = FORMULA.replace("i", "p").replace("j", "q")
        assert has_resident_automaton(renamed, ["p", "q"])

    def test_disabled_store_is_a_noop(self, tmp_path):
        set_automaton_store(None)
        clear_automaton_cache()
        info = automaton_store_info()
        assert info["enabled"] in (False, True)  # env may point somewhere
        store_put("some-key", automaton_for("0 <= i <= 3", ["i"]))
        # With no REPRO_AUTOMATON_DB and no explicit path, nothing is
        # resident after an LRU clear.
        if not info["enabled"]:
            clear_automaton_cache()
            assert not has_resident_automaton("0 <= i <= 3", ["i"])
            assert store_get("some-key") is None
            assert not store_contains("some-key")

    def test_store_info_reports_occupancy(self, store):
        automaton_for(FORMULA, OVER)
        info = automaton_store_info()
        assert info["enabled"] is True
        assert info["entries"] == 1
