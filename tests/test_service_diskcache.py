"""Persistent sqlite result cache: LRU bound, corruption, concurrency."""

import json
import multiprocessing
import sqlite3

import pytest

from repro.service.diskcache import DiskCache


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "results.sqlite")


class TestBasics:
    def test_miss_then_hit(self, cache_path):
        with DiskCache(cache_path) as cache:
            assert cache.get("k1") is None
            cache.put("k1", {"result": "42"})
            assert cache.get("k1") == {"result": "42"}
            assert cache.hits == 1 and cache.misses == 1

    def test_replace(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "old"})
            cache.put("k", {"result": "new"})
            assert cache.get("k") == {"result": "new"}
            assert len(cache) == 1

    def test_persistence_across_reopen(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42", "points": [1, 2]})
        with DiskCache(cache_path) as cache:
            assert cache.get("k") == {"result": "42", "points": [1, 2]}

    def test_contains_and_info(self, cache_path):
        with DiskCache(cache_path, max_entries=7) as cache:
            cache.put("k", {"result": "1"})
            assert "k" in cache and "nope" not in cache
            info = cache.info()
            assert info["size"] == 1 and info["max_entries"] == 7


class TestLRU:
    def test_size_bound_evicts_oldest(self, cache_path):
        with DiskCache(cache_path, max_entries=3) as cache:
            for i in range(5):
                cache.put("k%d" % i, {"result": str(i)})
            assert len(cache) == 3
            assert "k0" not in cache and "k1" not in cache
            assert "k4" in cache

    def test_get_refreshes_recency(self, cache_path):
        with DiskCache(cache_path, max_entries=2) as cache:
            cache.put("a", {"result": "a"})
            cache.put("b", {"result": "b"})
            assert cache.get("a") is not None  # a is now most recent
            cache.put("c", {"result": "c"})  # evicts b, not a
            assert "a" in cache and "b" not in cache


class TestCorruption:
    def test_corrupt_payload_is_a_self_healing_miss(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42"})
        conn = sqlite3.connect(cache_path)
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?", ("{oops", "k")
        )
        conn.commit()
        conn.close()
        with DiskCache(cache_path) as cache:
            assert cache.get("k") is None
            assert cache.corrupt == 1
            assert "k" not in cache  # the bad row was deleted

    def test_non_object_payload_is_corrupt(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42"})
        conn = sqlite3.connect(cache_path)
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (json.dumps([1, 2, 3]), "k"),
        )
        conn.commit()
        conn.close()
        with DiskCache(cache_path) as cache:
            assert cache.get("k") is None
            assert cache.corrupt == 1

    def test_non_sqlite_file_recreated(self, cache_path):
        with open(cache_path, "w") as fh:
            fh.write("this is not a database")
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "1"})
            assert cache.get("k") == {"result": "1"}


class TestWalMode:
    def test_journal_mode_is_wal(self, cache_path):
        with DiskCache(cache_path) as cache:
            assert cache.journal_mode() == "wal"

    def test_wal_survives_corruption_recovery(self, cache_path):
        # The recreate-after-corruption path must apply the same
        # pragmas as the happy path.
        with open(cache_path, "w") as fh:
            fh.write("this is not a database")
        with DiskCache(cache_path) as cache:
            assert cache.journal_mode() == "wal"

    def test_threaded_access_single_handle(self, cache_path):
        # One handle used from several threads (the daemon's pattern
        # before it funnels I/O through one executor thread) must not
        # trip sqlite's same-thread check or interleave corruptly.
        import threading

        errors = []
        with DiskCache(cache_path) as cache:

            def work(worker_id):
                try:
                    for i in range(50):
                        key = "t%d-%d" % (worker_id, i)
                        cache.put(key, {"result": key})
                        assert cache.get(key) == {"result": key}
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(w,)) for w in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not errors
            assert len(cache) == 200


def _wal_write_burst(path, n):
    with DiskCache(path) as cache:
        for i in range(n):
            cache.put("burst-%d" % i, {"result": "burst-%d" % i})


def _wal_read_during_burst(path, seeded, rounds):
    with DiskCache(path) as cache:
        for _ in range(rounds):
            for key in seeded:
                # WAL + busy_timeout: readers proceed during the write
                # burst; a locked-database error would crash this
                # process and fail the exitcode assertion.
                assert cache.get(key) == {"result": key}


class TestWalConcurrency:
    def test_readers_proceed_during_write_burst(self, cache_path):
        seeded = ["seed-%d" % i for i in range(8)]
        with DiskCache(cache_path) as cache:
            for key in seeded:
                cache.put(key, {"result": key})
        readers = [
            multiprocessing.Process(
                target=_wal_read_during_burst, args=(cache_path, seeded, 40)
            )
            for _ in range(3)
        ]
        writer = multiprocessing.Process(
            target=_wal_write_burst, args=(cache_path, 150)
        )
        for p in readers:
            p.start()
        writer.start()
        for p in readers + [writer]:
            p.join(60)
        assert writer.exitcode == 0
        assert all(p.exitcode == 0 for p in readers)
        with DiskCache(cache_path) as cache:
            assert len(cache) == len(seeded) + 150


def _hammer(path, worker_id, n, max_entries=1000):
    with DiskCache(path, max_entries=max_entries) as cache:
        for i in range(n):
            key = "w%d-%d" % (worker_id, i)
            cache.put(key, {"result": key})
            got = cache.get(key)
            # Under a tight LRU bound a concurrent writer may evict the
            # key before we read it back; a miss is legal, a wrong or
            # corrupt value is not.
            assert got is None or got == {"result": key}, got


def _read_corrupt_then_write(path, worker_id, corrupt_keys):
    with DiskCache(path) as cache:
        for key in corrupt_keys:
            # Every reader must see a clean miss, never a decode error.
            assert cache.get(key) is None
        key = "healed-w%d" % worker_id
        cache.put(key, {"result": key})
        assert cache.get(key) == {"result": key}


class TestConcurrency:
    def test_two_handles_share_state(self, cache_path):
        a = DiskCache(cache_path)
        b = DiskCache(cache_path)
        try:
            a.put("k", {"result": "42"})
            assert b.get("k") == {"result": "42"}
        finally:
            a.close()
            b.close()

    def test_concurrent_writers(self, cache_path):
        procs = [
            multiprocessing.Process(target=_hammer, args=(cache_path, w, 20))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        with DiskCache(cache_path) as cache:
            assert len(cache) == 80

    def test_concurrent_writers_respect_lru_bound(self, cache_path):
        # 4 processes write 30 entries each into a 10-entry cache; the
        # bound must hold at the end and every surviving row must be
        # intact (readable, correct value).
        procs = [
            multiprocessing.Process(
                target=_hammer, args=(cache_path, w, 30, 10)
            )
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        with DiskCache(cache_path, max_entries=10) as cache:
            assert 0 < len(cache) <= 10
            survivors = [
                "w%d-%d" % (w, i) for w in range(4) for i in range(30)
            ]
            found = [k for k in survivors if cache.get(k) is not None]
            for k in found:
                assert cache.get(k) == {"result": k}

    def test_concurrent_readers_self_heal_corrupt_rows(self, cache_path):
        corrupt_keys = ["bad-%d" % i for i in range(3)]
        with DiskCache(cache_path) as cache:
            for key in corrupt_keys:
                cache.put(key, {"result": "fine"})
            cache.put("good", {"result": "good"})
        conn = sqlite3.connect(cache_path)
        for key in corrupt_keys:
            conn.execute(
                "UPDATE results SET payload = ? WHERE key = ?",
                ("{truncated", key),
            )
        conn.commit()
        conn.close()
        procs = [
            multiprocessing.Process(
                target=_read_corrupt_then_write,
                args=(cache_path, w, corrupt_keys),
            )
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        with DiskCache(cache_path) as cache:
            # Healing deleted the bad rows; healthy rows survived.
            for key in corrupt_keys:
                assert key not in cache
            assert cache.get("good") == {"result": "good"}
            for w in range(4):
                assert cache.get("healed-w%d" % w) is not None
