"""Persistent sqlite result cache: LRU bound, corruption, concurrency."""

import json
import multiprocessing
import sqlite3

import pytest

from repro.service.diskcache import DiskCache


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "results.sqlite")


class TestBasics:
    def test_miss_then_hit(self, cache_path):
        with DiskCache(cache_path) as cache:
            assert cache.get("k1") is None
            cache.put("k1", {"result": "42"})
            assert cache.get("k1") == {"result": "42"}
            assert cache.hits == 1 and cache.misses == 1

    def test_replace(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "old"})
            cache.put("k", {"result": "new"})
            assert cache.get("k") == {"result": "new"}
            assert len(cache) == 1

    def test_persistence_across_reopen(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42", "points": [1, 2]})
        with DiskCache(cache_path) as cache:
            assert cache.get("k") == {"result": "42", "points": [1, 2]}

    def test_contains_and_info(self, cache_path):
        with DiskCache(cache_path, max_entries=7) as cache:
            cache.put("k", {"result": "1"})
            assert "k" in cache and "nope" not in cache
            info = cache.info()
            assert info["size"] == 1 and info["max_entries"] == 7


class TestLRU:
    def test_size_bound_evicts_oldest(self, cache_path):
        with DiskCache(cache_path, max_entries=3) as cache:
            for i in range(5):
                cache.put("k%d" % i, {"result": str(i)})
            assert len(cache) == 3
            assert "k0" not in cache and "k1" not in cache
            assert "k4" in cache

    def test_get_refreshes_recency(self, cache_path):
        with DiskCache(cache_path, max_entries=2) as cache:
            cache.put("a", {"result": "a"})
            cache.put("b", {"result": "b"})
            assert cache.get("a") is not None  # a is now most recent
            cache.put("c", {"result": "c"})  # evicts b, not a
            assert "a" in cache and "b" not in cache


class TestCorruption:
    def test_corrupt_payload_is_a_self_healing_miss(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42"})
        conn = sqlite3.connect(cache_path)
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?", ("{oops", "k")
        )
        conn.commit()
        conn.close()
        with DiskCache(cache_path) as cache:
            assert cache.get("k") is None
            assert cache.corrupt == 1
            assert "k" not in cache  # the bad row was deleted

    def test_non_object_payload_is_corrupt(self, cache_path):
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "42"})
        conn = sqlite3.connect(cache_path)
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (json.dumps([1, 2, 3]), "k"),
        )
        conn.commit()
        conn.close()
        with DiskCache(cache_path) as cache:
            assert cache.get("k") is None
            assert cache.corrupt == 1

    def test_non_sqlite_file_recreated(self, cache_path):
        with open(cache_path, "w") as fh:
            fh.write("this is not a database")
        with DiskCache(cache_path) as cache:
            cache.put("k", {"result": "1"})
            assert cache.get("k") == {"result": "1"}


def _hammer(path, worker_id, n):
    with DiskCache(path, max_entries=1000) as cache:
        for i in range(n):
            key = "w%d-%d" % (worker_id, i)
            cache.put(key, {"result": key})
            got = cache.get(key)
            assert got == {"result": key}, got


class TestConcurrency:
    def test_two_handles_share_state(self, cache_path):
        a = DiskCache(cache_path)
        b = DiskCache(cache_path)
        try:
            a.put("k", {"result": "42"})
            assert b.get("k") == {"result": "42"}
        finally:
            a.close()
            b.close()

    def test_concurrent_writers(self, cache_path):
        procs = [
            multiprocessing.Process(target=_hammer, args=(cache_path, w, 20))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        with DiskCache(cache_path) as cache:
            assert len(cache) == 80
