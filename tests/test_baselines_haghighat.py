"""Haghighat-Polychronopoulos baseline tests (§6 Examples 2-3)."""

import pytest

from repro.baselines import hp_nested_sum
from repro.baselines.haghighat import Leaf, Max, Min, Pos
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse
from repro.qpoly import Polynomial


def clause(text):
    (c,) = to_dnf(parse(text))
    return c


class TestCalculus:
    def test_min_max_eval(self):
        n = Leaf(Polynomial.variable("n"))
        e = Min([n, Leaf(Polynomial.constant(5))])
        assert e.evaluate({"n": 3}) == 3
        assert e.evaluate({"n": 9}) == 5
        m = Max([n, Leaf(Polynomial.constant(0))])
        assert m.evaluate({"n": -2}) == 0

    def test_pos(self):
        n = Leaf(Polynomial.variable("n"))
        assert Pos(n).evaluate({"n": 1}) == 1
        assert Pos(n).evaluate({"n": 0}) == 0
        assert Pos(n).evaluate({"n": -3}) == 0

    def test_size_counts_nodes(self):
        n = Leaf(Polynomial.variable("n"))
        assert Min([n, n]).size() == 3

    def test_leaf_folding(self):
        a = Leaf(Polynomial.constant(2)) + Leaf(Polynomial.constant(3))
        assert isinstance(a, Leaf) and a.poly.constant_value() == 5


class TestHPExample1:
    """The paper's Example 2: their answer has the form
    p(min(n-2,3))·(cubic in min(n,5)) + 6·max(n-5, 0)."""

    TEXT = "1 <= i <= n and 3 <= j <= i and j <= k <= 5"

    def test_agrees_with_brute_force(self):
        e = hp_nested_sum(clause(self.TEXT), ["k", "j", "i"], 1)
        for n in range(0, 15):
            want = sum(
                1
                for i in range(1, n + 1)
                for j in range(3, i + 1)
                for k in range(j, 6)
            )
            assert e.evaluate({"n": n}) == want, n

    def test_agrees_with_engine(self):
        e = hp_nested_sum(clause(self.TEXT), ["k", "j", "i"], 1)
        ours = count(self.TEXT, ["i", "j", "k"])
        for n in range(0, 15):
            assert e.evaluate({"n": n}) == ours.evaluate(n=n)

    def test_more_complicated_than_ours(self):
        """"The results tend to be much more complicated" -- compare
        expression sizes."""
        e = hp_nested_sum(clause(self.TEXT), ["k", "j", "i"], 1)
        ours = count(self.TEXT, ["i", "j", "k"]).simplified()
        ours_size = sum(
            len(t.value.terms) + len(t.guard.constraints) for t in ours.terms
        )
        assert e.size() > ours_size


class TestHPExample2:
    TEXT = "1 <= i <= 2*n and 1 <= j <= i and i + j <= 2*n"

    def test_agrees_with_brute_force(self):
        e = hp_nested_sum(clause(self.TEXT), ["j", "i"], 1)
        for n in range(0, 10):
            want = sum(
                1
                for i in range(1, 2 * n + 1)
                for j in range(1, i + 1)
                if i + j <= 2 * n
            )
            assert e.evaluate({"n": n}) == want, n

    def test_ours_is_n_squared(self):
        """The paper computes this example to exactly n² (for n >= 1)
        in 4 steps; HP's own derivation takes 15 steps."""
        ours = count(self.TEXT, ["i", "j"]).simplified()
        assert len(ours.terms) == 1
        assert str(ours.terms[0].value) == "n**2"


class TestLimits:
    def test_non_unit_rejected(self):
        with pytest.raises(ValueError):
            hp_nested_sum(clause("1 <= 2*i <= n"), ["i"], 1)

    def test_polynomial_summand(self):
        e = hp_nested_sum(clause("1 <= i <= n"), ["i"], Polynomial.variable("i"))
        for n in range(0, 8):
            assert e.evaluate({"n": n}) == n * (n + 1) // 2
