"""Closed-form range summation tests (Section 4.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.powersums import (
    count_range,
    faulhaber_polynomial,
    power_sum,
    sum_over_range,
)
from repro.qpoly import Polynomial


class TestFaulhaberPolynomial:
    def test_paper_example(self):
        # (Σ i : 1<=i<=n : i^2) = n(n+1)(2n+1)/6 (§4.1's example form)
        n = Polynomial.variable("n")
        f2 = power_sum(2, n)
        for k in range(0, 20):
            assert f2.evaluate({"n": k}) == sum(i * i for i in range(1, k + 1))

    def test_composition(self):
        # F_1 composed with (m - 1)
        arg = Polynomial.from_affine({"m": 1}, -1)
        f = faulhaber_polynomial(1, arg)
        for m in range(0, 10):
            assert f.evaluate({"m": m}) == (m - 1) * m / 2


class TestSumOverRange:
    @given(st.integers(0, 4), st.integers(-8, 8), st.integers(0, 10))
    @settings(max_examples=60)
    def test_constant_bounds(self, p, lo, length):
        hi = lo + length
        z = Polynomial.variable("v") ** p
        total = sum_over_range(
            z, "v", Polynomial.constant(lo), Polynomial.constant(hi)
        )
        assert total.constant_value() == sum(
            Fraction(v) ** p for v in range(lo, hi + 1)
        )

    def test_symbolic_bounds(self):
        # Σ_{v=a}^{b} v  ==  (b(b+1) - (a-1)a)/2
        z = Polynomial.variable("v")
        total = sum_over_range(
            z, "v", Polynomial.variable("a"), Polynomial.variable("b")
        )
        for a in range(-5, 5):
            for b in range(a, a + 6):
                assert total.evaluate({"a": a, "b": b}) == sum(range(a, b + 1))

    def test_polynomial_summand(self):
        # Σ (3v^2 - v + n): mixes powers and a free symbol
        v, n = Polynomial.variable("v"), Polynomial.variable("n")
        z = 3 * v ** 2 - v + n
        total = sum_over_range(z, "v", Polynomial.constant(1), n)
        for k in range(1, 10):
            want = sum(3 * i * i - i + k for i in range(1, k + 1))
            assert total.evaluate({"n": k}) == want

    def test_fractional_bounds_on_lattice(self):
        # bounds (n - n mod 3)/3 style: exact at integral points
        z = Polynomial.one
        lower = Polynomial.constant(1)
        upper = Polynomial.variable("n") * Fraction(1, 3)
        total = sum_over_range(z, "v", lower, upper)
        for n in range(3, 30, 3):  # only where upper is integral
            assert total.evaluate({"n": n}) == n // 3

    def test_count_range(self):
        c = count_range(Polynomial.variable("a"), Polynomial.variable("b"))
        assert c.evaluate({"a": 2, "b": 7}) == 6
