"""Conjunct normalization and structure tests (Section 2)."""

import pytest

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


def eq(coeffs, const=0):
    return Constraint.eq(Affine(coeffs, const))


class TestNormalize:
    def test_tightening(self):
        # 2x - 3 >= 0 tightens to x - 2 >= 0 (x >= 3/2 means x >= 2)
        c = Conjunct([geq({"x": 2}, -3)]).normalize()
        assert list(c.constraints) == [geq({"x": 1}, -2)]

    def test_trivial_true_dropped(self):
        c = Conjunct([geq({}, 5)]).normalize()
        assert c.is_trivial_true()

    def test_trivial_false(self):
        assert Conjunct([geq({}, -1)]).normalize() is None

    def test_equality_gcd(self):
        # 2x + 4y - 6 == 0 divides through
        c = Conjunct([eq({"x": 2, "y": 4}, -6)]).normalize()
        assert list(c.constraints) == [eq({"x": 1, "y": 2}, -3)]

    def test_equality_divisibility_contradiction(self):
        # 2x + 4y == 3 has no integer solutions
        assert Conjunct([eq({"x": 2, "y": 4}, -3)]).normalize() is None

    def test_parallel_merge(self):
        c = Conjunct([geq({"x": 1}, -5), geq({"x": 1}, -3)]).normalize()
        assert list(c.constraints) == [geq({"x": 1}, -5)]

    def test_opposed_pair_empty(self):
        # x >= 5 and x <= 3
        assert (
            Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)]).normalize()
            is None
        )

    def test_opposed_pair_to_equality(self):
        # x >= 4 and x <= 4 becomes x == 4
        c = Conjunct([geq({"x": 1}, -4), geq({"x": -1}, 4)]).normalize()
        assert len(c.constraints) == 1
        assert c.constraints[0].is_eq()

    def test_idempotent(self):
        cons = [geq({"x": 3, "y": -6}, 2), eq({"x": 2}, -4)]
        once = Conjunct(cons).normalize()
        twice = once.normalize()
        assert once == twice


class TestStrides:
    def test_stride_canonicalized(self):
        c = Conjunct.true().add_stride(3, Affine({"n": 5}, 7)).normalize()
        others, strides = c.stride_view()
        assert not others
        ((m, e),) = strides
        assert m == 3
        # 5n + 7 ≡ 2n + 1 (mod 3)
        for n in range(-6, 6):
            assert (e.evaluate({"n": n}) % 3 == 0) == ((5 * n + 7) % 3 == 0)

    def test_stride_of_one_vanishes(self):
        c = Conjunct.true().add_stride(1, Affine({"n": 1})).normalize()
        assert c.is_trivial_true()

    def test_duplicate_strides_merge(self):
        c = (
            Conjunct.true()
            .add_stride(2, Affine({"n": 1}))
            .add_stride(2, Affine({"n": 1}))
            .normalize()
        )
        assert len(c.eqs()) == 1

    def test_constant_stride_checked(self):
        sat = Conjunct.true().add_stride(3, Affine({}, 6)).normalize()
        assert sat is not None and sat.is_trivial_true()
        unsat = Conjunct.true().add_stride(3, Affine({}, 7)).normalize()
        assert unsat is None

    def test_two_lone_wildcards_coprime_vanish(self):
        # 2w + 3u == n is solvable for any n: constraint disappears
        c = Conjunct(
            [Constraint.equal(Affine({"w": 2, "u": 3}), Affine.var("n"))],
            ["w", "u"],
        ).normalize()
        assert c.is_trivial_true()

    def test_normalize_reaches_fixed_point_with_strides(self):
        # regression: stride canonicalization must not oscillate between
        # the two sign representatives of the residue class
        c = Conjunct(
            [Constraint.equal(Affine({"w": 3}), Affine({"x": -1}, 0))],
            ["w"],
        )
        n = c.normalize()
        assert n is not None
        assert n.normalize() == n


class TestBounds:
    def test_bounds_on(self):
        c = Conjunct(
            [
                geq({"v": 2, "n": -1}),       # n <= 2v
                geq({"v": -3, "n": 1}, 5),    # 3v <= n + 5
                geq({"m": 1}),
            ]
        )
        lowers, uppers, rest = c.bounds_on("v")
        assert lowers == [(2, Affine({"n": 1}))]
        assert uppers == [(3, Affine({"n": 1}, 5))]
        assert rest == [geq({"m": 1})]

    def test_bounds_on_rejects_equalities(self):
        c = Conjunct([eq({"v": 1, "n": -1})])
        with pytest.raises(ValueError):
            c.bounds_on("v")


class TestEvaluation:
    def test_satisfied_by(self):
        c = Conjunct([geq({"x": 1}, -2), eq({"x": 1, "y": -1})])
        assert c.satisfied_by({"x": 3, "y": 3})
        assert not c.satisfied_by({"x": 1, "y": 1})

    def test_is_satisfied_resolves_wildcards(self):
        # x even
        c = Conjunct.true().add_stride(2, Affine.var("x"))
        assert c.is_satisfied({"x": 4})
        assert not c.is_satisfied({"x": 5})

    def test_is_satisfied_requires_all_free_vars(self):
        c = Conjunct([geq({"x": 1, "y": 1})])
        with pytest.raises(ValueError):
            c.is_satisfied({"x": 0})


class TestCombinators:
    def test_merge_renames_wildcards(self):
        a = Conjunct.true().add_stride(2, Affine.var("x"))
        b = Conjunct.true().add_stride(3, Affine.var("x"))
        m = a.merge(b)
        assert len(m.wildcards) == 2
        assert m.is_satisfied({"x": 6})
        assert not m.is_satisfied({"x": 4})

    def test_substitute(self):
        c = Conjunct([geq({"x": 1}, -2)])
        s = c.substitute("x", Affine({"y": 2}))
        assert s.is_satisfied({"y": 1})
        assert not s.is_satisfied({"y": 0})

    def test_str_shows_strides(self):
        c = Conjunct.true().add_stride(2, Affine({"x": 1}, 1))
        assert "2 | (x + 1)" in str(c)


class TestNormalizeIterative:
    """normalize() reaches its fixed point by iteration, not recursion.

    Regression: ``return result.normalize()`` recursed once per pass,
    so a chain of wildcard equalities -- each eliminable only after
    the previous one is dropped -- exhausted the interpreter stack.
    """

    @staticmethod
    def _chain(n):
        # w0 == 2*w1, w1 == 2*w2, ..., w_{n-1} == 2*x.  Each pass can
        # only drop the head equality (its wildcard becomes lone), so
        # normalization needs n+1 passes.
        names = ["w%04d" % i for i in range(n)] + ["x"]
        cons = [
            Constraint.eq(Affine({names[i]: 1, names[i + 1]: -2}))
            for i in range(n)
        ]
        return Conjunct(cons, names[:n])

    def test_deep_chain_does_not_recurse(self):
        import sys

        conj = self._chain(300)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(150)
        try:
            out = conj.normalize()
        finally:
            sys.setrecursionlimit(limit)
        assert out is not None and out.is_trivial_true()

    def test_chain_needs_one_pass_per_link(self):
        from repro.core import stats

        with stats.collecting_stats() as counters:
            self._chain(10).normalize()
        assert counters["normalize_iterations"] == 11


class TestNormalizeMemo:
    def test_repeat_call_returns_same_object(self):
        conj = Conjunct([geq({"x": 2}, -3)])
        first = conj.normalize()
        assert conj.normalize() is first

    def test_normalized_result_is_its_own_fixed_point(self):
        conj = Conjunct([geq({"x": 2}, -3)])
        out = conj.normalize()
        assert out.normalize() is out

    def test_infeasible_memoized(self):
        conj = Conjunct([geq({}, -1)])
        assert conj.normalize() is None
        assert conj.normalize() is None

    def test_memo_can_be_disabled(self):
        from repro.omega.problem import set_normalize_memo

        previous = set_normalize_memo(False)
        try:
            conj = Conjunct([geq({"x": 2}, -3)])
            out = conj.normalize()
            assert list(out.constraints) == [geq({"x": 1}, -2)]
            assert conj.normalize() == out
        finally:
            set_normalize_memo(previous)

    def test_memo_not_shared_between_equal_instances(self):
        a = Conjunct([geq({"x": 2}, -3)])
        b = Conjunct([geq({"x": 2}, -3)])
        na, nb = a.normalize(), b.normalize()
        assert na == nb
        assert na is not nb  # per-instance memo, keyed by identity
