"""Nonlinear-term lowering tests (Section 3)."""

import pytest

from repro.omega.affine import Affine
from repro.omega.problem import Conjunct
from repro.presburger.nonlinear import (
    NLCeil,
    NLFloor,
    NLLin,
    NLMod,
    lower,
)


def check_defines(expr, value_fn, var_range=range(-20, 21), env_var="t"):
    """The lowered (affine, constraints) pair defines value_fn exactly:
    for each t there is exactly one assignment to the fresh variables,
    and under it the affine equals value_fn(t)."""
    affine, cons, wilds = lower(expr)
    for t in var_range:
        matches = []
        # fresh variables for floor/ceil of t/c lie within |t| + 2
        box = range(-abs(t) - 2, abs(t) + 3)
        import itertools

        for vals in itertools.product(box, repeat=len(wilds)):
            env = {env_var: t}
            env.update(zip(wilds, vals))
            if all(c.satisfied(env) for c in cons):
                matches.append(affine.evaluate(env))
        assert matches == [value_fn(t)], (t, matches)


class TestFloor:
    def test_floor_semantics(self):
        check_defines(NLFloor(NLLin(Affine.var("t")), 3), lambda t: t // 3)

    def test_floor_of_expression(self):
        check_defines(
            NLFloor(NLLin(Affine({"t": 2}, 1)), 4), lambda t: (2 * t + 1) // 4
        )

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            NLFloor(NLLin(Affine.var("t")), 0)


class TestCeil:
    def test_ceil_semantics(self):
        check_defines(
            NLCeil(NLLin(Affine.var("t")), 3), lambda t: -((-t) // 3)
        )


class TestMod:
    def test_mod_semantics(self):
        check_defines(NLMod(NLLin(Affine.var("t")), 5), lambda t: t % 5)

    def test_nested(self):
        # floor(t/2) mod 3
        inner = NLFloor(NLLin(Affine.var("t")), 2)
        check_defines(NLMod(inner, 3), lambda t: (t // 2) % 3)


class TestArithmetic:
    def test_sum_and_scale(self):
        e = 2 * NLFloor(NLLin(Affine.var("t")), 3) - 1
        check_defines(e, lambda t: 2 * (t // 3) - 1)

    def test_linear_passthrough(self):
        affine, cons, wilds = lower(Affine({"t": 3}, -2))
        assert affine == Affine({"t": 3}, -2)
        assert not cons and not wilds

    def test_int_coercion(self):
        affine, cons, wilds = lower(5)
        assert affine.const == 5

    def test_bad_type(self):
        with pytest.raises(TypeError):
            lower("nope")
