"""member / count_below through the daemon's resident-automaton tier.

Async scenarios run under ``asyncio.run`` inside plain sync tests
(same convention as ``test_serve_daemon.py``): each scenario builds
its own daemon, drives :meth:`CountingDaemon.handle` directly or over
a real HTTP socket, and drains before returning.
"""

import asyncio
import itertools

import pytest

from repro.automaton.cache import clear_automaton_cache
from repro.serve.daemon import AUTOMATON_KINDS, CountingDaemon, ServeConfig
from repro.serve.http import HttpFrontend, _JOB_PATHS
from repro.serve.loadgen import (
    DEFAULT_BASE_REQUESTS,
    alpha_variant,
    build_requests,
    run_inprocess,
)
from repro.serve.metrics import COUNTER_NAMES
from repro.service.request import JobRequest

TRIANGLE = "0 <= i <= 8 and 0 <= j <= 8 and i + j <= 8"

MEMBER_REQ = {
    "id": "m",
    "kind": "member",
    "formula": TRIANGLE,
    "over": ["i", "j"],
    "at": [{"i": 2, "j": 3}, {"i": 8, "j": 8}],
}

BELOW_REQ = {
    "id": "b",
    "kind": "count_below",
    "formula": "2 | (i + j) and i <= 2*j",
    "over": ["i", "j"],
    "bound": 16,
}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_automaton_cache()
    yield
    clear_automaton_cache()


def make_daemon(**kw):
    kw.setdefault("cache_path", None)
    daemon = CountingDaemon(ServeConfig(**kw))
    daemon.start()
    return daemon


def run(coro):
    return asyncio.run(coro)


class TestDaemonTiers:
    def test_cold_then_automaton_warm(self):
        async def scenario():
            daemon = make_daemon()
            try:
                first = await daemon.handle(dict(MEMBER_REQ))
                # Different points on the same formula: the automaton
                # built by the cold request is resident, so this is a
                # warm answer without a cold dispatch.
                second = await daemon.handle(
                    dict(MEMBER_REQ, id="m2", at=[{"i": 0, "j": 0}])
                )
                third = await daemon.handle(
                    {
                        "id": "m3",
                        "kind": "member",
                        "formula": "0 <= a <= 8 and 0 <= b <= 8 and a + b <= 8",
                        "over": ["a", "b"],
                        "at": [{"a": 4, "b": 4}],
                    }
                )
                snapshot = daemon.metrics.snapshot()
                return first, second, third, snapshot
            finally:
                await daemon.drain()

        first, second, third, snapshot = run(scenario())
        assert first["ok"] and first["tier"] == "cold"
        assert [p["value"] for p in first["points"]] == [True, False]
        assert second["ok"] and second["tier"] == "warm"
        assert third["ok"] and third["tier"] == "warm"  # alpha-renamed
        assert snapshot["counters"]["automaton_hits"] == 2
        assert snapshot["counters"]["cold_jobs"] == 1
        assert snapshot["hit_rates"]["warm"] == pytest.approx(2 / 3)

    def test_count_below_values_and_warm_reuse(self):
        async def scenario():
            daemon = make_daemon()
            try:
                first = await daemon.handle(dict(BELOW_REQ))
                second = await daemon.handle(
                    dict(BELOW_REQ, id="b2", bound=16, lo=4)
                )
                return first, second
            finally:
                await daemon.drain()

        first, second = run(scenario())
        want = sum(
            1
            for i, j in itertools.product(range(16), repeat=2)
            if (i + j) % 2 == 0 and i <= 2 * j
        )
        want_lo = sum(
            1
            for i, j in itertools.product(range(4, 16), repeat=2)
            if (i + j) % 2 == 0 and i <= 2 * j
        )
        assert first["tier"] == "cold" and first["result"] == str(want)
        assert second["tier"] == "warm" and second["result"] == str(want_lo)

    def test_bad_member_point_is_structured_error(self):
        async def scenario():
            daemon = make_daemon()
            try:
                return await daemon.handle(
                    dict(MEMBER_REQ, at=[{"i": 1}])
                )
            finally:
                await daemon.drain()

        response = run(scenario())
        assert not response["ok"]
        assert response["error"]["kind"] == "bad_request"

    def test_disk_cache_write_through(self, tmp_path):
        async def scenario():
            config = ServeConfig(
                cache_path=str(tmp_path / "serve-cache.sqlite")
            )
            daemon = CountingDaemon(config)
            daemon.start()
            try:
                await daemon.handle(dict(MEMBER_REQ))
                await daemon.handle(dict(MEMBER_REQ, id="again"))
                return daemon.metrics.snapshot()
            finally:
                await daemon.drain()

        snapshot = run(scenario())
        # The identical request is a plain disk-cache warm hit, not a
        # second automaton query or cold dispatch.
        assert snapshot["counters"]["warm_hits"] == 1
        assert snapshot["counters"]["cold_jobs"] == 1

    def test_kinds_constant(self):
        assert AUTOMATON_KINDS == ("member", "count_below")


class TestHttpPaths:
    def test_job_paths_include_new_kinds(self):
        assert "/member" in _JOB_PATHS
        assert "/count_below" in _JOB_PATHS

    def test_member_over_http(self):
        async def scenario():
            daemon = make_daemon()
            front = HttpFrontend(daemon, port=0)
            await front.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", front.port
                )
                import json as _json

                body = _json.dumps(
                    {k: v for k, v in MEMBER_REQ.items() if k != "kind"}
                ).encode()
                writer.write(
                    b"POST /member HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                status = (await reader.readline()).split()[1]
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                doc = _json.loads(await reader.readexactly(length))
                writer.close()
                return int(status), doc
            finally:
                await front.stop()
                await daemon.drain()

        status, doc = run(scenario())
        assert status == 200
        assert doc["ok"] and doc["kind"] == "member"
        assert [p["value"] for p in doc["points"]] == [True, False]


class TestMetricsAndLoadgen:
    def test_counter_registered(self):
        assert "automaton_hits" in COUNTER_NAMES

    def test_base_requests_cover_new_kinds(self):
        kinds = {obj["kind"] for obj in DEFAULT_BASE_REQUESTS}
        assert {"member", "count_below"} <= kinds

    def test_alpha_variant_renames_member_points(self):
        import random

        variant = alpha_variant(dict(MEMBER_REQ), random.Random(7))
        assert set(variant["over"]) != set(MEMBER_REQ["over"])
        for env in variant["at"]:
            assert set(env) == set(variant["over"])
        # Same canonical identity as the original spelling.
        assert (
            JobRequest.from_json(variant).content_hash()
            == JobRequest.from_json(dict(MEMBER_REQ)).content_hash()
        )

    def test_loadgen_inprocess_pass_is_clean(self):
        requests = build_requests(
            [dict(MEMBER_REQ), dict(BELOW_REQ)], 12, rename_mix=0.5, seed=3
        )
        results = run(
            run_inprocess(requests, clients=3, config=ServeConfig(cache_path=None))
        )
        summary, _records = results[0]
        assert summary["errors"] == 0
        assert summary["ok"] == 12
        snapshot = summary["serve"]
        assert snapshot["counters"]["automaton_hits"] >= 1
