"""The shard router: routing, fleet coalescing, replica, supervision.

In-process scenarios inject workers that wrap real
:class:`~repro.serve.daemon.CountingDaemon` instances (each pinned to
its keyspace slice, exactly as the supervisor pins subprocesses), so
the router's routing/coalescing/replica logic is exercised against the
true daemon serve path without process overhead.  One end-to-end test
drives the real ``python -m repro shardserve`` subprocess topology:
ready line, HTTP serving, worker kill -> supervised restart with no
failed requests, SIGTERM drain fan-out.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.daemon import CountingDaemon, ServeConfig
from repro.serve.http import response_status
from repro.service.batch import VOLATILE_RESPONSE_KEYS
from repro.service.request import JobRequest
from repro.shard.config import ShardConfig, shard_of
from repro.shard.router import ShardRouter

COUNT_REQ = {
    "id": "tri",
    "kind": "count",
    "formula": "1 <= i and i < j and j <= n",
    "over": ["i", "j"],
}

#: Alpha-renamed spellings: identical canonical hash, distinct ids.
VARIANTS = [
    dict(
        COUNT_REQ,
        id="v%d" % k,
        formula="1 <= %s and %s < %s and %s <= n" % (a, a, b, b),
        over=[a, b],
    )
    for k, (a, b) in enumerate(
        [("i", "j"), ("p", "q"), ("x", "y"), ("aa", "bb"),
         ("u", "w"), ("s", "t"), ("c", "d"), ("e", "f")]
    )
]


def stable(response):
    return {
        k: v
        for k, v in response.items()
        if k not in VOLATILE_RESPONSE_KEYS and k != "id"
    }


class InProcWorker:
    """A router worker backed by an in-process sliced daemon."""

    def __init__(self, index, config: ShardConfig):
        self.index = index
        self.daemon = CountingDaemon(
            ServeConfig(
                cache_path=None,
                shard_index=index,
                shard_count=config.shards,
                shard_bits=config.prefix_bits,
            )
        )
        self.ready = asyncio.Event()
        self.port = None
        self.restarts = 0

    async def start(self):
        self.daemon.start()
        self.ready.set()

    async def stop(self):
        self.ready.clear()
        await self.daemon.drain()

    async def post(self, obj, tenant="", path="/job"):
        response = await self.daemon.handle(obj, tenant)
        return response_status(response), response

    async def get(self, path):
        if path == "/stats":
            return {
                "sat_calls": 0,
                "serve": self.daemon.metrics.snapshot(),
            }
        return None


def run_scenario(coro_fn, **config_kw):
    """Build a router over in-process sliced daemons, run, drain."""
    config_kw.setdefault("shards", 3)

    async def wrapper():
        config = ShardConfig(**config_kw)
        workers = [InProcWorker(i, config) for i in range(config.shards)]
        for worker in workers:
            await worker.start()
        router = ShardRouter(config, workers=workers)
        await router.start()
        try:
            return await coro_fn(router)
        finally:
            await router.drain()

    return asyncio.run(wrapper())


class TestRouting:
    def test_request_lands_on_its_owner_shard(self):
        async def scenario(router):
            response = await router.handle(dict(COUNT_REQ))
            return response

        response = run_scenario(scenario)
        key = JobRequest.from_json(dict(COUNT_REQ)).content_hash()
        assert response["ok"]
        assert response["tier"] == "cold"
        assert response["shard"] == shard_of(key, 3)

    def test_alpha_variants_route_to_one_shard(self):
        async def scenario(router):
            responses = [
                await router.handle(dict(v)) for v in VARIANTS[:4]
            ]
            cold = sum(
                w.daemon.metrics.counters["cold_jobs"]
                for w in router.workers
            )
            return responses, cold

        responses, cold = run_scenario(scenario)
        assert len({r["shard"] for r in responses}) == 1
        assert cold == 1  # first was cold; the rest replica-warm
        assert all(r["ok"] for r in responses)
        assert len({json.dumps(stable(r), sort_keys=True)
                    for r in responses}) == 1

    def test_misrouting_is_impossible_by_construction(self):
        """Router and daemon derive ownership from the same hash, so
        no request ever trips the daemon's misrouted refusal."""
        async def scenario(router):
            for k in range(10):
                obj = {
                    "id": "r%d" % k,
                    "kind": "count",
                    "formula": "1 <= i <= %d" % (k + 2),
                    "over": ["i"],
                }
                response = await router.handle(obj)
                assert response["ok"], response
            return [
                w.daemon.metrics.counters["misrouted"]
                for w in router.workers
            ]

        assert run_scenario(scenario) == [0, 0, 0]


class TestFleetCoalescing:
    def test_burst_costs_one_computation_fleet_wide(self):
        async def scenario(router):
            responses = await asyncio.gather(
                *(router.handle(dict(v)) for v in VARIANTS)
            )
            cold = sum(
                w.daemon.metrics.counters["cold_jobs"]
                for w in router.workers
            )
            return responses, cold, dict(router.metrics.counters)

        responses, cold, counters = run_scenario(scenario)
        assert cold == 1
        assert all(r["ok"] for r in responses)
        tiers = sorted(r["tier"] for r in responses)
        assert tiers.count("coalesced") == 7
        assert counters["coalesced"] == 7
        assert counters["forwarded"] == 1
        # Every waiter got its own id back, not the originator's.
        assert sorted(r["id"] for r in responses) == sorted(
            v["id"] for v in VARIANTS
        )
        assert len({json.dumps(stable(r), sort_keys=True)
                    for r in responses}) == 1


class TestReplica:
    def test_settled_answers_serve_warm_from_the_router(self):
        async def scenario(router):
            first = await router.handle(dict(COUNT_REQ))
            second = await router.handle(dict(COUNT_REQ, id="again"))
            return first, second, dict(router.metrics.counters)

        first, second, counters = run_scenario(scenario)
        assert first["tier"] == "cold"
        assert second["tier"] == "warm" and second["cached"] is True
        assert second["id"] == "again"
        assert second["shard"] == first["shard"]
        assert counters["replica_hits"] == 1
        assert stable(first) == stable(second)

    def test_replica_disabled_still_serves_warm_from_the_shard(self):
        async def scenario(router):
            first = await router.handle(dict(COUNT_REQ))
            second = await router.handle(dict(COUNT_REQ, id="again"))
            return first, second, dict(router.metrics.counters)

        # Workers have no disk store here, so the warm answer comes
        # from the owner's in-daemon artifact/automaton machinery or a
        # fresh cold run; either way the router must not require a
        # replica for correctness.
        first, second, counters = run_scenario(scenario, replica=False)
        assert counters["replica_hits"] == 0
        assert first["ok"] and second["ok"]
        assert stable(first) == stable(second)

    def test_errors_are_not_replicated(self):
        async def scenario(router):
            bad = {
                "id": "b",
                "kind": "count",
                "formula": "1 <= i <=",  # parse error in the worker
                "over": ["i"],
            }
            first = await router.handle(bad)
            second = await router.handle(dict(bad, id="b2"))
            return first, second

        first, second = run_scenario(scenario)
        assert not first["ok"] and not second["ok"]
        # The second failed again at a shard, not from the replica.
        assert second["tier"] != "warm"


class TestParityWithSingleDaemon:
    def test_byte_identical_modulo_volatile_keys(self):
        requests = [dict(COUNT_REQ)] + [
            {
                "id": "sum",
                "kind": "sum",
                "formula": "1 <= i <= n",
                "over": ["i"],
                "poly": "i*i",
            },
            {
                "id": "mem",
                "kind": "member",
                "formula": "0 <= i <= 9 and 2 | i",
                "over": ["i"],
                "at": [{"i": 4}, {"i": 5}],
            },
            {
                "id": "simp",
                "kind": "simplify",
                "formula": "x >= 1 and x >= 0 and (x <= 5 or x <= 9)",
            },
        ]

        async def sharded(router):
            return [await router.handle(dict(o)) for o in requests]

        async def single():
            daemon = CountingDaemon(ServeConfig(cache_path=None))
            daemon.start()
            try:
                return [await daemon.handle(dict(o)) for o in requests]
            finally:
                await daemon.drain()

        routed = run_scenario(sharded)
        direct = asyncio.run(single())
        for a, b in zip(routed, direct):
            assert stable(a) == stable(b)


class TestFrontDoor:
    def test_front_errors_and_shedding(self):
        async def scenario(router):
            not_object = await router.handle([1, 2, 3])
            bad_kind = await router.handle({"id": "x", "kind": "nope"})
            parse = await router.handle(
                {"id": "p", "kind": "count", "formula": "1 <=", "over": ["i"]}
            )
            router._draining = True
            shed = await router.handle(dict(COUNT_REQ))
            router._draining = False
            return not_object, bad_kind, parse, shed

        not_object, bad_kind, parse, shed = run_scenario(scenario)
        assert not not_object["ok"]
        assert not bad_kind["ok"]
        assert parse["error"]["kind"] == "parse_error"
        assert shed["error"]["kind"] == "overloaded"
        assert response_status(shed) == 429

    def test_queue_limit_sheds(self):
        async def scenario(router):
            release = asyncio.Event()

            async def slow_post(obj, tenant="", path="/job"):
                await release.wait()
                return 200, {"id": obj.get("id"), "ok": True}

            for worker in router.workers:
                worker.post = slow_post
            distinct = [
                {
                    "id": "q%d" % k,
                    "kind": "count",
                    "formula": "1 <= i <= %d" % (k + 2),
                    "over": ["i"],
                }
                for k in range(3)
            ]
            tasks = [
                asyncio.ensure_future(router.handle(o)) for o in distinct[:2]
            ]
            await asyncio.sleep(0.05)  # both flights registered
            shed = await router.handle(distinct[2])
            release.set()
            done = await asyncio.gather(*tasks)
            return shed, done

        shed, done = run_scenario(scenario, queue_limit=2)
        assert shed["error"]["kind"] == "overloaded"
        assert all(r["ok"] for r in done)


class TestFleetStats:
    def test_healthz_and_merged_stats(self):
        async def scenario(router):
            for v in VARIANTS[:3]:
                await router.handle(dict(v))
            health = router.healthz()
            snap = await router.stats_snapshot()
            return health, snap

        health, snap = run_scenario(scenario)
        assert health["ok"] and health["shards_ready"] == 3
        assert snap["serve"]["merged_from"] == 3
        # Fleet-wide: 1 cold; shards saw only the forwarded request.
        assert snap["serve"]["counters"]["cold_jobs"] == 1
        assert snap["router"]["counters"]["requests"] == 3
        assert set(snap["shards"]) == {"0", "1", "2"}
        assert snap["router"]["replica"]["entries"] == 1


SUBPROCESS_TIMEOUT = 120


def _wait_line(stream, needle, timeout=60):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            time.sleep(0.05)
            continue
        text = line.decode("utf-8", "replace")
        lines.append(text)
        if needle in text:
            return text, lines
    raise AssertionError(
        "never saw %r in:\n%s" % (needle, "".join(lines))
    )


class TestShardserveSubprocess:
    def test_end_to_end_with_kill_and_drain(self, tmp_path):
        """The full topology: ready line, HTTP serving, a worker kill
        followed by supervised restart with zero failed requests, and
        a SIGTERM drain fan-out."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src")
        )
        env["REPRO_SERVE_WORKERS"] = "1"
        env.pop("REPRO_SHARD_INDEX", None)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "shardserve",
                "--shards",
                "2",
                "--http-port",
                "0",
                "--cache-dir",
                str(tmp_path / "shards"),
                "--health-interval",
                "0.3",
            ],
            stderr=subprocess.PIPE,
            cwd=str(tmp_path),
            env=env,
        )
        try:
            ready, _ = _wait_line(
                proc.stderr, "router listening", SUBPROCESS_TIMEOUT
            )
            port = int(ready.split("http://127.0.0.1:")[1].split(" ")[0])

            from repro.serve.loadgen import build_requests, run_http

            url = "http://127.0.0.1:%d" % port
            requests = build_requests(
                [
                    {
                        "id": "e2e",
                        "kind": "count",
                        "formula": "1 <= i <= n and 2 | i",
                        "over": ["i"],
                    },
                    dict(COUNT_REQ),
                ],
                8,
                rename_mix=0.5,
                seed=3,
            )
            summary, _records = asyncio.run(run_http(url, requests, 4))
            assert summary["errors"] == 0
            assert summary["fleet"]["duplicate_computations"] == 0

            # Kill one worker; the supervisor must restart it and the
            # next pass must still see zero errors.
            out = subprocess.run(
                ["pgrep", "-f", "repro serve --host"],
                stdout=subprocess.PIPE,
                check=True,
            )
            worker_pid = int(out.stdout.split()[0])
            os.kill(worker_pid, signal.SIGKILL)
            _wait_line(proc.stderr, "restarting", SUBPROCESS_TIMEOUT)
            _wait_line(proc.stderr, "ready on", SUBPROCESS_TIMEOUT)

            summary2, _records = asyncio.run(run_http(url, requests, 4))
            assert summary2["errors"] == 0
            # Stores are shared + persistent: nothing recomputes cold.
            assert summary2["fleet"]["cold_responses"] == 0

            proc.send_signal(signal.SIGTERM)
            _wait_line(proc.stderr, "shardserve: drained", SUBPROCESS_TIMEOUT)
            assert proc.wait(timeout=SUBPROCESS_TIMEOUT) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
