"""Golden pins for the canonicalizer extraction (repro.core.canon).

The request-hash canonicalizer moved from ``repro.service.request``
into the shared ``repro.core.canon`` module so the answer memo could
reuse the signature-refinement machinery.  The serialized canonical
form is a persistent cache key, so the move must be byte-preserving:
these hashes were computed with the pre-extraction code and pin both
the canonical form and the schema version.  If one of them changes,
either bump ``REQUEST_SCHEMA_VERSION`` (invalidating every on-disk
cache, deliberately) or fix the regression -- never re-pin silently.
"""

import pytest

from repro.service.request import JobRequest, REQUEST_SCHEMA_VERSION

GOLDEN = [
    ("count", "1 <= i <= n and 1 <= j <= i", ["i", "j"], None,
     "bcbba5d5aa9dfa6930d8b029b61b1210d84c7c4778ebd7c2ce559fa1b5f601c6"),
    ("count", "exists k: 1 <= i <= n and i = 2*k", ["i"], None,
     "f93875a805557e6a2a9f70f13a30f2ba4b888105bd4e64b1f6a7d28ef647ddaa"),
    ("sum", "1 <= i <= n and 1 <= j <= m and 3*j <= 2*i + n", ["i", "j"], "i*j",
     "9b486ad5e911e6f44335ec86cc9b028ff48005863b84ccbf1c02d4c04b457618"),
    ("simplify", "x >= 9 or x <= 1", [], None,
     "23c2527d5baca0a43f8cd8e72262dc0442d8b19f908998476bd19360b9d585ef"),
    ("count", "0 <= x <= n and 0 <= y <= m and 7*x + 3*y <= 5*n and 2 | x",
     ["x", "y"], None,
     "5e98700412ecf7bb74ab9577e20b103cb9716eb5603bfbb01920d017a0f8983d"),
]


@pytest.mark.parametrize("kind,formula,over,poly,expected", GOLDEN)
def test_content_hash_is_pinned(kind, formula, over, poly, expected):
    req = JobRequest(kind, formula, over=over, poly=poly)
    assert req.content_hash() == expected


def test_schema_version_unchanged_by_extraction():
    # The canonical form did not change when the canonicalizer moved to
    # repro.core.canon, so the schema version must not have moved either.
    assert REQUEST_SCHEMA_VERSION == 3


def test_request_module_reexports_canonicalizer():
    # Public API stability: clients that imported the canonicalizer
    # from the service module keep working.
    from repro.core import canon
    from repro.service import request

    assert request.canonical_formula_key is canon.canonical_formula_key
    assert "canonical_formula_key" in request.__all__


def test_formula_key_invariant_under_bound_renaming():
    from repro.presburger.parser import parse
    from repro.service.request import canonical_formula_key

    key_a, _ = canonical_formula_key(
        parse("1 <= i <= n and 1 <= j <= i"), ("i", "j")
    )
    key_b, _ = canonical_formula_key(
        parse("1 <= p <= n and 1 <= q <= p"), ("p", "q")
    )
    key_c, _ = canonical_formula_key(
        parse("1 <= i <= m and 1 <= j <= i"), ("i", "j")
    )
    assert key_a == key_b  # bound names canonicalized away
    assert key_a != key_c  # free symbols keep their names
