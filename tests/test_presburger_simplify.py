"""Formula simplification tests (§2.6), including the paper's example."""

from conftest import assert_clauses_cover, enumerate_formula
from repro.presburger.parser import parse
from repro.presburger.simplify import (
    clause_union_equivalent,
    formula_implies,
    formulas_equivalent,
    simplify,
)
from repro.presburger.dnf import to_dnf


class TestSimplify:
    def test_drops_infeasible_clause(self):
        f = parse("(x >= 5 and x <= 3) or x = 7")
        out = simplify(f)
        assert len(out) == 1

    def test_removes_redundant_constraints(self):
        f = parse("x >= 0 and x >= 3 and x <= 10 and x <= 20")
        (clause,) = simplify(f)
        assert len(clause.constraints) == 2

    def test_subsumed_clause_removed(self):
        f = parse("(1 <= x <= 10) or (3 <= x <= 5)")
        out = simplify(f)
        assert len(out) == 1

    def test_section_2_6_example(self):
        """The paper's §2.6 formula simplifies to two clauses
        equivalent to (1 = i' = i <= 2n) ∨ (1 <= i' = i = 2n);
        the paper reports 12ms on a 1992 SPARC IPX."""
        f = parse(
            "1 <= i <= 2*n and 1 <= ip <= 2*n and i = ip and "
            "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
            "     i2 <= i and i2 = ip and 2*j2 = i2) and "
            "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
            "     i2 <= i and i2 = ip and 2*j2 + 1 = i2)"
        )
        out = simplify(f)
        assert len(out) == 2
        expected = parse(
            "(i = ip and ip = 1 and 1 <= 2*n) or (i = ip and ip = 2*n and 1 <= ip)"
        )
        assert clause_union_equivalent(out, to_dnf(expected))

    def test_disjoint_mode(self):
        f = parse("(1 <= x <= 10) or (5 <= x <= 15)")
        out = simplify(f, disjoint=True)
        want = enumerate_formula(f, ("x",), 20)
        assert_clauses_cover(out, want, ("x",), box=20, disjoint=True)


class TestEquivalence:
    def test_equivalent_rewrites(self):
        assert formulas_equivalent(
            parse("2*x >= 4"), parse("x >= 2")
        )

    def test_not_equivalent(self):
        assert not formulas_equivalent(parse("x >= 2"), parse("x >= 3"))

    def test_quantified_equivalence(self):
        assert formulas_equivalent(
            parse("exists a: x = 2*a and 1 <= a <= 3"),
            parse("(x = 2 or x = 4 or x = 6)"),
        )

    def test_demorgan(self):
        assert formulas_equivalent(
            parse("not (x >= 1 and y >= 1)"),
            parse("x <= 0 or y <= 0"),
        )

    def test_implies(self):
        assert formula_implies(parse("x = 4"), parse("2 | x"))
        assert not formula_implies(parse("2 | x"), parse("x = 4"))
