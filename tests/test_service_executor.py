"""Executor: per-job payloads, timeouts, budgets, crash retry."""

import pytest

from repro.service.executor import (
    BUDGET_EXCEEDED,
    PARSE_ERROR,
    TIMEOUT,
    WORKER_CRASH,
    JobError,
    execute_request,
    run_jobs,
)
from repro.service.request import JobRequest

# Hook-marked formulas must still parse (hashing happens in the parent)
# and must be structurally distinct from the healthy jobs, or the
# alpha-invariant dedup would fold them together.
SLEEP_FORMULA = "1 <= sleepy_marker and sleepy_marker <= n + 7"
POISON_FORMULA = "1 <= poison_marker and poison_marker <= n + 13"


class TestExecuteRequest:
    def test_count_payload(self):
        req = JobRequest(
            "count",
            "1 <= i and i < j and j <= n",
            over=["i", "j"],
            at=[{"n": 10}],
        )
        payload = execute_request(req)
        assert payload["kind"] == "count"
        assert "n**2" in payload["result"]
        assert payload["points"] == [{"at": {"n": 10}, "value": 45}]
        assert payload["exactness"] == "exact"
        assert "sat_calls" in payload["stats"]
        assert isinstance(payload["result_json"], dict)

    def test_sum_payload(self):
        req = JobRequest(
            "sum", "1 <= i <= n", over=["i"], poly="i*i", at=[{"n": 100}]
        )
        payload = execute_request(req)
        assert payload["points"][0]["value"] == 338350

    def test_simplify_payload(self):
        req = JobRequest("simplify", "x >= 1 and x >= 0 and x <= 9")
        payload = execute_request(req)
        assert payload["result"] == "x - 1 >= 0 and -x + 9 >= 0"
        assert payload["clauses"] == ["x - 1 >= 0 and -x + 9 >= 0"]

    def test_parse_error_is_structured(self):
        req = JobRequest("count", "1 <= i <= ===", over=["i"])
        with pytest.raises(JobError) as exc_info:
            execute_request(req)
        assert exc_info.value.kind == PARSE_ERROR


class TestRunJobs:
    def test_outcomes_in_input_order(self):
        reqs = [
            JobRequest("count", "1 <= i <= n", over=["i"], id="a"),
            JobRequest("simplify", "x >= 1 and x >= 0", id="b"),
        ]
        outcomes = run_jobs(reqs, workers=2)
        assert [o["ok"] for o in outcomes] == [True, True]
        assert outcomes[0]["payload"]["kind"] == "count"
        assert outcomes[1]["payload"]["kind"] == "simplify"
        assert all(o["attempts"] == 1 for o in outcomes)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_jobs([], workers=0)

    def test_timeout_is_structured_and_batch_completes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_SLEEP", "sleepy_marker")
        reqs = [
            JobRequest("count", SLEEP_FORMULA, over=["sleepy_marker"], timeout=0.3),
            JobRequest("count", "1 <= i <= n", over=["i"]),
        ]
        outcomes = run_jobs(reqs, workers=2, default_timeout=30.0)
        assert outcomes[0]["ok"] is False
        assert outcomes[0]["error"]["kind"] == TIMEOUT
        assert outcomes[1]["ok"] is True

    def test_crash_is_retried_once_then_structured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_POISON", "poison_marker")
        reqs = [
            JobRequest("count", POISON_FORMULA, over=["poison_marker"]),
            JobRequest("count", "1 <= i <= n", over=["i"]),
        ]
        outcomes = run_jobs(reqs, workers=2)
        assert outcomes[0]["ok"] is False
        assert outcomes[0]["error"]["kind"] == WORKER_CRASH
        assert outcomes[0]["attempts"] == 2
        assert "86" in outcomes[0]["error"]["message"]
        assert outcomes[1]["ok"] is True

    def test_transient_crash_retry_succeeds(self, tmp_path, monkeypatch):
        # A worker killed once recovers on retry: the flag file makes
        # only the first attempt die, so the job must come back ok
        # with attempts == 2 while the rest of the batch is untouched.
        flag = tmp_path / "died_once"
        monkeypatch.setenv(
            "REPRO_SERVICE_POISON_ONCE", "poison_marker:%s" % flag
        )
        reqs = [
            JobRequest("count", POISON_FORMULA, over=["poison_marker"]),
            JobRequest("count", "1 <= i <= n", over=["i"]),
        ]
        outcomes = run_jobs(reqs, workers=2)
        assert outcomes[0]["ok"] is True
        assert outcomes[0]["attempts"] == 2
        assert outcomes[1]["ok"] is True
        assert outcomes[1]["attempts"] == 1
        assert flag.exists()

    def test_budget_exceeded_mid_batch_not_retried(self):
        # Budget exhaustion is a deterministic failure: it must be
        # reported after one attempt (retrying would just burn the
        # same budget again) and must not block the jobs around it.
        reqs = [
            JobRequest("count", "1 <= i <= n", over=["i"]),
            JobRequest(
                "count",
                "1 <= i and i < j and j <= n",
                over=["i", "j"],
                budget=1,
            ),
            JobRequest("count", "1 <= k <= m + 2", over=["k"]),
        ]
        outcomes = run_jobs(reqs, workers=2)
        assert outcomes[1]["ok"] is False
        assert outcomes[1]["error"]["kind"] == BUDGET_EXCEEDED
        assert outcomes[1]["attempts"] == 1
        assert outcomes[0]["ok"] is True and outcomes[2]["ok"] is True

    def test_warm_rerun_of_budget_limited_job_completes(self):
        # Budget units are satisfiability-cache *misses*.  A job too
        # hard for budget=1 cold must complete on a warm in-process
        # re-run: every sat query answers from the memo, so the warm
        # run charges zero units against the same exhausted budget.
        from repro.core import stats
        from repro.core.memo import clear_answer_memo, set_answer_memo
        from repro.omega.satisfiability import clear_sat_cache

        req = JobRequest(
            "count", "1 <= i and i < j and j <= n", over=["i", "j"],
            at=[{"n": 10}],
        )
        clear_sat_cache()
        clear_answer_memo()
        # The answer memo would mask the sat cache (the warm run would
        # be answered at the recursion roots); disable it so the warm
        # run actually replays every satisfiability query.
        previous_memo = set_answer_memo(0)
        try:
            budget = stats.set_work_budget(1)
            try:
                with pytest.raises(JobError) as exc_info:
                    execute_request(req)
                assert exc_info.value.kind == BUDGET_EXCEEDED
                stats.set_work_budget(None)
                cold = execute_request(req)  # warm the sat cache
                stats.set_work_budget(1)
                warm = execute_request(req)  # same job, same budget: ok
                assert warm["result"] == cold["result"]
                assert warm["points"] == cold["points"]
                assert stats.budget_spent() == 0
            finally:
                stats.set_work_budget(budget)
        finally:
            set_answer_memo(previous_memo)
            clear_sat_cache()

    def test_budget_exceeded_is_structured(self):
        reqs = [
            JobRequest(
                "count",
                "1 <= i and i < j and j <= n",
                over=["i", "j"],
                budget=1,
            ),
            JobRequest("count", "1 <= i <= n", over=["i"]),
        ]
        outcomes = run_jobs(reqs, workers=1)
        assert outcomes[0]["ok"] is False
        assert outcomes[0]["error"]["kind"] == BUDGET_EXCEEDED
        assert outcomes[1]["ok"] is True

    def test_default_budget_fallback(self):
        outcomes = run_jobs(
            [JobRequest("count", "1 <= i and i < j and j <= n", over=["i", "j"])],
            workers=1,
            default_budget=1,
        )
        assert outcomes[0]["error"]["kind"] == BUDGET_EXCEEDED

    def test_on_outcome_streaming(self):
        seen = []
        run_jobs(
            [
                JobRequest("count", "1 <= i <= n", over=["i"]),
                JobRequest("count", "1 <= i <= m", over=["i"]),
            ],
            workers=1,
            on_outcome=lambda index, outcome: seen.append((index, outcome["ok"])),
        )
        assert sorted(seen) == [(0, True), (1, True)]

    def test_per_job_stats_isolation(self):
        # Two identical jobs must report identical per-job counters --
        # the second worker starts from a clean snapshot, not on top of
        # the first one's.
        reqs = [
            JobRequest("count", "1 <= i and i < j and j <= n", over=["i", "j"]),
            JobRequest("count", "1 <= i and i < k and k <= n + 5", over=["i", "k"]),
            JobRequest("count", "1 <= i and i < j and j <= n", over=["i", "j"]),
        ]
        outcomes = run_jobs(reqs, workers=1)
        first = outcomes[0]["payload"]["stats"]
        third = outcomes[2]["payload"]["stats"]
        assert first["sat_calls"] == third["sat_calls"] > 0
