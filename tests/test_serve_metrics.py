"""Serving observability: histograms, counters, the stats provider."""

import random

import pytest

from repro.core import stats
from repro.serve.metrics import (
    BUCKET_BOUNDS_MS,
    COUNTER_NAMES,
    LatencyHistogram,
    ServeMetrics,
    TIERS,
    merge_latency_snapshots,
    merge_serve_snapshots,
)


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile_ms(0.5) == 0.0
        snap = hist.snapshot()
        assert snap == {
            "count": 0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
            "buckets": [0] * (len(BUCKET_BOUNDS_MS) + 1),
            "total_ms": 0.0,
        }

    def test_quantiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(3.0)  # falls in the (2, 5] bucket
        assert hist.quantile_ms(0.5) == 5.0
        assert hist.quantile_ms(0.99) == 5.0

    def test_p99_lands_in_the_tail_bucket(self):
        hist = LatencyHistogram()
        for _ in range(98):
            hist.observe(0.8)  # (0.5, 1] bucket
        hist.observe(450.0)  # (200, 500] bucket
        hist.observe(450.0)
        assert hist.quantile_ms(0.5) == 1.0
        assert hist.quantile_ms(0.99) == 500.0

    def test_open_last_bucket_reports_exact_max(self):
        hist = LatencyHistogram()
        beyond = BUCKET_BOUNDS_MS[-1] * 2
        hist.observe(beyond)
        assert hist.quantile_ms(0.99) == beyond
        assert hist.snapshot()["max_ms"] == beyond

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.observe(3.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["mean_ms"] == 2.0
        assert snap["max_ms"] == 3.0


def _random_samples(rng, n):
    """Latencies spanning every bucket regime, incl. the open tail."""
    out = []
    for _ in range(n):
        out.append(rng.choice((0.03, 0.7, 3.0, 42.0, 450.0, 80000.0)))
    return out


class TestMergeLatencySnapshots:
    """The /stats merge bug class: aggregation must be associative and
    must equal one histogram that saw the union stream, or the router's
    fleet-wide p50/p99 silently lies."""

    def test_merge_equals_union_histogram(self):
        rng = random.Random(7)
        parts = []
        union = LatencyHistogram()
        for _ in range(4):
            hist = LatencyHistogram()
            for ms in _random_samples(rng, rng.randrange(0, 60)):
                hist.observe(ms)
                union.observe(ms)
            parts.append(hist.snapshot())
        merged = merge_latency_snapshots(parts)
        expected = union.snapshot()
        # Summation order differs, so the raw total compares to within
        # float tolerance; everything else is exactly equal.
        assert merged.pop("total_ms") == pytest.approx(
            expected.pop("total_ms")
        )
        assert merged == expected

    def test_merge_is_associative_and_commutative(self):
        rng = random.Random(11)
        snaps = []
        for _ in range(3):
            hist = LatencyHistogram()
            for ms in _random_samples(rng, 40):
                hist.observe(ms)
            snaps.append(hist.snapshot())
        a, b, c = snaps
        left = merge_latency_snapshots(
            [merge_latency_snapshots([a, b]), c]
        )
        right = merge_latency_snapshots(
            [a, merge_latency_snapshots([b, c])]
        )
        flat = merge_latency_snapshots([a, b, c])
        assert left == right == flat
        assert merge_latency_snapshots([c, a, b]) == flat

    def test_merge_of_nothing_is_empty(self):
        merged = merge_latency_snapshots([])
        assert merged["count"] == 0
        assert merged["p50_ms"] == 0.0 and merged["p99_ms"] == 0.0

    def test_legacy_snapshot_without_buckets_degrades_gracefully(self):
        legacy = {"count": 5, "mean_ms": 2.0, "max_ms": 4.0}
        merged = merge_latency_snapshots([legacy])
        assert merged["count"] == 5
        # Position unknown -> the open tail bucket, quantile = max.
        assert merged["buckets"][-1] == 5
        assert merged["p99_ms"] == 4.0

    def test_serve_snapshot_merge_is_associative(self):
        rng = random.Random(3)
        snaps = []
        for k in range(3):
            m = ServeMetrics()
            m.bump("requests", rng.randrange(1, 50))
            m.bump("cold_jobs", rng.randrange(0, 20))
            m.bump("warm_hits", rng.randrange(0, 20))
            for ms in _random_samples(rng, 25):
                m.observe(rng.choice(TIERS), ms)
            m.queue_probe = (lambda k=k: k)
            snaps.append(m.snapshot())
        a, b, c = snaps

        def strip(doc):
            doc = dict(doc)
            # uptime is wall-clock (max, not sum) and merged_from is
            # merge-tree-shaped; neither claims associativity.  Raw
            # totals (and the mean derived from them) are summed in
            # different orders, so they compare separately to within
            # float tolerance.
            doc.pop("uptime_seconds", None)
            doc.pop("merged_from", None)
            doc["tiers"] = {
                tier: {
                    k: v
                    for k, v in hist.items()
                    if k not in ("total_ms", "mean_ms")
                }
                for tier, hist in doc["tiers"].items()
            }
            return doc

        nested = merge_serve_snapshots([merge_serve_snapshots([a, b]), c])
        flat = merge_serve_snapshots([a, b, c])
        assert strip(nested) == strip(flat)
        for tier in TIERS:
            assert nested["tiers"][tier]["total_ms"] == pytest.approx(
                flat["tiers"][tier]["total_ms"]
            )
        assert flat["queue_depth"] == 0 + 1 + 2
        assert flat["counters"]["requests"] == sum(
            s["counters"]["requests"] for s in snaps
        )
        # Hit rates re-derive from merged counters, same rule as live.
        assert set(flat["hit_rates"]) == {"warm", "coalesced", "cold"}


class TestServeMetrics:
    def test_snapshot_schema_is_complete_when_idle(self):
        snap = ServeMetrics().snapshot()
        assert set(snap["counters"]) == set(COUNTER_NAMES)
        assert all(v == 0 for v in snap["counters"].values())
        assert set(snap["tiers"]) == set(TIERS)
        assert snap["queue_depth"] == 0
        assert snap["uptime_seconds"] >= 0.0
        assert snap["hit_rates"] == {
            "warm": 0.0,
            "coalesced": 0.0,
            "cold": 0.0,
        }

    def test_hit_rates_partition_answered_requests(self):
        m = ServeMetrics()
        m.bump("warm_hits", 6)
        m.bump("artifact_hits", 2)
        m.bump("coalesced", 1)
        m.bump("cold_jobs", 1)
        m.bump("shed", 5)  # refused -> not in the denominator
        rates = m.hit_rates()
        assert rates["warm"] == 0.8
        assert rates["coalesced"] == 0.1
        assert rates["cold"] == 0.1
        assert abs(sum(rates.values()) - 1.0) < 1e-9

    def test_queue_probe(self):
        m = ServeMetrics()
        m.queue_probe = lambda: 7
        assert m.queue_depth() == 7
        assert m.snapshot()["queue_depth"] == 7

    def test_observe_feeds_the_right_tier(self):
        m = ServeMetrics()
        m.observe("warm", 0.3)
        m.observe("cold", 120.0)
        snap = m.snapshot()
        assert snap["tiers"]["warm"]["count"] == 1
        assert snap["tiers"]["cold"]["count"] == 1
        assert snap["tiers"]["coalesced"]["count"] == 0


class TestStatsProvider:
    def test_engine_snapshot_gains_serve_key(self):
        m = ServeMetrics()
        m.bump("requests", 3)
        previous = stats.set_serve_stats_provider(m.snapshot)
        try:
            snap = stats.engine_snapshot()
            assert snap["serve"]["counters"]["requests"] == 3
        finally:
            stats.set_serve_stats_provider(previous)
        assert "serve" not in stats.engine_snapshot()

    def test_provider_errors_are_swallowed(self):
        def broken():
            raise RuntimeError("boom")

        previous = stats.set_serve_stats_provider(broken)
        try:
            snap = stats.engine_snapshot()
            assert "serve" not in snap
            assert "sat_calls" in snap  # the rest of the snapshot intact
        finally:
            stats.set_serve_stats_provider(previous)
