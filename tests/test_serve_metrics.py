"""Serving observability: histograms, counters, the stats provider."""

from repro.core import stats
from repro.serve.metrics import (
    BUCKET_BOUNDS_MS,
    COUNTER_NAMES,
    LatencyHistogram,
    ServeMetrics,
    TIERS,
)


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile_ms(0.5) == 0.0
        snap = hist.snapshot()
        assert snap == {
            "count": 0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_quantiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(3.0)  # falls in the (2, 5] bucket
        assert hist.quantile_ms(0.5) == 5.0
        assert hist.quantile_ms(0.99) == 5.0

    def test_p99_lands_in_the_tail_bucket(self):
        hist = LatencyHistogram()
        for _ in range(98):
            hist.observe(0.8)  # (0.5, 1] bucket
        hist.observe(450.0)  # (200, 500] bucket
        hist.observe(450.0)
        assert hist.quantile_ms(0.5) == 1.0
        assert hist.quantile_ms(0.99) == 500.0

    def test_open_last_bucket_reports_exact_max(self):
        hist = LatencyHistogram()
        beyond = BUCKET_BOUNDS_MS[-1] * 2
        hist.observe(beyond)
        assert hist.quantile_ms(0.99) == beyond
        assert hist.snapshot()["max_ms"] == beyond

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.observe(3.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["mean_ms"] == 2.0
        assert snap["max_ms"] == 3.0


class TestServeMetrics:
    def test_snapshot_schema_is_complete_when_idle(self):
        snap = ServeMetrics().snapshot()
        assert set(snap["counters"]) == set(COUNTER_NAMES)
        assert all(v == 0 for v in snap["counters"].values())
        assert set(snap["tiers"]) == set(TIERS)
        assert snap["queue_depth"] == 0
        assert snap["uptime_seconds"] >= 0.0
        assert snap["hit_rates"] == {
            "warm": 0.0,
            "coalesced": 0.0,
            "cold": 0.0,
        }

    def test_hit_rates_partition_answered_requests(self):
        m = ServeMetrics()
        m.bump("warm_hits", 6)
        m.bump("artifact_hits", 2)
        m.bump("coalesced", 1)
        m.bump("cold_jobs", 1)
        m.bump("shed", 5)  # refused -> not in the denominator
        rates = m.hit_rates()
        assert rates["warm"] == 0.8
        assert rates["coalesced"] == 0.1
        assert rates["cold"] == 0.1
        assert abs(sum(rates.values()) - 1.0) < 1e-9

    def test_queue_probe(self):
        m = ServeMetrics()
        m.queue_probe = lambda: 7
        assert m.queue_depth() == 7
        assert m.snapshot()["queue_depth"] == 7

    def test_observe_feeds_the_right_tier(self):
        m = ServeMetrics()
        m.observe("warm", 0.3)
        m.observe("cold", 120.0)
        snap = m.snapshot()
        assert snap["tiers"]["warm"]["count"] == 1
        assert snap["tiers"]["cold"]["count"] == 1
        assert snap["tiers"]["coalesced"]["count"] == 0


class TestStatsProvider:
    def test_engine_snapshot_gains_serve_key(self):
        m = ServeMetrics()
        m.bump("requests", 3)
        previous = stats.set_serve_stats_provider(m.snapshot)
        try:
            snap = stats.engine_snapshot()
            assert snap["serve"]["counters"]["requests"] == 3
        finally:
            stats.set_serve_stats_provider(previous)
        assert "serve" not in stats.engine_snapshot()

    def test_provider_errors_are_swallowed(self):
        def broken():
            raise RuntimeError("boom")

        previous = stats.set_serve_stats_provider(broken)
        try:
            snap = stats.engine_snapshot()
            assert "serve" not in snap
            assert "sat_calls" in snap  # the rest of the snapshot intact
        finally:
            stats.set_serve_stats_provider(previous)
