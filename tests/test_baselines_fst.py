"""Inclusion-exclusion baseline tests ([FST91], §4.5.1)."""

from repro.baselines import inclusion_exclusion_count
from repro.baselines.fst import union_count_work
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse


def clauses(text):
    return to_dnf(parse(text))


class TestInclusionExclusion:
    def test_two_intervals(self):
        cs = clauses("(1 <= x <= 10) or (5 <= x <= 15)")
        r, n = inclusion_exclusion_count(cs, ["x"])
        assert n == 3  # P, Q, P∧Q
        assert r.evaluate({}) == 15

    def test_three_clauses_seven_summations(self):
        """The paper: "7 summations are needed for 3 clauses"."""
        cs = clauses("(1 <= x <= 10) or (5 <= x <= 15) or (8 <= x <= 20)")
        r, n = inclusion_exclusion_count(cs, ["x"])
        assert n == 7 == union_count_work(3)
        assert r.evaluate({}) == 20

    def test_exponential_growth(self):
        assert union_count_work(5) == 31
        assert union_count_work(10) == 1023

    def test_symbolic(self):
        cs = clauses("(1 <= x <= n) or (3 <= x <= 8)")
        r, _ = inclusion_exclusion_count(cs, ["x"])
        for n in range(0, 12):
            want = len(set(range(1, n + 1)) | set(range(3, 9)))
            assert r.evaluate(n=n) == want

    def test_agrees_with_disjoint_dnf(self):
        text = "(1 <= x <= 6 and 1 <= y <= 6) or (4 <= x <= 9 and 4 <= y <= 9)"
        cs = clauses(text)
        ie, _ = inclusion_exclusion_count(cs, ["x", "y"])
        ours = count(text, ["x", "y"])
        assert ie.evaluate({}) == ours.evaluate({}) == 63  # 36 + 36 - 9

    def test_disjoint_clauses_cheap(self):
        cs = clauses("(1 <= x <= 3) or (10 <= x <= 12)")
        r, n = inclusion_exclusion_count(cs, ["x"])
        assert r.evaluate({}) == 6
        assert n == 3  # the empty intersection still counts as work

    def test_sor_stencil_growth(self):
        """5 overlapping shifted copies (the SOR refs) need 31
        inclusion-exclusion summations; disjoint DNF is the fix."""
        base = "2 <= i <= 9 and 2 <= j <= 9"
        shifts = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
        text = " or ".join(
            "(exists i, j: %s and x = i + %d and y = j + %d)" % (base, a, b)
            for a, b in shifts
        )
        cs = clauses(text)
        assert len(cs) == 5
        r, n = inclusion_exclusion_count(cs, ["x", "y"])
        assert n == 31
        want = len(
            {
                (i + a, j + b)
                for i in range(2, 10)
                for j in range(2, 10)
                for a, b in shifts
            }
        )
        assert r.evaluate({}) == want
