"""Top-level API tests: general sums, strategies, bounds (§4.5, §4.6)."""

import pytest

from conftest import brute_count, grid
from repro.core import Strategy, SumOptions, count, sum_poly
from repro.core.general import count_bounds, count_conjunct
from repro.core.options import DEFAULT_OPTIONS
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse


class TestGeneralSums:
    def test_union_counted_once(self):
        # overlapping clauses must not double count (§4.5.1)
        text = "(1 <= x <= 10) or (5 <= x <= 15)"
        r = count(text, ["x"])
        assert r.evaluate({}) == 15

    def test_union_with_symbols(self):
        text = "(1 <= x <= n) or (m <= x <= 20)"
        r = count(text, ["x"])
        f = parse(text)
        for env in grid(n=range(0, 8), m=range(15, 24)):
            assert r.evaluate(env) == brute_count(f, ["x"], env, box=25)

    def test_negation(self):
        text = "1 <= x <= 20 and not (5 <= x <= 10)"
        assert count(text, ["x"]).evaluate({}) == 14

    def test_quantified(self):
        text = "exists a: x = 3*a and 1 <= a <= n"
        r = count(text, ["x"])
        for n in range(0, 6):
            assert r.evaluate(n=n) == max(n, 0)

    def test_two_vars_union(self):
        text = "(1 <= x <= 3 and 1 <= y <= 3) or (2 <= x <= 4 and 2 <= y <= 4)"
        assert count(text, ["x", "y"]).evaluate({}) == 14

    def test_string_summand(self):
        r = sum_poly("1 <= i <= n", ["i"], "i*i - i")
        for n in range(0, 7):
            assert r.evaluate(n=n) == sum(i * i - i for i in range(1, n + 1))

    def test_conjunct_input(self):
        clause = to_dnf(parse("1 <= i <= 5"))[0]
        assert count_conjunct(clause, ["i"]).evaluate({}) == 5

    def test_clause_list_input(self):
        clauses = to_dnf(parse("1 <= i <= 5 or 3 <= i <= 8"))
        assert count(clauses, ["i"]).evaluate({}) == 8

    def test_bad_summand(self):
        with pytest.raises(TypeError):
            sum_poly("1 <= i <= 5", ["i"], 1.5)


class TestStrategies:
    FORMULA = "1 <= i and 7*i <= n"

    def exact_count(self, n):
        return max(n // 7, 0)

    def test_splinter_exact(self):
        opts = DEFAULT_OPTIONS.with_strategy(Strategy.SPLINTER)
        r = count(self.FORMULA, ["i"], opts)
        assert r.exactness == "exact"
        for n in range(0, 40):
            assert r.evaluate(n=n) == self.exact_count(n)

    def test_symbolic_mod_exact(self):
        r = count(self.FORMULA, ["i"])  # EXACT uses mod atoms here
        assert r.exactness == "exact"
        for n in range(0, 40):
            assert r.evaluate(n=n) == self.exact_count(n)

    def test_upper_bound(self):
        opts = DEFAULT_OPTIONS.with_strategy(Strategy.UPPER)
        r = count(self.FORMULA, ["i"], opts)
        assert r.exactness == "upper"
        for n in range(0, 40):
            assert r.evaluate(n=n) >= self.exact_count(n)

    def test_lower_bound(self):
        opts = DEFAULT_OPTIONS.with_strategy(Strategy.LOWER)
        r = count(self.FORMULA, ["i"], opts)
        assert r.exactness == "lower"
        for n in range(0, 40):
            assert r.evaluate(n=n) <= self.exact_count(n)

    def test_bounds_bracket(self):
        lo, hi = count_bounds(self.FORMULA, ["i"])
        for n in range(0, 30):
            assert lo.evaluate(n=n) <= self.exact_count(n) <= hi.evaluate(n=n)

    def test_bounds_tightness(self):
        # §4.2.1: the substitutions differ by (a-1)/a < 1 per floor,
        # plus at most 1 more where the guards disagree near the
        # boundary: the gap stays below 2 everywhere.
        lo, hi = count_bounds(self.FORMULA, ["i"])
        for n in range(7, 40):
            assert hi.evaluate(n=n) - lo.evaluate(n=n) < 2

    def test_midpoint_between(self):
        opts = DEFAULT_OPTIONS.with_strategy(Strategy.MIDPOINT)
        lo_o = DEFAULT_OPTIONS.with_strategy(Strategy.LOWER)
        hi_o = DEFAULT_OPTIONS.with_strategy(Strategy.UPPER)
        mid = count(self.FORMULA, ["i"], opts)
        lo = count(self.FORMULA, ["i"], lo_o)
        hi = count(self.FORMULA, ["i"], hi_o)
        assert mid.exactness == "approx"
        for n in range(7, 30):
            assert lo.evaluate(n=n) <= mid.evaluate(n=n) <= hi.evaluate(n=n)

    def test_exact_on_unit_bounds_regardless(self):
        # approximation strategies leave unit-coefficient sums exact
        for strat in (Strategy.UPPER, Strategy.LOWER, Strategy.MIDPOINT):
            r = count("1 <= i <= n", ["i"], DEFAULT_OPTIONS.with_strategy(strat))
            assert r.exactness == "exact"
            assert r.evaluate(n=5) == 5


class TestRedundancyOption:
    def test_off_still_correct(self):
        opts = SumOptions(remove_redundant=False)
        text = "1 <= i <= n and 1 <= j <= i and j <= m"
        r = count(text, ["i", "j"], opts)
        f = parse(text)
        for env in grid(n=range(0, 5), m=range(0, 5)):
            assert r.evaluate(env) == brute_count(f, ["i", "j"], env, box=8)

    def test_off_may_produce_more_terms(self):
        # §7: "Eliminating redundant constraints is useful"
        text = "1 <= i <= n and 1 <= j <= i and j <= m and 1 <= i"
        with_r = count(text, ["i", "j"])
        without = count(text, ["i", "j"], SumOptions(remove_redundant=False))
        assert len(with_r.terms) <= len(without.terms)
