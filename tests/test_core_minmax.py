"""Optional min/max answer form tests (§6 Example 2 discussion)."""

import pytest

from repro.core import count
from repro.core.minmax import min_max_count, min_max_sum
from repro.qpoly import Polynomial


class TestMinMaxAnswers:
    def test_agrees_with_guarded_answer(self):
        text = "1 <= i <= n and 3 <= j <= i and j <= k <= 5"
        guarded = count(text, ["i", "j", "k"])
        minmax = min_max_count(text, ["i", "j", "k"])
        for n in range(0, 12):
            assert minmax.evaluate({"n": n}) == guarded.evaluate(n=n)

    def test_single_expression_no_pieces(self):
        text = "1 <= i <= n and i <= m"
        expr = min_max_count(text, ["i"])
        for n in range(0, 6):
            for m in range(0, 6):
                want = len([i for i in range(1, n + 1) if i <= m])
                assert expr.evaluate({"n": n, "m": m}) == want
        assert "min" in str(expr)

    def test_sum_with_summand(self):
        expr = min_max_sum("1 <= i <= n", ["i"], Polynomial.variable("i"))
        for n in range(0, 8):
            assert expr.evaluate({"n": n}) == n * (n + 1) // 2

    def test_rejects_disjunctions(self):
        with pytest.raises(ValueError):
            min_max_count("1 <= x <= 3 or 7 <= x <= 9", ["x"])

    def test_more_complicated_than_guarded(self):
        # the paper's reason for not using this form by default
        text = "1 <= i <= n and 3 <= j <= i and j <= k <= 5"
        guarded = count(text, ["i", "j", "k"]).simplified()
        minmax = min_max_count(text, ["i", "j", "k"])
        guarded_size = sum(
            len(t.value.terms) + len(t.guard.constraints)
            for t in guarded.terms
        )
        assert minmax.size() > guarded_size
