"""Canonical request model: validation, wire format, content hashing."""

import pytest

from repro.service.request import (
    ENGINE_VERSION,
    JobRequest,
    RequestError,
    canonical_formula_key,
)
from repro.presburger.parser import ParseError, parse


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown job kind"):
            JobRequest("frobnicate", "1 <= i <= n", over=["i"])

    def test_count_needs_over(self):
        with pytest.raises(RequestError, match="'over'"):
            JobRequest("count", "1 <= i <= n")

    def test_sum_needs_poly(self):
        with pytest.raises(RequestError, match="'poly'"):
            JobRequest("sum", "1 <= i <= n", over=["i"])

    def test_poly_only_for_sum(self):
        with pytest.raises(RequestError, match="only valid for sum"):
            JobRequest("count", "1 <= i <= n", over=["i"], poly="i")

    def test_empty_formula(self):
        with pytest.raises(RequestError, match="formula"):
            JobRequest("count", "   ", over=["i"])

    def test_bad_strategy(self):
        with pytest.raises(RequestError, match="strategy"):
            JobRequest("count", "1 <= i <= n", over=["i"], strategy="magic")

    def test_bad_at_value(self):
        with pytest.raises(RequestError, match="integer"):
            JobRequest("count", "1 <= i <= n", over=["i"], at=[{"n": "ten"}])

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            JobRequest.from_json(
                {"kind": "count", "formula": "1 <= i <= n", "over": ["i"], "zap": 1}
            )

    def test_simplify_needs_no_over(self):
        req = JobRequest("simplify", "x >= 1 and x >= 0")
        assert req.kind == "simplify"


class TestWireFormat:
    def test_round_trip(self):
        req = JobRequest(
            "sum",
            "1 <= i <= n",
            over=["i"],
            poly="i*i",
            id="job-1",
            strategy="upper",
            simplify=True,
            at=[{"n": 10}],
            timeout=2.5,
            budget=100,
        )
        back = JobRequest.from_json(req.to_json())
        assert back.to_json() == req.to_json()
        assert back.content_hash() == req.content_hash()

    def test_over_accepts_comma_string(self):
        req = JobRequest.from_json(
            {"kind": "count", "formula": "1 <= i and i < j and j <= n", "over": "i, j"}
        )
        assert req.over == ("i", "j")

    def test_default_id(self):
        req = JobRequest.from_json(
            {"kind": "count", "formula": "1 <= i <= n", "over": ["i"]},
            default_id=17,
        )
        assert req.id == 17


def _h(formula, over, **kw):
    return JobRequest("count", formula, over=over, **kw).content_hash()


class TestContentHash:
    def test_lexical_variation_invariant(self):
        assert _h("1<=i and i<=n", ["i"]) == _h("1 <= i  and  i <= n", ["i"])

    def test_over_order_invariant(self):
        a = _h("1 <= i and i < j and j <= n", ["i", "j"])
        b = _h("1 <= i and i < j and j <= n", ["j", "i"])
        assert a == b

    def test_alpha_rename_of_counted_vars_invariant(self):
        a = _h("1 <= i and i < j and j <= n", ["i", "j"])
        b = _h("1 <= p and p < q and q <= n", ["q", "p"])
        assert a == b

    def test_and_operand_order_invariant(self):
        assert _h("1 <= i and i <= n", ["i"]) == _h("i <= n and 1 <= i", ["i"])

    def test_or_operand_order_invariant(self):
        a = JobRequest("simplify", "x >= 9 or x <= 1").content_hash()
        b = JobRequest("simplify", "x <= 1 or x >= 9").content_hash()
        assert a == b

    def test_quantifier_alpha_invariant(self):
        a = _h("exists t: (1 <= i <= t and t <= n)", ["i"])
        b = _h("exists u: (1 <= i <= u and u <= n)", ["i"])
        assert a == b

    def test_symbolic_constant_name_matters(self):
        assert _h("1 <= i <= n", ["i"]) != _h("1 <= i <= m", ["i"])

    def test_over_set_matters(self):
        base = "1 <= i and i < j and j <= n"
        assert _h(base, ["i", "j"]) != _h(base, ["i"])

    def test_summand_alpha_follows_formula(self):
        a = JobRequest("sum", "1 <= i <= n", over=["i"], poly="i*i")
        b = JobRequest("sum", "1 <= k <= n", over=["k"], poly="k*k")
        c = JobRequest("sum", "1 <= k <= n", over=["k"], poly="k")
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()

    def test_options_change_hash(self):
        base = "1 <= i <= n"
        assert _h(base, ["i"]) != _h(base, ["i"], strategy="upper")
        assert _h(base, ["i"]) != _h(base, ["i"], remove_redundant=False)
        assert _h(base, ["i"]) != _h(base, ["i"], simplify=True)

    def test_at_points_change_hash(self):
        base = "1 <= i <= n"
        assert _h(base, ["i"]) != _h(base, ["i"], at=[{"n": 5}])
        # ... and so does their order: the cached 'points' list
        # mirrors the computing request's 'at' positionally, so a
        # reordered request must miss rather than receive points in
        # the wrong order.
        assert _h(base, ["i"], at=[{"n": 5}, {"n": 6}]) != _h(
            base, ["i"], at=[{"n": 6}, {"n": 5}]
        )

    def test_timeout_budget_do_not_change_hash(self):
        # Execution limits affect *whether* the answer arrives, never
        # what it is, so they must not fragment the cache.
        base = "1 <= i <= n"
        assert _h(base, ["i"]) == _h(base, ["i"], timeout=5.0, budget=100)

    def test_engine_version_in_payload(self):
        req = JobRequest("count", "1 <= i <= n", over=["i"])
        assert ENGINE_VERSION in req.canonical_payload()

    def test_malformed_formula_raises_parse_error(self):
        req = JobRequest("count", "1 <= i <= ===", over=["i"])
        with pytest.raises(ParseError):
            req.content_hash()

    def test_free_constant_named_like_canonical_bound(self):
        # Canonical bound names live in a control-character namespace,
        # so a free constant literally named b0 can never serialize
        # identically to a canonically-renamed bound variable.  (These
        # two jobs have different answers: the first counts a free
        # constant's box, the second the counted variable's.)
        assert _h("b0 >= 1 and b0 <= 3", ["x"]) != _h(
            "x >= 1 and x <= 3", ["x"]
        )

    def test_bound_variable_named_b0_still_alpha_invariant(self):
        assert _h("b0 >= 1 and b0 <= 3", ["b0"]) == _h(
            "x >= 1 and x <= 3", ["x"]
        )

    def test_symmetric_formula_asymmetric_summand_alpha_invariant(self):
        # The box is symmetric in i and j, so formula refinement alone
        # cannot split them; the summand j*j*i must break the tie, or
        # renaming flips which variable the canonical summand squares
        # (regression: fuzz seed 67956).
        box = "(%s + 3 >= 0) and (-%s + m >= 0)"
        f = "%s and %s" % (box % ("j", "j"), box % ("i", "i"))
        g = "%s and %s" % (box % ("rv0", "rv0"), box % ("rv1", "rv1"))
        a = JobRequest(
            "sum", f, over=["j", "i"], poly="j*j*i"
        ).content_hash()
        b = JobRequest(
            "sum", g, over=["rv0", "rv1"], poly="rv0*rv0*rv1"
        ).content_hash()
        c = JobRequest(
            "sum", g, over=["rv0", "rv1"], poly="rv1*rv1*rv0"
        ).content_hash()
        d = JobRequest(
            "sum", g, over=["rv0", "rv1"], poly="rv0*rv1"
        ).content_hash()
        assert a == b  # alpha-renaming j->rv0, i->rv1
        # Swapping the summand roles composes with the formula's own
        # i<->j symmetry: the whole job is alpha-equivalent, so the
        # hashes must unify.
        assert a == c
        assert a != d  # genuinely different summand

    def test_distinct_structures_distinct_keys(self):
        # Masked shapes collide ((i<j) vs (j<i) both mask to ?<?), but
        # the exact serialization must still split them.
        a = _h("i < j and 0 <= i and 0 <= j and i <= n and j <= n", ["i"])
        b = _h("j < i and 0 <= i and 0 <= j and i <= n and j <= n", ["i"])
        assert a != b


class TestCanonicalFormulaKey:
    def test_returns_bound_name_mapping(self):
        key, names = canonical_formula_key(
            parse("1 <= i and i < j and j <= n"), ["i", "j"]
        )
        assert set(names) == {"i", "j"}
        # Canonical names are a control-character prefix plus an index
        # -- a namespace no user identifier can occupy.
        assert sorted(names.values()) == ["\x020", "\x021"]
        assert "n" in key  # free symbolic constants keep their names

    def test_deterministic(self):
        f = parse("(1 <= i <= n) or (2 | i) or not (i >= 4)")
        a = canonical_formula_key(f, ["i"])[0]
        b = canonical_formula_key(parse("(2 | i) or (1 <= i <= n) or not (i >= 4)"), ["i"])[0]
        assert a == b
