"""Failure injection: the library must fail loudly on bad input,
degrade predictably on hard input, and never return silently-wrong
results.
"""

import pytest

from repro.core import SumOptions, count, sum_poly
from repro.core.convex import UnboundedSumError
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.presburger.parser import ParseError, parse


class TestUnboundedDetection:
    def test_no_upper(self):
        with pytest.raises(UnboundedSumError):
            count("i >= 1", ["i"])

    def test_no_lower(self):
        with pytest.raises(UnboundedSumError):
            count("i <= n", ["i"])

    def test_unbounded_in_one_clause_only(self):
        # clause 2 is unbounded: the error must not be masked by
        # clause 1 being fine
        with pytest.raises(UnboundedSumError):
            count("(1 <= i <= 3) or (i >= 10)", ["i"])

    def test_bounded_only_through_other_var(self):
        # i <= j and j <= 5 bounds i above; no lower bound anywhere
        with pytest.raises(UnboundedSumError):
            count("i <= j and j <= 5 and 0 <= j", ["i", "j"])

    def test_diagonal_strip_unbounded(self):
        # i - j fixed to a band but both roam: infinite
        with pytest.raises(UnboundedSumError):
            count("0 <= i - j <= 1", ["i", "j"])

    def test_equality_makes_it_finite(self):
        r = count("0 <= i - j <= 1 and i + j = n and 0 <= j", ["i", "j"])
        for n in range(0, 8):
            want = sum(
                1
                for j in range(0, n + 1)
                for i in [n - j]
                if 0 <= i - j <= 1
            )
            assert r.evaluate(n=n) == want


class TestBadInput:
    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            count("1 <= <= i", ["i"])

    def test_float_summand_rejected(self):
        with pytest.raises(TypeError):
            sum_poly("1 <= i <= 3", ["i"], 2.5)

    def test_summand_parse_error(self):
        from repro.qpoly.parse import PolynomialParseError

        with pytest.raises(PolynomialParseError):
            sum_poly("1 <= i <= 3", ["i"], "i +* 2")

    def test_over_variable_absent(self):
        with pytest.raises(UnboundedSumError):
            count("1 <= j <= 3", ["i", "j"])


class TestDegenerateRegions:
    def test_empty_region_zero(self):
        assert count("3 <= i <= 1", ["i"]).evaluate({}) == 0

    def test_single_point(self):
        assert count("i = 7 and 0 <= i <= 10", ["i"]).evaluate({}) == 1

    def test_contradictory_strides(self):
        r = count("2 | i and 2 | i + 1 and 0 <= i <= 10", ["i"])
        assert r.evaluate({}) == 0

    def test_empty_for_all_symbol_values(self):
        r = count("1 <= i <= n and i <= 0", ["i"])
        for n in range(-3, 5):
            assert r.evaluate(n=n) == 0

    def test_guard_evaluation_missing_symbol(self):
        r = count("1 <= i <= n", ["i"])
        with pytest.raises((KeyError, ValueError)):
            r.evaluate({})


class TestSummandEdgeCases:
    def test_zero_summand(self):
        r = sum_poly("1 <= i <= n", ["i"], 0)
        assert r.evaluate(n=5) == 0
        assert len(r.terms) == 0

    def test_negative_summand(self):
        r = sum_poly("1 <= i <= n", ["i"], "-i")
        assert r.evaluate(n=4) == -10

    def test_summand_over_symbol_only(self):
        r = sum_poly("1 <= i <= n", ["i"], "m")
        assert r.evaluate(n=3, m=7) == 21

    def test_high_degree(self):
        r = sum_poly("1 <= i <= n", ["i"], "i**12")
        assert r.evaluate(n=6) == sum(i ** 12 for i in range(1, 7))
