"""Additional general-sum cases: deeply mixed features in one formula."""

import pytest

from conftest import brute_count, brute_sum, grid
from repro.core import count, sum_poly
from repro.presburger.parser import parse
from repro.qpoly import Polynomial


class TestMixedFeatures:
    def test_stride_plus_union(self):
        text = "(2 | i and 0 <= i <= n) or (3 | i and 0 <= i <= n)"
        r = count(text, ["i"])
        f = parse(text)
        for n in range(0, 20):
            assert r.evaluate(n=n) == brute_count(f, ["i"], {"n": n}, box=25)

    def test_negation_of_stride_region(self):
        text = "0 <= i <= n and not (3 | i)"
        r = count(text, ["i"])
        for n in range(0, 20):
            want = sum(1 for i in range(0, n + 1) if i % 3 != 0)
            assert r.evaluate(n=n) == want

    def test_exists_with_inner_floor(self):
        # touched tiles of size 4 within 1..n
        text = "exists i: 1 <= i <= n and t = floor(i/4)"
        r = count(text, ["t"])
        for n in range(0, 25):
            want = len({i // 4 for i in range(1, n + 1)})
            assert r.evaluate(n=n) == want

    def test_quantifier_alternation_via_negation(self):
        # i such that NO j in 1..3 satisfies i = 2j
        text = "0 <= i <= n and not (exists j: 1 <= j <= 3 and i = 2*j)"
        r = count(text, ["i"])
        for n in range(0, 12):
            want = sum(
                1
                for i in range(0, n + 1)
                if not any(i == 2 * j for j in (1, 2, 3))
            )
            assert r.evaluate(n=n) == want

    def test_sum_over_strided_region(self):
        text = "1 <= i <= n and 4 | i - 1"
        z = Polynomial.variable("i")
        r = sum_poly(text, ["i"], z)
        f = parse(text)
        for n in range(0, 25):
            assert r.evaluate(n=n) == brute_sum(f, ["i"], z, {"n": n}, box=30)

    def test_two_symbol_triangle_with_floor(self):
        text = "1 <= i <= n and 1 <= j and 2*j <= i + m"
        r = count(text, ["i", "j"])
        f = parse(text)
        for env in grid(n=range(0, 6), m=range(0, 5)):
            assert r.evaluate(env) == brute_count(f, ["i", "j"], env, box=12)

    def test_mod_equation(self):
        text = "0 <= i <= n and i mod 5 = 2"
        r = count(text, ["i"])
        for n in range(0, 30):
            want = sum(1 for i in range(0, n + 1) if i % 5 == 2)
            assert r.evaluate(n=n) == want

    def test_difference_of_floors_style(self):
        # count multiples of 3 in (m, n]
        text = "3 | i and m < i and i <= n"
        r = count(text, ["i"])
        for n in range(0, 15):
            for m in range(-3, n + 1):
                want = sum(1 for i in range(m + 1, n + 1) if i % 3 == 0)
                assert r.evaluate(n=n, m=m) == want


class TestHigherDegreeSums:
    @pytest.mark.parametrize("p", [3, 4, 5])
    def test_power_over_triangle(self, p):
        z = Polynomial.variable("j") ** p
        r = sum_poly("1 <= i <= n and 1 <= j <= i", ["i", "j"], z)
        for n in range(0, 7):
            want = sum(
                j ** p for i in range(1, n + 1) for j in range(1, i + 1)
            )
            assert r.evaluate(n=n) == want

    def test_mixed_monomial(self):
        z = Polynomial.variable("i") * Polynomial.variable("j") ** 2
        r = sum_poly("1 <= i <= n and i <= j <= n", ["i", "j"], z)
        for n in range(0, 7):
            want = sum(
                i * j * j
                for i in range(1, n + 1)
                for j in range(i, n + 1)
            )
            assert r.evaluate(n=n) == want
