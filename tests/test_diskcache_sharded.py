"""DiskCache under shard ownership: disjoint slices of one table.

Sharded serving points every worker at the *same* sqlite store file;
disjointness is a property of the hash-prefix ownership predicate, not
of separate files.  These tests pin the two guard layers: the store's
own :class:`~repro.service.diskcache.MisroutedWriteError` refusal, and
the daemon's front-door ``misrouted`` (HTTP 421) refusal.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.service.diskcache import DiskCache, MisroutedWriteError
from repro.shard.config import ShardSlice, shard_of

BITS = 16


def _hashes(n, seed=0):
    return [
        hashlib.sha256(b"%d:%d" % (seed, k)).hexdigest() for k in range(n)
    ]


class TestOwnershipGuard:
    def test_owned_write_lands_foreign_write_refused(self, tmp_path):
        s = ShardSlice(BITS, 2, 0)
        cache = DiskCache(str(tmp_path / "c.sqlite"), owns=s.owns)
        keys = _hashes(64)
        mine = [k for k in keys if s.owns(k)]
        foreign = [k for k in keys if not s.owns(k)]
        assert mine and foreign  # 64 hashes always straddle 2 shards
        cache.put(mine[0], {"v": 1})
        assert cache.get(mine[0]) == {"v": 1}
        with pytest.raises(MisroutedWriteError):
            cache.put(foreign[0], {"v": 2})
        assert foreign[0] not in cache
        cache.close()

    def test_reads_of_foreign_keys_are_unguarded_misses(self, tmp_path):
        """Reads stay open: a foreign read is a harmless miss, and a
        re-partition must be able to read leftovers, not crash."""
        path = str(tmp_path / "c.sqlite")
        s = ShardSlice(BITS, 2, 0)
        foreign = next(k for k in _hashes(64) if not s.owns(k))
        with DiskCache(path) as unguarded:
            unguarded.put(foreign, {"v": 3})
        guarded = DiskCache(path, owns=s.owns)
        assert guarded.get(foreign) == {"v": 3}
        guarded.close()

    def test_unguarded_cache_accepts_everything(self, tmp_path):
        cache = DiskCache(str(tmp_path / "c.sqlite"))
        for key in _hashes(8):
            cache.put(key, {"k": key})
        assert len(cache) == 8
        cache.close()


_WRITER = """
import json, sys
sys.path.insert(0, %(src)r)
from repro.service.diskcache import DiskCache
from repro.shard.config import ShardSlice

index = int(sys.argv[1])
s = ShardSlice(%(bits)d, 2, index)
cache = DiskCache(%(path)r, table="answers", owns=s.owns)
keys = json.loads(sys.argv[2])
wrote = 0
for key in keys:
    if s.owns(key):
        cache.put(key, {"writer": index, "key": key})
        wrote += 1
cache.close()
print(wrote)
"""


class TestTwoProcessesOneTable:
    def test_disjoint_slices_of_one_answers_table(self, tmp_path):
        """Two shard processes share one ``answers`` table; every row
        lands exactly once, written by its owner."""
        path = str(tmp_path / "store.sqlite")
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        keys = _hashes(80, seed=7)
        script = _WRITER % {
            "src": os.path.abspath(src),
            "bits": BITS,
            "path": path,
        }
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(i), json.dumps(keys)],
                stdout=subprocess.PIPE,
            )
            for i in (0, 1)
        ]
        wrote = []
        for proc in procs:
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            wrote.append(int(out))
        assert sum(wrote) == len(keys)  # partition: disjoint and total

        cache = DiskCache(path, table="answers")
        assert len(cache) == len(keys)
        for key in keys:
            payload = cache.get(key)
            assert payload["writer"] == shard_of(key, 2, BITS)
        cache.close()


class TestDaemonMisroutedRefusal:
    def test_foreign_hash_gets_421_misrouted(self):
        import asyncio

        from repro.serve.daemon import MISROUTED, CountingDaemon, ServeConfig
        from repro.serve.http import response_status
        from repro.service.request import JobRequest

        # Vary a bound until the two requests split across shards.
        owned = foreign = None
        for n in range(40):
            obj = {
                "id": "m%d" % n,
                "kind": "count",
                "formula": "1 <= i <= %d" % (n + 2),
                "over": ["i"],
            }
            key = JobRequest.from_json(dict(obj)).content_hash()
            if shard_of(key, 2, BITS) == 0:
                owned = owned or obj
            else:
                foreign = foreign or obj
            if owned and foreign:
                break
        assert owned and foreign

        async def scenario():
            config = ServeConfig(
                cache_path=None,
                shard_index=0,
                shard_count=2,
                shard_bits=BITS,
            )
            daemon = CountingDaemon(config)
            daemon.start()
            try:
                ok = await daemon.handle(owned)
                refused = await daemon.handle(foreign)
                misrouted = daemon.metrics.counters["misrouted"]
            finally:
                await daemon.drain()
            return ok, refused, misrouted

        ok, refused, misrouted = asyncio.run(scenario())
        assert ok["ok"] and ok["tier"] == "cold"
        assert not refused["ok"]
        assert refused["error"]["kind"] == MISROUTED
        assert "shard router" in refused["error"]["message"]
        assert response_status(refused) == 421
        assert misrouted == 1
