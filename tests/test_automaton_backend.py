"""The automaton backend through the router, service and fuzz check.

Mirrors ``test_genfunc_backend.py``'s structure for the third backend:
router semantics (in-fragment answers, silent recursion fallback,
counters), the ``member`` / ``count_below`` request kinds end to end
through the executor, hash invariants for the new kinds, and the
``automaton_backend`` differential check registration.
"""

import json

import pytest

from repro.automaton import automaton_sum, UnsupportedFormula
from repro.automaton.cache import clear_automaton_cache
from repro.core import count, stats
from repro.core.backend import BACKENDS, current_backend, set_backend
from repro.service.executor import JobError, execute_request
from repro.service.request import JobRequest, RequestError


@pytest.fixture(autouse=True)
def _fresh():
    clear_automaton_cache()
    stats.reset_stats()
    stats.enable_stats()
    yield
    clear_automaton_cache()


class TestRouter:
    def test_backend_is_registered(self):
        assert "automaton" in BACKENDS

    def test_concrete_count_matches_recursion(self):
        text = "0 <= i <= 30 and 0 <= j <= 30 and i + 2*j <= 30 and 2 | (i + j)"
        base = count(text, ["i", "j"], backend="recursion")
        routed = count(text, ["i", "j"], backend="automaton")
        assert routed.evaluate({}) == base.evaluate({})
        counters = stats.engine_snapshot()
        assert counters["automaton_calls"] >= 1
        assert counters["automaton_builds"] >= 1

    def test_symbolic_falls_back_to_recursion(self):
        base = count("1 <= i <= n", ["i"], backend="recursion")
        routed = count("1 <= i <= n", ["i"], backend="automaton")
        assert json.dumps(routed.to_json(), sort_keys=True) == json.dumps(
            base.to_json(), sort_keys=True
        )
        assert stats.engine_snapshot()["automaton_fallbacks"] >= 1

    def test_global_switch_restores(self):
        before = current_backend()
        prev = set_backend("automaton")
        try:
            assert current_backend() == "automaton"
            got = count("0 <= i <= 7 and 2 | i", ["i"]).evaluate({})
            assert got == 4
        finally:
            set_backend(prev)
        assert current_backend() == before

    def test_automaton_sum_rejects_nonconstant_summand(self):
        from repro.qpoly.parse import parse_polynomial

        with pytest.raises(UnsupportedFormula):
            automaton_sum("0 <= i <= 5", ["i"], parse_polynomial("i"))


class TestMemberRequests:
    def test_member_end_to_end(self):
        req = JobRequest(
            "member",
            "0 <= i <= 8 and 0 <= j <= 8 and i + j <= 8",
            over=["i", "j"],
            at=[{"i": 2, "j": 3}, {"i": 8, "j": 8}, {"i": 0, "j": 8}],
        )
        payload = execute_request(req)
        assert payload["kind"] == "member"
        assert [p["value"] for p in payload["points"]] == [True, False, True]
        assert payload["result"] == "2/3 in set"
        assert payload["exactness"] == "exact"

    def test_member_needs_points(self):
        with pytest.raises(RequestError):
            JobRequest("member", "0 <= i <= 8", over=["i"])

    def test_member_point_missing_variable_is_bad_request(self):
        req = JobRequest(
            "member", "0 <= i <= 8 and 0 <= j <= 8", over=["i", "j"],
            at=[{"i": 2}],
        )
        with pytest.raises(JobError) as exc:
            execute_request(req)
        assert exc.value.kind == "bad_request"

    def test_member_fallback_outside_fragment(self):
        # Free symbol pins the formula outside the fragment; membership
        # degrades to direct evaluation with the point supplying n.
        req = JobRequest(
            "member", "0 <= i <= n", over=["i"],
            at=[{"i": 3, "n": 5}, {"i": 9, "n": 5}],
        )
        payload = execute_request(req)
        assert [p["value"] for p in payload["points"]] == [True, False]
        assert stats.engine_snapshot()["automaton_fallbacks"] >= 1

    def test_member_hash_alpha_invariant(self):
        r1 = JobRequest(
            "member", "0 <= i and i < j and j <= 9", over=["i", "j"],
            at=[{"i": 1, "j": 2}],
        )
        r2 = JobRequest(
            "member", "0 <= p and p < q and q <= 9", over=["p", "q"],
            at=[{"p": 1, "q": 2}],
        )
        r3 = JobRequest(
            "member", "0 <= i and i < j and j <= 9", over=["i", "j"],
            at=[{"i": 2, "j": 1}],
        )
        assert r1.content_hash() == r2.content_hash()
        assert r1.content_hash() != r3.content_hash()


class TestCountBelowRequests:
    def test_count_below_end_to_end(self):
        req = JobRequest(
            "count_below", "2 | (i + j) and i <= 2*j", over=["i", "j"],
            bound=16,
        )
        payload = execute_request(req)
        want = sum(
            1
            for i in range(16)
            for j in range(16)
            if (i + j) % 2 == 0 and i <= 2 * j
        )
        assert payload["value"] == want
        assert payload["result"] == str(want)
        assert payload["exactness"] == "exact"

    def test_count_below_with_lo(self):
        req = JobRequest(
            "count_below", "2 | (i + j)", over=["i", "j"], bound=12, lo=4
        )
        payload = execute_request(req)
        assert payload["value"] == sum(
            1
            for i in range(4, 12)
            for j in range(4, 12)
            if (i + j) % 2 == 0
        )

    def test_count_below_requires_bound(self):
        with pytest.raises(RequestError):
            JobRequest("count_below", "0 <= i <= 8", over=["i"])

    def test_bound_rejected_for_other_kinds(self):
        with pytest.raises(RequestError):
            JobRequest("count", "0 <= i <= 8", over=["i"], bound=4)

    def test_count_below_hash_depends_on_bound_and_lo(self):
        mk = lambda **kw: JobRequest(
            "count_below", "2 | i", over=["i"], **kw
        ).content_hash()
        assert mk(bound=8) != mk(bound=9)
        assert mk(bound=8) != mk(bound=8, lo=1)
        assert mk(bound=8) == mk(bound=8, lo=0)  # lo defaults to 0

    def test_count_below_fallback_matches_recursion(self):
        # Out of fragment (free symbol n bounded by the box after
        # substitution is still symbolic) -> symbolic payload.
        req = JobRequest("count_below", "0 <= i <= n", over=["i"], bound=8)
        payload = execute_request(req)
        assert "result_json" in payload  # symbolic degrade, not a crash

    def test_roundtrip_wire_format(self):
        req = JobRequest(
            "count_below", "2 | i", over=["i"], bound=8, lo=-4, id="x"
        )
        again = JobRequest.from_json(req.to_json())
        assert again.bound == 8 and again.lo == -4
        assert again.content_hash() == req.content_hash()


class TestFuzzCheck:
    def test_check_is_registered(self):
        from repro.testkit.checks import CHECKS

        assert "automaton_backend" in CHECKS

    def test_check_passes_on_seeded_cases(self):
        from repro.testkit.checks import run_check
        from repro.testkit.generate import generate_case

        for seed in range(6):
            case = generate_case(seed)
            failure = run_check("automaton_backend", case)
            assert failure is None, failure
