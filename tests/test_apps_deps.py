"""Dependence counting tests."""

import pytest

from repro.apps import ArrayRef, Loop, LoopNest, Statement
from repro.apps.deps import (
    count_dependences,
    count_dependent_iterations,
    dependence_formula,
)


def nest_1d(upper="n"):
    return LoopNest([Loop("i", 1, upper)], [Statement()])


class TestPairCounting:
    def test_write_read_shift(self):
        # a[i] written, a[i-1] read: iteration i depends on i-1
        nest = nest_1d()
        write = ArrayRef("a", ["i"])
        read = ArrayRef("a", ["i - 1"])
        r = count_dependences(nest, write, read)
        for n in range(0, 8):
            # pairs (s, d) with s = d - 1, 1 <= s < d <= n
            assert r.evaluate(n=n) == max(n - 1, 0)

    def test_all_pairs_same_cell(self):
        # a[0] touched by every iteration: all ordered pairs conflict
        nest = nest_1d()
        ref = ArrayRef("a", ["0"])
        r = count_dependences(nest, ref, ref)
        for n in range(0, 7):
            assert r.evaluate(n=n) == n * (n - 1) // 2

    def test_no_dependence_disjoint_cells(self):
        nest = nest_1d()
        write = ArrayRef("a", ["2*i"])
        read = ArrayRef("a", ["2*i + 1"])
        r = count_dependences(nest, write, read)
        for n in range(0, 7):
            assert r.evaluate(n=n) == 0

    def test_strided_conflict(self):
        # a[2i] vs a[i+2]: conflict when 2s = d + 2
        nest = nest_1d()
        write = ArrayRef("a", ["2*i"])
        read = ArrayRef("a", ["i + 2"])
        r = count_dependences(nest, write, read)
        for n in range(0, 10):
            want = sum(
                1
                for s in range(1, n + 1)
                for d in range(s + 1, n + 1)
                if 2 * s == d + 2
            )
            assert r.evaluate(n=n) == want

    def test_unordered_counts_both_directions(self):
        nest = nest_1d()
        write = ArrayRef("a", ["i"])
        read = ArrayRef("a", ["i - 1"])
        ordered = count_dependences(nest, write, read)
        unordered = count_dependences(nest, write, read, require_order=False)
        for n in range(0, 8):
            # without the order constraint the pair (d+1 reads what d
            # writes) also matches in the reverse direction
            assert unordered.evaluate(n=n) >= ordered.evaluate(n=n)

    def test_different_arrays_rejected(self):
        with pytest.raises(ValueError):
            count_dependences(
                nest_1d(), ArrayRef("a", ["i"]), ArrayRef("b", ["i"])
            )


class Test2D:
    def test_sor_like_flow(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")], [Statement()]
        )
        write = ArrayRef("a", ["i", "j"])
        read = ArrayRef("a", ["i - 1", "j"])
        r = count_dependences(nest, write, read)
        for n in range(0, 5):
            want = sum(
                1
                for si in range(1, n + 1)
                for sj in range(1, n + 1)
                for di in range(1, n + 1)
                for dj in range(1, n + 1)
                if (si, sj) < (di, dj)
                and si == di - 1
                and sj == dj
            )
            assert r.evaluate(n=n) == want


class TestDependentIterations:
    def test_projection(self):
        nest = nest_1d()
        write = ArrayRef("a", ["i"])
        read = ArrayRef("a", ["i - 1"])
        r = count_dependent_iterations(nest, write, read)
        for n in range(0, 8):
            # every iteration except the first depends on a predecessor
            assert r.evaluate(n=n) == max(n - 1, 0)

    def test_single_hot_cell(self):
        nest = nest_1d()
        ref = ArrayRef("a", ["0"])
        r = count_dependent_iterations(nest, ref, ref)
        for n in range(0, 8):
            assert r.evaluate(n=n) == max(n - 1, 0)
