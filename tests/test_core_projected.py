"""Projected clause tests (§4.5.2): SNF route vs engine route."""

import pytest

from repro.core.projected import (
    ProjectedClause,
    count_image,
    count_image_via_smith,
    smith_reduce,
)
from repro.intarith import IntMatrix
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint


def box(var, lo, hi):
    return [
        Constraint.geq(Affine({var: 1}, -lo)),
        Constraint.geq(Affine({var: -1}, hi)),
    ]


class TestImageCounting:
    def test_example_2_1_map(self):
        # x = 6i + 9j - 7 over 1<=i<=8, 1<=j<=5: image has 25 points
        clause = ProjectedClause(
            ["i", "j"],
            box("i", 1, 8) + box("j", 1, 5),
            IntMatrix([[6, 9]]),
            [Affine.const_expr(-7)],
        )
        assert count_image(clause).evaluate({}) == 25

    def test_injective_map_counts_domain(self):
        # v = (a, a + b): unimodular, image count == domain count
        clause = ProjectedClause(
            ["a", "b"],
            box("a", 0, 3) + box("b", 0, 2),
            IntMatrix([[1, 0], [1, 1]]),
            [Affine.const_expr(0), Affine.const_expr(0)],
        )
        assert count_image(clause).evaluate({}) == 12
        assert count_image_via_smith(clause).evaluate({}) == 12

    def test_scaling_map(self):
        # v = 2a: injective, 0 <= a <= n
        clause = ProjectedClause(
            ["a"],
            [Constraint.geq(Affine({"a": 1})),
             Constraint.geq(Affine({"a": -1, "n": 1}))],
            IntMatrix([[2]]),
            [Affine.const_expr(0)],
        )
        r = count_image(clause)
        s = count_image_via_smith(clause)
        for n in range(0, 8):
            assert r.evaluate(n=n) == n + 1
            assert s.evaluate(n=n) == n + 1

    def test_collapsing_map_counted_once(self):
        # v = a + b over a small box: image is an interval, not |box|
        clause = ProjectedClause(
            ["a", "b"],
            box("a", 0, 2) + box("b", 0, 2),
            IntMatrix([[1, 1]]),
            [Affine.const_expr(0)],
        )
        assert count_image(clause).evaluate({}) == 5  # 0..4

    def test_smith_route_rejects_kernel(self):
        clause = ProjectedClause(
            ["a", "b"],
            box("a", 0, 2) + box("b", 0, 2),
            IntMatrix([[1, 1]]),
            [Affine.const_expr(0)],
        )
        with pytest.raises(ValueError):
            count_image_via_smith(clause)

    def test_symbolic_gamma(self):
        # v = 3a + n: count over 1 <= a <= 4 is always 4
        clause = ProjectedClause(
            ["a"],
            box("a", 1, 4),
            IntMatrix([[3]]),
            [Affine.var("n")],
        )
        r = count_image(clause)
        for n in range(-3, 4):
            assert r.evaluate(n=n) == 4


class TestSmithReduce:
    def test_diagonalization(self):
        clause = ProjectedClause(
            ["a", "b"],
            box("a", 0, 5) + box("b", 0, 5),
            IntMatrix([[2, 4], [0, 2]]),
            [Affine.const_expr(0), Affine.const_expr(0)],
        )
        beta_vars, transformed, u, diag = smith_reduce(clause)
        assert len(beta_vars) == 2
        assert all(d > 0 for d in diag)
        assert diag[1] % diag[0] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProjectedClause(["a"], [], IntMatrix([[1, 2]]), [Affine()])
        with pytest.raises(ValueError):
            ProjectedClause(
                ["a"], [], IntMatrix([[1]]), [Affine(), Affine()]
            )

    def test_image_conjunct_arity(self):
        clause = ProjectedClause(
            ["a"], box("a", 0, 1), IntMatrix([[1]]), [Affine()]
        )
        with pytest.raises(ValueError):
            clause.image_conjunct(["x", "y"])
