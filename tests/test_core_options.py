"""SumOptions / Strategy tests."""

import pytest

from repro.core import Strategy, SumOptions, count
from repro.core.convex import UnboundedSumError
from repro.core.options import DEFAULT_OPTIONS


class TestStrategy:
    def test_exactness_flags(self):
        assert Strategy.EXACT.is_exact
        assert Strategy.SPLINTER.is_exact
        assert not Strategy.UPPER.is_exact
        assert not Strategy.LOWER.is_exact
        assert not Strategy.MIDPOINT.is_exact

    def test_with_strategy(self):
        opts = DEFAULT_OPTIONS.with_strategy(Strategy.UPPER)
        assert opts.strategy is Strategy.UPPER
        assert DEFAULT_OPTIONS.strategy is Strategy.EXACT  # unchanged


class TestResidueCap:
    def test_cap_enforced(self):
        opts = SumOptions(max_residue_split=3)
        with pytest.raises(UnboundedSumError):
            count("7 | i and 0 <= i <= n", ["i"], opts)

    def test_cap_sufficient(self):
        opts = SumOptions(max_residue_split=7)
        r = count("7 | i and 0 <= i <= n", ["i"], opts)
        for n in range(0, 22):
            assert r.evaluate(n=n) == n // 7 + 1


class TestDefaults:
    def test_default_values(self):
        assert DEFAULT_OPTIONS.strategy is Strategy.EXACT
        assert DEFAULT_OPTIONS.remove_redundant
        assert DEFAULT_OPTIONS.max_residue_split == 64
