"""Work-budget machinery tests: WorkMeter, SatBlowupError, fallbacks.

The paper concedes that simplifying arbitrary Presburger formulas "may
be prohibitively expensive"; these guards turn that regime into loud,
catchable failures (and, for the 0-1 stencil encoding, into the same
per-point fallback the paper's implementation effectively took).
"""

import pytest

from repro.omega.satisfiability import SatBlowupError, satisfiable
from repro.presburger.disjoint import (
    DisjointBudgetError,
    WorkMeter,
    disjointify,
    project_to_stride_only,
)
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.polyhedra import zero_one_summary


class TestWorkMeter:
    def test_charge_accumulates(self):
        m = WorkMeter(10)
        m.charge(4)
        m.charge(6)
        assert m.units == 10

    def test_raises_past_limit(self):
        m = WorkMeter(5)
        m.charge(5)
        with pytest.raises(DisjointBudgetError):
            m.charge()

    def test_shared_across_nested_calls(self):
        # a tiny budget must abort even a modest disjointify job
        clauses = [
            Conjunct(
                [
                    Constraint.geq(Affine({"x": 1}, -lo)),
                    Constraint.geq(Affine({"x": -1}, lo + 4)),
                ]
            )
            for lo in range(4)
        ]
        with pytest.raises(DisjointBudgetError):
            disjointify(clauses, budget=3)

    def test_generous_budget_succeeds(self):
        clauses = [
            Conjunct(
                [
                    Constraint.geq(Affine({"x": 1}, -lo)),
                    Constraint.geq(Affine({"x": -1}, lo + 4)),
                ]
            )
            for lo in range(3)
        ]
        out = disjointify(clauses, budget=100000)
        covered = {
            x
            for c in out
            for x in range(-2, 10)
            if c.is_satisfied({"x": x})
        }
        assert covered == set(range(0, 7))


class TestSatBlowup:
    def test_huge_conjunct_rejected(self):
        cons = [
            Constraint.geq(Affine({"x": 1, "y": k}, k)) for k in range(700)
        ]
        with pytest.raises(SatBlowupError):
            satisfiable(Conjunct(cons))

    def test_normal_sizes_unaffected(self):
        cons = [
            Constraint.geq(Affine({"x": 1}, k)) for k in range(50)
        ]
        assert satisfiable(Conjunct(cons))

    def test_parallel_blowup_normalizes_before_guard(self):
        # 700 raw rows, but they are all duplicates/parallel copies of
        # two directions: one normalize pass collapses them to a
        # two-row interval.  The guard must measure the *normalized*
        # size, not the raw count, or this trivially satisfiable
        # conjunct would be rejected as a blowup.
        cons = [
            Constraint.geq(Affine({"x": 1, "y": 3}, k % 40))
            for k in range(350)
        ] + [
            Constraint.geq(Affine({"x": -1, "y": -3}, 90 + k % 25))
            for k in range(350)
        ]
        assert satisfiable(Conjunct(cons))


class TestBudgetChargesMissesOnly:
    def test_warm_hits_are_free(self):
        from repro.core import stats
        from repro.omega.satisfiability import clear_sat_cache

        conj = Conjunct(
            [
                Constraint.geq(Affine({"x": 2, "y": -3}, 5)),
                Constraint.geq(Affine({"x": -1, "y": 2}, 7)),
            ]
        )
        clear_sat_cache()
        assert satisfiable(conj)  # warm the cache, unbudgeted
        previous = stats.set_work_budget(0)
        try:
            # Every unit of budget is a cache miss; a warm query does
            # zero elimination work and must charge nothing -- even
            # with the budget already exhausted.
            assert satisfiable(conj)
            assert stats.budget_spent() == 0
        finally:
            stats.set_work_budget(previous)

    def test_cold_misses_still_charged(self):
        from repro.core import stats
        from repro.omega.satisfiability import clear_sat_cache

        conj = Conjunct(
            [
                Constraint.geq(Affine({"x": 2, "y": -3}, 5)),
                Constraint.geq(Affine({"x": -1, "y": 2}, 7)),
            ]
        )
        clear_sat_cache()
        previous = stats.set_work_budget(0)
        try:
            with pytest.raises(stats.WorkBudgetExceeded):
                satisfiable(conj)
        finally:
            stats.set_work_budget(previous)


class TestZeroOneFallback:
    def test_budget_fallback_is_per_point(self):
        nine = [(a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)]
        clauses, compact = zero_one_summary(nine, ["x", "y"], budget=50)
        assert not compact
        covered = {
            (x, y)
            for c in clauses
            for x in range(-2, 3)
            for y in range(-2, 3)
            if c.is_satisfied({"x": x, "y": y})
        }
        assert covered == set(nine)

    def test_easy_case_unaffected_by_budget(self):
        five = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
        clauses, compact = zero_one_summary(five, ["x", "y"])
        assert compact and len(clauses) == 1
