"""Hypothesis property tests for the Omega substrate."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.eliminate import dark_shadow, eliminate_exact, real_shadow
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable
from repro.presburger.disjoint import (
    disjoint_negation,
    disjointify,
    project_to_stride_only,
)

rows2 = st.lists(
    st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-8, 8)),
    min_size=1,
    max_size=4,
)


def boxed_conjunct(rows, vars_=("x", "y"), box=6, eq_first=False):
    cons = []
    for v in vars_:
        cons.append(Constraint.geq(Affine({v: 1}, box)))
        cons.append(Constraint.geq(Affine({v: -1}, box)))
    for i, (a, b, c) in enumerate(rows):
        expr = Affine({vars_[0]: a, vars_[1]: b}, c)
        if eq_first and i == 0:
            cons.append(Constraint.eq(expr))
        else:
            cons.append(Constraint.geq(expr))
    return Conjunct(cons)


def brute(conj, box=6):
    names = conj.variables()
    for vals in itertools.product(range(-box, box + 1), repeat=len(names)):
        if conj.satisfied_by(dict(zip(names, vals))):
            return True
    return False


def solset1(conj, var="x", box=8):
    return {
        v for v in range(-box, box + 1) if conj.is_satisfied({var: v})
    }


@given(rows2, st.booleans())
@settings(max_examples=80, deadline=None)
def test_satisfiable_equals_brute(rows, with_eq):
    conj = boxed_conjunct(rows, eq_first=with_eq)
    assert satisfiable(conj) == brute(conj)


@given(rows2)
@settings(max_examples=60, deadline=None)
def test_shadow_sandwich(rows):
    """dark shadow ⊆ exact projection ⊆ real shadow."""
    conj = boxed_conjunct(rows, vars_=("z", "x"))
    dark = dark_shadow(conj, "z")
    real = real_shadow(conj, "z")
    exact = set()
    for piece in eliminate_exact(conj, "z"):
        exact |= solset1(piece)
    dark_pts = solset1(dark) if dark is not None else set()
    real_pts = solset1(real) if real is not None else set()
    want = {
        x
        for x in range(-8, 9)
        if any(
            conj.satisfied_by({"z": z, "x": x}) for z in range(-10, 11)
        )
    }
    assert dark_pts <= want
    assert want <= real_pts
    assert exact == want


@given(rows2)
@settings(max_examples=40, deadline=None)
def test_project_to_stride_only_disjoint_and_exact(rows):
    conj = boxed_conjunct(rows, vars_=("w", "x")).with_wildcards(["w"])
    want = {
        x
        for x in range(-8, 9)
        if any(conj.satisfied_by({"w": w, "x": x}) for w in range(-10, 11))
    }
    pieces = project_to_stride_only(conj)
    hits = {}
    for i, piece in enumerate(pieces):
        assert piece.stride_only()
        for x in solset1(piece):
            hits.setdefault(x, []).append(i)
    assert set(hits) == want
    assert all(len(v) == 1 for v in hits.values())


@given(
    st.lists(
        st.tuples(st.integers(-4, 4), st.integers(0, 5)),
        min_size=2,
        max_size=3,
    )
)
@settings(max_examples=40, deadline=None)
def test_disjointify_intervals(intervals):
    clauses = [
        Conjunct(
            [
                Constraint.geq(Affine({"x": 1}, -lo)),
                Constraint.geq(Affine({"x": -1}, lo + length)),
            ]
        )
        for lo, length in intervals
    ]
    want = set()
    for lo, length in intervals:
        want |= set(range(lo, lo + length + 1))
    out = disjointify(clauses)
    hits = {}
    for i, piece in enumerate(out):
        for x in solset1(piece, box=12):
            hits.setdefault(x, []).append(i)
    assert set(hits) == want
    assert all(len(v) == 1 for v in hits.values())


@given(
    st.lists(
        st.tuples(st.integers(-3, 3), st.integers(-6, 6)),
        min_size=1,
        max_size=3,
    ),
    st.integers(2, 4),
    st.integers(0, 3),
)
@settings(max_examples=40, deadline=None)
def test_disjoint_negation_partitions(bounds, modulus, residue):
    cons = [
        Constraint.geq(Affine({"x": a}, c)) for a, c in bounds if a
    ]
    conj = Conjunct(cons).add_stride(modulus, Affine({"x": 1}, residue))
    n = conj.normalize()
    if n is None or not n.stride_only():
        return
    pieces = disjoint_negation(n)
    for x in range(-10, 11):
        inside = n.is_satisfied({"x": x})
        matches = sum(1 for p in pieces if p.is_satisfied({"x": x}))
        assert matches == (0 if inside else 1), x
