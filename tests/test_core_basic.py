"""Four-piece decomposition (Section 4.2) vs telescoping identity."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.basic import four_piece_polynomial_sum, four_piece_power_sum
from repro.core.powersums import sum_over_range
from repro.omega.affine import Affine
from repro.qpoly import Polynomial


class TestFourPiece:
    @given(st.integers(0, 4), st.integers(-8, 8), st.integers(-8, 8))
    @settings(max_examples=80)
    def test_matches_direct_sum(self, p, lo, hi):
        s = four_piece_power_sum(p, Affine.const_expr(lo), Affine.const_expr(hi))
        want = sum(Fraction(i) ** p for i in range(lo, hi + 1))
        assert s.evaluate({}) == want

    @given(st.integers(0, 3))
    @settings(max_examples=20)
    def test_matches_telescoping(self, p):
        """The paper's four-piece form and the engine's telescoping
        identity agree at every symbolic evaluation point."""
        s = four_piece_power_sum(p, Affine.var("L"), Affine.var("U"))
        z = Polynomial.variable("v") ** p
        tele = sum_over_range(
            z, "v", Polynomial.variable("L"), Polynomial.variable("U")
        )
        for L in range(-5, 6):
            for U in range(L, L + 8):
                assert s.evaluate({"L": L, "U": U}) == tele.evaluate(
                    {"L": L, "U": U}
                )

    def test_empty_range_is_zero(self):
        s = four_piece_power_sum(2, Affine.const_expr(5), Affine.const_expr(3))
        assert s.evaluate({}) == 0

    def test_symbolic_guards(self):
        s = four_piece_power_sum(1, Affine.var("L"), Affine.const_expr(10))
        # four guarded pieces, each with linear guards only
        for t in s.terms:
            assert all(c.is_geq() for c in t.guard.constraints)

    def test_polynomial_sum(self):
        # Σ (2 + 3i + i^2) over L..U
        s = four_piece_polynomial_sum(
            [2, 3, 1], Affine.var("L"), Affine.var("U")
        )
        for L in range(-4, 5):
            for U in range(L - 2, L + 6):
                want = sum(2 + 3 * i + i * i for i in range(L, U + 1))
                assert s.evaluate({"L": L, "U": U}) == want
