"""Batch front end: ordering, caching, dedup, CLI behaviour."""

import json

import pytest

from repro.__main__ import main
from repro.service.batch import (
    VOLATILE_RESPONSE_KEYS,
    BatchSummary,
    parse_request_line,
    run_batch,
)
from repro.service.diskcache import DiskCache
from repro.service.executor import BAD_REQUEST, JobError
from repro.service.request import JobRequest

COUNT_IJ = {
    "id": "pairs",
    "kind": "count",
    "formula": "1 <= i and i < j and j <= n",
    "over": ["i", "j"],
    "at": [{"n": 10}],
}
SUM_SQ = {
    "id": "squares",
    "kind": "sum",
    "formula": "1 <= i <= n",
    "over": ["i"],
    "poly": "i*i",
    "at": [{"n": 100}],
}


def stable(response):
    """Project away the keys allowed to differ between runs."""
    return {
        k: v for k, v in response.items() if k not in VOLATILE_RESPONSE_KEYS
    }


class TestParseRequestLine:
    def test_good_line(self):
        entry = parse_request_line(json.dumps(COUNT_IJ), 1)
        assert isinstance(entry, JobRequest)
        assert entry.id == "pairs"

    def test_bad_json_line(self):
        entry = parse_request_line("{not json", 4)
        assert isinstance(entry, JobError)
        assert entry.kind == BAD_REQUEST
        assert entry.id == 4

    def test_invalid_request_keeps_its_own_id(self):
        entry = parse_request_line(
            json.dumps({"id": "x9", "kind": "count", "formula": "1 <= i"}), 2
        )
        assert isinstance(entry, JobError)
        assert entry.id == "x9"


class TestRunBatch:
    def test_mixed_batch_all_answered_in_order(self):
        entries = [
            JobRequest.from_json(COUNT_IJ),
            JobError(BAD_REQUEST, "line 2: invalid JSON", id=2),
            JobRequest("count", "1 <= i <= ===", over=["i"], id="broken"),
            JobRequest.from_json(SUM_SQ),
        ]
        responses, summary = run_batch(entries, workers=1)
        assert [r["id"] for r in responses] == ["pairs", 2, "broken", "squares"]
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert responses[0]["points"] == [{"at": {"n": 10}, "value": 45}]
        assert responses[2]["error"]["kind"] == "parse_error"
        assert responses[3]["points"] == [{"at": {"n": 100}, "value": 338350}]
        assert summary.jobs == 4 and summary.ok == 2
        assert summary.errors == {"bad_request": 1, "parse_error": 1}

    def test_result_json_not_echoed_in_responses(self):
        responses, _ = run_batch([JobRequest.from_json(COUNT_IJ)])
        assert "result_json" not in responses[0]
        assert "result" in responses[0]

    def test_dedup_identical_jobs_compute_once(self):
        # Alpha-renamed copies hash identically and share one run.
        twin = dict(COUNT_IJ, id="twin", formula="1 <= p and p < q and q <= n")
        twin["over"] = ["p", "q"]
        responses, summary = run_batch(
            [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(twin)]
        )
        assert summary.deduped == 1
        assert stable(responses[0])["result"] == stable(responses[1])["result"]
        assert responses[1]["points"] == [{"at": {"n": 10}, "value": 45}]

    def test_rerun_is_fully_cached_and_stable(self, tmp_path):
        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        with DiskCache(str(tmp_path / "c.sqlite")) as cache:
            first, s1 = run_batch(entries, cache=cache)
            second, s2 = run_batch(entries, cache=cache)
        assert s1.cache_hits == 0 and s1.cache_misses == 2
        assert s2.cache_hits == 2 and s2.cache_misses == 0
        assert all(r["cached"] for r in second)
        assert all(r["wall_ms"] == 0.0 for r in second)
        for a, b in zip(first, second):
            assert json.dumps(stable(a), sort_keys=True) == json.dumps(
                stable(b), sort_keys=True
            )

    def test_failures_are_not_cached(self, tmp_path):
        entries = [JobRequest("count", "1 <= i <= ===", over=["i"], id="bad")]
        with DiskCache(str(tmp_path / "c.sqlite")) as cache:
            run_batch(entries, cache=cache)
            assert len(cache) == 0
            _, s2 = run_batch(entries, cache=cache)
        assert s2.cache_hits == 0

    def test_cache_write_failure_does_not_sink_batch(self, tmp_path, capsys):
        # A cache.put error (disk full, locked db) must degrade to an
        # uncached-but-correct response, never abort the batch.
        import sqlite3

        class ExplodingCache(DiskCache):
            def put(self, key, payload):
                raise sqlite3.OperationalError("database is locked")

        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        with ExplodingCache(str(tmp_path / "c.sqlite")) as cache:
            responses, summary = run_batch(entries, cache=cache)
            assert len(cache) == 0
        assert [r["ok"] for r in responses] == [True, True]
        assert summary.ok == 2
        assert "cache write failed" in capsys.readouterr().err

    def test_corrupt_cache_entry_recovers(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "c.sqlite")
        entries = [JobRequest.from_json(COUNT_IJ)]
        with DiskCache(path) as cache:
            first, _ = run_batch(entries, cache=cache)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE results SET payload = '{broken'")
        conn.commit()
        conn.close()
        with DiskCache(path) as cache:
            second, summary = run_batch(entries, cache=cache)
        assert summary.cache_corrupt == 1
        assert second[0]["ok"] is True and second[0]["cached"] is False
        assert stable(first[0]) == stable(second[0])

    def test_emit_streams_in_input_order(self):
        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        streamed = []
        responses, _ = run_batch(entries, workers=2, emit=streamed.append)
        assert streamed == responses

    def test_summary_round_trip(self):
        _, summary = run_batch([JobRequest.from_json(COUNT_IJ)])
        blob = summary.to_json()
        assert blob["jobs"] == 1 and blob["ok"] == 1
        assert "cache" in blob and "wall_seconds" in blob
        assert "1 jobs, 1 ok" in str(summary)


def write_jsonl(path, objs):
    with open(path, "w") as fh:
        for obj in objs:
            if isinstance(obj, str):
                fh.write(obj + "\n")
            else:
                fh.write(json.dumps(obj) + "\n")


class TestCLI:
    def run_cli(self, capsys, *argv):
        code = main(["batch"] + list(argv))
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        return code, lines, captured.err

    def test_batch_with_failures_still_exits_zero(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_SLEEP", "sleepy_marker")
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(
            reqs,
            [
                COUNT_IJ,
                "{definitely not json",
                {
                    "id": "stuck",
                    "kind": "count",
                    "formula": "1 <= sleepy_marker and sleepy_marker <= n + 7",
                    "over": ["sleepy_marker"],
                    "timeout": 0.3,
                },
                {
                    "id": "typo",
                    "kind": "count",
                    "formula": "1 <= i <= ===",
                    "over": ["i"],
                },
            ],
        )
        code, lines, err = self.run_cli(
            capsys,
            str(reqs),
            "--cache",
            str(tmp_path / "c.sqlite"),
            "--workers",
            "2",
        )
        assert code == 0
        kinds = {
            line["id"]: (line["ok"] or line["error"]["kind"])
            for line in lines
        }
        assert kinds == {
            "pairs": True,
            2: "bad_request",
            "stuck": "timeout",
            "typo": "parse_error",
        }
        assert "4 jobs, 1 ok" in err

    def test_second_run_hits_cache_and_matches(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(reqs, [COUNT_IJ, SUM_SQ])
        argv = [str(reqs), "--cache", str(tmp_path / "c.sqlite")]
        summary_path = tmp_path / "summary.json"
        code1, first, _ = self.run_cli(capsys, *argv)
        code2, second, _ = self.run_cli(
            capsys, *argv, "--summary-json", str(summary_path)
        )
        assert code1 == code2 == 0
        assert all(r["cached"] for r in second)
        assert [stable(a) for a in first] == [stable(b) for b in second]
        summary = json.loads(summary_path.read_text())
        assert summary["cache"]["hits"] == summary["jobs"] == 2

    def test_no_cache_flag(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(reqs, [COUNT_IJ])
        code, lines, _ = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 0 and lines[0]["ok"] is True
        assert not (tmp_path / ".repro-cache.sqlite").exists()

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "missing.jsonl"), "--no-cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read" in err

    def test_stdin_input(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(COUNT_IJ) + "\n"))
        code, lines, _ = self.run_cli(capsys, "-", "--no-cache")
        assert code == 0
        assert lines[0]["points"] == [{"at": {"n": 10}, "value": 45}]
