"""Batch front end: ordering, caching, dedup, CLI behaviour."""

import json

import pytest

from repro.__main__ import main
from repro.service.batch import (
    VOLATILE_RESPONSE_KEYS,
    BatchSummary,
    parse_request_line,
    run_batch,
)
from repro.service.diskcache import DiskCache
from repro.service.executor import BAD_REQUEST, JobError
from repro.service.request import JobRequest

COUNT_IJ = {
    "id": "pairs",
    "kind": "count",
    "formula": "1 <= i and i < j and j <= n",
    "over": ["i", "j"],
    "at": [{"n": 10}],
}
SUM_SQ = {
    "id": "squares",
    "kind": "sum",
    "formula": "1 <= i <= n",
    "over": ["i"],
    "poly": "i*i",
    "at": [{"n": 100}],
}


def stable(response):
    """Project away the keys allowed to differ between runs."""
    return {
        k: v for k, v in response.items() if k not in VOLATILE_RESPONSE_KEYS
    }


class TestParseRequestLine:
    def test_good_line(self):
        entry = parse_request_line(json.dumps(COUNT_IJ), 1)
        assert isinstance(entry, JobRequest)
        assert entry.id == "pairs"

    def test_bad_json_line(self):
        entry = parse_request_line("{not json", 4)
        assert isinstance(entry, JobError)
        assert entry.kind == BAD_REQUEST
        assert entry.id == 4

    def test_invalid_request_keeps_its_own_id(self):
        entry = parse_request_line(
            json.dumps({"id": "x9", "kind": "count", "formula": "1 <= i"}), 2
        )
        assert isinstance(entry, JobError)
        assert entry.id == "x9"


class TestRunBatch:
    def test_mixed_batch_all_answered_in_order(self):
        entries = [
            JobRequest.from_json(COUNT_IJ),
            JobError(BAD_REQUEST, "line 2: invalid JSON", id=2),
            JobRequest("count", "1 <= i <= ===", over=["i"], id="broken"),
            JobRequest.from_json(SUM_SQ),
        ]
        responses, summary = run_batch(entries, workers=1)
        assert [r["id"] for r in responses] == ["pairs", 2, "broken", "squares"]
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert responses[0]["points"] == [{"at": {"n": 10}, "value": 45}]
        assert responses[2]["error"]["kind"] == "parse_error"
        assert responses[3]["points"] == [{"at": {"n": 100}, "value": 338350}]
        assert summary.jobs == 4 and summary.ok == 2
        assert summary.errors == {"bad_request": 1, "parse_error": 1}

    def test_result_json_not_echoed_in_responses(self):
        responses, _ = run_batch([JobRequest.from_json(COUNT_IJ)])
        assert "result_json" not in responses[0]
        assert "result" in responses[0]

    def test_dedup_identical_jobs_compute_once(self):
        # Alpha-renamed copies hash identically and share one run.
        twin = dict(COUNT_IJ, id="twin", formula="1 <= p and p < q and q <= n")
        twin["over"] = ["p", "q"]
        responses, summary = run_batch(
            [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(twin)]
        )
        assert summary.deduped == 1
        assert stable(responses[0])["result"] == stable(responses[1])["result"]
        assert responses[1]["points"] == [{"at": {"n": 10}, "value": 45}]

    def test_rerun_is_fully_cached_and_stable(self, tmp_path):
        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        with DiskCache(str(tmp_path / "c.sqlite")) as cache:
            first, s1 = run_batch(entries, cache=cache)
            second, s2 = run_batch(entries, cache=cache)
        assert s1.cache_hits == 0 and s1.cache_misses == 2
        assert s2.cache_hits == 2 and s2.cache_misses == 0
        assert all(r["cached"] for r in second)
        assert all(r["wall_ms"] == 0.0 for r in second)
        for a, b in zip(first, second):
            assert json.dumps(stable(a), sort_keys=True) == json.dumps(
                stable(b), sort_keys=True
            )

    def test_failures_are_not_cached(self, tmp_path):
        entries = [JobRequest("count", "1 <= i <= ===", over=["i"], id="bad")]
        with DiskCache(str(tmp_path / "c.sqlite")) as cache:
            run_batch(entries, cache=cache)
            assert len(cache) == 0
            _, s2 = run_batch(entries, cache=cache)
        assert s2.cache_hits == 0

    def test_cache_write_failure_does_not_sink_batch(self, tmp_path, capsys):
        # A cache.put error (disk full, locked db) must degrade to an
        # uncached-but-correct response, never abort the batch.
        import sqlite3

        class ExplodingCache(DiskCache):
            def put(self, key, payload):
                raise sqlite3.OperationalError("database is locked")

        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        with ExplodingCache(str(tmp_path / "c.sqlite")) as cache:
            responses, summary = run_batch(entries, cache=cache)
            assert len(cache) == 0
        assert [r["ok"] for r in responses] == [True, True]
        assert summary.ok == 2
        assert "cache write failed" in capsys.readouterr().err

    def test_corrupt_cache_entry_recovers(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "c.sqlite")
        entries = [JobRequest.from_json(COUNT_IJ)]
        with DiskCache(path) as cache:
            first, _ = run_batch(entries, cache=cache)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE results SET payload = '{broken'")
        conn.commit()
        conn.close()
        with DiskCache(path) as cache:
            second, summary = run_batch(entries, cache=cache)
        assert summary.cache_corrupt == 1
        assert second[0]["ok"] is True and second[0]["cached"] is False
        assert stable(first[0]) == stable(second[0])

    def test_emit_streams_in_input_order(self):
        entries = [JobRequest.from_json(COUNT_IJ), JobRequest.from_json(SUM_SQ)]
        streamed = []
        responses, _ = run_batch(entries, workers=2, emit=streamed.append)
        assert streamed == responses

    def test_summary_round_trip(self):
        _, summary = run_batch([JobRequest.from_json(COUNT_IJ)])
        blob = summary.to_json()
        assert blob["jobs"] == 1 and blob["ok"] == 1
        assert "cache" in blob and "wall_seconds" in blob
        assert "1 jobs, 1 ok" in str(summary)


def write_jsonl(path, objs):
    with open(path, "w") as fh:
        for obj in objs:
            if isinstance(obj, str):
                fh.write(obj + "\n")
            else:
                fh.write(json.dumps(obj) + "\n")


class TestCLI:
    def run_cli(self, capsys, *argv):
        code = main(["batch"] + list(argv))
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        return code, lines, captured.err

    def test_job_failures_still_exit_zero(
        self, tmp_path, capsys, monkeypatch
    ):
        # Per-job failures are data: every well-formed line gets a
        # structured response and the exit code stays 0.
        monkeypatch.setenv("REPRO_SERVICE_SLEEP", "sleepy_marker")
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(
            reqs,
            [
                COUNT_IJ,
                {
                    "id": "stuck",
                    "kind": "count",
                    "formula": "1 <= sleepy_marker and sleepy_marker <= n + 7",
                    "over": ["sleepy_marker"],
                    "timeout": 0.3,
                },
                {
                    "id": "typo",
                    "kind": "count",
                    "formula": "1 <= i <= ===",
                    "over": ["i"],
                },
            ],
        )
        code, lines, err = self.run_cli(
            capsys,
            str(reqs),
            "--cache",
            str(tmp_path / "c.sqlite"),
            "--workers",
            "2",
        )
        assert code == 0
        kinds = {
            line["id"]: (line["ok"] or line["error"]["kind"])
            for line in lines
        }
        assert kinds == {
            "pairs": True,
            "stuck": "timeout",
            "typo": "parse_error",
        }
        assert "3 jobs, 1 ok" in err

    def test_malformed_line_answers_batch_but_exits_one(
        self, tmp_path, capsys
    ):
        # A line that is not a request at all (truncated JSON here) is
        # an *input-file* defect: it still gets a structured per-line
        # response and the rest of the batch is answered, but the exit
        # code flips to 1 so pipelines notice the corrupt file.
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(reqs, [COUNT_IJ, "{definitely not json", SUM_SQ])
        code, lines, err = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 1
        assert [line["ok"] for line in lines] == [True, False, True]
        assert lines[1]["error"]["kind"] == "bad_request"
        assert "line 2" in lines[1]["error"]["message"]
        assert "1 malformed input line" in err

    def test_truncated_record_and_trailing_blank_line(
        self, tmp_path, capsys
    ):
        # A trailing blank line is a tolerated artifact of appending
        # tools -- skipped, exit 0.  A *truncated* record (writer died
        # mid-line) is a malformed line -- answered, exit 1.
        reqs = tmp_path / "reqs.jsonl"
        with open(reqs, "w") as fh:
            fh.write(json.dumps(COUNT_IJ) + "\n")
            fh.write("\n")  # spacer blank line
        code, lines, _ = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 0 and len(lines) == 1 and lines[0]["ok"]

        truncated = json.dumps(SUM_SQ)[: len(json.dumps(SUM_SQ)) // 2]
        with open(reqs, "w") as fh:
            fh.write(json.dumps(COUNT_IJ) + "\n")
            fh.write(truncated + "\n")
        code, lines, err = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 1
        assert lines[0]["ok"] is True
        assert lines[1]["ok"] is False
        assert lines[1]["id"] == 2
        assert "1 malformed input line" in err

    def test_undecodable_bytes_become_structured_line_error(
        self, tmp_path, capsys
    ):
        # Raw non-UTF-8 bytes in one record must not raise a
        # UnicodeDecodeError for the whole file.
        reqs = tmp_path / "reqs.jsonl"
        with open(reqs, "wb") as fh:
            fh.write(json.dumps(COUNT_IJ).encode("utf-8") + b"\n")
            fh.write(b'{"id": "bin", "formula": "\xff\xfe garbage"}\n')
        code, lines, err = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 1
        assert lines[0]["ok"] is True
        assert lines[1]["ok"] is False
        assert "undecodable bytes" in lines[1]["error"]["message"]
        assert "1 malformed input line" in err

    def test_second_run_hits_cache_and_matches(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(reqs, [COUNT_IJ, SUM_SQ])
        argv = [str(reqs), "--cache", str(tmp_path / "c.sqlite")]
        summary_path = tmp_path / "summary.json"
        code1, first, _ = self.run_cli(capsys, *argv)
        code2, second, _ = self.run_cli(
            capsys, *argv, "--summary-json", str(summary_path)
        )
        assert code1 == code2 == 0
        assert all(r["cached"] for r in second)
        assert [stable(a) for a in first] == [stable(b) for b in second]
        summary = json.loads(summary_path.read_text())
        assert summary["cache"]["hits"] == summary["jobs"] == 2

    def test_no_cache_flag(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        write_jsonl(reqs, [COUNT_IJ])
        code, lines, _ = self.run_cli(capsys, str(reqs), "--no-cache")
        assert code == 0 and lines[0]["ok"] is True
        assert not (tmp_path / ".repro-cache.sqlite").exists()

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "missing.jsonl"), "--no-cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read" in err

    def test_stdin_input(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(COUNT_IJ) + "\n"))
        code, lines, _ = self.run_cli(capsys, "-", "--no-cache")
        assert code == 0
        assert lines[0]["points"] == [{"at": {"n": 10}, "value": 45}]
