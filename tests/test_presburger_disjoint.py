"""Disjoint DNF machinery tests (Section 5)."""

import pytest

from conftest import assert_clauses_cover, enumerate_conjunct, enumerate_formula
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.presburger.disjoint import (
    disjoint_negation,
    disjointify,
    negate_constraint_in,
    project_to_stride_only,
    to_disjoint_dnf,
)
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


class TestNegateConstraint:
    def test_geq(self):
        c = geq({"x": 1}, -3)  # x >= 3
        (piece,) = negate_constraint_in(Conjunct([c]), c)
        assert enumerate_conjunct(piece, ("x",), 6) == {
            (x,) for x in range(-6, 3)
        }

    def test_equality_two_pieces(self):
        c = Constraint.eq(Affine({"x": 1}, -2))
        pieces = negate_constraint_in(Conjunct([c]), c)
        assert len(pieces) == 2
        got = set()
        for p in pieces:
            got |= enumerate_conjunct(p, ("x",), 6)
        assert got == {(x,) for x in range(-6, 7) if x != 2}

    def test_stride_residue_fanout(self):
        conj = Conjunct.true().add_stride(3, Affine.var("x"))
        c = conj.eqs()[0]
        pieces = negate_constraint_in(conj, c)
        assert len(pieces) == 2
        got = set()
        for p in pieces:
            got |= enumerate_conjunct(p, ("x",), 9)
        assert got == {(x,) for x in range(-9, 10) if x % 3 != 0}

    def test_rejects_non_stride_wildcard(self):
        conj = Conjunct(
            [Constraint.eq(Affine({"w": 2, "x": -1})), geq({"w": 1})],
            ["w"],
        )
        with pytest.raises(ValueError):
            negate_constraint_in(conj, conj.eqs()[0])


class TestDisjointNegation:
    def test_pieces_disjoint_and_cover(self):
        conj = Conjunct([geq({"x": 1}, -1), geq({"x": -1}, 4)])  # 1<=x<=4
        pieces = disjoint_negation(conj)
        want = {(x,) for x in range(-8, 9) if not 1 <= x <= 4}
        assert_clauses_cover(pieces, want, ("x",), box=8, disjoint=True)

    def test_with_stride(self):
        conj = Conjunct([geq({"x": 1})]).add_stride(2, Affine.var("x"))
        pieces = disjoint_negation(conj)
        want = {(x,) for x in range(-8, 9) if not (x >= 0 and x % 2 == 0)}
        assert_clauses_cover(pieces, want, ("x",), box=8, disjoint=True)

    def test_requires_stride_only(self):
        conj = Conjunct(
            [geq({"w": 1, "x": 1}), geq({"w": -1, "x": 1})], ["w"]
        )
        with pytest.raises(ValueError):
            disjoint_negation(conj)


class TestProjectToStrideOnly:
    def test_floor_definition(self):
        # ∃w: 3w <= x <= 3w + 2 covers every x: projects to TRUE
        conj = Conjunct(
            [geq({"x": 1, "w": -3}), geq({"x": -1, "w": 3}, 2)], ["w"]
        )
        pieces = project_to_stride_only(conj)
        got = set()
        for p in pieces:
            assert p.stride_only()
            got |= enumerate_conjunct(p, ("x",), 8)
        assert got == {(x,) for x in range(-8, 9)}

    def test_produces_strides(self):
        # ∃w: x = 3w ∧ w >= 1  ->  x >= 3 ∧ 3 | x
        conj = Conjunct(
            [Constraint.eq(Affine({"x": 1, "w": -3})), geq({"w": 1}, -1)],
            ["w"],
        )
        pieces = project_to_stride_only(conj)
        got = set()
        for p in pieces:
            got |= enumerate_conjunct(p, ("x",), 12)
        assert got == {(x,) for x in range(3, 13, 3)}

    def test_splintering_case_disjoint(self):
        # the §5.2 example as ∃b: pieces must be disjoint in a
        conj = Conjunct(
            [
                geq({"b": 3, "a": -1}),
                geq({"b": -3, "a": 1}, 7),
                geq({"a": 1, "b": -2}, -1),
                geq({"a": -1, "b": 2}, 5),
            ],
            ["b"],
        )
        pieces = project_to_stride_only(conj)
        want = {(3,), (29,)} | {(a,) for a in range(5, 28)}
        assert_clauses_cover(pieces, want, ("a",), box=31, disjoint=True)


class TestDisjointify:
    def test_overlapping_intervals(self):
        clauses = [
            Conjunct([geq({"x": 1}, -1), geq({"x": -1}, 10)]),
            Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 15)]),
        ]
        out = disjointify(clauses)
        want = {(x,) for x in range(1, 16)}
        assert_clauses_cover(out, want, ("x",), box=20, disjoint=True)

    def test_subset_eliminated(self):
        big = Conjunct([geq({"x": 1}), geq({"x": -1}, 10)])
        small = Conjunct([geq({"x": 1}, -2), geq({"x": -1}, 5)])
        out = disjointify([big, small])
        assert len(out) == 1

    def test_disjoint_input_untouched_semantically(self):
        a = Conjunct([geq({"x": 1}), geq({"x": -1}, 3)])
        b = Conjunct([geq({"x": 1}, -10), geq({"x": -1}, 12)])
        out = disjointify([a, b])
        want = {(x,) for x in range(0, 4)} | {(10,), (11,), (12,)}
        assert_clauses_cover(out, want, ("x",), box=15, disjoint=True)

    def test_three_way_overlap(self):
        clauses = [
            Conjunct([geq({"x": 1}, -i), geq({"x": -1}, i + 6)])
            for i in range(3)
        ]
        out = disjointify(clauses)
        want = {(x,) for x in range(0, 9)}
        assert_clauses_cover(out, want, ("x",), box=12, disjoint=True)

    def test_two_dimensional(self):
        f = parse(
            "(1 <= x <= 4 and 1 <= y <= 4) or (3 <= x <= 6 and 3 <= y <= 6)"
        )
        out = to_disjoint_dnf(f)
        want = enumerate_formula(f, ("x", "y"), 8)
        assert_clauses_cover(out, want, ("x", "y"), box=8, disjoint=True)

    def test_strided_clauses(self):
        f = parse("(2 | x and 0 <= x <= 10) or (3 | x and 0 <= x <= 10)")
        out = to_disjoint_dnf(f)
        want = enumerate_formula(f, ("x",), 12)
        assert_clauses_cover(out, want, ("x",), box=12, disjoint=True)
