"""Hypothesis property tests: the engine vs brute-force enumeration.

The central invariant of the whole library: for any Presburger formula
and polynomial summand, the symbolic result evaluated at concrete
parameter values equals the brute-force count/sum.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from conftest import brute_count, brute_sum
from repro.core import count, sum_poly
from repro.presburger.parser import parse
from repro.qpoly import Polynomial

bound_consts = st.integers(-3, 3)
small_coeff = st.integers(1, 3)


@st.composite
def box_formula(draw):
    """Random 2-var conjunct with symbolic and constant bounds."""
    pieces = []
    for v in ("i", "j"):
        lo = draw(bound_consts)
        pieces.append("%d <= %s" % (lo, v))
        if draw(st.booleans()):
            pieces.append("%s <= n + %d" % (v, draw(bound_consts)))
        else:
            pieces.append("%s <= %d" % (v, draw(st.integers(0, 6))))
    if draw(st.booleans()):
        a, b = draw(small_coeff), draw(small_coeff)
        pieces.append("%d*i <= %d*j + %d" % (a, b, draw(bound_consts)))
    return " and ".join(pieces)


@given(box_formula(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_count_matches_brute_force(text, n):
    formula = parse(text)
    result = count(formula, ["i", "j"])
    env = {"n": n} if "n" in formula.free_variables() else {}
    assert result.evaluate(env) == brute_count(formula, ["i", "j"], env, box=12)


@given(box_formula(), st.integers(0, 4), st.integers(0, 2), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_sum_matches_brute_force(text, n, p, q):
    formula = parse(text)
    z = Polynomial.variable("i") ** p * Polynomial.variable("j") ** q
    result = sum_poly(formula, ["i", "j"], z)
    env = {"n": n} if "n" in formula.free_variables() else {}
    assert result.evaluate(env) == brute_sum(formula, ["i", "j"], z, env, box=12)


@st.composite
def stride_formula(draw):
    m = draw(st.integers(2, 4))
    r = draw(st.integers(0, 3))
    lo = draw(bound_consts)
    return "%d | i + %d and %d <= i <= n" % (m, r, lo)


@given(stride_formula(), st.integers(-2, 9))
@settings(max_examples=40, deadline=None)
def test_strided_count(text, n):
    formula = parse(text)
    result = count(formula, ["i"])
    assert result.evaluate(n=n) == brute_count(formula, ["i"], {"n": n}, box=14)


@given(
    st.integers(2, 5),
    st.integers(2, 5),
    st.integers(0, 20),
)
@settings(max_examples=40, deadline=None)
def test_rational_bounds_exact(a, b, n):
    """ceil(n/b) <= i <= floor(n·a ... ) shapes with both strategies."""
    text = "n <= %d*i and %d*i <= 3*n + 4" % (b, a)
    formula = parse(text)
    from repro.core import Strategy, SumOptions

    for strat in (Strategy.EXACT, Strategy.SPLINTER):
        result = count(formula, ["i"], SumOptions(strategy=strat))
        want = brute_count(formula, ["i"], {"n": n}, box=4 * n + 10)
        assert result.evaluate(n=n) == want, (strat, text, n)


@given(st.integers(2, 6), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_bounds_bracket_truth(a, n):
    from repro.core.general import count_bounds

    text = "1 <= i and %d*i <= n" % a
    lo, hi = count_bounds(text, ["i"])
    truth = max(n // a, 0)
    assert lo.evaluate(n=n) <= truth <= hi.evaluate(n=n)


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(1, 6)),
        min_size=2,
        max_size=3,
    ),
    st.integers(0, 6),
)
@settings(max_examples=30, deadline=None)
def test_union_counting(intervals, n):
    """Unions of intervals: disjoint DNF must count each point once."""
    text = " or ".join(
        "(%d <= x <= %d + n)" % (lo, lo + length) for lo, length in intervals
    )
    formula = parse(text)
    result = count(formula, ["x"])
    assert result.evaluate(n=n) == brute_count(formula, ["x"], {"n": n}, box=25)


@given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_simplified_preserves_value(a, b, n):
    text = "1 <= i and %d*i <= %d*j and 1 <= j <= n" % (a, b)
    result = count(text, ["i", "j"])
    simplified = result.simplified()
    env = {"n": n}
    assert simplified.evaluate(env) == result.evaluate(env)
