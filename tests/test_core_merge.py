"""Result post-processing tests: residue merging, guard widening."""

from fractions import Fraction

from repro.core import count, sum_poly
from repro.core.merge import (
    canonicalize_mod_shifts,
    merge_residues,
    reduce_mod_powers,
    simplify_guard,
    widen_guards,
)
from repro.core.result import SymbolicSum, Term
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.qpoly import ModAtom, Polynomial


class TestModPowerReduction:
    def test_paper_identity(self):
        # §6 Example 6: (n mod 2)^2 == (n mod 2)
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        assert reduce_mod_powers(m * m) == m

    def test_mod3_square_untouched(self):
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 3))
        p = reduce_mod_powers(m * m)
        for n in range(-6, 7):
            assert p.evaluate({"n": n}) == (n % 3) ** 2

    def test_mod3_cube_reduced(self):
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 3))
        p = reduce_mod_powers(m ** 3)
        assert p.degree_in("n") == 0  # no plain n
        assert max(
            e for mono in p.terms for _, e in mono
        ) <= 2
        for n in range(-6, 7):
            assert p.evaluate({"n": n}) == (n % 3) ** 3


class TestModShiftCanonicalization:
    def test_parity_shift(self):
        # (n+1) mod 2 == 1 - (n mod 2)
        shifted = Polynomial.atom(ModAtom({"n": 1}, 1, 2))
        base = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        assert canonicalize_mod_shifts(shifted) == 1 - base

    def test_mod3_shift(self):
        shifted = Polynomial.atom(ModAtom({"n": 1}, 2, 3))
        p = canonicalize_mod_shifts(shifted)
        for n in range(-9, 9):
            assert p.evaluate({"n": n}) == (n + 2) % 3

    def test_constant_only_atom_untouched(self):
        # no variables: stays (it is just a constant)
        p = Polynomial.atom(ModAtom({"n": 2}, 1, 2))
        q = canonicalize_mod_shifts(p)
        for n in range(-4, 4):
            assert q.evaluate({"n": n}) == p.evaluate({"n": n})


class TestMergeResidues:
    def test_parity_split_merges(self):
        guard_even = Conjunct.true().add_stride(2, Affine.var("n"))
        guard_odd = Conjunct.true().add_stride(2, Affine({"n": 1}, 1))
        n = Polynomial.variable("n")
        s = SymbolicSum(
            [Term(guard_even, n / 2), Term(guard_odd, (n - 1) / 2)]
        )
        merged = merge_residues(s)
        assert len(merged.terms) == 1
        for k in range(-6, 8):
            assert merged.evaluate(n=k) == k // 2

    def test_incomplete_split_kept(self):
        guard_even = Conjunct.true().add_stride(2, Affine.var("n"))
        s = SymbolicSum([Term(guard_even, Polynomial.constant(1))])
        assert len(merge_residues(s).terms) == 1
        for k in range(-4, 5):
            assert merge_residues(s).evaluate(n=k) == (1 if k % 2 == 0 else 0)

    def test_different_affine_guards_not_merged(self):
        g1 = Conjunct(
            [Constraint.geq(Affine({"n": 1}))]
        ).add_stride(2, Affine.var("n"))
        g2 = Conjunct.true().add_stride(2, Affine({"n": 1}, 1))
        s = SymbolicSum(
            [Term(g1, Polynomial.one), Term(g2, Polynomial.one)]
        )
        merged = merge_residues(s)
        for k in range(-4, 5):
            assert merged.evaluate(n=k) == s.evaluate(n=k)


class TestWidenGuards:
    def test_example_6_widening(self):
        # value 3/8(n^2 - 1) on the odd class is 0 at n = 1: the guard
        # n >= 2 can widen to n >= 1 to match a sibling term.
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        n = Polynomial.variable("n")
        value = (n * n - 1) * m * Fraction(3, 8)
        g2 = Conjunct([Constraint.geq(Affine({"n": 1}, -2))])
        g1 = Conjunct([Constraint.geq(Affine({"n": 1}, -1))])
        s = SymbolicSum([Term(g2, value), Term(g1, Polynomial.one)])
        out = widen_guards(s)
        assert len(out.terms) == 1
        for k in range(0, 6):
            assert out.evaluate(n=k) == s.evaluate(n=k)

    def test_nonzero_slice_not_widened(self):
        g2 = Conjunct([Constraint.geq(Affine({"n": 1}, -2))])
        g1 = Conjunct([Constraint.geq(Affine({"n": 1}, -1))])
        s = SymbolicSum(
            [Term(g2, Polynomial.variable("n")), Term(g1, Polynomial.one)]
        )
        out = widen_guards(s)
        assert len(out.terms) == 2
        for k in range(0, 6):
            assert out.evaluate(n=k) == s.evaluate(n=k)


class TestSimplifyGuard:
    def test_floor_wildcards_projected(self):
        # ∃g: 2g <= n <= 2g + 1 ∧ g >= 1 is just n >= 2
        g = Conjunct(
            [
                Constraint.geq(Affine({"n": 1, "w": -2})),
                Constraint.geq(Affine({"n": -1, "w": 2}, 1)),
                Constraint.geq(Affine({"w": 1}, -1)),
            ],
            ["w"],
        )
        out = simplify_guard(g)
        assert not out.wildcards
        for n in range(-3, 6):
            assert out.is_satisfied({"n": n}) == (n >= 2)


class TestEndToEnd:
    def test_example_6_compact_form(self):
        r = count("1 <= i and 1 <= j <= n and 2*i <= 3*j", ["i", "j"])
        s = r.simplified()
        assert len(s.terms) == 1
        ((guard, value),) = s.terms
        # the paper's final answer: (3n² + 2n - (n mod 2)) / 4
        n = Polynomial.variable("n")
        m = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
        assert value == (3 * n * n + 2 * n - m) / 4

    def test_simplified_preserves_semantics(self):
        r = sum_poly("1 <= i and 4*i <= n", ["i"], "i")
        s = r.simplified()
        for n in range(0, 25):
            assert s.evaluate(n=n) == r.evaluate(n=n)
