"""Admission control: token buckets and per-tenant budget clamps."""

import pytest

from repro.serve.admission import TenantTable, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        now = 1000.0
        takes = [bucket.try_take(now) for _ in range(4)]
        assert takes == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        now = 1000.0
        assert bucket.try_take(now) and bucket.try_take(now)
        assert not bucket.try_take(now)
        # 0.5s at 2 tokens/s refills exactly one token.
        assert bucket.try_take(now + 0.5)
        assert not bucket.try_take(now + 0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        now = 1000.0
        assert bucket.try_take(now)
        # A long idle period must not bank more than `burst` tokens.
        assert bucket.try_take(now + 3600)
        assert bucket.try_take(now + 3600)
        assert not bucket.try_take(now + 3600)

    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(rate=None, burst=1)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_clock_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.try_take(1000.0)
        assert not bucket.try_take(999.0)  # no negative refill

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestTenantTable:
    def test_no_rate_admits_everyone(self):
        table = TenantTable(rate=None)
        assert table.admit("a") and table.admit("a") and table.admit("b")
        assert table.tenants() == 0  # no state kept when unlimited

    def test_buckets_are_per_tenant(self):
        table = TenantTable(rate=1.0, burst=1)
        now = 1000.0
        assert table.admit("alice", now)
        assert not table.admit("alice", now)  # alice is out of tokens
        assert table.admit("bob", now)  # bob has his own bucket
        assert table.tenants() == 2

    def test_clamp_budget_honours_ceiling(self):
        table = TenantTable(budget_ceiling=100)
        assert table.clamp_budget(None, None) == 100
        assert table.clamp_budget(None, 50) == 50
        assert table.clamp_budget(500, None) == 100
        assert table.clamp_budget(30, None) == 30

    def test_clamp_budget_without_ceiling(self):
        table = TenantTable()
        assert table.clamp_budget(None, None) is None
        assert table.clamp_budget(None, 7) == 7
        assert table.clamp_budget(12, 7) == 12
