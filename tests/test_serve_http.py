"""Wire front ends: HTTP routes, JSONL socket, drain-on-SIGTERM."""

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.serve.daemon import CountingDaemon, ServeConfig
from repro.serve.http import HttpFrontend, JsonlFrontend, response_status
from repro.serve.loadgen import _http_request

COUNT_IJ = {
    "id": "pairs",
    "kind": "count",
    "formula": "1 <= i and i < j and j <= n",
    "over": ["i", "j"],
    "at": [{"n": 10}],
}

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def make_daemon(tmp_path, **kw):
    kw.setdefault("cache_path", str(tmp_path / "serve-cache.sqlite"))
    kw.setdefault("workers", 2)
    return CountingDaemon(ServeConfig(**kw))


def http_scenario(tmp_path, coro_fn, **kw):
    """Daemon + HTTP front end on an ephemeral port, always torn down."""

    async def wrapper():
        daemon = make_daemon(tmp_path, **kw)
        daemon.start()
        front = HttpFrontend(daemon, "127.0.0.1", 0)
        await front.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", front.port
            )
            try:
                return await coro_fn(daemon, front, reader, writer)
            finally:
                writer.close()
        finally:
            await front.stop()
            await daemon.drain()

    return asyncio.run(wrapper())


class TestResponseStatus:
    def test_mapping(self):
        def err(kind):
            return {"ok": False, "error": {"kind": kind}}

        assert response_status({"ok": True}) == 200
        assert response_status(err("overloaded")) == 429
        assert response_status(err("rate_limited")) == 429
        assert response_status(err("bad_request")) == 400
        assert response_status(err("parse_error")) == 400
        assert response_status(err("timeout")) == 504
        assert response_status(err("engine_error")) == 500


class TestHttpFrontend:
    def test_healthz(self, tmp_path):
        async def scenario(daemon, front, reader, writer):
            return await _http_request(reader, writer, "GET", "/healthz")

        status, doc = http_scenario(tmp_path, scenario)
        assert status == 200
        assert doc["ok"] is True and doc["draining"] is False
        assert doc["uptime_seconds"] >= 0.0

    def test_post_count_then_stats(self, tmp_path):
        async def scenario(daemon, front, reader, writer):
            body = dict(COUNT_IJ)
            del body["kind"]  # the path names the kind
            status1, first = await _http_request(
                reader, writer, "POST", "/count", body
            )
            status2, second = await _http_request(
                reader, writer, "POST", "/job", COUNT_IJ
            )
            status3, snap = await _http_request(
                reader, writer, "GET", "/stats"
            )
            return (status1, first), (status2, second), (status3, snap)

        (s1, first), (s2, second), (s3, snap) = http_scenario(
            tmp_path, scenario
        )
        assert s1 == s2 == s3 == 200
        assert first["ok"] and first["tier"] == "cold"
        assert first["points"] == [{"at": {"n": 10}, "value": 45}]
        assert second["tier"] == "warm"  # same keep-alive connection
        assert snap["serve"]["counters"]["requests"] == 2
        assert snap["serve"]["counters"]["warm_hits"] == 1
        assert "sat_calls" in snap  # the engine snapshot is the base

    def test_bad_json_body_is_400(self, tmp_path):
        async def scenario(daemon, front, reader, writer):
            payload = b"this is not json"
            head = (
                "POST /count HTTP/1.1\r\nHost: t\r\n"
                "Content-Length: %d\r\n\r\n" % len(payload)
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
            status_line = await reader.readline()
            length = 0
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            doc = json.loads(await reader.readexactly(length))
            return int(status_line.split()[1]), doc

        status, doc = http_scenario(tmp_path, scenario)
        assert status == 400
        assert doc["ok"] is False
        assert doc["error"]["kind"] == "bad_request"

    def test_unknown_path_is_404_and_method_405(self, tmp_path):
        async def scenario(daemon, front, reader, writer):
            s1, _ = await _http_request(reader, writer, "GET", "/nope")
            s2, _ = await _http_request(reader, writer, "PUT", "/count")
            return s1, s2

        s1, s2 = http_scenario(tmp_path, scenario)
        assert s1 == 404 and s2 == 405

    def test_tenant_header_feeds_rate_limiting(self, tmp_path):
        async def scenario(daemon, front, reader, writer):
            statuses = []
            for k in range(3):
                job = {
                    "id": "t%d" % k,
                    "kind": "count",
                    "formula": "1 <= i <= n + %d" % k,
                    "over": ["i"],
                }
                head = (
                    "POST /job HTTP/1.1\r\nHost: t\r\n"
                    "X-Repro-Tenant: hammer\r\n"
                    "Content-Type: application/json\r\n"
                )
                body = json.dumps(job).encode("utf-8")
                head += "Content-Length: %d\r\n\r\n" % len(body)
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                status_line = await reader.readline()
                length = 0
                while True:
                    raw = await reader.readline()
                    if raw in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = raw.decode("latin-1").partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                await reader.readexactly(length)
                statuses.append(int(status_line.split()[1]))
            return statuses

        statuses = http_scenario(
            tmp_path, scenario, rate=0.001, burst=2
        )
        assert statuses == [200, 200, 429]


class TestJsonlFrontend:
    def test_round_trip_with_correlated_ids(self, tmp_path):
        async def wrapper():
            daemon = make_daemon(tmp_path)
            daemon.start()
            front = JsonlFrontend(daemon, "127.0.0.1", 0)
            await front.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", front.port
                )
                jobs = [
                    dict(COUNT_IJ, id="a"),
                    dict(COUNT_IJ, id="b", tenant="someone"),
                    {"id": "bad", "kind": "count"},  # missing formula
                ]
                for job in jobs:
                    writer.write(
                        (json.dumps(job) + "\n").encode("utf-8")
                    )
                await writer.drain()
                writer.write_eof()
                responses = []
                while len(responses) < 3:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=30
                    )
                    if not line:
                        break
                    responses.append(json.loads(line))
                writer.close()
                return responses
            finally:
                await front.stop()
                await daemon.drain()

        responses = asyncio.run(wrapper())
        by_id = {r["id"]: r for r in responses}
        assert set(by_id) == {"a", "b", "bad"}
        assert by_id["a"]["ok"] is True
        # "b" is a duplicate hash: answered identically (tenant field
        # was stripped before the request model saw it).
        assert by_id["b"]["ok"] is True
        assert by_id["b"]["result"] == by_id["a"]["result"]
        assert by_id["bad"]["ok"] is False

    def test_garbage_line_gets_structured_response(self, tmp_path):
        async def wrapper():
            daemon = make_daemon(tmp_path)
            daemon.start()
            front = JsonlFrontend(daemon, "127.0.0.1", 0)
            await front.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", front.port
                )
                writer.write(b"{truncated\n")
                await writer.drain()
                writer.write_eof()
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                writer.close()
                return json.loads(line)
            finally:
                await front.stop()
                await daemon.drain()

        response = asyncio.run(wrapper())
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad_request"


class TestServeProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        """The CLI daemon must exit 0 on SIGTERM after a clean drain."""
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http-port",
                "0",
                "--cache",
                str(tmp_path / "serve.sqlite"),
            ],
            stderr=subprocess.PIPE,
            cwd=str(tmp_path),
            env=env,
        )
        try:
            ready = proc.stderr.readline().decode()
            assert "listening on http://127.0.0.1:" in ready
            proc.send_signal(signal.SIGTERM)
            out = proc.stderr.read().decode()
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        assert code == 0
        assert "draining" in out
        assert "drained; 0 requests" in out
