"""Unit tests for the evalc compiler (lowering, guards, cache).

The public contract under test: ``compile_sum(result)`` produces an
evaluator that is *bit-for-bit* equal to ``result.evaluate`` -- same
value and same type (int when the Fraction is integral, Fraction
otherwise) -- across positive, zero, and negative symbol values.
"""

from fractions import Fraction

import pytest

from repro.core import count, sum_poly
from repro.evalc import (
    clear_cache,
    compile_enabled,
    compile_sum,
    set_compile_enabled,
)
from repro.evalc.compiler import _CACHE, _CACHE_LIMIT, generate_source
from repro.evalc.lower import (
    horner_eval,
    int_affine_src,
    poly_denominator,
    scaled_terms,
)
from repro.qpoly.parse import parse_polynomial


def _fractional_poly():
    """1/2*n**2 - 1/2*n + ... : a term polynomial with denominators."""
    result = count("1 <= i and i < j and j <= n", ["i", "j"])
    for term in result.terms:
        if poly_denominator(term.value) > 1:
            return term.value
    raise AssertionError("expected a fractional term polynomial")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()
    set_compile_enabled(True)


def _grid(symbols, lo=-6, hi=8):
    if not symbols:
        return [{}]
    if len(symbols) == 1:
        return [{symbols[0]: v} for v in range(lo, hi + 1)]
    first, rest = symbols[0], symbols[1:]
    return [
        dict(env, **{first: v})
        for v in range(lo, hi + 1, 2)
        for env in _grid(rest, lo, hi)
    ]


def _assert_bitwise_equal(result, envs):
    compiled = compile_sum(result)
    for env in envs:
        want = result.evaluate(env)
        got = compiled.at(env)
        assert got == want, env
        assert type(got) is type(want), env


class TestLowering:
    def test_poly_denominator(self):
        poly = _fractional_poly()
        assert poly_denominator(poly) == 2
        assert poly_denominator(parse_polynomial("n + 1")) == 1

    def test_scaled_terms_are_integers(self):
        poly = _fractional_poly()
        terms = scaled_terms(poly, poly_denominator(poly))
        assert terms
        assert all(isinstance(c, int) for c in terms.values())

    def test_int_affine_src_constant_folds(self):
        assert int_affine_src([], 5, {}) == "5"
        assert int_affine_src([("x", 1)], 0, {"x": "v0"}) == "v0"

    def test_horner_eval(self):
        # 2t^2 - 3t + 1, highest-first dense coefficients.
        assert horner_eval([2, -3, 1], 4) == 21
        assert horner_eval([], 99) == 0

    def test_generated_source_shape(self):
        result = count("1 <= i and i <= n", ["i"])
        source, scale = generate_source(result)
        assert "def _at(env):" in source
        assert scale == 1


class TestBitForBit:
    def test_polynomial_answer(self):
        result = count("1 <= i and i < j and j <= n", ["i", "j"])
        _assert_bitwise_equal(result, _grid(["n"], -4, 12))

    def test_mod_atoms(self):
        result = count("1 <= i and 2*i <= n and 3 | (i + n)", ["i"])
        _assert_bitwise_equal(result, _grid(["n"], -6, 20))

    def test_two_symbols(self):
        result = count(
            "1 <= i and i <= n and 1 <= j and j <= m and 2 | (i + j)",
            ["i", "j"],
        )
        _assert_bitwise_equal(result, _grid(["n", "m"]))

    def test_sum_with_fractional_coefficients(self):
        result = sum_poly("1 <= i and i <= n", ["i"], "i*i")
        _assert_bitwise_equal(result, _grid(["n"], -3, 15))

    def test_fraction_type_preserved(self):
        # Scaling by 1/2 makes odd counts genuine Fractions; the
        # compiled path must return Fraction there and int elsewhere.
        result = count("1 <= i and i <= n", ["i"]).scale(Fraction(1, 2))
        compiled = compile_sum(result)
        assert compiled.at({"n": 4}) == 2
        assert type(compiled.at({"n": 4})) is int
        assert compiled.at({"n": 5}) == Fraction(5, 2)
        assert type(compiled.at({"n": 5})) is Fraction

    def test_empty_sum(self):
        result = count("1 <= i and i <= 0", ["i"])
        compiled = compile_sum(result)
        assert compiled.at({}) == 0

    def test_many_matches_at(self):
        result = count("1 <= i and i <= n and 2 | i", ["i"])
        compiled = compile_sum(result)
        envs = [{"n": v} for v in range(-5, 9)]
        assert compiled.many(envs) == [compiled.at(e) for e in envs]

    def test_kwargs_call_style(self):
        result = count("1 <= i and i <= n", ["i"])
        compiled = compile_sum(result)
        assert compiled.at(n=7) == 7
        assert compiled.at({"n": 3}) == 3


class TestGuardFallback:
    def test_multi_wildcard_guard_still_exact(self):
        # Projection answers can keep coupled wildcards in their
        # guards; those compile to an is_satisfied fallback, which
        # must stay bit-for-bit with the interpreter.
        formula = (
            "1 <= i and i <= n and (exists a, b: 2*a + 3*b <= n and "
            "n <= 2*a + 4*b and 0 <= a and a <= 3 and 0 <= b and b <= 3)"
        )
        result = count(formula, ["i"])
        source, _ = generate_source(result)
        assert "_fb(" in source  # coupled wildcards -> runtime fallback
        _assert_bitwise_equal(result, _grid(["n"], -4, 16))


class TestCache:
    def test_cache_hit_returns_same_object(self):
        result = count("1 <= i and i <= n", ["i"])
        a = compile_sum(result)
        b = compile_sum(result)
        assert a is b

    def test_cache_key_override(self):
        result = count("1 <= i and i <= n", ["i"])
        a = compile_sum(result, cache_key="job-A")
        b = compile_sum(result, cache_key="job-A")
        c = compile_sum(result, cache_key="job-B")
        assert a is b
        assert c is not a

    def test_lru_eviction_is_bounded(self):
        result = count("1 <= i and i <= n", ["i"])
        for k in range(_CACHE_LIMIT + 16):
            compile_sum(result, cache_key=("k", k))
        assert len(_CACHE) == _CACHE_LIMIT

    def test_disable_switch(self):
        assert compile_enabled()
        assert set_compile_enabled(False) is True  # returns previous
        assert not compile_enabled()
        result = count("1 <= i and i <= n", ["i"])
        # SymbolicSum helpers fall back to interpretation but stay
        # correct when the compiler is off.
        assert result._compiled() is None
        assert result.table("n", range(4)) == [
            (0, 0), (1, 1), (2, 2), (3, 3)
        ]
        set_compile_enabled(True)
        assert result._compiled() is not None
