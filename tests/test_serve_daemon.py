"""The counting daemon's three-tier serve path.

Async scenarios run under ``asyncio.run`` inside plain sync tests (the
suite has no asyncio plugin); each scenario builds its own daemon,
drives :meth:`CountingDaemon.handle` directly, and drains before
returning.
"""

import asyncio
import json
import threading

import pytest

from repro.core import stats
from repro.serve.daemon import (
    ARTIFACT_CAP,
    CountingDaemon,
    OVERLOADED,
    RATE_LIMITED,
    ServeConfig,
)
from repro.service.batch import VOLATILE_RESPONSE_KEYS, run_batch
from repro.service.request import JobRequest

COUNT_IJ = {
    "id": "pairs",
    "kind": "count",
    "formula": "1 <= i and i < j and j <= n",
    "over": ["i", "j"],
    "at": [{"n": 10}],
}

#: Alpha-renamed spellings of COUNT_IJ: identical canonical hash.
VARIANTS = [
    dict(
        COUNT_IJ,
        id="v%d" % k,
        formula="1 <= %s and %s < %s and %s <= n" % (a, a, b, b),
        over=[a, b],
    )
    for k, (a, b) in enumerate(
        [("i", "j"), ("p", "q"), ("x", "y"), ("aa", "bb"), ("u", "w")]
    )
]


def stable(response):
    return {
        k: v
        for k, v in response.items()
        if k not in VOLATILE_RESPONSE_KEYS
    }


def make_config(tmp_path, **kw):
    kw.setdefault("cache_path", str(tmp_path / "serve-cache.sqlite"))
    kw.setdefault("workers", 2)
    kw.setdefault("drain_timeout", 30.0)
    return ServeConfig(**kw)


def run_scenario(coro_fn, tmp_path, **config_kw):
    """Build + start a daemon, run the scenario, always drain."""

    async def wrapper():
        daemon = CountingDaemon(make_config(tmp_path, **config_kw))
        daemon.start()
        try:
            return await coro_fn(daemon)
        finally:
            await daemon.drain()

    return asyncio.run(wrapper())


class FakeCold:
    """A monkeypatchable cold runner: blocks until released, counts calls."""

    def __init__(self, payload=None):
        self.calls = 0
        self.budgets = []
        self.release = threading.Event()
        self.release.set()  # non-blocking unless a test clears it
        self.payload = payload or {
            "kind": "count",
            "result": "fake",
            "exactness": "exact",
            "points": [],
            "stats": {},
        }

    def __call__(self, req, budget):
        self.calls += 1
        self.budgets.append(budget)
        assert self.release.wait(30), "cold job never released"
        return {
            "ok": True,
            "payload": dict(self.payload),
            "wall_ms": 1.0,
            "attempts": 1,
        }


class TestTiers:
    def test_cold_then_warm(self, tmp_path):
        async def scenario(daemon):
            first = await daemon.handle(COUNT_IJ)
            second = await daemon.handle(COUNT_IJ)
            return first, second, daemon.metrics.snapshot()

        first, second, snap = run_scenario(scenario, tmp_path)
        assert first["ok"] and first["tier"] == "cold"
        assert first["points"] == [{"at": {"n": 10}, "value": 45}]
        assert second["ok"] and second["tier"] == "warm"
        assert second["cached"] is True
        assert stable(first) == stable(second)
        assert snap["counters"]["cold_jobs"] == 1
        assert snap["counters"]["warm_hits"] == 1
        assert snap["hit_rates"]["warm"] == 0.5

    def test_alpha_variant_hits_warm_across_names(self, tmp_path):
        async def scenario(daemon):
            first = await daemon.handle(VARIANTS[0])
            renamed = await daemon.handle(VARIANTS[1])
            return first, renamed, daemon.metrics.snapshot()

        first, renamed, snap = run_scenario(scenario, tmp_path)
        assert renamed["tier"] == "warm"
        assert snap["counters"]["cold_jobs"] == 1
        # Same answer; only the client-chosen id differs.
        a, b = stable(first), stable(renamed)
        a.pop("id"), b.pop("id")
        assert a == b

    def test_matches_batch_byte_for_byte_modulo_volatile(self, tmp_path):
        async def scenario(daemon):
            return await daemon.handle(COUNT_IJ)

        served = run_scenario(scenario, tmp_path)
        batched, _ = run_batch([JobRequest.from_json(COUNT_IJ)])
        assert json.dumps(stable(served), sort_keys=True) == json.dumps(
            stable(batched[0]), sort_keys=True
        )

    def test_no_cache_daemon_still_answers(self, tmp_path):
        async def scenario(daemon):
            return (
                await daemon.handle(COUNT_IJ),
                await daemon.handle(COUNT_IJ),
            )

        first, second = run_scenario(scenario, tmp_path, cache_path=None)
        assert first["ok"] and second["ok"]
        assert first["tier"] == second["tier"] == "cold"

    def test_job_error_is_structured_not_cached(self, tmp_path):
        bad = {"id": "typo", "kind": "count", "formula": "1 <= i <= ===",
               "over": ["i"]}

        async def scenario(daemon):
            return (
                await daemon.handle(bad),
                await daemon.handle(bad),
                daemon.metrics.snapshot(),
            )

        first, second, snap = run_scenario(scenario, tmp_path)
        assert first["ok"] is False
        assert first["error"]["kind"] == "parse_error"
        assert first["tier"] == "front"
        # Failures never enter the results store.
        assert second["tier"] == "front"
        assert snap["counters"]["front_errors"] == 2
        assert snap["counters"]["cold_jobs"] == 0


class TestFrontDoor:
    def test_non_object_request(self, tmp_path):
        async def scenario(daemon):
            return await daemon.handle([1, 2, 3])

        response = run_scenario(scenario, tmp_path)
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad_request"
        assert response["tier"] == "front"

    def test_missing_fields(self, tmp_path):
        async def scenario(daemon):
            return await daemon.handle({"id": "x", "kind": "count"})

        response = run_scenario(scenario, tmp_path)
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad_request"


class TestCoalescing:
    def test_variants_coalesce_to_one_computation(self, tmp_path):
        """The tentpole invariant: K concurrent alpha-renamed variants
        of one request trigger exactly one executor job, and every
        client gets the identical answer under its own request id."""
        K = len(VARIANTS)
        fake = FakeCold()
        fake.release.clear()

        async def scenario(daemon):
            daemon._run_cold = fake
            tasks = [
                asyncio.ensure_future(daemon.handle(v)) for v in VARIANTS
            ]
            # Wait for one shared in-flight entry with every client on it.
            for _ in range(500):
                entries = list(daemon._inflight.values())
                if entries and entries[0].waiters == K:
                    break
                await asyncio.sleep(0.01)
            else:
                pytest.fail("clients never coalesced")
            assert len(daemon._inflight) == 1
            fake.release.set()
            responses = await asyncio.gather(*tasks)
            return responses, daemon.metrics.snapshot()

        responses, snap = run_scenario(scenario, tmp_path)
        assert fake.calls == 1
        assert snap["counters"]["cold_jobs"] == 1
        assert snap["counters"]["coalesced"] == K - 1
        assert sorted(r["id"] for r in responses) == sorted(
            v["id"] for v in VARIANTS
        )
        tiers = sorted(r["tier"] for r in responses)
        assert tiers.count("cold") == 1
        assert tiers.count("coalesced") == K - 1
        bodies = set()
        for r in responses:
            body = stable(r)
            body.pop("id")
            bodies.add(json.dumps(body, sort_keys=True))
        assert len(bodies) == 1  # byte-identical modulo the request id

    def test_cancelled_waiter_does_not_kill_the_computation(self, tmp_path):
        fake = FakeCold()
        fake.release.clear()

        async def scenario(daemon):
            daemon._run_cold = fake
            tasks = [
                asyncio.ensure_future(daemon.handle(v)) for v in VARIANTS[:3]
            ]
            for _ in range(500):
                entries = list(daemon._inflight.values())
                if entries and entries[0].waiters == 3:
                    break
                await asyncio.sleep(0.01)
            else:
                pytest.fail("clients never coalesced")
            # One client hangs up mid-flight.
            tasks[1].cancel()
            await asyncio.sleep(0.05)
            fake.release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, daemon.metrics.snapshot()

        results, snap = run_scenario(scenario, tmp_path)
        assert fake.calls == 1  # the shared computation ran exactly once
        assert isinstance(results[1], asyncio.CancelledError)
        # The surviving clients still got their answers.
        assert results[0]["ok"] and results[2]["ok"]
        assert snap["counters"]["cancelled_waiters"] == 1

    def test_late_duplicate_finds_warm_not_second_cold(self, tmp_path):
        async def scenario(daemon):
            first = await daemon.handle(COUNT_IJ)
            late = await daemon.handle(dict(COUNT_IJ, id="late"))
            return first, late, daemon.metrics.snapshot()

        _first, late, snap = run_scenario(scenario, tmp_path)
        assert late["tier"] == "warm"
        assert snap["counters"]["cold_jobs"] == 1


class TestAdmission:
    def test_queue_full_sheds_with_structured_error(self, tmp_path):
        fake = FakeCold()
        fake.release.clear()
        other = dict(COUNT_IJ, id="other", formula="1 <= i <= n", over=["i"])

        async def scenario(daemon):
            daemon._run_cold = fake
            blocked = asyncio.ensure_future(daemon.handle(COUNT_IJ))
            for _ in range(500):
                if daemon._inflight:
                    break
                await asyncio.sleep(0.01)
            shed = await daemon.handle(other)
            fake.release.set()
            first = await blocked
            return first, shed, daemon.metrics.snapshot()

        first, shed, snap = run_scenario(
            scenario, tmp_path, queue_limit=1
        )
        assert first["ok"] is True
        assert shed["ok"] is False
        assert shed["error"]["kind"] == OVERLOADED
        assert shed["tier"] == "shed"
        assert snap["counters"]["shed"] == 1
        assert snap["counters"]["cold_jobs"] == 1

    def test_tenant_rate_limit(self, tmp_path):
        fake = FakeCold()
        jobs = [
            dict(COUNT_IJ, id="r%d" % k, formula="1 <= i <= n + %d" % k,
                 over=["i"])
            for k in range(3)
        ]

        async def scenario(daemon):
            daemon._run_cold = fake
            results = [await daemon.handle(j, tenant="greedy") for j in jobs]
            other = await daemon.handle(
                dict(jobs[2], id="polite"), tenant="polite"
            )
            return results, other, daemon.metrics.snapshot()

        results, other, snap = run_scenario(
            scenario, tmp_path, rate=0.001, burst=2
        )
        assert [r["ok"] for r in results] == [True, True, False]
        assert results[2]["error"]["kind"] == RATE_LIMITED
        assert results[2]["tier"] == "shed"
        # Another tenant has its own bucket and is admitted.  (Its job
        # shares a content hash with greedy's third request only if
        # that one computed -- it did not, so this dispatches cold.)
        assert other["ok"] is True
        assert snap["counters"]["rate_limited"] == 1

    def test_tenant_budget_clamps_cold_jobs(self, tmp_path):
        fake = FakeCold()
        modest = dict(COUNT_IJ, id="modest", budget=3)
        greedy = dict(
            COUNT_IJ, id="greedy", formula="1 <= i <= n", over=["i"],
            budget=10**9,
        )

        async def scenario(daemon):
            daemon._run_cold = fake
            await daemon.handle(modest)
            await daemon.handle(greedy)

        run_scenario(scenario, tmp_path, tenant_budget=1000)
        assert fake.budgets == [3, 1000]

    def test_draining_daemon_sheds_new_work(self, tmp_path):
        async def scenario(daemon):
            daemon._draining = True
            return await daemon.handle(COUNT_IJ)

        response = run_scenario(scenario, tmp_path)
        assert response["ok"] is False
        assert response["error"]["kind"] == OVERLOADED


class TestEvaluateArtifacts:
    def test_new_points_served_without_second_cold_job(self, tmp_path):
        eval1 = {
            "id": "e1",
            "kind": "evaluate",
            "formula": "1 <= i and i < j and j <= n",
            "over": ["i", "j"],
            "at": [{"n": 10}],
        }
        eval2 = dict(eval1, id="e2", at=[{"n": 20}, {"n": 7}])

        async def scenario(daemon):
            first = await daemon.handle(eval1)
            second = await daemon.handle(eval2)
            third = await daemon.handle(eval2)  # exact repeat -> plain warm
            return first, second, third, daemon.metrics.snapshot()

        first, second, third, snap = run_scenario(scenario, tmp_path)
        assert first["tier"] == "cold"
        assert second["tier"] == "warm"
        assert second["points"] == [
            {"at": {"n": 20}, "value": 190},
            {"at": {"n": 7}, "value": 21},
        ]
        assert third["tier"] == "warm" and third["cached"] is True
        assert snap["counters"]["cold_jobs"] == 1
        assert snap["counters"]["artifact_hits"] == 1
        assert snap["counters"]["warm_hits"] == 1

    def test_artifact_map_is_bounded(self, tmp_path, monkeypatch):
        import repro.serve.daemon as daemon_mod

        monkeypatch.setattr(daemon_mod, "ARTIFACT_CAP", 8)

        async def scenario(daemon):
            for k in range(20):
                daemon._remember_artifact(
                    JobRequest(
                        "evaluate",
                        "1 <= i <= n + %d" % k,  # distinct formula hashes
                        over=["i"],
                        id=k,
                        at=[{"n": 1}],
                    ),
                    {
                        "result": "r%d" % k,
                        "result_json": {"k": k},
                        "exactness": "exact",
                    },
                )
            return len(daemon._artifacts)

        assert run_scenario(scenario, tmp_path) <= 8


class TestLifecycle:
    def test_drain_restores_stats_provider_and_closes_cache(self, tmp_path):
        async def scenario(daemon):
            await daemon.handle(COUNT_IJ)
            assert "serve" in stats.engine_snapshot()

        run_scenario(scenario, tmp_path)
        assert "serve" not in stats.engine_snapshot()

    def test_drain_waits_for_inflight_then_caches(self, tmp_path):
        fake = FakeCold()
        fake.release.clear()

        async def wrapper():
            daemon = CountingDaemon(make_config(tmp_path))
            daemon.start()
            daemon._run_cold = fake
            try:
                task = asyncio.ensure_future(daemon.handle(COUNT_IJ))
                for _ in range(500):
                    if daemon._inflight:
                        break
                    await asyncio.sleep(0.01)
                # Release just before drain: drain must wait the job out.
                fake.release.set()
                return await task
            finally:
                await daemon.drain()

        response = asyncio.run(wrapper())
        assert response["ok"] is True

    def test_start_is_idempotent(self, tmp_path):
        async def scenario(daemon):
            daemon.start()
            daemon.start()
            return await daemon.handle(COUNT_IJ)

        assert run_scenario(scenario, tmp_path)["ok"] is True
