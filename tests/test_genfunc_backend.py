"""The generating-function backend vs the recursion, edge cases first.

Pins the clause fragments both engines must agree on -- empty sets,
single (possibly non-integral) points, unbounded-direction rejection,
stride/mod constraints, negative-coefficient equalities, clauses that
splinter deeply under the recursion -- plus the backend-router
contract (per-call override, global switch, ``REPRO_BACKEND``,
fallback byte-identity, stats) and the service plumbing (the
``backend`` request field is honored but excluded from the content
hash).  The corpus table test is the acceptance criterion: every
witness in ``tests/corpus/`` that falls in the supported fragment must
count identically under both backends across a 100-point symbol
table.
"""

import glob
import itertools
import json
import os
import subprocess
import sys

import pytest

from conftest import brute_count
from repro.core import (
    BACKENDS,
    count,
    current_backend,
    set_backend,
    stats,
    sum_poly,
)
from repro.core.convex import UnboundedSumError
from repro.core.general import _clauses
from repro.genfunc import (
    UnsupportedFormula,
    clause_count,
    genfunc_count,
    genfunc_count_value,
    genfunc_sum,
)
from repro.omega.affine import Affine
from repro.presburger.parser import parse
from repro.qpoly import Polynomial

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def both(formula, over):
    """(recursion value, genfunc value) for a concrete formula."""
    rec = count(formula, list(over)).evaluate({})
    gf = genfunc_count_value(formula, list(over))
    return rec, gf


class TestEdgeCases:
    def test_empty_set(self):
        assert both("1 <= i <= 0", ["i"]) == (0, 0)
        assert both("i >= 3 and i <= 1 and 0 <= j <= 5", ["i", "j"]) == (0, 0)

    def test_empty_by_integrality(self):
        # Rationally nonempty, integrally empty: the strip 1 <= 3i <= 2.
        assert both("1 <= 3*i <= 2 and 0 <= j <= 9", ["i", "j"]) == (0, 0)
        # ... and via an unsolvable equality system.
        assert both("2*i == 2*j + 1 and 0 <= i <= 9 and 0 <= j <= 9",
                    ["i", "j"]) == (0, 0)

    def test_single_point(self):
        assert both("i == 5", ["i"]) == (1, 1)
        assert both("i == 5 and j == -7", ["i", "j"]) == (1, 1)
        assert both("0 <= i <= 0 and 0 <= j <= 0", ["i", "j"]) == (1, 1)

    def test_single_rational_point_is_empty(self):
        # The feasible region is the single non-integral point i = 1/2.
        assert both("1 <= 2*i <= 1", ["i"]) == (0, 0)
        assert both("1 <= 2*i <= 1 and 0 <= j <= 0", ["i", "j"]) == (0, 0)

    def test_unbounded_direction_rejected(self):
        for text, over in [
            ("i >= 0", ["i"]),
            ("i >= 0 and j >= 0 and i + j >= 3", ["i", "j"]),
            ("0 <= j <= 5", ["i", "j"]),  # i unconstrained
            ("i <= 5 and i <= j", ["i", "j"]),
        ]:
            with pytest.raises(UnboundedSumError):
                genfunc_count_value(text, over)
            with pytest.raises(UnboundedSumError):
                count(text, over)

    def test_unbounded_but_empty_is_zero(self):
        # An unbounded recession cone over an integrally empty set must
        # report 0, not unboundedness.
        assert genfunc_count_value(
            "1 <= 3*i <= 2 and j >= 0", ["i", "j"]
        ) == 0

    def test_stride_constraints(self):
        assert both("0 <= i <= 20 and i mod 3 == 1", ["i"]) == (7, 7)
        assert both("0 <= i <= 100 and 3*i mod 7 == 2", ["i"]) == (14, 14)
        assert both("4 | i + 2 and -10 <= i <= 10", ["i"]) == (6, 6)
        rec, gf = both(
            "0 <= i <= 30 and 0 <= j <= 30 and (2*i + 3*j) mod 5 == 4",
            ["i", "j"],
        )
        assert rec == gf

    def test_negative_coefficient_eqs(self):
        assert both(
            "-3*i - 2*j == 1 and -5 <= i <= 5 and -5 <= j <= 5", ["i", "j"]
        ) == (4, 4)
        assert both(
            "-2*i == 3*j and -30 <= i <= 30 and -30 <= j <= 30", ["i", "j"]
        ) == (21, 21)
        assert both(
            "-i + 2*j == -7 and 0 <= j <= 20", ["i", "j"]
        ) == (21, 21)

    def test_deep_splinter_clause(self):
        """A projection with non-unit coefficients splinters under the
        recursion; both backends must still agree on the count."""
        text = (
            "exists k: 23*i <= 7*k and 7*k <= 23*i + 40 "
            "and 0 <= i <= 30 and 3 <= k <= 50 and i + k <= 60"
        )
        with stats.collecting_stats() as counters:
            rec = count(text, ["i"], backend="recursion").evaluate({})
        assert counters["splinters_taken"] > 0
        assert genfunc_count_value(text, ["i"]) == rec == 15

    def test_large_coefficient_clause(self):
        """Large coprime coefficients explode the recursion into
        hundreds of residue cases; the cone pipeline's work is
        coefficient-size independent."""
        text = "0 <= i and 0 <= j and 23*i + 31*j <= 500 and 17*i <= 13*j + 90"
        with stats.collecting_stats() as counters:
            rec = count(text, ["i", "j"], backend="recursion").evaluate({})
        assert counters["residue_cases"] > 100
        with stats.collecting_stats() as counters:
            gf = genfunc_count_value(text, ["i", "j"])
        assert counters["genfunc_cones"] > 0
        assert gf == rec == 122

    def test_disjunctions_and_negation(self):
        rec, gf = both(
            "(0 <= i <= 9 and not (3 <= i <= 5)) or i == 20", ["i"]
        )
        assert rec == gf == 8
        rec, gf = both(
            "0 <= i <= 9 and 0 <= j <= 9 and (i <= j or 2*j <= i)", ["i", "j"]
        )
        assert rec == gf

    def test_quantifiers(self):
        assert both(
            "exists k: i == 2*k and 0 <= i <= 10", ["i"]
        ) == (6, 6)
        assert both(
            "exists k: i == 2*k + j and 0 <= i <= 10 and 0 <= j <= 4",
            ["i", "j"],
        ) == (28, 28)

    def test_brute_force_triangle_sweep(self):
        for a, b, c in [(1, 1, 7), (2, 3, 11), (5, -4, 13), (-3, 7, 2)]:
            text = "-6 <= i <= 6 and -6 <= j <= 6 and %d*i + %d*j <= %d" % (
                a, b, c,
            )
            formula = parse(text)
            want = brute_count(formula, ["i", "j"], {}, box=8)
            assert genfunc_count_value(formula, ["i", "j"]) == want


class TestSupportedFragment:
    def test_free_symbols_unsupported(self):
        with pytest.raises(UnsupportedFormula):
            genfunc_count_value("0 <= i <= n", ["i"])

    def test_three_dimensions_unsupported(self):
        with pytest.raises(UnsupportedFormula):
            genfunc_count_value(
                "0 <= i <= 4 and 0 <= j <= 4 and 0 <= k <= 4",
                ["i", "j", "k"],
            )

    def test_equalities_reduce_dimension_into_fragment(self):
        # Three count variables, one equality: residual dimension 2.
        assert genfunc_count_value(
            "0 <= i <= 4 and 0 <= j <= 4 and 0 <= k <= 4 and k == i + j",
            ["i", "j", "k"],
        ) == count(
            "0 <= i <= 4 and 0 <= j <= 4 and 0 <= k <= 4 and k == i + j",
            ["i", "j", "k"],
        ).evaluate({})

    def test_non_exact_strategy_unsupported(self):
        from repro.core import Strategy, SumOptions

        with pytest.raises(UnsupportedFormula):
            genfunc_count_value(
                "0 <= i <= 5", ["i"], SumOptions(strategy=Strategy.UPPER)
            )

    def test_constant_summand_scales(self):
        result = genfunc_sum(
            "0 <= i <= 9", ["i"], Polynomial.constant(3)
        )
        assert result.evaluate({}) == 30

    def test_non_constant_summand_unsupported(self):
        with pytest.raises(UnsupportedFormula):
            genfunc_sum("0 <= i <= 9", ["i"], Polynomial.variable("i"))

    def test_clause_count_on_conjunct(self):
        (clause,) = _clauses("0 <= i <= 7 and 0 <= j <= 7 and i + j <= 7")
        assert clause_count(clause, ["i", "j"]) == 36


class TestBackendRouter:
    def test_per_call_override(self):
        before = current_backend()
        assert count("0 <= i <= 9", ["i"], backend="genfunc").evaluate({}) == 10
        assert current_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            count("0 <= i <= 9", ["i"], backend="bogus")
        with pytest.raises(ValueError):
            set_backend("bogus")

    def test_global_switch_returns_previous(self):
        before = current_backend()
        previous = set_backend("genfunc")
        try:
            assert previous == before
            assert current_backend() == "genfunc"
            assert count("0 <= i <= 9", ["i"]).evaluate({}) == 10
        finally:
            set_backend(previous)
        assert current_backend() == before

    def test_fallback_is_byte_identical(self):
        """Outside the fragment the router must return exactly what the
        recursion returns -- same serialization, not just same values."""
        text = "0 <= i <= n and 1 <= j <= i"
        rec = count(text, ["i", "j"])
        routed = count(text, ["i", "j"], backend="genfunc")
        assert json.dumps(routed.to_json(), sort_keys=True) == json.dumps(
            rec.to_json(), sort_keys=True
        )

    def test_fallback_counted_in_stats(self):
        with stats.collecting_stats() as counters:
            count("0 <= i <= n", ["i"], backend="genfunc")  # falls back
            count("0 <= i <= 9", ["i"], backend="genfunc")  # cone pipeline
        assert counters["genfunc_calls"] == 2
        assert counters["genfunc_fallbacks"] == 1
        assert counters["genfunc_clauses"] >= 1

    def test_recursion_backend_never_touches_genfunc(self):
        with stats.collecting_stats() as counters:
            count("0 <= i <= 9", ["i"])
        assert counters["genfunc_calls"] == 0

    def test_engine_snapshot_reports_backend(self):
        assert stats.engine_snapshot()["backend"] == current_backend()
        previous = set_backend("genfunc")
        try:
            assert stats.engine_snapshot()["backend"] == "genfunc"
        finally:
            set_backend(previous)

    def test_env_var_selects_backend(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core import current_backend;"
                "print(current_backend())",
            ],
            env=dict(
                os.environ,
                REPRO_BACKEND="genfunc",
                PYTHONPATH="src%s%s"
                % (os.pathsep, os.environ.get("PYTHONPATH", "")),
            ),
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
        )
        assert out.stdout.strip() == "genfunc", out.stderr

    def test_bad_env_var_is_an_error(self):
        out = subprocess.run(
            [sys.executable, "-c", "import repro.core"],
            env=dict(
                os.environ,
                REPRO_BACKEND="nope",
                PYTHONPATH="src%s%s"
                % (os.pathsep, os.environ.get("PYTHONPATH", "")),
            ),
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
        assert "REPRO_BACKEND" in out.stderr


class TestServicePlumbing:
    def test_backend_field_round_trips(self):
        from repro.service.request import JobRequest

        req = JobRequest.from_json(
            {"kind": "count", "formula": "0 <= i <= 5", "over": ["i"],
             "backend": "genfunc"}
        )
        assert req.backend == "genfunc"
        assert req.to_json()["backend"] == "genfunc"
        assert JobRequest.from_json(req.to_json()).backend == "genfunc"

    def test_backend_rejected_when_unknown(self):
        from repro.service.request import JobRequest, RequestError

        with pytest.raises(RequestError):
            JobRequest.from_json(
                {"kind": "count", "formula": "i >= 0", "over": ["i"],
                 "backend": "bogus"}
            )

    def test_backend_excluded_from_content_hash(self):
        """Cross-backend cache hits must stay valid: same query, any
        backend, one hash."""
        from repro.service.request import JobRequest

        base = {"kind": "count", "formula": "0 <= i <= 5", "over": ["i"]}
        plain = JobRequest.from_json(dict(base))
        hashes = {plain.content_hash()}
        for backend in BACKENDS:
            req = JobRequest.from_json(dict(base, backend=backend))
            hashes.add(req.content_hash())
            assert "genfunc" not in req.canonical_payload()
        assert len(hashes) == 1

    def test_executor_runs_and_restores_backend(self):
        from repro.service.executor import execute_request
        from repro.service.request import JobRequest

        req = JobRequest.from_json(
            {"kind": "count", "formula": "0 <= i <= 5", "over": ["i"],
             "backend": "genfunc"}
        )
        before = current_backend()
        payload = execute_request(req)
        assert payload["stats"]["backend"] == "genfunc"
        assert current_backend() == before
        plain = execute_request(
            JobRequest.from_json(
                {"kind": "count", "formula": "0 <= i <= 5", "over": ["i"]}
            )
        )
        assert plain["stats"]["backend"] == before
        assert payload["result_json"] == plain["result_json"]


class TestCliBackend:
    def _run(self, *argv):
        env = dict(
            os.environ,
            PYTHONPATH="src%s%s"
            % (os.pathsep, os.environ.get("PYTHONPATH", "")),
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
        )

    def test_cli_backends_agree_byte_for_byte(self):
        # Byte-identity holds on single-clause concrete formulas (both
        # produce one constant term) and on symbolic formulas (router
        # falls back to the recursion).  Multi-clause concrete answers
        # are value-equal but serialized differently -- the recursion
        # keeps one constant term per clause.
        for text, over in [
            ("0 <= i and 0 <= j and i + j <= 2", "i,j"),
            ("0 <= i <= n and 1 <= j <= i", "i,j"),
        ]:
            rec = self._run("count", text, "--over", over,
                            "--backend", "recursion")
            gf = self._run("count", text, "--over", over,
                           "--backend", "genfunc")
            assert rec.returncode == gf.returncode == 0, (
                rec.stderr, gf.stderr,
            )
            assert rec.stdout == gf.stdout

    def test_cli_stats_report_backend(self):
        out = self._run(
            "count", "0 <= i <= 9", "--over", "i",
            "--backend", "genfunc", "--stats",
        )
        assert out.returncode == 0, out.stderr
        assert "backend" in out.stderr and "genfunc" in out.stderr


def _symbol_table(symbols, limit=100):
    """A deterministic ``limit``-point grid over the symbols."""
    symbols = sorted(symbols)
    if not symbols:
        return [{}]
    per = max(2, int(limit ** (1.0 / len(symbols)) + 1e-9))
    ranges = []
    for k, _ in enumerate(symbols):
        lo = -2 - k  # stagger so symbols don't move in lockstep
        ranges.append(range(lo, lo + per))
    envs = [
        dict(zip(symbols, vals))
        for vals in itertools.product(*ranges)
    ]
    return envs[:limit]


class TestCorpusAgreement:
    """Acceptance criterion: both backends agree on every corpus entry
    in the supported fragment, across a 100-point symbol table."""

    def test_corpus_backends_agree(self):
        paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
        assert paths, "corpus directory is empty"
        supported = skipped_entries = 0
        for path in paths:
            with open(path) as fh:
                entry = json.load(fh)
            formula = parse(entry["formula"])
            over = list(entry["over"])
            symbolic = count(formula, over)
            clauses = _clauses(formula)
            envs = _symbol_table(entry.get("symbols") or [])
            checked = 0
            for env in envs:
                concrete = [
                    _substitute_clause(c, env) for c in clauses
                ]
                try:
                    got = sum(
                        clause_count(c, over) for c in concrete
                    )
                except UnsupportedFormula:
                    break
                want = symbolic.evaluate(env)
                assert got == want, (
                    path, env, got, want,
                )
                checked += 1
            if checked == len(envs):
                supported += 1
            else:
                skipped_entries += 1
        # The fragment covers the fuzzer's 2-variable grammar; every
        # current witness must be in it.  If a future witness falls
        # outside, loosen this to `supported >= 1` -- but never to 0.
        assert supported >= 1
        assert supported + skipped_entries == len(paths)


def _substitute_clause(clause, env):
    out = clause
    for sym, value in env.items():
        out = out.substitute(sym, Affine.const_expr(value))
    return out
