"""Unit tests for exact matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.intarith import IntMatrix

small_matrix = st.integers(1, 4).flatmap(
    lambda n: st.integers(1, 4).flatmap(
        lambda m: st.lists(
            st.lists(st.integers(-9, 9), min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        ).map(IntMatrix)
    )
)


class TestConstruction:
    def test_identity(self):
        eye = IntMatrix.identity(3)
        assert eye[0, 0] == 1 and eye[0, 1] == 0

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2], [3]])

    def test_zeros(self):
        z = IntMatrix.zeros(2, 3)
        assert z.nrows == 2 and z.ncols == 3
        assert all(z[i, j] == 0 for i in range(2) for j in range(3))

    def test_copy_is_independent(self):
        m = IntMatrix([[1, 2], [3, 4]])
        c = m.copy()
        c[0, 0] = 99
        assert m[0, 0] == 1


class TestArithmetic:
    def test_product(self):
        a = IntMatrix([[1, 2], [3, 4]])
        b = IntMatrix([[5, 6], [7, 8]])
        assert a * b == IntMatrix([[19, 22], [43, 50]])

    def test_product_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]) * IntMatrix([[1, 2]])

    def test_identity_neutral(self):
        m = IntMatrix([[2, -1], [0, 5]])
        assert IntMatrix.identity(2) * m == m
        assert m * IntMatrix.identity(2) == m

    def test_mul_vector(self):
        m = IntMatrix([[1, 2], [3, 4]])
        assert m.mul_vector([1, 1]) == [3, 7]

    def test_transpose(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose() == IntMatrix([[1, 4], [2, 5], [3, 6]])

    @given(small_matrix)
    def test_double_transpose(self, m):
        assert m.transpose().transpose() == m


class TestRowColOps:
    def test_swap_rows(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.swap_rows(0, 1)
        assert m == IntMatrix([[3, 4], [1, 2]])

    def test_add_row_multiple(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.add_row_multiple(1, 0, -3)
        assert m == IntMatrix([[1, 2], [0, -2]])

    def test_add_col_multiple(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.add_col_multiple(1, 0, 2)
        assert m == IntMatrix([[1, 4], [3, 10]])

    def test_scale(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.scale_row(0, -1)
        m.scale_col(1, 2)
        assert m == IntMatrix([[-1, -4], [3, 8]])


class TestSolveAndDet:
    def test_solve_exact(self):
        m = IntMatrix([[2, 1], [1, 3]])
        x = m.solve([5, 10])
        assert x == [Fraction(1), Fraction(3)]

    def test_solve_fractional(self):
        m = IntMatrix([[2, 0], [0, 4]])
        assert m.solve([1, 1]) == [Fraction(1, 2), Fraction(1, 4)]

    def test_solve_singular(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2], [2, 4]]).solve([1, 1])

    def test_determinant_2x2(self):
        assert IntMatrix([[1, 2], [3, 4]]).determinant() == -2

    def test_determinant_singular(self):
        assert IntMatrix([[1, 2], [2, 4]]).determinant() == 0

    def test_determinant_identity(self):
        assert IntMatrix.identity(4).determinant() == 1

    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    def test_det_transpose_invariant(self, rows):
        m = IntMatrix(rows)
        assert m.determinant() == m.transpose().determinant()

    @given(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=2, max_size=2),
            min_size=2,
            max_size=2,
        )
    )
    def test_solve_verifies(self, rows):
        m = IntMatrix(rows)
        if m.determinant() == 0:
            return
        x = m.solve([1, -2])
        assert m.mul_vector(x) == [Fraction(1), Fraction(-2)]
