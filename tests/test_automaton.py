"""The binary-automaton engine: encoding, atoms, products, queries.

Every semantic claim is checked against brute-force enumeration over a
box, so these tests double as a readable specification of the LSBF
two's-complement contract: a word of length k decodes track t as
``sum(b_j * 2**j for j < k-1) - b_{k-1} * 2**(k-1)``, the last letter
is the sign letter, and acceptance is decided on the final transition.
"""

import itertools

import pytest

from repro.automaton import (
    MAX_TRACKS,
    STATE_BUDGET,
    UnsupportedFormula,
    automaton_for,
    automaton_key,
    build_automaton,
    clear_automaton_cache,
    count_below,
    count_box,
    count_exact,
    count_width,
    decode_word,
    encode_point,
    member,
    min_width,
)
from repro.automaton.cache import automaton_cache_info
from repro.core.convex import UnboundedSumError
from repro.presburger.parser import parse


def brute(text, over, box=12):
    f = parse(text)
    out = set()
    for vals in itertools.product(range(-box, box + 1), repeat=len(over)):
        if f.evaluate(dict(zip(over, vals))):
            out.add(vals)
    return out


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_automaton_cache()
    yield
    clear_automaton_cache()


class TestEncoding:
    def test_min_width_two_complement(self):
        assert min_width(0) == 1
        assert min_width(1) == 2
        assert min_width(-1) == 1
        assert min_width(7) == 4
        assert min_width(8) == 5
        assert min_width(-8) == 4
        assert min_width(-9) == 5

    def test_roundtrip(self):
        for point in [(0,), (5, -3), (-8, 7, 1), (123, -456)]:
            width = max(min_width(v) for v in point)
            letters = encode_point(point, width)
            assert len(letters) == width
            assert tuple(decode_word(letters, len(point))) == tuple(point)

    def test_sign_extension_decodes_equal(self):
        # Padding with copies of the sign bit never changes the value.
        for value in (-9, -1, 0, 3, 17):
            base = min_width(value)
            for width in range(base, base + 4):
                letters = encode_point((value,), width)
                assert decode_word(letters, 1) == [value]


class TestSingleClause:
    CASES = [
        ("i >= 3", ["i"]),
        ("2*i - 7 >= 0", ["i"]),
        ("i = 5", ["i"]),
        ("i = -5", ["i"]),
        ("3*i + 2*j <= 11", ["i", "j"]),
        ("i - j = 2", ["i", "j"]),
        ("2 | i", ["i"]),
        ("3 | (i + 2*j)", ["i", "j"]),
        ("0 <= i <= 10 and 2 | (i + 1)", ["i"]),
        ("-4 <= i <= 4 and -3 <= j <= 6 and i + j >= -2", ["i", "j"]),
    ]

    @pytest.mark.parametrize("text,over", CASES)
    def test_membership_matches_brute_force(self, text, over):
        aut = build_automaton(parse(text), over)
        want = brute(text, over)
        for vals in itertools.product(range(-12, 13), repeat=len(over)):
            assert member(aut, vals) == (vals in want), (text, vals)

    @pytest.mark.parametrize("text,over", CASES)
    def test_box_count_matches_brute_force(self, text, over):
        aut = build_automaton(parse(text), over)
        want = brute(text, over)
        got = count_box(aut, -12, 12)
        assert got == len(want), text


class TestUnionsAndWildcards:
    def test_disjunction_counts_overlaps_once(self):
        text = "(0 <= i <= 9) or (5 <= i <= 14)"
        aut = build_automaton(parse(text), ["i"])
        assert count_exact(aut) == 15

    def test_nested_boolean_structure(self):
        text = "(0 <= i <= 6 and 0 <= j <= 6) and (i <= j or i + j >= 9)"
        over = ["i", "j"]
        aut = build_automaton(parse(text), over)
        assert count_exact(aut) == len(brute(text, over))

    def test_stride_via_wildcard_projection(self):
        # "2 | i" becomes exists alpha: i = 2*alpha -- a wildcard track
        # that projection must erase without losing sign extensions.
        aut = build_automaton(parse("-10 <= i <= 10 and 2 | i"), ["i"])
        assert count_exact(aut) == 11
        assert member(aut, [-10]) and not member(aut, [-9])

    def test_quantified_formula(self):
        text = "exists k: i = 3*k and 0 <= i <= 30"
        aut = build_automaton(parse(text), ["i"])
        assert count_exact(aut) == 11


class TestCounting:
    def test_count_exact_finite(self):
        aut = build_automaton(
            parse("0 <= i <= 8 and 0 <= j <= 8 and i + j <= 8"), ["i", "j"]
        )
        assert count_exact(aut) == 45

    def test_count_exact_raises_on_infinite(self):
        aut = build_automaton(parse("i >= 0"), ["i"])
        with pytest.raises(UnboundedSumError):
            count_exact(aut)

    def test_count_below_pow2(self):
        # Words of exactly length k+1 whose sign bit is 0 encode the
        # box [0, 2^k); count_width on a nonnegative-constrained set
        # must agree with enumeration.
        text = "2 | (i + j) and i <= 2*j and i >= 0 and j >= 0"
        aut = build_automaton(parse(text), ["i", "j"])
        for k in (2, 3, 4):
            want = sum(
                1
                for i in range(2 ** k)
                for j in range(2 ** k)
                if (i + j) % 2 == 0 and i <= 2 * j
            )
            assert count_below(aut, 2 ** k) == want

    def test_count_box_open_sides(self):
        aut = build_automaton(parse("0 <= i <= 20 and 3 | i"), ["i"])
        assert count_box(aut, None, None) == 7
        assert count_box(aut, 6, None) == 5
        assert count_box(aut, None, 5) == 2

    def test_count_below_with_lo(self):
        aut = build_automaton(parse("2 | (i + j)"), ["i", "j"])
        want = sum(
            1
            for i in range(4, 16)
            for j in range(4, 16)
            if (i + j) % 2 == 0
        )
        assert count_below(aut, 16, 4) == want

    def test_count_width_exact_length_words(self):
        # Length-8 words encode exactly the values in [-128, 128), one
        # word per value; the set [0, 100] therefore has 101 of them.
        aut = build_automaton(parse("0 <= i <= 100"), ["i"])
        assert count_width(aut, 8) == 101
        assert count_width(aut, 8) == count_width(aut, 8)  # memoized


class TestFragmentAndCache:
    def test_free_symbol_is_unsupported(self):
        with pytest.raises(UnsupportedFormula):
            automaton_for(parse("0 <= i <= n"), ["i"], cache=False)

    def test_too_many_tracks_is_unsupported(self):
        names = ["v%d" % k for k in range(MAX_TRACKS + 1)]
        text = " and ".join("0 <= %s <= 3" % v for v in names)
        with pytest.raises(UnsupportedFormula):
            automaton_for(parse(text), names, cache=False)

    def test_state_budget_is_positive(self):
        assert STATE_BUDGET > 0

    def test_key_is_alpha_invariant_and_order_sensitive(self):
        k1 = automaton_key(parse("0 <= i and i < j and j <= 9"), ["i", "j"])
        k2 = automaton_key(parse("0 <= p and p < q and q <= 9"), ["p", "q"])
        k3 = automaton_key(parse("0 <= i and i < j and j <= 9"), ["j", "i"])
        assert k1 == k2
        assert k1 != k3  # track order changes the letter layout

    def test_resident_cache_hits(self):
        f = parse("0 <= i <= 9 and 0 <= j <= 9 and i + j <= 9")
        a1 = automaton_for(f, ["i", "j"])
        a2 = automaton_for(parse("0 <= a <= 9 and 0 <= b <= 9 and a + b <= 9"), ["a", "b"])
        assert a1 is a2
        info = automaton_cache_info()
        assert info["hits"] >= 1 and info["entries"] >= 1
