"""Uniformly generated set summarization tests (§5.1)."""

import itertools

from conftest import enumerate_formula
from repro.core import count
from repro.polyhedra.uniform import (
    offset_strides,
    summarize_offsets,
    uniformly_generated_set,
)
from repro.presburger.parser import parse

FIVE_POINT = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
FOUR_POINT = [(-1, 0), (1, 0), (0, -1), (0, 1)]
NINE_POINT = [(a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)]


def formula_points(formula, variables, box=4):
    return enumerate_formula(formula, variables, box)


class TestSummarizeOffsets:
    def test_five_point_exact(self):
        f, exact = summarize_offsets(FIVE_POINT, ["x", "y"])
        assert exact
        assert formula_points(f, ("x", "y")) == set(FIVE_POINT)

    def test_four_point_needs_stride(self):
        # hull alone would include (0,0); the parity stride excludes it
        f, exact = summarize_offsets(FOUR_POINT, ["x", "y"])
        assert exact
        assert formula_points(f, ("x", "y")) == set(FOUR_POINT)

    def test_nine_point_exact(self):
        f, exact = summarize_offsets(NINE_POINT, ["x", "y"])
        assert exact
        assert formula_points(f, ("x", "y")) == set(NINE_POINT)

    def test_strided_1d(self):
        f, exact = summarize_offsets([(0,), (4,), (8,)], ["x"])
        assert exact
        assert formula_points(f, ("x",), box=10) == {(0,), (4,), (8,)}

    def test_inexact_reported(self):
        # {0, 1, 5}: hull is [0,5], strides find nothing: not exact
        f, exact = summarize_offsets([(0,), (1,), (5,)], ["x"])
        assert not exact

    def test_offset_strides_parity(self):
        cons = offset_strides(FOUR_POINT, ["x", "y"])
        assert cons  # x+y odd is detected


class TestUniformlyGeneratedSet:
    def test_sor_single_clause_result(self):
        dom = parse("2 <= i <= N - 1 and 2 <= j <= N - 1")
        f, exact = uniformly_generated_set(
            dom, ["i", "j"], FIVE_POINT, ["x", "y"]
        )
        assert exact
        r = count(f, ["x", "y"]).simplified()
        for N in range(1, 9):
            want = len(
                {
                    (i + di, j + dj)
                    for i in range(2, N)
                    for j in range(2, N)
                    for di, dj in FIVE_POINT
                }
            )
            assert r.evaluate(N=N) == want

    def test_union_route_agrees(self):
        dom = parse("2 <= i <= 6 and 2 <= j <= 6")
        hull_f, exact = uniformly_generated_set(
            dom, ["i", "j"], FIVE_POINT, ["x", "y"]
        )
        union_f, _ = uniformly_generated_set(
            dom, ["i", "j"], FIVE_POINT, ["x", "y"], use_hull=False
        )
        assert exact
        a = count(hull_f, ["x", "y"]).evaluate({})
        b = count(union_f, ["x", "y"]).evaluate({})
        want = len(
            {
                (i + di, j + dj)
                for i in range(2, 7)
                for j in range(2, 7)
                for di, dj in FIVE_POINT
            }
        )
        assert a == b == want

    def test_1d_strided_refs(self):
        # a[2i] and a[2i+4]: offsets {0, 4} with stride 2 in the domain
        dom = parse("1 <= t <= 10")
        f, exact = uniformly_generated_set(dom, ["t"], [(0,), (4,)], ["x"])
        assert exact
        # t here is the base subscript value; the caller composes with
        # the subscript map -- this test uses identity subscripts
        got = formula_points(f, ("x",), box=20)
        want = {(t + d,) for t in range(1, 11) for d in (0, 4)}
        assert got == want
