"""HPF block-cyclic distribution tests (§3.3)."""

import pytest

from repro.apps import BlockCyclicDistribution, communication_volume, message_buffer_size
from repro.apps.comm import total_messages


def owner(t, block, procs):
    return (t // block) % procs


class TestMapping:
    def test_paper_example(self):
        """T(0:1024) block-cyclic on 8 procs with blocks of 4:
        t == l + 4p + 32c, 0 <= l <= 3, 0 <= p <= 7 (§3.3)."""
        dist = BlockCyclicDistribution(block=4, procs=8)
        f = dist.mapping_formula()
        # the paper's data points
        assert f.evaluate({"t": 0, "p": 0, "c": 0, "l": 0})
        assert f.evaluate({"t": 7, "p": 1, "c": 0, "l": 3})
        assert f.evaluate({"t": 31, "p": 7, "c": 0, "l": 3})
        assert f.evaluate({"t": 32, "p": 0, "c": 1, "l": 0})
        assert not f.evaluate({"t": 32, "p": 1, "c": 0, "l": 0})

    def test_owner_is_function(self):
        dist = BlockCyclicDistribution(block=4, procs=8)
        f = dist.owner_formula("t", "p")
        for t in range(0, 70):
            owners = [p for p in range(8) if f.evaluate({"t": t, "p": p})]
            assert owners == [owner(t, 4, 8)]

    def test_elements_per_processor(self):
        dist = BlockCyclicDistribution(block=4, procs=8)
        per = dist.elements_per_processor("0 <= t <= 1024")
        counts = [per.evaluate(p=p) for p in range(8)]
        assert sum(counts) == 1025
        assert counts[0] == 129 and all(c == 128 for c in counts[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCyclicDistribution(block=0, procs=4)


class TestCommunication:
    def test_shift_volume(self):
        dist = BlockCyclicDistribution(block=4, procs=4)
        vol = communication_volume(dist, "0 <= t <= 63", shift=1)
        for q in range(4):
            for p in range(4):
                if p == q:
                    continue
                want = sum(
                    1
                    for t in range(0, 64)
                    if owner(t, 4, 4) == p and owner(t + 1, 4, 4) == q
                )
                assert vol.evaluate(p=p, q=q) == want, (p, q)

    def test_block_shift_heavy_traffic(self):
        # a shift by a full block moves every element to the neighbour
        dist = BlockCyclicDistribution(block=4, procs=4)
        vol = communication_volume(dist, "0 <= t <= 63", shift=4)
        moved = sum(
            vol.evaluate(p=p, q=q)
            for p in range(4)
            for q in range(4)
            if p != q
        )
        assert moved == 64

    def test_buffer_size(self):
        dist = BlockCyclicDistribution(block=4, procs=8)
        assert message_buffer_size(dist, "0 <= t <= 127", 1) == 4

    def test_message_count_shift1(self):
        # shift-1 on block 4: only block boundaries cross processors:
        # each proc sends to exactly one neighbour
        dist = BlockCyclicDistribution(block=4, procs=8)
        assert total_messages(dist, "0 <= t <= 127", 1) == 8

    def test_zero_shift_no_traffic(self):
        dist = BlockCyclicDistribution(block=4, procs=4)
        vol = communication_volume(dist, "0 <= t <= 63", shift=0)
        for q in range(4):
            for p in range(4):
                if p != q:
                    assert vol.evaluate(p=p, q=q) == 0
