"""Integer satisfiability tests (§2.2) with a brute-force referee."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import (
    equivalent,
    implies,
    satisfiable,
    solve_sample,
)


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


def eq(coeffs, const=0):
    return Constraint.eq(Affine(coeffs, const))


def boxed(cons, names, box=6):
    extra = []
    for v in names:
        extra.append(geq({v: 1}, box))
        extra.append(geq({v: -1}, box))
    return Conjunct(list(cons) + extra)


def brute(conj, box=6):
    names = conj.variables()
    for vals in itertools.product(range(-box, box + 1), repeat=len(names)):
        if conj.satisfied_by(dict(zip(names, vals))):
            return True
    return False


class TestKnownCases:
    def test_trivial(self):
        assert satisfiable(Conjunct.true())

    def test_empty_interval(self):
        assert not satisfiable(Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)]))

    def test_classic_omega_gap(self):
        # 3 <= 3x + 2 <= 4 has no integer solution but a rational one
        c = Conjunct([geq({"x": 3}, -1), geq({"x": -3}, 2)])
        assert not satisfiable(c)

    def test_parity_conflict(self):
        # x even and x odd
        c = (
            Conjunct.true()
            .add_stride(2, Affine.var("x"))
            .add_stride(2, Affine({"x": 1}, 1))
        )
        assert not satisfiable(c)

    def test_crt_solvable(self):
        # x ≡ 1 (mod 3), x ≡ 2 (mod 5): solvable (x = 7)
        c = (
            Conjunct.true()
            .add_stride(3, Affine({"x": 1}, -1))
            .add_stride(5, Affine({"x": 1}, -2))
        )
        assert satisfiable(c)

    def test_dark_shadow_insufficient(self):
        # needs splintering: 0 <= 3b - a <= 7, 1 <= a - 2b <= 5, a == 3
        c = Conjunct(
            [
                geq({"b": 3, "a": -1}),
                geq({"b": -3, "a": 1}, 7),
                geq({"a": 1, "b": -2}, -1),
                geq({"a": -1, "b": 2}, 5),
                eq({"a": 1}, -3),
            ]
        )
        assert satisfiable(c)  # b = 1 works: 3-2=1 ok; 3b-a = 0 ok

    def test_dark_shadow_gap_point(self):
        # same but a == 4: no integer b (the dark shadow misses, and
        # there is genuinely no solution)
        c = Conjunct(
            [
                geq({"b": 3, "a": -1}),
                geq({"b": -3, "a": 1}, 7),
                geq({"a": 1, "b": -2}, -1),
                geq({"a": -1, "b": 2}, 5),
                eq({"a": 1}, -4),
            ]
        )
        assert not satisfiable(c)

    def test_diophantine_equality(self):
        # 6x + 9y == 5: gcd 3 does not divide 5
        assert not satisfiable(Conjunct([eq({"x": 6, "y": 9}, -5)]))
        assert satisfiable(Conjunct([eq({"x": 6, "y": 9}, -3)]))


class TestRandomizedAgainstBrute:
    @given(
        st.lists(
            st.tuples(
                st.integers(-4, 4), st.integers(-4, 4), st.integers(-8, 8)
            ),
            min_size=1,
            max_size=4,
        ),
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_two_vars(self, rows, with_eq):
        cons = []
        for i, (a, b, c) in enumerate(rows):
            expr = Affine({"x": a, "y": b}, c)
            if with_eq and i == 0:
                cons.append(Constraint.eq(expr))
            else:
                cons.append(Constraint.geq(expr))
        conj = boxed(cons, ("x", "y"))
        assert satisfiable(conj) == brute(conj)


class TestImplication:
    def test_interval_implication(self):
        narrow = Conjunct([geq({"x": 1}, -3), geq({"x": -1}, 5)])
        wide = Conjunct([geq({"x": 1}), geq({"x": -1}, 10)])
        assert implies(narrow, wide)
        assert not implies(wide, narrow)

    def test_implication_with_stride(self):
        mult4 = Conjunct.true().add_stride(4, Affine.var("x"))
        even = Conjunct.true().add_stride(2, Affine.var("x"))
        assert implies(mult4, even)
        assert not implies(even, mult4)

    def test_conclusion_with_pinned_wildcard(self):
        # ∃w: w = -1 and 0 <= j <= 1 and 4 | (j + w), i.e. j = 1.  The
        # pinned wildcard w survives normalize (it also feeds the
        # stride), so the conclusion is not stride-only; implies must
        # project it to stride-only pieces rather than raise
        # (regression: fuzz seed 60845).
        conclusion = Conjunct(
            [
                eq({"w": 1}, 1),
                eq({"s": 4, "j": -1, "w": -1}),
                geq({"j": 1}),
                geq({"j": -1}, 1),
            ],
            ["w", "s"],
        )
        j_is_1 = Conjunct([eq({"j": 1}, -1)])
        j_is_0 = Conjunct([eq({"j": 1})])
        assert implies(j_is_1, conclusion)
        assert not implies(j_is_0, conclusion)

    def test_false_premise_implies_anything(self):
        false = Conjunct([geq({}, -1)])
        anything = Conjunct([geq({"x": 1}, -100)])
        assert implies(false, anything)

    def test_equivalent(self):
        a = Conjunct([geq({"x": 2}, -4)])   # 2x >= 4
        b = Conjunct([geq({"x": 1}, -2)])   # x >= 2
        assert equivalent(a, b)


class TestSolveSample:
    def test_finds_solution(self):
        c = Conjunct([geq({"x": 1}, -3), geq({"x": -1}, 5)])
        env = solve_sample(c)
        assert env is not None and 3 <= env["x"] <= 5

    def test_no_solution(self):
        c = Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)])
        assert solve_sample(c) is None


class TestSatCacheLRU:
    """The satisfiability memo is a bounded LRU, not clear-all."""

    @pytest.fixture(autouse=True)
    def _restore_cache(self):
        from repro.omega import satisfiability as sat

        previous = sat.sat_cache_info()["limit"]
        sat.clear_sat_cache()
        yield
        sat.set_sat_cache_limit(previous)
        sat.clear_sat_cache()

    @staticmethod
    def _point(i):
        # x == i: a family of distinct, trivially satisfiable conjuncts
        return Conjunct([Constraint.eq(Affine({"x": 1}, -i))])

    def test_size_stays_bounded(self):
        from repro.omega import satisfiability as sat

        sat.set_sat_cache_limit(8)
        for i in range(50):
            assert satisfiable(self._point(i))
        assert sat.sat_cache_info()["size"] <= 8

    def test_recently_used_entries_survive_eviction(self):
        from repro.omega import satisfiability as sat

        sat.set_sat_cache_limit(64)
        hot = self._point(0)
        satisfiable(hot)
        # keep `hot` warm while flooding the cache far past its limit
        for i in range(1, 400):
            satisfiable(self._point(i))
            if i % 10 == 0:
                satisfiable(hot)
        from repro.core import stats

        with stats.collecting_stats() as counters:
            satisfiable(hot)
        assert counters["sat_cache_hits"] == 1  # never evicted

    def test_zero_limit_disables_caching(self):
        from repro.omega import satisfiability as sat

        sat.set_sat_cache_limit(0)
        assert satisfiable(self._point(1))
        assert sat.sat_cache_info()["size"] == 0

    def test_shrinking_evicts_immediately(self):
        from repro.omega import satisfiability as sat

        sat.set_sat_cache_limit(100)
        for i in range(20):
            satisfiable(self._point(i))
        sat.set_sat_cache_limit(5)
        assert sat.sat_cache_info()["size"] <= 5

    def test_false_results_are_cached_too(self):
        from repro.core import stats
        from repro.omega import satisfiability as sat

        sat.set_sat_cache_limit(16)
        conj = Conjunct([geq({"x": 1}, -5), geq({"x": -1}, 3)])
        assert not satisfiable(conj)
        with stats.collecting_stats() as counters:
            assert not satisfiable(conj)
        assert counters["sat_cache_hits"] == 1
