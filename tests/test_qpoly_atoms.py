"""Mod-atom tests: canonicalization, evaluation, substitution."""

import pytest
from hypothesis import given, strategies as st

from repro.qpoly.atoms import ModAtom, atom_sort_key, evaluate_atom


class TestCanonical:
    def test_coefficients_reduced(self):
        a = ModAtom({"n": 5}, 7, 3)
        assert a == ModAtom({"n": 2}, 1, 3)

    def test_zero_coefficients_dropped(self):
        a = ModAtom({"n": 4, "m": 1}, 0, 2)
        assert a.variables() == ("m",)

    def test_constant_atom(self):
        a = ModAtom({"n": 2}, 1, 2)
        assert a.is_constant()
        assert a.evaluate({}) == 1

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            ModAtom({"n": 1}, 0, 0)

    def test_hash_consistency(self):
        assert hash(ModAtom({"n": 1}, 0, 2)) == hash(ModAtom({"n": 3}, 2, 2))

    def test_immutability(self):
        a = ModAtom({"n": 1}, 0, 2)
        with pytest.raises(AttributeError):
            a.const = 5


class TestEvaluation:
    @given(st.integers(-50, 50), st.integers(1, 9))
    def test_matches_python_mod(self, n, m):
        a = ModAtom({"n": 1}, 0, m)
        assert a.evaluate({"n": n}) == n % m

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_affine_argument(self, n, k):
        a = ModAtom({"n": 2, "k": -1}, 3, 5)
        assert a.evaluate({"n": n, "k": k}) == (2 * n - k + 3) % 5

    def test_range(self):
        a = ModAtom({"n": 1}, 0, 7)
        for n in range(-30, 30):
            assert 0 <= a.evaluate({"n": n}) < 7


class TestSubstitution:
    def test_substitute_var(self):
        a = ModAtom({"n": 1}, 0, 4)
        b = a.substitute_var("n", {"m": 2}, 1)  # n -> 2m + 1
        for m in range(-10, 10):
            assert b.evaluate({"m": m}) == (2 * m + 1) % 4

    def test_substitute_absent_var(self):
        a = ModAtom({"n": 1}, 0, 4)
        assert a.substitute_var("zz", {"m": 2}, 1) is a

    def test_rename(self):
        a = ModAtom({"n": 1}, 2, 3)
        assert a.rename({"n": "p"}) == ModAtom({"p": 1}, 2, 3)


class TestOrdering:
    def test_strings_before_mods(self):
        a = ModAtom({"n": 1}, 0, 2)
        assert atom_sort_key("z") < atom_sort_key(a)

    def test_evaluate_atom_dispatch(self):
        assert evaluate_atom("n", {"n": 5}) == 5
        assert evaluate_atom(ModAtom({"n": 1}, 0, 2), {"n": 5}) == 1
