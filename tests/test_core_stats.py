"""The observability layer (repro.core.stats)."""

import pytest

from repro.core import count, stats


@pytest.fixture(autouse=True)
def _clean_stats():
    stats.reset_stats()
    stats.disable_stats()
    yield
    stats.reset_stats()
    stats.disable_stats()


class TestSwitch:
    def test_disabled_by_default_in_this_suite(self):
        count("1 <= i <= n", ["i"])
        assert stats.stats_snapshot()["sat_calls"] == 0

    def test_enable_disable(self):
        stats.enable_stats()
        count("1 <= i <= n", ["i"])
        after = stats.stats_snapshot()
        assert after["sat_calls"] > 0
        assert after["normalize_calls"] > 0
        stats.disable_stats()
        count("1 <= i <= n", ["i"])
        assert stats.stats_snapshot() == after

    def test_reset(self):
        stats.enable_stats()
        count("1 <= i <= n", ["i"])
        stats.reset_stats()
        snap = stats.stats_snapshot()
        assert all(v == 0 for v in snap.values())


class TestCollectingStats:
    def test_yields_live_counters(self):
        with stats.collecting_stats() as counters:
            count("1 <= i and i < j and j <= n", ["i", "j"])
            assert counters["sat_calls"] > 0
        assert not stats.ENABLED  # previous (disabled) state restored

    def test_restores_enabled_state(self):
        stats.enable_stats()
        with stats.collecting_stats():
            pass
        assert stats.ENABLED

    def test_no_reset_accumulates(self):
        with stats.collecting_stats() as counters:
            count("1 <= i <= n", ["i"])
            first = counters["sat_calls"]
        with stats.collecting_stats(reset=False) as counters:
            count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
            assert counters["sat_calls"] > first

    def test_snapshot_schema_is_stable(self):
        with stats.collecting_stats():
            count("1 <= i <= n", ["i"])
        snap = stats.stats_snapshot()
        for name in stats.COUNTER_NAMES:
            assert name in snap


class TestCountersFire:
    def test_cache_hits_on_repeated_evaluation(self):
        from repro.omega.satisfiability import clear_sat_cache

        result = count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
        clear_sat_cache()
        with stats.collecting_stats() as counters:
            for _ in range(2):  # second sweep re-checks the same guards
                for n in range(6):
                    result.evaluate(n=n)
        assert counters["sat_cache_hits"] > 0
        assert counters["sat_calls"] == (
            counters["sat_cache_hits"] + counters["sat_cache_misses"]
        )

    def test_normalize_memo_hits(self):
        with stats.collecting_stats() as counters:
            count("1 <= i and i < j and j <= n", ["i", "j"])
        assert counters["normalize_memo_hits"] > 0
        assert counters["normalize_iterations"] > 0

    def test_fm_and_redundancy_counters(self):
        with stats.collecting_stats() as counters:
            count("1 <= i and i < j and j <= n and i <= m", ["i", "j"])
        assert counters["fm_eliminations"] > 0
        assert counters["redundancy_checks"] > 0

    def test_residue_split_counter(self):
        with stats.collecting_stats() as counters:
            count("1 <= i <= n and 2*i <= 2*n", ["i"])
            count("0 <= i <= n and 3*i <= j and j <= 3*i + 1", ["i", "j"])
        # at least one of the stride-heavy paths fires
        assert counters["residue_splits"] >= 0  # schema present
        assert "residue_cases" in counters


class TestTimers:
    def test_timer_records_when_enabled(self):
        stats.enable_stats()
        with stats.timer("example"):
            sum(range(1000))
        snap = stats.stats_snapshot()
        assert snap["time_example"] >= 0.0

    def test_timer_noop_when_disabled(self):
        with stats.timer("example"):
            pass
        assert "time_example" not in stats.stats_snapshot()


class TestFormat:
    def test_format_lists_every_counter(self):
        with stats.collecting_stats():
            count("1 <= i <= n", ["i"])
        text = stats.format_stats()
        for name in stats.COUNTER_NAMES:
            assert name in text

    def test_format_accepts_snapshot(self):
        text = stats.format_stats({"sat_calls": 7})
        assert "sat_calls" in text and "7" in text
