"""Implication verification tests (§2.4)."""

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.verify import verify_formula_implication, verify_implication
from repro.presburger.parser import parse


def geq(coeffs, const=0):
    return Constraint.geq(Affine(coeffs, const))


class TestConjunctImplication:
    def test_basic(self):
        assert verify_implication(
            Conjunct([geq({"x": 1}, -5)]), Conjunct([geq({"x": 1})])
        )

    def test_failure(self):
        assert not verify_implication(
            Conjunct([geq({"x": 1})]), Conjunct([geq({"x": 1}, -5)])
        )

    def test_multi_constraint(self):
        premise = Conjunct([geq({"x": 1}, -1), geq({"y": 1, "x": -1})])
        conclusion = Conjunct([geq({"y": 1}, -1)])
        assert verify_implication(premise, conclusion)


class TestFormulaImplication:
    def test_quantified(self):
        # (∃y: x = 2y ∧ 1 <= y <= 4) => (2 <= x <= 8)
        p = parse("exists y: x = 2*y and 1 <= y <= 4")
        q = parse("2 <= x <= 8")
        assert verify_formula_implication(p, q)
        assert not verify_formula_implication(q, p)

    def test_disjunction_conclusion(self):
        p = parse("1 <= x <= 10")
        q = parse("x <= 5 or x >= 4")
        assert verify_formula_implication(p, q)

    def test_stride_implication(self):
        p = parse("exists a: x = 6*a")
        q = parse("exists b: x = 3*b")
        assert verify_formula_implication(p, q)
        assert not verify_formula_implication(q, p)
