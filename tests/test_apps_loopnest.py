"""Loop-nest model tests."""

import pytest

from conftest import enumerate_formula
from repro.apps import ArrayRef, Loop, LoopNest, Statement


class TestLoop:
    def test_bound_formula(self):
        loop = Loop("i", 2, "N - 1")
        f = loop.bound_formula()
        assert {i for i in range(0, 10) if f.evaluate({"i": i, "N": 8})} == set(
            range(2, 8)
        )

    def test_step(self):
        loop = Loop("i", 1, 10, step=3)
        f = loop.bound_formula()
        assert {i for i in range(0, 12) if f.evaluate({"i": i})} == {1, 4, 7, 10}

    def test_symbolic_step_base(self):
        loop = Loop("i", "m", "m + 6", step=2)
        f = loop.bound_formula()
        assert {
            i for i in range(0, 12) if f.evaluate({"i": i, "m": 3})
        } == {3, 5, 7, 9}

    def test_floor_bound(self):
        loop = Loop("i", 1, "floor(n/2)")
        f = loop.bound_formula()
        assert {i for i in range(0, 10) if f.evaluate({"i": i, "n": 7})} == {
            1,
            2,
            3,
        }

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 1, 10, step=0)


class TestArrayRef:
    def test_access_formula(self):
        ref = ArrayRef("a", ["2*i + 1"])
        f = ref.access_formula(["x"])
        assert f.evaluate({"i": 3, "x": 7})
        assert not f.evaluate({"i": 3, "x": 8})

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            ArrayRef("a", ["i"]).access_formula(["x", "y"])

    def test_constant_offset(self):
        a = ArrayRef("a", ["i + 1", "j"])
        b = ArrayRef("a", ["i", "j - 2"])
        assert a.constant_offset_from(b) == (1, 2)

    def test_offset_different_arrays(self):
        a = ArrayRef("a", ["i"])
        b = ArrayRef("b", ["i"])
        assert a.constant_offset_from(b) is None

    def test_offset_nonuniform(self):
        a = ArrayRef("a", ["2*i"])
        b = ArrayRef("a", ["i"])
        assert a.constant_offset_from(b) is None


class TestLoopNest:
    def test_duplicate_vars_rejected(self):
        with pytest.raises(ValueError):
            LoopNest([Loop("i", 1, 2), Loop("i", 1, 2)], [Statement()])

    def test_iteration_formula(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", "i", "n")], [Statement()]
        )
        f = nest.iteration_formula()
        pts = enumerate_formula(f, ("i", "j"), box=6, env={"n": 4})
        assert pts == {(i, j) for i in range(1, 5) for j in range(i, 5)}

    def test_statement_depth(self):
        nest = LoopNest(
            [Loop("i", 1, "n"), Loop("j", 1, "n")],
            [Statement(depth=1)],
        )
        f = nest.statement_domain(nest.statements[0])
        assert sorted(f.free_variables()) == ["i", "n"]

    def test_statement_guard(self):
        nest = LoopNest(
            [Loop("i", 1, 10)],
            [Statement(guard="2 | i")],
        )
        f = nest.statement_domain(nest.statements[0])
        assert {i for i in range(0, 12) if f.evaluate({"i": i})} == {
            2, 4, 6, 8, 10,
        }

    def test_arrays_listing(self):
        nest = LoopNest(
            [Loop("i", 1, 5)],
            [
                Statement(refs=[ArrayRef("a", ["i"]), ArrayRef("b", ["i"])]),
                Statement(refs=[ArrayRef("a", ["i + 1"])]),
            ],
        )
        assert nest.arrays() == ["a", "b"]
        assert len(nest.references("a")) == 2
