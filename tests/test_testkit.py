"""The testkit tested: generator contracts, oracle, checks, shrinker,
corpus round-trip, and the fuzz CLI driver."""

import json
import random

import pytest

from repro.core import count
from repro.presburger.ast import And, Atom, Exists, Or, TrueF
from repro.presburger.parser import parse
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.testkit.checks import CHECKS, CheckFailure, run_check, run_checks
from repro.testkit.corpus import case_from_json, case_to_json, save_case, load_corpus
from repro.testkit.generate import (
    BOX,
    FuzzCase,
    count_atoms,
    formula_to_text,
    generate_case,
    rename_formula,
    shuffle_formula,
)
from repro.testkit.oracle import (
    on_frontier,
    oracle_count,
    oracle_eval,
    oracle_points,
    oracle_sum,
)
from repro.testkit.shrink import failure_kind, shrink_case


class TestGenerator:
    def test_deterministic(self):
        a, b = generate_case(42), generate_case(42)
        assert formula_to_text(a.formula) == formula_to_text(b.formula)
        assert a.over == b.over and a.envs == b.envs
        assert a.poly_text == b.poly_text

    def test_distinct_seeds_distinct_cases(self):
        texts = {formula_to_text(generate_case(s).formula) for s in range(20)}
        assert len(texts) > 15

    def test_round_trips_through_parser(self):
        for seed in range(30):
            case = generate_case(seed)
            text = formula_to_text(case.formula)
            reparsed = parse(text)
            # Semantically identical: same solutions at every env.
            for env in case.envs:
                assert oracle_points(
                    reparsed, case.over, env
                ) == oracle_points(case.formula, case.over, env), text

    def test_cases_stay_inside_the_box(self):
        # The oracle is only exact if no solution touches the
        # enumeration frontier; the generator must guarantee that.
        for seed in range(40):
            case = generate_case(seed)
            for env in case.envs:
                pts = oracle_points(case.formula, case.over, env)
                assert not on_frontier(pts), (seed, sorted(pts)[:4])

    def test_envs_cover_symbols(self):
        case = generate_case(7)
        for env in case.envs:
            assert set(env) == set(case.symbols)


class TestRenameShuffle:
    def test_rename_renames_binders(self):
        f = Exists(["q"], Atom(Constraint.geq(Affine({"q": 1, "i": 1}))))
        g = rename_formula(f, {"q": "z", "i": "w"})
        assert "z" in formula_to_text(g) and "q" not in formula_to_text(g)

    def test_shuffle_preserves_solutions(self):
        case = generate_case(3)
        shuffled = shuffle_formula(case.formula, random.Random(99))
        for env in case.envs:
            assert oracle_points(
                shuffled, case.over, env
            ) == oracle_points(case.formula, case.over, env)


class TestOracle:
    def test_atom_and_stride(self):
        f = parse("1 <= i and i <= 7 and 2 | i")
        assert oracle_count(f, ["i"]) == 3  # 2, 4, 6

    def test_bounded_exists(self):
        f = parse("exists q: (0 <= q and q <= 3 and i = 2*q)")
        assert oracle_points(f, ["i"]) == {(0,), (2,), (4,), (6,)}

    def test_bounded_forall_vacuous_outside_box(self):
        # forall q: q outside [0,1] or i >= q  ==  i >= 1
        f = parse("forall q: (not (0 <= q and q <= 1) or i >= q)")
        pts = oracle_points(f, ["i"])
        assert pts == {(v,) for v in range(1, BOX + 1)}
        assert on_frontier(pts)  # i is unbounded above: frontier hit

    def test_sum(self):
        f = parse("1 <= i and i <= 3")
        from repro.qpoly.parse import parse_polynomial

        assert oracle_sum(f, ["i"], parse_polynomial("i*i")) == 14

    def test_eval_agrees_with_engine_evaluate(self):
        f = parse("1 <= i and i <= n and not (2 | i)")
        for i in range(-2, 6):
            env = {"i": i, "n": 4}
            assert oracle_eval(f, env) == f.evaluate(env)


class TestChecks:
    def test_all_pass_on_generated_case(self):
        case = generate_case(0)
        assert run_checks(case) == []

    def test_count_oracle_catches_wrong_engine_answer(self, monkeypatch):
        import repro.testkit.checks as checks_mod

        real_count = count

        def off_by_one(formula, over, options=None):
            result = real_count(formula, over)

            class Wrapped:
                def evaluate(self, env):
                    return result.evaluate(env) + 1

                def simplified(self):
                    return self

            return Wrapped()

        monkeypatch.setattr(checks_mod, "count", off_by_one)
        failure = run_check("count_oracle", generate_case(0))
        assert failure is not None
        assert failure.check == "count_oracle"
        assert "engine" in failure.message and "oracle" in failure.message

    def test_exception_becomes_failure(self, monkeypatch):
        import repro.testkit.checks as checks_mod

        def boom(formula, over, options=None):
            raise RuntimeError("kaput")

        monkeypatch.setattr(checks_mod, "count", boom)
        failure = run_check("count_oracle", generate_case(0))
        assert failure is not None
        assert "exception" in failure.message and "kaput" in failure.message
        assert failure_kind(failure) == "exception:RuntimeError"

    def test_periods_schedule_checks(self):
        case = generate_case(1)
        # iteration 1 skips every check whose period doesn't divide it;
        # run_checks must not crash and must skip the expensive ones.
        run_checks(case, names=["cache_warm_cold"], iteration=1)

    def test_registry_shape(self):
        for name, (period, fn) in CHECKS.items():
            assert period >= 1 and callable(fn), name


class TestShrink:
    def _failing_case(self):
        # i in [0,5] and i in [2,4]: redundant conjuncts to strip away.
        f = parse(
            "(i >= 0) and (i <= 5) and (i >= 2 or i >= 1) and (i <= 4)"
        )
        return FuzzCase(f, over=["i"], envs=({},), seed=123)

    def test_shrinks_to_fewer_atoms(self):
        case = self._failing_case()
        failure = CheckFailure("count_oracle", "mismatch", case)

        # A fake check that fails whenever the case has >= 2 atoms.
        import repro.testkit.shrink as shrink_mod

        def fake_run_check(name, c):
            if count_atoms(c.formula) >= 2:
                return CheckFailure(name, "mismatch", c)
            return None

        real = shrink_mod._still_fails

        def patched(c, check, kind):
            for env in c.envs if c.envs else ({},):
                if on_frontier(oracle_points(c.formula, c.over, env)):
                    return False
            return fake_run_check(check, c) is not None

        shrink_mod._still_fails = patched
        try:
            shrunk = shrink_case(case, "count_oracle", failure=failure)
        finally:
            shrink_mod._still_fails = real
        assert count_atoms(shrunk.formula) <= 2
        assert count_atoms(shrunk.formula) < count_atoms(case.formula)

    def test_rejects_frontier_escapes(self):
        # Dropping the upper bound would leave i unbounded; the
        # frontier heuristic must reject such candidates even though
        # the (fake) check would still "fail" on them.
        f = parse("(0 <= i) and (i <= 3)")
        case = FuzzCase(f, over=["i"], envs=({},), seed=1)
        from repro.testkit.shrink import _still_fails

        unbounded = case.with_formula(parse("0 <= i"))
        assert _still_fails(unbounded, "count_oracle", None) is False

    def test_failure_kind_classification(self):
        case = generate_case(0)
        assert (
            failure_kind(CheckFailure("x", "engine 1 != oracle 2", case))
            == "mismatch"
        )
        assert (
            failure_kind(
                CheckFailure("x", "exception: ValueError: nope", case)
            )
            == "exception:ValueError"
        )


class TestCorpus:
    def test_json_round_trip(self):
        case = generate_case(5)
        doc = case_to_json(case, check="count_oracle", note="hello")
        back, check = case_from_json(doc)
        assert check == "count_oracle"
        assert back.over == case.over and back.envs == case.envs
        assert back.poly_text == case.poly_text and back.seed == case.seed
        for env in case.envs:
            assert oracle_points(
                back.formula, back.over, env
            ) == oracle_points(case.formula, case.over, env)

    def test_unknown_schema_rejected(self):
        doc = case_to_json(generate_case(5), check="count_oracle")
        doc["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            case_from_json(doc)

    def test_save_and_load(self, tmp_path):
        case = generate_case(6)
        path = save_case(str(tmp_path), case, "sum_oracle", note="n")
        entries = list(load_corpus(str(tmp_path)))
        assert len(entries) == 1
        loaded_path, loaded, check = entries[0]
        assert loaded_path == path and check == "sum_oracle"
        assert loaded.seed == 6
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["note"] == "n"

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert list(load_corpus(str(tmp_path / "nope"))) == []


class TestFuzzCli:
    def test_small_run_exits_clean(self, capsys):
        from repro.__main__ import main

        code = main(["fuzz", "--seed", "0", "--iterations", "3"])
        assert code == 0
        err = capsys.readouterr().err
        assert "iterations=3" in err and "failures=0" in err

    def test_replay_corpus_directory(self, capsys):
        from repro.__main__ import main

        import os

        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        code = main(["fuzz", "--replay", corpus])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_failure_is_reported_shrunk_and_saved(
        self, tmp_path, capsys, monkeypatch
    ):
        # Sabotage the engine, then demand a shrunk, saved, named
        # counterexample and a nonzero exit code.
        import repro.testkit.checks as checks_mod
        from repro.__main__ import main

        real_count = count

        def off_by_one(formula, over, options=None):
            result = real_count(formula, over)

            class Wrapped:
                def evaluate(self, env):
                    return result.evaluate(env) + 1

                def simplified(self):
                    return self

            return Wrapped()

        monkeypatch.setattr(checks_mod, "count", off_by_one)
        code = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--iterations",
                "1",
                "--corpus",
                str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL seed=0" in out and "check=count_oracle" in out
        assert "shrunk" in out
        saved = list(load_corpus(str(tmp_path)))
        # The sabotage trips every count-based check (count_oracle,
        # compiled_eval, ...); the oracle one must be among the saves.
        assert saved
        assert "count_oracle" in [name for _, _, name in saved]

    def test_stats_flag_prints_counters(self, capsys):
        from repro.__main__ import main

        code = main(["fuzz", "--seed", "0", "--iterations", "2", "--stats"])
        assert code == 0
        assert "-- stats --" in capsys.readouterr().err
