"""CLI tests (python -m repro)."""

import subprocess
import sys

import pytest


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCount:
    def test_basic(self):
        out = run_cli("count", "1 <= i and i < j and j <= n", "--over", "i,j")
        assert out.returncode == 0
        assert "1/2*n**2 - 1/2*n" in out.stdout

    def test_at(self):
        out = run_cli(
            "count", "1 <= i <= n", "--over", "i", "--at", "n=12"
        )
        assert "12" in out.stdout

    def test_table(self):
        out = run_cli(
            "count", "1 <= i <= n", "--over", "i", "--table", "n=0:3"
        )
        lines = [l for l in out.stdout.splitlines() if l.strip().startswith("n=")]
        assert len(lines) == 4

    def test_simplify_flag(self):
        out = run_cli(
            "count",
            "1 <= i and 1 <= j <= n and 2*i <= 3*j",
            "--over", "i,j", "--simplify",
        )
        assert "mod 2" in out.stdout

    def test_strategy(self):
        out = run_cli(
            "count", "1 <= i and 7*i <= n", "--over", "i",
            "--strategy", "upper",
        )
        assert "upper bound" in out.stdout


class TestSum:
    def test_polynomial(self):
        out = run_cli(
            "sum", "1 <= i <= n", "--over", "i", "--poly", "i*i",
            "--at", "n=4",
        )
        assert out.returncode == 0
        assert "30" in out.stdout


class TestSimplify:
    def test_clauses_printed(self):
        out = run_cli("simplify", "x >= 1 and x >= 0")
        assert out.returncode == 0
        assert "x - 1 >= 0" in out.stdout

    def test_false(self):
        out = run_cli("simplify", "x >= 5 and x <= 3")
        assert "FALSE" in out.stdout

    def test_disjoint(self):
        out = run_cli(
            "simplify", "(1 <= x <= 10) or (5 <= x <= 15)", "--disjoint"
        )
        assert out.returncode == 0
        assert out.stdout.count(">=") >= 2


class TestErrors:
    def test_missing_over(self):
        out = run_cli("count", "1 <= i <= n")
        assert out.returncode != 0

    def test_bad_table_spec(self):
        out = run_cli(
            "count", "1 <= i <= n", "--over", "i", "--table", "nonsense"
        )
        assert out.returncode != 0


class TestStats:
    def test_stats_flag_prints_counters(self):
        out = run_cli(
            "count", "1 <= i <= n and 1 <= j <= i", "--over", "i,j",
            "--table", "n=0:6", "--stats",
        )
        assert out.returncode == 0
        assert "-- stats --" in out.stderr
        assert "sat_calls" in out.stderr
        hits = [
            line for line in out.stderr.splitlines()
            if line.startswith("sat_cache_hits")
        ]
        assert hits and int(hits[0].split()[1]) > 0

    def test_stats_off_by_default(self):
        out = run_cli("count", "1 <= i <= n", "--over", "i")
        assert "sat_calls" not in out.stderr

    def test_stats_on_simplify(self):
        out = run_cli(
            "simplify", "x >= 1 and x >= 0 and (x <= 5 or x <= 9)",
            "--stats",
        )
        assert out.returncode == 0
        assert "sat_calls" in out.stderr


class TestAtErrors:
    def test_non_integer_value_is_clean_error(self):
        out = run_cli("count", "1 <= i <= n", "--over", "i", "--at", "n=abc")
        assert out.returncode == 2
        assert "must be an integer" in out.stderr
        assert "Traceback" not in out.stderr

    def test_missing_equals_is_clean_error(self):
        out = run_cli("count", "1 <= i <= n", "--over", "i", "--at", "n10")
        assert out.returncode == 2
        assert "sym=value" in out.stderr
        assert "Traceback" not in out.stderr

    def test_at_repeatable_merges_symbols(self):
        out = run_cli(
            "count", "1 <= i <= n and i <= m", "--over", "i",
            "--at", "n=3", "--at", "m=7",
        )
        assert out.returncode == 0
        assert "at {'n': 3, 'm': 7}: 3" in out.stdout


class TestEval:
    def test_points(self):
        out = run_cli(
            "eval", "1 <= i and i <= n and 3 | (i + n)", "--over", "i",
            "--points", "n=9", "--points", "n=-4",
        )
        assert out.returncode == 0
        assert "at {'n': 9}: 3" in out.stdout
        assert "at {'n': -4}: 0" in out.stdout

    def test_points_with_poly(self):
        out = run_cli(
            "eval", "1 <= i <= n", "--over", "i", "--poly", "i*i",
            "--points", "n=4",
        )
        assert out.returncode == 0
        assert "at {'n': 4}: 30" in out.stdout

    def test_multi_symbol_point(self):
        out = run_cli(
            "eval", "1 <= i and i <= n and i <= m", "--over", "i",
            "--points", "n=3,m=7",
        )
        assert out.returncode == 0
        assert "3" in out.stdout

    def test_table_served_compiled(self):
        out = run_cli(
            "eval", "1 <= i <= n", "--over", "i", "--table", "n=0:3"
        )
        assert out.returncode == 0
        lines = [
            l for l in out.stdout.splitlines() if l.strip().startswith("n=")
        ]
        assert len(lines) == 4

    def test_no_compile_matches_compiled(self):
        args = (
            "eval", "1 <= i and 2*i <= n and 2 | (i + n)", "--over", "i",
            "--points", "n=11", "--points", "n=-6", "--table", "n=0:8",
        )
        compiled = run_cli(*args)
        interpreted = run_cli(*args, "--no-compile")
        assert compiled.returncode == 0
        assert compiled.stdout == interpreted.stdout

    def test_bad_point_is_clean_error(self):
        out = run_cli(
            "eval", "1 <= i <= n", "--over", "i", "--points", "n=abc"
        )
        assert out.returncode == 2
        assert "Traceback" not in out.stderr
