"""The service's ``evaluate`` job kind (PR 4).

An evaluate job is ``count``/``sum`` plus a mandatory non-empty
``at`` list; its payload carries one exact value per point, served
through the evalc compiler keyed by the request's *point-free*
formula hash (so jobs differing only in their points share one
compiled artifact).  The compiled values must be bit-for-bit what
the interpreted path returns -- including the int-vs-"p/q" encoding.
"""

import json

import pytest

from repro.service.batch import run_batch
from repro.service.diskcache import DiskCache
from repro.service.executor import execute_request
from repro.service.request import JobRequest, RequestError

EVAL_COUNT = {
    "id": "serve",
    "kind": "evaluate",
    "formula": "1 <= i and i <= n and 3 | (i + n)",
    "over": ["i"],
    "at": [{"n": 9}, {"n": 10}, {"n": 11}, {"n": -4}, {"n": 0}],
}
EVAL_SUM = {
    "id": "serve-sum",
    "kind": "evaluate",
    "formula": "1 <= i <= n",
    "over": ["i"],
    "poly": "i*i",
    "at": [{"n": 4}, {"n": 100}],
}


class TestValidation:
    def test_evaluate_needs_over(self):
        with pytest.raises(RequestError):
            JobRequest("evaluate", "1 <= i", at=[{"n": 1}])

    def test_evaluate_needs_points(self):
        with pytest.raises(RequestError, match="at"):
            JobRequest("evaluate", "1 <= i <= n", over=["i"])
        with pytest.raises(RequestError, match="at"):
            JobRequest("evaluate", "1 <= i <= n", over=["i"], at=[])

    def test_evaluate_accepts_poly(self):
        req = JobRequest.from_json(EVAL_SUM)
        assert req.poly == "i*i"

    def test_round_trip(self):
        req = JobRequest.from_json(EVAL_COUNT)
        assert JobRequest.from_json(req.to_json()).to_json() == req.to_json()


class TestFormulaHash:
    def test_invariant_across_points(self):
        a = JobRequest.from_json(EVAL_COUNT)
        b = JobRequest.from_json(dict(EVAL_COUNT, at=[{"n": 777}]))
        assert a.formula_hash() == b.formula_hash()
        assert a.content_hash() != b.content_hash()

    def test_sensitive_to_formula(self):
        a = JobRequest.from_json(EVAL_COUNT)
        c = JobRequest.from_json(
            dict(EVAL_COUNT, formula="1 <= i and i <= n and 2 | (i + n)")
        )
        assert a.formula_hash() != c.formula_hash()


class TestExecute:
    def test_count_points_exact(self):
        payload = execute_request(JobRequest.from_json(EVAL_COUNT))
        assert payload["kind"] == "evaluate"
        values = [p["value"] for p in payload["points"]]
        assert values == [3, 3, 4, 0, 0]

    def test_sum_points_exact(self):
        payload = execute_request(JobRequest.from_json(EVAL_SUM))
        values = [p["value"] for p in payload["points"]]
        assert values == [30, 338350]

    def test_compiled_matches_interpreted(self):
        from repro.evalc import set_compile_enabled

        req = JobRequest.from_json(EVAL_COUNT)
        compiled = execute_request(req)
        set_compile_enabled(False)
        try:
            interpreted = execute_request(req)
        finally:
            set_compile_enabled(True)
        assert compiled["points"] == interpreted["points"]

    def test_payload_has_symbolic_result_too(self):
        # The cache layer requires "result" in every ok payload; the
        # evaluate payload reuses the count/sum shape so warm cache
        # hits can serve it.
        payload = execute_request(JobRequest.from_json(EVAL_COUNT))
        assert "result" in payload
        assert "result_json" in payload


class TestBatch:
    def test_batch_round_trip(self):
        responses, summary = run_batch(
            [JobRequest.from_json(EVAL_COUNT), JobRequest.from_json(EVAL_SUM)]
        )
        assert summary.ok == 2
        assert [p["value"] for p in responses[0]["points"]] == [3, 3, 4, 0, 0]
        assert [p["value"] for p in responses[1]["points"]] == [30, 338350]

    def test_warm_cache_serves_points(self, tmp_path):
        entries = [JobRequest.from_json(EVAL_COUNT)]
        with DiskCache(str(tmp_path / "c.sqlite")) as cache:
            first, s1 = run_batch(entries, cache=cache)
            second, s2 = run_batch(entries, cache=cache)
        assert s1.cache_misses == 1 and s2.cache_hits == 1
        assert second[0]["cached"]
        assert first[0]["points"] == second[0]["points"]

    def test_cli_batch_line(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "jobs.jsonl"
        path.write_text(json.dumps(EVAL_COUNT) + "\n")
        assert main(["batch", str(path), "--no-cache"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        response = json.loads(out[0])
        assert response["ok"]
        assert [p["value"] for p in response["points"]] == [3, 3, 4, 0, 0]
