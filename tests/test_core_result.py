"""SymbolicSum / Term behaviour tests."""

from fractions import Fraction

import pytest

from repro.core.result import SymbolicSum, Term
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.qpoly import Polynomial


def term(guard_const, value):
    guard = Conjunct([Constraint.geq(Affine({"n": 1}, -guard_const))])
    return Term(guard, Polynomial.constant(value) if isinstance(value, int) else value)


class TestEvaluation:
    def test_guard_gates_value(self):
        s = SymbolicSum([term(3, 7)])  # n >= 3 : 7
        assert s.evaluate(n=3) == 7
        assert s.evaluate(n=2) == 0

    def test_terms_add(self):
        s = SymbolicSum([term(0, 1), term(5, 10)])
        assert s.evaluate(n=0) == 1
        assert s.evaluate(n=5) == 11

    def test_integer_result_is_int(self):
        s = SymbolicSum([term(0, 2)])
        assert isinstance(s.evaluate(n=0), int)

    def test_fraction_preserved(self):
        s = SymbolicSum(
            [Term(Conjunct(), Polynomial.constant(Fraction(1, 2)))]
        )
        assert s.evaluate({}) == Fraction(1, 2)

    def test_kwargs_call(self):
        s = SymbolicSum([term(0, 1)])
        assert s(n=1) == 1


class TestAlgebra:
    def test_add(self):
        s = SymbolicSum([term(0, 1)]) + SymbolicSum([term(0, 2)])
        assert s.evaluate(n=0) == 3

    def test_scale(self):
        s = SymbolicSum([term(0, 3)]).scale(4)
        assert s.evaluate(n=0) == 12

    def test_negation_flips_bounds(self):
        s = SymbolicSum([term(0, 1)], exactness="upper")
        assert (-s).exactness == "lower"

    def test_subtract(self):
        s = SymbolicSum([term(0, 5)]) - SymbolicSum([term(0, 2)])
        assert s.evaluate(n=0) == 3

    def test_exactness_combines(self):
        a = SymbolicSum([term(0, 1)], exactness="upper")
        b = SymbolicSum([term(0, 1)], exactness="lower")
        assert (a + b).exactness == "approx"
        c = SymbolicSum([term(0, 1)])
        assert (a + c).exactness == "upper"

    def test_invalid_exactness(self):
        with pytest.raises(ValueError):
            SymbolicSum([], exactness="wrong")


class TestStructure:
    def test_zero_terms_dropped(self):
        s = SymbolicSum([term(0, 0), term(0, 1)])
        assert len(s.terms) == 1

    def test_combine_like_guards(self):
        s = SymbolicSum([term(3, 1), term(3, 2)]).combine_like_guards()
        assert len(s.terms) == 1
        assert s.evaluate(n=3) == 3

    def test_symbols(self):
        s = SymbolicSum([Term(Conjunct(), Polynomial.variable("m"))])
        assert s.symbols() == ["m"]

    def test_constant_value(self):
        s = SymbolicSum([Term(Conjunct(), Polynomial.constant(9))])
        assert s.is_constant() and s.constant_value() == 9

    def test_constant_value_raises_when_symbolic(self):
        s = SymbolicSum([term(0, 1)])
        with pytest.raises(ValueError):
            s.constant_value()

    def test_str_zero(self):
        assert str(SymbolicSum([])) == "0"

    def test_str_shows_bound_tag(self):
        s = SymbolicSum([term(0, 1)], exactness="upper")
        assert "upper bound" in str(s)


class TestSerialization:
    """to_json/from_json must be an *exact* round trip (satellite of the
    batch-service PR: cached payloads carry serialized results)."""

    def round_trip(self, s):
        back = SymbolicSum.from_json(s.to_json())
        assert back == s
        assert back.to_json() == s.to_json()
        return back

    def test_hand_built_round_trip(self):
        s = SymbolicSum([term(0, 2), term(5, 3)], exactness="upper")
        back = self.round_trip(s)
        assert back.exactness == "upper"
        assert back.evaluate({"n": 6}) == s.evaluate({"n": 6})

    def test_engine_count_round_trip(self):
        from repro.core import count

        s = count("1 <= i and i < j and j <= n", ["i", "j"])
        back = self.round_trip(s)
        for n in range(-2, 15):
            assert back.evaluate({"n": n}) == s.evaluate({"n": n})

    def test_mod_atoms_round_trip(self):
        from repro.core import count

        s = count(
            "1 <= i and 1 <= j <= n and 2*i <= 3*j", ["i", "j"]
        ).simplified()
        assert "mod" in str(s)
        self.round_trip(s)

    def test_fractional_coefficients_round_trip(self):
        from repro.core import sum_poly

        s = sum_poly("1 <= i <= n", ["i"], "i*i")
        back = self.round_trip(s)
        assert back.evaluate({"n": 100}) == 338350

    def test_table_matches_after_round_trip(self):
        from repro.core import count

        s = count("1 <= i and 3*i <= n", ["i"])
        back = SymbolicSum.from_json(s.to_json())
        assert list(back.table("n", range(0, 21))) == list(
            s.table("n", range(0, 21))
        )

    def test_wrong_schema_version_rejected(self):
        blob = SymbolicSum([term(0, 1)]).to_json()
        blob["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            SymbolicSum.from_json(blob)

    def test_json_is_json_serializable(self):
        import json

        from repro.core import sum_poly

        s = sum_poly("1 <= i <= n", ["i"], "i")
        text = json.dumps(s.to_json(), sort_keys=True)
        assert SymbolicSum.from_json(json.loads(text)) == s
