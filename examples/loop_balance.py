#!/usr/bin/env python
"""Load balance analysis and balanced chunk scheduling ([TF92], [HP93a]).

A triangular loop nest

    for i := 1 to n do
      for j := 1 to i do
        2 flops

is badly load-unbalanced if the outer iterations are divided evenly
among processors.  The paper's application: count the flops of each
outer iteration symbolically, detect the imbalance, and compute chunk
boundaries so that every processor receives the same total work.

Run:  python examples/loop_balance.py
"""

from repro.apps import (
    Loop,
    LoopNest,
    Statement,
    balanced_chunks,
    count_flops,
    flops_by_outer_iteration,
    is_load_balanced,
)


def main():
    tri = LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "i")], [Statement(flops=2)]
    )
    rect = LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "m")], [Statement(flops=2)]
    )

    print("rectangular nest: for i=1..n, j=1..m")
    ok, per = is_load_balanced(rect)
    print("   per-outer-iteration work:", per)
    print("   load balanced:", ok)

    print("\ntriangular nest: for i=1..n, j=1..i")
    ok, per = is_load_balanced(tri)
    print("   per-outer-iteration work:", per)
    print("   load balanced:", ok)

    total = count_flops(tri)
    print("   total flops:", total.simplified())

    n, procs = 1000, 4
    print("\nnaive even split of i = 1..%d over %d processors:" % (n, procs))
    per_expr = flops_by_outer_iteration(tri)
    step = n // procs
    for k in range(procs):
        first, last = k * step + 1, (k + 1) * step
        work = sum(per_expr.evaluate(i=i, n=n) for i in range(first, last + 1))
        print("   proc %d: i in [%4d, %4d]  flops: %8d" % (k, first, last, work))

    print("\nbalanced chunk scheduling ([HP93a]):")
    chunks = balanced_chunks(tri, procs, {"n": n})
    for k, (first, last, flops) in enumerate(chunks):
        print("   proc %d: i in [%4d, %4d]  flops: %8d" % (k, first, last, flops))
    spread = max(c[2] for c in chunks) - min(c[2] for c in chunks)
    print("   max-min spread: %d flops (vs ~%d for the naive split)" % (
        spread, 2 * (n * step - step * step)))


if __name__ == "__main__":
    main()
