#!/usr/bin/env python
"""Quickstart: counting solutions to Presburger formulas.

Reproduces the flavor of the paper's introduction: symbolic counts and
sums over integer solution sets, with guarded piecewise answers that
are correct for *every* value of the symbolic constants.

Run:  python examples/quickstart.py
"""

from repro import Strategy, SumOptions, count, count_bounds, sum_poly


def main():
    print("=" * 70)
    print("Counting Solutions to Presburger Formulas -- quickstart")
    print("=" * 70)

    # -- the introduction's table ---------------------------------------
    print("\n1. Simple symbolic counts (the paper's intro table):")
    for text, over in [
        ("1 <= i <= 10", ["i"]),
        ("1 <= i <= n", ["i"]),
        ("1 <= i <= n and 1 <= j <= n", ["i", "j"]),
        ("1 <= i and i < j and j <= n", ["i", "j"]),
    ]:
        result = count(text, over)
        print("   (Σ %s : %s : 1) = %s" % (", ".join(over), text, result))

    # -- guarded answers vs CAS assumptions -----------------------------
    print("\n2. Why guards matter (the Mathematica example):")
    r = count("1 <= i <= n and i <= j <= m", ["i", "j"])
    print("   Σ_{i=1..n} Σ_{j=i..m} 1 =", r)
    print("   at n=3, m=5:", r.evaluate(n=3, m=5), " (naive formula: 12)")
    print("   at n=5, m=3:", r.evaluate(n=5, m=3), " (naive formula: 5 -- wrong!)")

    # -- summing polynomials ----------------------------------------------
    print("\n3. Summing a polynomial over the solutions:")
    s = sum_poly("1 <= i <= n", ["i"], "i*i")
    print("   Σ_{i=1..n} i² =", s)
    print("   at n=100:", s.evaluate(n=100))

    # -- quasi-polynomials: Example 6 ------------------------------------
    print("\n4. Quasi-polynomial answers (the paper's Example 6):")
    e6 = count("1 <= i and 1 <= j <= n and 2*i <= 3*j", ["i", "j"]).simplified()
    print("   (Σ i,j : 1<=i, j<=n, 2i<=3j : 1) =", e6)
    print("   at n=10:", e6.evaluate(n=10))

    # -- floors, mods, strides ----------------------------------------------
    print("\n5. Nonlinear-but-Presburger constraints (Section 3):")
    fl = count("1 <= i and 3*i <= n", ["i"]).simplified()
    print("   #{ i : 1 <= i <= floor(n/3) } =", fl)
    ev = count("2 | i and 1 <= i <= n", ["i"]).simplified()
    print("   even i in 1..n:", ev)

    # -- upper/lower bounds instead of exact answers -----------------------
    print("\n6. Approximate answers (Section 4.6):")
    lo, hi = count_bounds("1 <= i and 7*i <= n", ["i"])
    print("   lower:", lo)
    print("   upper:", hi)
    print("   exact at n=30:", count("1 <= i and 7*i <= n", ["i"]).evaluate(n=30),
          " bracket: [%s, %s]" % (lo.evaluate(n=30), hi.evaluate(n=30)))

    print("\nDone.")


if __name__ == "__main__":
    main()
