#!/usr/bin/env python
"""Cache and memory footprint analysis of the SOR kernel (Example 5).

The paper's motivating application: given

    for i := 2 to N-1 do
      for j := 2 to N-1 do
        a(i,j) = (2*a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))/6

count the distinct memory locations and cache lines touched, estimate
the computation/memory balance, and decide whether the loop will flush
the cache -- all symbolically in N.

Run:  python examples/cache_analysis.py
"""

from repro.apps import (
    ArrayRef,
    Loop,
    LoopNest,
    Statement,
    cache_lines_touched,
    count_flops,
    count_iterations,
    memory_locations_touched,
)


def build_sor():
    return LoopNest(
        loops=[Loop("i", 2, "N - 1"), Loop("j", 2, "N - 1")],
        statements=[
            Statement(
                flops=6,
                refs=[
                    ArrayRef("a", ["i", "j"]),
                    ArrayRef("a", ["i - 1", "j"]),
                    ArrayRef("a", ["i + 1", "j"]),
                    ArrayRef("a", ["i", "j - 1"]),
                    ArrayRef("a", ["i", "j + 1"]),
                ],
            )
        ],
    )


def main():
    nest = build_sor()
    print("SOR kernel:", nest.loops[0], "/", nest.loops[1])

    iters = count_iterations(nest)
    flops = count_flops(nest)
    print("\niterations:", iters.simplified())
    print("flops:     ", flops.simplified())

    mem = memory_locations_touched(nest, "a")
    print("\ndistinct memory locations (symbolic):")
    for term in mem.simplified().terms:
        print("   ", term)
    print("at N=500:", mem.evaluate(N=500), "(paper: 249996)")

    lines = cache_lines_touched(nest, "a", line_size=16)
    print("\ndistinct 16-element cache lines at N=500:",
          lines.evaluate(N=500), "(paper: 16000)")

    print("\ncomputation/memory balance (flops per distinct location):")
    for N in (10, 100, 500, 1000):
        f = flops.evaluate(N=N)
        m = mem.evaluate(N=N)
        print("   N=%-5d  %d flops / %d locations = %.3f" % (N, f, m, f / m))

    print("\ncache-flush estimate: a 32KB cache holds %d lines of 16" % 2048)
    for N in (100, 180, 200, 500):
        touched = lines.evaluate(N=N)
        verdict = "flushes" if touched > 2048 else "fits"
        print("   N=%-5d touches %6d lines -> %s" % (N, touched, verdict))


if __name__ == "__main__":
    main()
