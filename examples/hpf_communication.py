#!/usr/bin/env python
"""HPF block-cyclic communication analysis (Section 3.3).

The paper's distributed-memory application: a template T(0:1024)
distributed CYCLIC(4) onto 8 processors gives the mapping

    t = l + 4p + 32c,  0 <= l <= 3,  0 <= p <= 7.

For the shifted assignment a[t] = b[t + k] we count, per processor
pair, the array elements that must be communicated -- which sizes the
message buffers and quantifies traffic.

Run:  python examples/hpf_communication.py
"""

from repro.apps import (
    BlockCyclicDistribution,
    communication_volume,
    message_buffer_size,
)
from repro.apps.comm import total_messages


def main():
    dist = BlockCyclicDistribution(block=4, procs=8)
    extent = "0 <= t <= 1023"

    print("distribution: CYCLIC(4) onto 8 processors (the paper's §3.3)")
    print("mapping formula:", dist.mapping_formula())

    per = dist.elements_per_processor("0 <= t <= 1024")
    print("\nelements owned per processor (T(0:1024)):")
    print("   ", [per.evaluate(p=p) for p in range(8)])

    for shift in (1, 3, 4, 16):
        vol = communication_volume(dist, extent, shift=shift)
        print("\nassignment a[t] = b[t + %d]:" % shift)
        matrix = [
            [vol.evaluate(p=p, q=q) if p != q else 0 for q in range(8)]
            for p in range(8)
        ]
        print("   volume matrix (rows = receiver p, cols = sender q):")
        for p, row in enumerate(matrix):
            print("     p=%d: %s" % (p, row))
        buf = message_buffer_size(dist, extent, shift)
        msgs = total_messages(dist, extent, shift)
        moved = sum(sum(r) for r in matrix)
        print("   total elements moved: %d   messages: %d   "
              "buffer size needed: %d" % (moved, msgs, buf))


if __name__ == "__main__":
    main()
