#!/usr/bin/env python
"""Batch service: answer many counting jobs with caching and isolation.

The library's batch front end (``python -m repro batch``) reads one
JSON request per line and streams one JSON response per line.  This
example drives the same machinery through the Python API:

1. build a small mixed batch (count, sum, simplify -- plus one job
   with a typo, which becomes a structured error instead of aborting
   the batch);
2. answer it on a worker pool with a persistent disk cache;
3. re-run the identical batch and show that every answer now comes
   from the cache, byte-identical to the first run.

Run:  python examples/batch_service.py
"""

import json
import tempfile
import os

from repro.service.batch import VOLATILE_RESPONSE_KEYS, run_batch
from repro.service.diskcache import DiskCache
from repro.service.request import JobRequest


def build_batch():
    return [
        JobRequest(
            "count",
            "1 <= i and i < j and j <= n",
            over=["i", "j"],
            at=[{"n": 10}],
            id="pairs",
        ),
        JobRequest(
            "sum",
            "1 <= i <= n",
            over=["i"],
            poly="i*i",
            at=[{"n": 100}],
            id="sum-of-squares",
        ),
        JobRequest(
            "simplify",
            "x >= 1 and x >= 0 and (x <= 5 or x <= 9)",
            id="redundant",
        ),
        # A malformed formula: the batch still completes; this job
        # alone reports a structured parse_error.
        JobRequest("count", "1 <= i <= ===", over=["i"], id="typo"),
    ]


def show(responses):
    for r in responses:
        if r["ok"]:
            line = r["result"].replace("\n", " ; ")
            print(
                "   %-15s ok     cached=%-5s %s"
                % (r["id"], r["cached"], line)
            )
            for point in r.get("points", []):
                print("   %15s        at %s: %s" % ("", point["at"], point["value"]))
        else:
            print(
                "   %-15s FAILED %s: %s"
                % (r["id"], r["error"]["kind"], r["error"]["message"])
            )


def stable(response):
    """The parts of a response that must not vary between runs."""
    return {
        k: v
        for k, v in response.items()
        if k not in VOLATILE_RESPONSE_KEYS
    }


def main():
    print("=" * 70)
    print("Batch counting service -- pool, budgets, persistent cache")
    print("=" * 70)

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "results.sqlite")

        print("\n1. Cold run (2 workers, empty cache):")
        with DiskCache(cache_path) as cache:
            first, summary = run_batch(
                build_batch(), workers=2, cache=cache, default_timeout=60.0
            )
        show(first)
        print("   --", summary)

        print("\n2. Warm run (same batch, same cache):")
        with DiskCache(cache_path) as cache:
            second, summary = run_batch(
                build_batch(), workers=2, cache=cache, default_timeout=60.0
            )
        show(second)
        print("   --", summary)

        identical = [stable(a) for a in first] == [stable(b) for b in second]
        print(
            "\n3. Stable fields byte-identical across runs:",
            json.dumps(identical),
        )
        assert identical
        assert all(r["cached"] for r in second if r["ok"])

    print(
        "\nSame thing from a shell:\n"
        "   python -m repro batch examples/batch_demo.jsonl --workers 4"
    )


if __name__ == "__main__":
    main()
