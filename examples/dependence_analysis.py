#!/usr/bin/env python
"""Quantifying data dependences with symbolic counting.

The Omega test started life answering *whether* two array references
conflict; counting upgrades that to *how much*: how many iteration
pairs conflict, how many iterations are serialized -- the numbers a
parallelizer weighs before transforming a loop.

Run:  python examples/dependence_analysis.py
"""

from repro.apps import ArrayRef, Loop, LoopNest, Statement
from repro.apps.deps import count_dependences, count_dependent_iterations


def main():
    nest = LoopNest([Loop("i", 1, "n"), Loop("j", 1, "n")], [Statement()])
    write = ArrayRef("a", ["i", "j"])

    print("loop: for i = 1..n, j = 1..n; statement writes a[i, j]\n")
    for label, read in [
        ("reads a[i-1, j]   (north neighbour)", ArrayRef("a", ["i - 1", "j"])),
        ("reads a[i, j-1]   (west neighbour)", ArrayRef("a", ["i", "j - 1"])),
        ("reads a[i-1, j+1] (anti-diagonal)", ArrayRef("a", ["i - 1", "j + 1"])),
        ("reads a[j, i]     (transpose)", ArrayRef("a", ["j", "i"])),
    ]:
        pairs = count_dependences(nest, write, read)
        serial = count_dependent_iterations(nest, write, read)
        print("%s" % label)
        print("   conflicting iteration pairs:", pairs.simplified())
        print("   iterations with a producer: ", serial.simplified())
        print("   at n=100: %d pairs, %d dependent iterations\n"
              % (pairs.evaluate(n=100), serial.evaluate(n=100)))

    print("1-D recurrence: a[i] = f(a[i-1]), i = 1..n")
    chain = LoopNest([Loop("i", 1, "n")], [Statement()])
    w, r = ArrayRef("a", ["i"]), ArrayRef("a", ["i - 1"])
    pairs = count_dependences(chain, w, r)
    print("   dependence pairs:", pairs.simplified())
    print("   -> fully serialized: every iteration but the first waits.")


if __name__ == "__main__":
    main()
