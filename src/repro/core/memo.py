"""The answer memo: a hash-consed conjunct -> SymbolicSum cache.

Splintering, residue-class enumeration and disjoint-DNF expansion
generate *structurally identical* subproblems over and over; before
this module the only reuse above the satisfiability layer was the
per-instance ``normalize()`` memo.  The answer memo caches the full
answer ``(terms, exactness)`` of every internal node of the counting
recursion (:func:`repro.core.convex._sum`), keyed by an
alpha-invariant canonical form of ``(conjunct, bound vars, mode,
polynomial)`` built by :func:`repro.core.canon.canonical_conjunct_key`.

Design points:

* **Rename on hit.**  Keys rename bound variables into the ``"\\x02"``
  namespace and free symbols into ``"\\x03"``; entries store the
  answer terms in that canonical vocabulary.  A hit translates them
  back through the caller's own names (the recorded free-symbol
  permutation), so structurally identical nodes share one entry no
  matter what their variables are called.  Wildcards *minted during*
  the cached computation keep their original fresh names; if one
  collides with a caller name it is renamed to a fresh wildcard first
  (capture guard) -- the deterministic wildcard relabeling in
  :mod:`repro.core.general` erases the resulting name drift from the
  final answer.
* **Soundness.**  The key is a complete serialization, so equal keys
  imply an isomorphism of nodes; renaming a correct answer through an
  isomorphism yields a correct answer.  Every option that can change
  an answer (strategy, redundancy removal, the residue-split cap) is
  folded into the key's mode string, and failures (unbounded sums,
  budget exhaustion) are never cached.
* **Fresh results.**  Hits return freshly built terms -- new guard
  conjuncts, new value polynomials -- so callers mutating a returned
  answer (``Polynomial.terms`` is an exposed dict) cannot poison the
  cache.
* **Bounded + instrumented.**  An ``OrderedDict`` LRU capped by
  :func:`set_answer_memo` (``REPRO_ANSWER_MEMO`` presets it; ``0`` or
  ``off`` disables), with ``answer_memo_hits / misses / evictions /
  renames`` counters and occupancy in ``stats.engine_snapshot()``.
* **Persistent roots.**  With ``REPRO_ANSWER_DB=path`` set, the memo
  persists the *root* node of every ``sum_over_conjunct`` call to an
  ``answers`` table managed by the service's sqlite LRU layer
  (:class:`repro.service.diskcache.DiskCache`), and probes it on a
  root miss: a warm service run answers whole clauses from disk and
  skips the recursion entirely.  Per-node persistence would drown in
  sqlite transactions, and a root hit subsumes its subtree anyway.
"""

import hashlib
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import stats
from repro.core.canon import FREE_PREFIX, canonical_conjunct_key
from repro.core.options import SumOptions
from repro.core.result import Term
from repro.omega.constraints import fresh_var
from repro.qpoly import Polynomial

#: Default in-memory capacity (entries, i.e. distinct canonical nodes).
DEFAULT_CAPACITY = 50000

#: Bump when the persisted payload layout changes.
ANSWER_DB_SCHEMA = 1


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_ANSWER_MEMO")
    if raw is None:
        return DEFAULT_CAPACITY
    raw = raw.strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


_CAPACITY = _env_capacity()

#: key -> (terms in canonical names, (inexact_upper, inexact_lower),
#:         free-symbol signature used to count cross-vocabulary hits)
_MEMO: "OrderedDict[str, tuple]" = OrderedDict()

#: key -> (pieces in canonical names, free-symbol signature).  The
#: sibling table for elimination decompositions (lists of Conjuncts
#: rather than answer terms); same capacity switch, same counters.
_PIECES: "OrderedDict[str, tuple]" = OrderedDict()

_DISK = None
_DISK_PATH: Optional[str] = None


# -- switches ------------------------------------------------------------


def set_answer_memo(capacity) -> int:
    """Set the memo capacity; returns the previous one.

    ``0`` (or ``False``) disables memoization and drops every entry;
    ``True`` restores :data:`DEFAULT_CAPACITY`.  Mirrors
    ``repro.evalc.set_compile_enabled`` so tests can A/B the memo.
    """
    global _CAPACITY
    previous = _CAPACITY
    if capacity is True:
        capacity = DEFAULT_CAPACITY
    elif capacity is False:
        capacity = 0
    capacity = int(capacity)
    if capacity < 0:
        raise ValueError("answer memo capacity must be >= 0")
    _CAPACITY = capacity
    if capacity == 0:
        _MEMO.clear()
        _PIECES.clear()
    else:
        while len(_MEMO) > capacity:
            _MEMO.popitem(last=False)
        while len(_PIECES) > capacity:
            _PIECES.popitem(last=False)
    return previous


def answer_memo_enabled() -> bool:
    return _CAPACITY > 0


def clear_answer_memo() -> None:
    """Drop every in-memory entry (the persistent store is untouched)."""
    _MEMO.clear()
    _PIECES.clear()


def answer_memo_info() -> Dict[str, int]:
    """Occupancy for ``stats.engine_snapshot()``."""
    return {"size": len(_MEMO) + len(_PIECES), "limit": _CAPACITY}


# -- key construction ----------------------------------------------------


def node_key(
    conj,
    cvars: Sequence[str],
    z: Polynomial,
    opts: SumOptions,
) -> Tuple[str, Dict[str, str], Dict[str, str]]:
    """Canonical key + rename maps for one recursion node.

    The mode string folds in every :class:`SumOptions` field that can
    change the answer: the strategy, redundancy removal, and the
    residue-split cap (a larger cap can answer where a smaller one
    raises ``UnboundedSumError``, so they must not share entries).
    """
    mode = "sum:%s:%d:%d" % (
        opts.strategy.value,
        1 if opts.remove_redundant else 0,
        opts.max_residue_split,
    )
    return canonical_conjunct_key(conj, cvars, z, mode)


def piece_key(
    conj, var: str, mode: str
) -> Tuple[str, Dict[str, str], Dict[str, str]]:
    """Canonical key + rename maps for an elimination decomposition.

    The eliminated variable plays the bound-variable role; the summand
    slot is pinned to 1 (elimination has no summand).
    """
    return canonical_conjunct_key(conj, (var,), Polynomial.one, mode)


def _free_signature(back: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(
        sorted(
            (canon, orig)
            for canon, orig in back.items()
            if canon.startswith(FREE_PREFIX)
        )
    )


# -- term renaming -------------------------------------------------------


def _rename_poly(value: Polynomial, mapping: Dict[str, str]) -> Polynomial:
    used = {v: mapping[v] for v in value.variables() if v in mapping}
    if used:
        return value.rename(used)
    # Fresh copy even without renames: Polynomial.terms is an exposed
    # mutable dict, and cache entries must never alias caller objects.
    return Polynomial(dict(value.terms))


def _rename_terms(terms: Sequence[Term], mapping: Dict[str, str]) -> List[Term]:
    return [
        Term(t.guard.rename(mapping), _rename_poly(t.value, mapping))
        for t in terms
    ]


def _rename_back(terms: Sequence[Term], back: Dict[str, str]) -> List[Term]:
    """Translate stored canonical terms into the caller's vocabulary.

    Capture guard: a wildcard minted during the cached computation
    keeps its stored fresh name; if that name collides with one of the
    caller's names it is renamed to a new fresh wildcard first, so the
    rename-back cannot conflate two distinct variables.
    """
    targets = set(back.values())
    mapping = dict(back)
    for t in terms:
        for w in t.guard.wildcards:
            if w not in mapping and w in targets:
                mapping[w] = fresh_var("r")
    return _rename_terms(terms, mapping)


# -- the persistent root layer -------------------------------------------


def _disk_store():
    """The ``answers``-table cache named by REPRO_ANSWER_DB, or None.

    Opened lazily and re-checked per call so tests (and forked
    workers) can point the environment at a fresh path; an unusable
    path degrades to no persistence instead of failing the count.
    """
    global _DISK, _DISK_PATH
    path = os.environ.get("REPRO_ANSWER_DB") or None
    if path != _DISK_PATH:
        if _DISK is not None:
            try:
                _DISK.close()
            except Exception:
                pass
        _DISK = None
        _DISK_PATH = path
        if path:
            from repro.service.diskcache import DiskCache

            try:
                _DISK = DiskCache(path, table="answers")
            except Exception:
                _DISK = None
    return _DISK


def _disk_key(key: str) -> str:
    from repro import __version__ as engine_version

    payload = "%d|%s|%s" % (ANSWER_DB_SCHEMA, engine_version, key)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _disk_fetch(key: str):
    disk = _disk_store()
    if disk is None:
        return None
    try:
        payload = disk.get(_disk_key(key))
    except Exception:
        return None
    if payload is None:
        return None
    try:
        terms = tuple(Term.from_json(t) for t in payload["terms"])
        flags = (bool(payload["upper"]), bool(payload["lower"]))
    except Exception:
        return None  # corrupt row: DiskCache.get heals keys, not shapes
    return terms, flags


def _disk_persist(key: str, canonical_terms: Sequence[Term], flags) -> None:
    disk = _disk_store()
    if disk is None:
        return
    payload = {
        "terms": [t.to_json() for t in canonical_terms],
        "upper": flags[0],
        "lower": flags[1],
    }
    try:
        disk.put(_disk_key(key), payload)
    except Exception:
        pass  # persistence is best-effort; never fail the computation


# -- lookup / store ------------------------------------------------------


def fetch(
    key: str, back: Dict[str, str], probe_disk: bool = False
) -> Optional[Tuple[List[Term], Tuple[bool, bool]]]:
    """The cached answer renamed into the caller's names, or None.

    ``probe_disk`` extends a memory miss to the persistent root layer
    (set only for root nodes; see the module docstring).
    """
    entry = _MEMO.get(key)
    if entry is None and probe_disk:
        found = _disk_fetch(key)
        if found is not None:
            canonical_terms, flags = found
            entry = (canonical_terms, flags, _free_signature(back))
            _MEMO[key] = entry
            while len(_MEMO) > _CAPACITY:
                _MEMO.popitem(last=False)
    if entry is None:
        if stats.ENABLED:
            stats.bump("answer_memo_misses")
        return None
    _MEMO.move_to_end(key)
    canonical_terms, flags, stored_sig = entry
    if stats.ENABLED:
        stats.bump("answer_memo_hits")
        if stored_sig != _free_signature(back):
            stats.bump("answer_memo_renames")
    return _rename_back(canonical_terms, back), flags


def store(
    key: str,
    names: Dict[str, str],
    terms: Sequence[Term],
    flags: Tuple[bool, bool],
    persist_disk: bool = False,
) -> None:
    """Record a freshly computed node answer under its canonical key."""
    if _CAPACITY == 0:
        return
    canonical_terms = tuple(_rename_terms(terms, names))
    back_sig = tuple(
        sorted(
            (canon, orig)
            for orig, canon in names.items()
            if canon.startswith(FREE_PREFIX)
        )
    )
    _MEMO[key] = (canonical_terms, flags, back_sig)
    _MEMO.move_to_end(key)
    while len(_MEMO) > _CAPACITY:
        _MEMO.popitem(last=False)
        if stats.ENABLED:
            stats.bump("answer_memo_evictions")
    if persist_disk:
        _disk_persist(key, canonical_terms, flags)


def fetch_pieces(key: str, back: Dict[str, str]) -> Optional[list]:
    """A cached elimination decomposition in the caller's names, or None.

    Conjuncts are immutable, so the renamed pieces can share structure
    with the entry; the same capture guard as :func:`fetch` protects
    wildcards minted during the cached elimination.
    """
    entry = _PIECES.get(key)
    if entry is None:
        if stats.ENABLED:
            stats.bump("answer_memo_misses")
        return None
    _PIECES.move_to_end(key)
    canonical_pieces, stored_sig = entry
    if stats.ENABLED:
        stats.bump("answer_memo_hits")
        if stored_sig != _free_signature(back):
            stats.bump("answer_memo_renames")
    targets = set(back.values())
    mapping = dict(back)
    for piece in canonical_pieces:
        for w in piece.wildcards:
            if w not in mapping and w in targets:
                mapping[w] = fresh_var("r")
    return [piece.rename(mapping) for piece in canonical_pieces]


def store_pieces(key: str, names: Dict[str, str], pieces: Sequence) -> None:
    """Record a freshly computed elimination decomposition."""
    if _CAPACITY == 0:
        return
    canonical_pieces = tuple(piece.rename(names) for piece in pieces)
    back_sig = tuple(
        sorted(
            (canon, orig)
            for orig, canon in names.items()
            if canon.startswith(FREE_PREFIX)
        )
    )
    _PIECES[key] = (canonical_pieces, back_sig)
    _PIECES.move_to_end(key)
    while len(_PIECES) > _CAPACITY:
        _PIECES.popitem(last=False)
        if stats.ENABLED:
            stats.bump("answer_memo_evictions")


__all__ = [
    "DEFAULT_CAPACITY",
    "answer_memo_enabled",
    "answer_memo_info",
    "clear_answer_memo",
    "fetch",
    "fetch_pieces",
    "node_key",
    "piece_key",
    "set_answer_memo",
    "store",
    "store_pieces",
]
