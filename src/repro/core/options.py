"""Options controlling the summation engine (Sections 4.2.1, 4.6).

The paper offers three ways to handle rational (floor/ceiling) bounds
and, orthogonally, exact vs approximate simplification.  ``Strategy``
selects the rational-bound treatment:

* ``EXACT`` (default): use the *symbolic* closed form with ``mod``
  atoms when the bound depends only on symbolic constants (exact, no
  case split); otherwise *splinter* the problem into residue cases
  (exact, more pieces).
* ``SPLINTER``: always splinter (never introduce mod atoms).
* ``UPPER`` / ``LOWER``: replace floors/ceilings by rational bounds
  giving an upper/lower bound on the sum (valid for non-negative
  summands, e.g. counting).
* ``MIDPOINT``: the paper's "best guess": the average of the rational
  upper and lower bound substitutions.

Performance knobs live next to the machinery they tune rather than
here (they are process-global, not per-call):

* ``repro.omega.satisfiability.set_sat_cache_limit`` -- capacity of
  the satisfiability LRU memo (default 200000 entries; 0 disables).
* ``repro.omega.problem.set_normalize_memo`` -- the per-instance
  ``Conjunct.normalize`` memo (on by default).
* ``repro.core.stats`` -- opt-in counters for every hot primitive;
  see ``collecting_stats`` / ``stats_snapshot`` and the CLI's
  ``--stats`` flag.
"""

import enum
from typing import NamedTuple


class Strategy(enum.Enum):
    EXACT = "exact"
    SPLINTER = "splinter"
    UPPER = "upper"
    LOWER = "lower"
    MIDPOINT = "midpoint"

    @property
    def is_exact(self) -> bool:
        return self in (Strategy.EXACT, Strategy.SPLINTER)


class SumOptions(NamedTuple):
    """Knobs for the engine.

    ``strategy``: rational-bound handling (above).
    ``remove_redundant``: run the complete redundancy test before
    choosing a summation variable (Section 4.4 step 1; the conclusion
    singles this out as important).
    ``max_residue_split``: safety cap on residue enumeration when
    clearing strides off a summation variable.
    """

    strategy: Strategy = Strategy.EXACT
    remove_redundant: bool = True
    max_residue_split: int = 64

    def with_strategy(self, strategy: Strategy) -> "SumOptions":
        return self._replace(strategy=strategy)


DEFAULT_OPTIONS = SumOptions()
