"""Top-level counting and summation API (Section 4.5, "General Sums").

``count`` / ``sum_poly`` accept an arbitrary Presburger formula (or a
text formula for convenience), put it in **disjoint** disjunctive
normal form with the Omega test (Section 5 -- overlapping clauses would
be counted more than once), and sum each clause with the convex-sum
recursion.
"""

from typing import List, Optional, Sequence, Union

from repro.omega.problem import Conjunct
from repro.presburger.ast import Formula
from repro.presburger.disjoint import disjointify
from repro.presburger.dnf import to_dnf
from repro.core import stats
from repro.core.backend import resolve_backend
from repro.core.canon import _affine_shape, _poly_marks, _refine
from repro.core.convex import sum_over_conjunct
from repro.core.options import DEFAULT_OPTIONS, Strategy, SumOptions
from repro.core.result import SymbolicSum, Term
from repro.qpoly import Polynomial

FormulaLike = Union[Formula, str, Conjunct, Sequence[Conjunct]]
PolyLike = Union[Polynomial, int, str]


def _clauses(formula: FormulaLike, disjoint: bool = True) -> List[Conjunct]:
    if isinstance(formula, str):
        from repro.presburger.parser import parse

        formula = parse(formula)
    if isinstance(formula, Formula):
        clauses = to_dnf(formula)
    elif isinstance(formula, Conjunct):
        clauses = [formula]
    else:
        clauses = list(formula)
    if disjoint and len(clauses) > 1:
        clauses = disjointify(clauses)
    return clauses


def _poly(value: PolyLike) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, int):
        return Polynomial.constant(value)
    if isinstance(value, str):
        from repro.qpoly.parse import parse_polynomial

        return parse_polynomial(value)
    raise TypeError("cannot interpret summand %r" % (value,))


def _relabel_term(term: Term) -> Term:
    """Deterministically rename a term's guard wildcards to ``_w0...``.

    The recursion names its internal wildcards with a process-global
    fresh counter, so byte-level answer identity would depend on how
    much work ran before (in particular, on whether the answer memo
    served part of the recursion from cache).  This pass erases that:
    guard wildcards are ordered by the alpha-invariant signature
    refinement of :mod:`repro.core.canon` (original names only break
    structural ties) and renamed to the first ``_w<i>`` names not
    taken by the term's free variables, so memo-on and memo-off runs
    print and serialize identically.
    """
    guard = term.guard
    wilds = guard.wildcards
    if not wilds:
        return term
    atoms = []
    for c in guard.constraints:
        if c.is_eq():
            shape = min(
                _affine_shape(c.expr, wilds), _affine_shape(-c.expr, wilds)
            )
        else:
            shape = _affine_shape(c.expr, wilds)
        atoms.append(
            (
                "a(%s,%s)" % (c.kind, shape),
                [(v, k) for v, k in c.expr.coeffs if v in wilds],
                c.is_eq(),
            )
        )
    marks: dict = {}
    _poly_marks(term.value, marks)
    rank = _refine(wilds, marks, atoms)
    taken = set(guard.free_variables())
    taken.update(v for v in term.value.variables() if v not in wilds)
    mapping = {}
    index = 0
    for w in sorted(wilds, key=lambda w: (rank[w], w)):
        while "_w%d" % index in taken:
            index += 1
        mapping[w] = "_w%d" % index
        index += 1
    value_map = {v: mapping[v] for v in term.value.variables() if v in mapping}
    return Term(
        guard.rename(mapping),
        term.value.rename(value_map) if value_map else term.value,
    )


def sum_poly(
    formula: FormulaLike,
    over: Sequence[str],
    z: PolyLike,
    options: SumOptions = DEFAULT_OPTIONS,
    backend: Optional[str] = None,
) -> SymbolicSum:
    """(Σ over : formula : z), symbolically in the other free variables.

    ``over`` lists the variables summed; every other free variable of
    the formula (and of z) is a symbolic constant and appears in the
    result's guards and values.

    ``backend`` overrides the process-global router default
    (:func:`repro.core.backend.set_backend` / ``REPRO_BACKEND``) for
    this call.  Under ``"genfunc"`` the generating-function engine
    answers queries inside its fragment, under ``"automaton"`` the
    binary-DFA engine does; anything either rejects with its
    ``UnsupportedFormula`` falls back to the recursion below, counted
    in the ``genfunc_fallbacks`` / ``automaton_fallbacks`` stat.
    """
    z = _poly(z)
    choice = resolve_backend(backend)
    if choice == "genfunc":
        from repro.genfunc import UnsupportedFormula, genfunc_sum

        if stats.ENABLED:
            stats.bump("genfunc_calls")
        try:
            return genfunc_sum(formula, over, z, options)
        except UnsupportedFormula:
            if stats.ENABLED:
                stats.bump("genfunc_fallbacks")
    elif choice == "automaton":
        from repro.automaton import UnsupportedFormula, automaton_sum

        if stats.ENABLED:
            stats.bump("automaton_calls")
        try:
            return automaton_sum(formula, over, z, options)
        except UnsupportedFormula:
            if stats.ENABLED:
                stats.bump("automaton_fallbacks")
    clauses = _clauses(formula)
    terms: List[Term] = []
    exactness = "exact"
    for clause in clauses:
        clause_terms, clause_exact = sum_over_conjunct(
            clause, tuple(over), z, options
        )
        terms.extend(clause_terms)
        if clause_exact != "exact":
            exactness = (
                clause_exact
                if exactness in ("exact", clause_exact)
                else "approx"
            )
    return SymbolicSum((_relabel_term(t) for t in terms), exactness)


def count(
    formula: FormulaLike,
    over: Sequence[str],
    options: SumOptions = DEFAULT_OPTIONS,
    backend: Optional[str] = None,
) -> SymbolicSum:
    """Number of integer solutions of ``over`` in the formula.

    The paper's ``(Σ V : P : 1)``.  See :func:`sum_poly` for the
    ``backend`` override.
    """
    return sum_poly(formula, over, 1, options, backend=backend)


def count_conjunct(
    conj: Conjunct,
    over: Sequence[str],
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Count solutions of a single conjunct (no disjointification)."""
    terms, exactness = sum_over_conjunct(
        conj, tuple(over), Polynomial.one, options
    )
    return SymbolicSum((_relabel_term(t) for t in terms), exactness)


def count_bounds(
    formula: FormulaLike, over: Sequence[str]
) -> tuple:
    """(lower bound, upper bound) symbolic counts (Section 4.6).

    Cheaper than an exact count when floors would splinter; the paper
    suggests computing both and only going exact when they are far
    apart.
    """
    lo = count(formula, over, DEFAULT_OPTIONS.with_strategy(Strategy.LOWER))
    hi = count(formula, over, DEFAULT_OPTIONS.with_strategy(Strategy.UPPER))
    return lo, hi
