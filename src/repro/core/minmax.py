"""Optional min/max-form answers (Section 6, Example 2 discussion).

"We have developed a way of introducing min's and max's into the
result.  Although it sometimes allows us to avoid splitting a
summation because of a multiple upper or lower bound, the results tend
to be much more complicated.  We have decided that in general it is
not worth generating min's and max's."

The capability is provided anyway (it is occasionally the right
output for human consumption): ``min_max_sum`` computes a single
min/max/p() expression instead of guarded pieces, sharing the
calculus with the Haghighat-Polychronopoulos baseline.
"""

from typing import Sequence, Union

from repro.baselines.haghighat import MinMaxExpr, hp_nested_sum
from repro.omega.problem import Conjunct
from repro.presburger.ast import Formula
from repro.qpoly import Polynomial


def min_max_sum(
    formula: Union[str, Formula, Conjunct],
    over: Sequence[str],
    z: Union[Polynomial, int] = 1,
) -> MinMaxExpr:
    """(Σ over : formula : z) as one min/max expression, no splitting.

    The formula must lower to a single convex clause with unit
    coefficients on the summation variables (the regime where min/max
    answers make sense).  The summation order is innermost-first over
    ``over`` reversed, matching loop-nest usage.
    """
    if isinstance(formula, Conjunct):
        clause = formula
    else:
        if isinstance(formula, str):
            from repro.presburger.parser import parse

            formula = parse(formula)
        from repro.presburger.dnf import to_dnf

        clauses = to_dnf(formula)
        if len(clauses) != 1:
            raise ValueError(
                "min/max answers need a single convex clause; "
                "got %d clauses" % len(clauses)
            )
        clause = clauses[0]
    return hp_nested_sum(clause, list(reversed(list(over))), z)


def min_max_count(
    formula: Union[str, Formula, Conjunct], over: Sequence[str]
) -> MinMaxExpr:
    """Count of solutions as a single min/max expression."""
    return min_max_sum(formula, over, 1)
