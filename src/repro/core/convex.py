"""The summation recursion (Sections 4.4-4.5 of the paper).

``sum_over_conjunct`` computes ``(Σ V : P : z)`` for a single conjunct
P.  The algorithm follows the paper:

1.  eliminate equalities (each elimination is an integer bijection, so
    the count is preserved and the summand is rewritten through it);
2.  project away existential wildcards that interact with the
    summation variables (exact, disjoint);
3.  remove redundant constraints;
4.  pick a summation variable -- preferring variables whose bounds
    need no floors/ceilings and with the fewest bounds;
5.  split on multiple upper/lower bounds (disjoint min/max split);
6.  sum over a single lower/upper bound pair with the closed forms of
    Section 4.1, handling rational bounds per the selected strategy
    (symbolic mod atoms / splintering / approximations, Section 4.2.1);
7.  recurse on the remaining variables.

Strides pinning a summation variable to residue classes are cleared by
residue enumeration (v = M·v' + r), the move the paper makes in
Example 6 ("splinter by considering 3j as even or odd").
"""

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.omega.equalities import (
    eliminate_wildcards_from_equality,
    solve_unit,
    substitute_fractional,
    unimodular_mix,
)
from repro.omega.eliminate import eliminate_exact
from repro.omega.problem import Conjunct
from repro.omega.redundancy import remove_redundant
from repro.core import memo, stats
from repro.core.options import DEFAULT_OPTIONS, Strategy, SumOptions
from repro.core.powersums import sum_over_range
from repro.core.result import Term
from repro.qpoly import ModAtom, Polynomial


class UnboundedSumError(ValueError):
    """The solution set is infinite in some summation variable."""


class _Ctx:
    """Mutable bookkeeping threaded through the recursion."""

    __slots__ = ("opts", "inexact_upper", "inexact_lower")

    def __init__(self, opts: SumOptions):
        self.opts = opts
        self.inexact_upper = False
        self.inexact_lower = False

    @property
    def exactness(self) -> str:
        if self.inexact_upper and self.inexact_lower:
            return "approx"
        if self.inexact_upper:
            return "upper"
        if self.inexact_lower:
            return "lower"
        return "exact"


def sum_over_conjunct(
    conj: Conjunct,
    count_vars: Sequence[str],
    z: Polynomial,
    opts: SumOptions = DEFAULT_OPTIONS,
) -> Tuple[List[Term], str]:
    """(Σ count_vars : conj : z) -> (guarded terms, exactness tag)."""
    ctx = _Ctx(opts)
    terms = _sum(conj, tuple(count_vars), z, ctx, root=True)
    return terms, ctx.exactness


def _sum(
    conj: Conjunct,
    cvars: Tuple[str, ...],
    z: Polynomial,
    ctx: _Ctx,
    root: bool = False,
) -> List[Term]:
    """Memo shell around :func:`_sum_inner` (see repro.core.memo).

    Every node with summation variables is looked up in (and stored
    to) the answer memo under its alpha-invariant canonical key; base
    cases (no ``cvars``) return immediately and are cheaper than the
    key they would be filed under.  The per-node exactness delta rides
    along in the entry through a child context, so a hit degrades the
    caller's exactness exactly as recomputing would.  Only the *root*
    node of a ``sum_over_conjunct`` call touches the persistent layer.
    """
    if not cvars or not memo.answer_memo_enabled():
        return _sum_inner(conj, cvars, z, ctx)
    key, names, back = memo.node_key(conj, cvars, z, ctx.opts)
    hit = memo.fetch(key, back, probe_disk=root)
    if hit is not None:
        terms, (upper, lower) = hit
        ctx.inexact_upper |= upper
        ctx.inexact_lower |= lower
        return terms
    child = _Ctx(ctx.opts)
    terms = _sum_inner(conj, cvars, z, child)
    ctx.inexact_upper |= child.inexact_upper
    ctx.inexact_lower |= child.inexact_lower
    memo.store(
        key,
        names,
        terms,
        (child.inexact_upper, child.inexact_lower),
        persist_disk=root,
    )
    return terms


def _sum_inner(
    conj: Conjunct, cvars: Tuple[str, ...], z: Polynomial, ctx: _Ctx
) -> List[Term]:
    normalized = conj.normalize()
    if normalized is None:
        return []
    conj = normalized
    from repro.omega.satisfiability import satisfiable

    if not satisfiable(conj):
        return []
    cvars = tuple(v for v in cvars if v not in conj.wildcards)

    # -- 1. equality phase -------------------------------------------------
    step = _eliminate_one_equality(conj, cvars, z, ctx)
    if step is not None:
        return step

    # -- 2. wildcards in inequalities that touch summation variables -------
    step = _eliminate_one_wildcard(conj, cvars, z, ctx)
    if step is not None:
        return step

    # -- base case ----------------------------------------------------------
    live = [v for v in cvars if conj.uses(v)]
    if len(live) < len(cvars):
        missing = [v for v in cvars if v not in live]
        raise UnboundedSumError(
            "variables %s are unconstrained (infinite solution set)" % missing
        )
    if not cvars:
        return [Term(conj, z)]

    # -- 3. redundant constraint removal ------------------------------------
    if ctx.opts.remove_redundant:
        conj = remove_redundant(conj)

    # -- 4. pick a summation variable ----------------------------------------
    v = _pick_variable(conj, cvars, z)

    # -- strides on v: residue enumeration -----------------------------------
    strides = [
        c
        for c in conj.constraints
        if c.is_eq() and c.uses(v)
    ]
    if strides:
        return _residue_split(conj, cvars, z, ctx, v, strides)

    lowers, uppers, rest = conj.bounds_on(v)
    if not lowers or not uppers:
        raise UnboundedSumError(
            "variable %s is unbounded %s" % (v, "below" if not lowers else "above")
        )

    # -- 5. multiple-bound splits ---------------------------------------------
    if len(uppers) > 1:
        return _split_bounds(conj, cvars, z, ctx, v, lowers, uppers, rest, True)
    if len(lowers) > 1:
        return _split_bounds(conj, cvars, z, ctx, v, lowers, uppers, rest, False)

    # -- 6. single pair ----------------------------------------------------------
    (b, beta), (a, alpha) = lowers[0], uppers[0]
    remaining = tuple(x for x in cvars if x != v)
    if a == 1 and b == 1:
        z2 = sum_over_range(z, v, beta.to_polynomial(), alpha.to_polynomial())
        guard = Constraint.leq(beta, alpha)
        conj2 = Conjunct(list(rest) + [guard], conj.wildcards)
        return _sum(conj2, remaining, z2, ctx)
    return _rational_sum(
        conj, remaining, z, ctx, v, b, beta, a, alpha, rest
    )


# ---------------------------------------------------------------------------
# equality phase
# ---------------------------------------------------------------------------


def _eliminate_one_equality(
    conj: Conjunct, cvars: Tuple[str, ...], z: Polynomial, ctx: _Ctx
) -> Optional[List[Term]]:
    cset = set(cvars)
    for eq in conj.eqs():
        eq_wilds = [w for w in eq.variables() if w in conj.wildcards]
        eq_cvars = [x for x in eq.variables() if x in cset]
        if eq_wilds:
            if all(conj.is_stride_wildcard(w) for w in eq_wilds):
                continue  # a stride; cleared at summation time
            new_conj = eliminate_wildcards_from_equality(conj, eq).conjunct
            return _sum(new_conj, cvars, z, ctx)
        if not eq_cvars:
            continue  # pure symbol equality: part of the final guard
        if len(eq_cvars) > 1:
            mix = unimodular_mix(conj, eq, eq_cvars)
            z2 = z
            for old, repl in mix.mapping.items():
                z2 = z2.substitute(old, repl.to_polynomial())
            new_cvars = tuple(x for x in cvars if x not in mix.mapping) + tuple(
                mix.new_vars
            )
            return _sum(mix.conjunct, new_cvars, z2, ctx)
        v = eq_cvars[0]
        k = eq.coeff(v)
        remaining = tuple(x for x in cvars if x != v)
        if abs(k) == 1:
            solved, repl = solve_unit(conj, eq, v)
            z2 = z.substitute(v, repl.to_polynomial())
            return _sum(solved, remaining, z2, ctx)
        # k·v + rest == 0, |k| > 1: v is pinned to -sign·rest/|k|;
        # feasibility requires |k| to divide rest (a stride guard).
        sign = 1 if k > 0 else -1
        rest = Affine(
            {x: c for x, c in eq.expr.coeffs if x != v}, eq.expr.const
        )
        others = Conjunct(
            (c for c in conj.constraints if c != eq), conj.wildcards
        )
        pinned = substitute_fractional(others, v, -rest * sign, abs(k))
        pinned = pinned.add_stride(abs(k), rest)
        z2 = z.substitute(
            v, rest.to_polynomial() * Fraction(-sign, abs(k))
        )
        return _sum(pinned, remaining, z2, ctx)
    return None


# ---------------------------------------------------------------------------
# wildcard phase
# ---------------------------------------------------------------------------


def _eliminate_one_wildcard(
    conj: Conjunct, cvars: Tuple[str, ...], z: Polynomial, ctx: _Ctx
) -> Optional[List[Term]]:
    cset = set(cvars)
    target = None
    for w in conj.wildcards:
        if conj.is_stride_wildcard(w):
            continue
        hits = conj.constraints_on(w)
        if any(c.is_eq() for c in hits):
            continue  # the equality phase owns it
        if _wildcard_touches(conj, w, cset):
            target = w
            break
    if target is None:
        return None
    pieces = eliminate_exact(conj, target)
    if len(pieces) > 1:
        from repro.presburger.disjoint import disjointify

        pieces = disjointify(pieces)
    out: List[Term] = []
    for piece in pieces:
        out.extend(_sum(piece, cvars, z, ctx))
    return out


def _wildcard_touches(conj: Conjunct, w: str, cset) -> bool:
    """Does w's constraint cluster reach a summation variable?"""
    frontier = {w}
    seen = set()
    while frontier:
        var = frontier.pop()
        seen.add(var)
        for c in conj.constraints_on(var):
            for other in c.variables():
                if other in cset:
                    return True
                if other in conj.wildcards and other not in seen:
                    frontier.add(other)
    return False


# ---------------------------------------------------------------------------
# variable choice (Section 4.4 step 2)
# ---------------------------------------------------------------------------


def _pick_variable(
    conj: Conjunct, cvars: Tuple[str, ...], z: Polynomial
) -> str:
    best, best_key = None, None
    for v in cvars:
        n_strides = sum(
            1 for c in conj.constraints if c.is_eq() and c.uses(v)
        )
        lowers = uppers = 0
        unit = True
        for c in conj.geqs():
            k = c.coeff(v)
            if k > 0:
                lowers += 1
                unit = unit and k == 1
            elif k < 0:
                uppers += 1
                unit = unit and k == -1
        key = (
            n_strides,
            0 if unit else 1,
            lowers * uppers,
            z.degree_in(v),
            v,
        )
        if best_key is None or key < best_key:
            best, best_key = v, key
    return best


# ---------------------------------------------------------------------------
# strides on the summation variable: residue enumeration
# ---------------------------------------------------------------------------


def _residue_split(
    conj: Conjunct,
    cvars: Tuple[str, ...],
    z: Polynomial,
    ctx: _Ctx,
    v: str,
    strides: List[Constraint],
) -> List[Term]:
    from repro.intarith import lcm_list

    moduli = []
    for c in strides:
        wild = next(
            (x for x in c.variables() if x in conj.wildcards), None
        )
        if wild is None:
            raise AssertionError("stride without wildcard: %s" % c)
        moduli.append(abs(c.coeff(wild)))
    modulus = lcm_list(moduli)
    if modulus > ctx.opts.max_residue_split:
        raise UnboundedSumError(
            "residue split of %d cases exceeds the cap (%d); raise "
            "SumOptions.max_residue_split" % (modulus, ctx.opts.max_residue_split)
        )
    if stats.ENABLED:
        stats.bump("residue_splits")
        stats.bump("residue_cases", modulus)
    out: List[Term] = []
    for r in range(modulus):
        v2 = fresh_var("v")
        repl = Affine({v2: modulus}, r)
        conj2 = conj.substitute(v, repl)
        z2 = z.substitute(v, repl.to_polynomial())
        new_cvars = tuple(x for x in cvars if x != v) + (v2,)
        out.extend(_sum(conj2, new_cvars, z2, ctx))
    return out


# ---------------------------------------------------------------------------
# multiple-bound disjoint splits (Section 4.4 steps 3-4)
# ---------------------------------------------------------------------------


def _split_bounds(
    conj: Conjunct,
    cvars: Tuple[str, ...],
    z: Polynomial,
    ctx: _Ctx,
    v: str,
    lowers,
    uppers,
    rest,
    split_uppers: bool,
) -> List[Term]:
    bounds = uppers if split_uppers else lowers
    keep = lowers if split_uppers else uppers
    out: List[Term] = []
    for i, (ci, ei) in enumerate(bounds):
        cons = list(rest)
        for b, beta in (keep if split_uppers else []):
            cons.append(Constraint.leq(beta, Affine({v: b})))
        for a, alpha in ([] if split_uppers else keep):
            cons.append(Constraint.leq(Affine({v: a}), alpha))
        if split_uppers:
            cons.append(Constraint.leq(Affine({v: ci}), ei))
        else:
            cons.append(Constraint.leq(ei, Affine({v: ci})))
        for j, (cj, ej) in enumerate(bounds):
            if j == i:
                continue
            if split_uppers:
                # piece i: bound i is the rational minimum
                # ei/ci < ej/cj for j < i ; ei/ci <= ej/cj for j > i
                lhs, rhs = ei * cj, ej * ci
            else:
                # piece i: bound i is the rational maximum
                lhs, rhs = ej * ci, ei * cj
            if j < i:
                cons.append(Constraint.leq(lhs + 1, rhs))
            else:
                cons.append(Constraint.leq(lhs, rhs))
        piece = Conjunct(cons, conj.wildcards)
        out.extend(_sum(piece, cvars, z, ctx))
    return out


# ---------------------------------------------------------------------------
# rational bounds (Section 4.2.1)
# ---------------------------------------------------------------------------


def _rational_sum(
    conj: Conjunct,
    remaining: Tuple[str, ...],
    z: Polynomial,
    ctx: _Ctx,
    v: str,
    b: int,
    beta: Affine,
    a: int,
    alpha: Affine,
    rest,
) -> List[Term]:
    strategy = ctx.opts.strategy
    cset = set(remaining)
    symbolic_ok = (
        not any(x in cset for x in alpha.variables())
        and not any(x in cset for x in beta.variables())
    )
    if strategy is Strategy.EXACT and symbolic_ok:
        return _symbolic_rational(
            conj, remaining, z, ctx, v, b, beta, a, alpha, rest
        )
    if strategy in (Strategy.EXACT, Strategy.SPLINTER):
        return _splinter_rational(
            conj, remaining, z, ctx, v, b, beta, a, alpha, rest
        )
    return _approx_rational(
        conj, remaining, z, ctx, v, b, beta, a, alpha, rest, strategy
    )


def _symbolic_rational(
    conj, remaining, z, ctx, v, b, beta, a, alpha, rest
) -> List[Term]:
    """Exact closed form with mod atoms: floor(α/a) = (α - α mod a)/a."""
    guard_cons = list(rest)
    wilds = list(conj.wildcards)

    if a == 1:
        upper_poly = alpha.to_polynomial()
        upper_aff = alpha
    else:
        mod_u = ModAtom(alpha.coeff_dict(), alpha.const, a)
        upper_poly = (alpha.to_polynomial() - Polynomial.atom(mod_u)) * Fraction(1, a)
        p = fresh_var("g")
        wilds.append(p)
        pv = Affine.var(p)
        guard_cons.append(Constraint.leq(pv * a, alpha))
        guard_cons.append(Constraint.leq(alpha, pv * a + (a - 1)))
        upper_aff = pv

    if b == 1:
        lower_poly = beta.to_polynomial()
        lower_aff = beta
    else:
        shifted = beta + (b - 1)
        mod_l = ModAtom(shifted.coeff_dict(), shifted.const, b)
        lower_poly = (shifted.to_polynomial() - Polynomial.atom(mod_l)) * Fraction(1, b)
        q = fresh_var("g")
        wilds.append(q)
        qv = Affine.var(q)
        guard_cons.append(Constraint.leq(qv * b, shifted))
        guard_cons.append(Constraint.leq(shifted, qv * b + (b - 1)))
        lower_aff = qv

    guard_cons.append(Constraint.leq(lower_aff, upper_aff))
    z2 = sum_over_range(z, v, lower_poly, upper_poly)
    conj2 = Conjunct(guard_cons, wilds)
    return _sum(conj2, remaining, z2, ctx)


def _splinter_rational(
    conj, remaining, z, ctx, v, b, beta, a, alpha, rest
) -> List[Term]:
    """Exact residue splintering (Section 4.2.1 'splintering')."""
    out: List[Term] = []
    shifted = beta + (b - 1)  # ceil(β/b) == floor((β+b-1)/b)
    for r_u in range(a):
        for r_l in range(b):
            cons = list(rest)
            piece = Conjunct(cons, conj.wildcards)
            if a > 1:
                piece = piece.add_stride(a, alpha - r_u)
            if b > 1:
                piece = piece.add_stride(b, shifted - r_l)
            upper_poly = (alpha.to_polynomial() - r_u) * Fraction(1, a)
            lower_poly = (shifted.to_polynomial() - r_l) * Fraction(1, b)
            # guard: lower <= upper, scaled to integers
            piece = piece.with_constraints(
                [Constraint.leq((shifted - r_l) * a, (alpha - r_u) * b)]
            )
            z2 = sum_over_range(z, v, lower_poly, upper_poly)
            out.extend(_sum(piece, remaining, z2, ctx))
    return out


def _approx_rational(
    conj, remaining, z, ctx, v, b, beta, a, alpha, rest, strategy
) -> List[Term]:
    """Upper / lower / midpoint approximations (Section 4.2.1).

    Sound as bounds for non-negative summands; the guard uses the real
    shadow (upper) or the conservative shadow (lower).
    """
    alpha_p, beta_p = alpha.to_polynomial(), beta.to_polynomial()
    if strategy is Strategy.UPPER:
        upper_poly = alpha_p * Fraction(1, a)
        lower_poly = beta_p * Fraction(1, b)
        guard = Constraint.leq(beta * a, alpha * b)  # real shadow
        if a > 1 or b > 1:
            ctx.inexact_upper = True
    elif strategy is Strategy.LOWER:
        upper_poly = (alpha_p - (a - 1)) * Fraction(1, a)
        lower_poly = (beta_p + (b - 1)) * Fraction(1, b)
        guard = Constraint.leq((beta + (b - 1)) * a, (alpha - (a - 1)) * b)
        if a > 1 or b > 1:
            ctx.inexact_lower = True
    else:  # MIDPOINT
        upper_poly = (alpha_p * 2 - (a - 1)) * Fraction(1, 2 * a)
        lower_poly = (beta_p * 2 + (b - 1)) * Fraction(1, 2 * b)
        guard = Constraint.leq(beta * a, alpha * b)
        if a > 1 or b > 1:
            ctx.inexact_upper = True
            ctx.inexact_lower = True
    z2 = sum_over_range(z, v, lower_poly, upper_poly)
    conj2 = Conjunct(list(rest) + [guard], conj.wildcards)
    return _sum(conj2, remaining, z2, ctx)
