"""Closed forms for ``Σ_{v=L}^{U} z(v)`` (Section 4.1, generalized).

``sum_over_range`` sums a polynomial in ``v`` between polynomial bounds
using the Faulhaber telescoping identity

    Σ_{v=L}^{U} v**p  ==  F_p(U) - F_p(L-1)      (valid for all L <= U),

which replaces the paper's four-piece decomposition (implemented in
:mod:`repro.core.basic` and tested equal).  The result is valid exactly
when L <= U; the caller must guard with that constraint.
"""

from fractions import Fraction
from typing import Dict

from repro.intarith.bernoulli import faulhaber_coefficients
from repro.qpoly import Polynomial


def faulhaber_polynomial(p: int, x: Polynomial) -> Polynomial:
    """F_p composed with a polynomial argument: F_p(x)."""
    coeffs = faulhaber_coefficients(p)
    result = Polynomial()
    power = Polynomial.one
    for c in coeffs:
        if c:
            result = result + power * c
        power = power * x
    return result


def sum_over_range(
    z: Polynomial, var: str, lower: Polynomial, upper: Polynomial
) -> Polynomial:
    """Σ_{var=lower}^{upper} z, as a polynomial in the other atoms.

    ``lower`` and ``upper`` may have rational coefficients (they arise
    from floors pinned by stride constraints) but must evaluate to
    integers on the guarded domain; the result is exact whenever
    lower <= upper holds and both bounds are integral there.
    """
    by_power: Dict[int, Polynomial] = z.coefficients_in(var)
    total = Polynomial()
    lower_minus_1 = lower - 1
    for p, coeff in by_power.items():
        piece = faulhaber_polynomial(p, upper) - faulhaber_polynomial(
            p, lower_minus_1
        )
        total = total + coeff * piece
    return total


def count_range(lower: Polynomial, upper: Polynomial) -> Polynomial:
    """Σ_{v=lower}^{upper} 1 == upper - lower + 1 (guarded by L <= U)."""
    return upper - lower + Polynomial.one


def power_sum(p: int, n: Polynomial) -> Polynomial:
    """The classic Σ_{i=1}^{n} i**p of Section 4.1 (guard: 1 <= n)."""
    return faulhaber_polynomial(p, n)


def sum_affine_power(
    coeff: Fraction, var: str, p: int, lower: Polynomial, upper: Polynomial
) -> Polynomial:
    """Σ_{var=lower}^{upper} coeff·var**p (convenience wrapper)."""
    z = Polynomial({((var, p),): Fraction(coeff)})
    return sum_over_range(z, var, lower, upper)
