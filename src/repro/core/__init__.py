"""The counting/summation engine (Sections 4 and 5 of the paper).

Public entry points:

* :func:`repro.core.general.count` -- number of integer solutions of
  selected free variables of a Presburger formula, symbolically.
* :func:`repro.core.general.sum_poly` -- sum of a polynomial over those
  solutions.

Both return a :class:`repro.core.result.SymbolicSum`: a sum of guarded
quasi-polynomial terms ``(Σ : guard : value)`` in the remaining free
variables (the symbolic constants).
"""

from repro.core import stats
from repro.core.backend import (
    BACKENDS,
    current_backend,
    resolve_backend,
    set_backend,
)
from repro.core.general import count, count_conjunct, sum_poly
from repro.core.options import Strategy, SumOptions
from repro.core.result import SymbolicSum, Term

__all__ = [
    "BACKENDS",
    "Strategy",
    "SumOptions",
    "SymbolicSum",
    "Term",
    "count",
    "count_conjunct",
    "current_backend",
    "resolve_backend",
    "set_backend",
    "stats",
    "sum_poly",
]
