"""Guarded piecewise quasi-polynomial results.

The answer to ``(Σ V : P : z)`` is a *sum of guarded terms*

    (Σ : G1 : q1) + (Σ : G2 : q2) + ...

where each guard Gi is a conjunct over the symbolic constants (affine
constraints plus strides) and each value qi is a quasi-polynomial.
A term contributes its value when its guard holds and 0 otherwise
(the paper's "nullary form of a summation", Section 1).  Terms need
not be disjoint -- values add -- though the engine produces disjoint
guards wherever the pieces partition a case split.

This module is also the home of the **exact JSON serialization** of
results (``to_json`` / ``from_json`` on :class:`SymbolicSum` and
:class:`Term`, plus helpers for conjuncts, constraints, affines,
polynomials and atoms).  The round trip is exact: every coefficient is
an integer or an explicit numerator/denominator pair, and
``SymbolicSum.from_json(s.to_json()) == s`` (same terms, same guards,
same printed form).  The batch service's disk cache stores results in
this format, so the guarantee is what makes cached responses
byte-identical to freshly computed ones.
"""

import json
from fractions import Fraction
from typing import Iterable, List, Mapping, NamedTuple, Optional, Union

from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint
from repro.omega.problem import Conjunct
from repro.qpoly import ModAtom, Polynomial

#: Bumped whenever the serialized shape changes incompatibly; embedded
#: in every payload and checked by ``from_json``.
RESULT_SCHEMA_VERSION = 1


# -- JSON helpers (exact round trip) ------------------------------------


def affine_to_json(expr: Affine) -> dict:
    return {"coeffs": [[v, c] for v, c in expr.coeffs], "const": expr.const}


def affine_from_json(obj: Mapping) -> Affine:
    return Affine({v: c for v, c in obj["coeffs"]}, obj["const"])


def constraint_to_json(con: Constraint) -> dict:
    return {"kind": con.kind, "expr": affine_to_json(con.expr)}


def constraint_from_json(obj: Mapping) -> Constraint:
    kind = obj["kind"]
    if kind not in (GEQ, EQ):
        raise ValueError("bad constraint kind %r" % (kind,))
    return Constraint(affine_from_json(obj["expr"]), kind)


def conjunct_to_json(conj: Conjunct) -> dict:
    return {
        "constraints": [constraint_to_json(c) for c in conj.constraints],
        "wildcards": sorted(conj.wildcards),
    }


def conjunct_from_json(obj: Mapping) -> Conjunct:
    return Conjunct(
        [constraint_from_json(c) for c in obj["constraints"]],
        obj["wildcards"],
    )


def atom_to_json(atom) -> Union[str, dict]:
    if isinstance(atom, str):
        return atom
    return {
        "mod": {
            "coeffs": [[v, c] for v, c in atom.coeffs],
            "const": atom.const,
            "modulus": atom.modulus,
        }
    }


def atom_from_json(obj):
    if isinstance(obj, str):
        return obj
    mod = obj["mod"]
    return ModAtom(
        {v: c for v, c in mod["coeffs"]}, mod["const"], mod["modulus"]
    )


def polynomial_to_json(poly: Polynomial) -> dict:
    terms = []
    for mono, coef in poly.terms.items():
        terms.append(
            {
                "monomial": [[atom_to_json(a), e] for a, e in mono],
                "num": coef.numerator,
                "den": coef.denominator,
            }
        )
    # Deterministic order: the in-memory dict order depends on insertion
    # history, which must not leak into the serialized bytes.  Atoms mix
    # strings and dicts, so sort on a uniform JSON rendering.
    terms.sort(key=lambda t: json.dumps(t, sort_keys=True))
    return {"terms": terms}


def polynomial_from_json(obj: Mapping) -> Polynomial:
    terms = {}
    for t in obj["terms"]:
        mono = tuple((atom_from_json(a), e) for a, e in t["monomial"])
        terms[mono] = Fraction(t["num"], t["den"])
    return Polynomial(terms)


class Term(NamedTuple):
    """One guarded value: contributes ``value`` when ``guard`` holds."""

    guard: Conjunct
    value: Polynomial

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        if self.guard.is_satisfied(env):
            return self.value.evaluate(env)
        return Fraction(0)

    def to_json(self) -> dict:
        return {
            "guard": conjunct_to_json(self.guard),
            "value": polynomial_to_json(self.value),
        }

    @classmethod
    def from_json(cls, obj: Mapping) -> "Term":
        return cls(
            conjunct_from_json(obj["guard"]),
            polynomial_from_json(obj["value"]),
        )

    def __str__(self) -> str:
        guard = str(self.guard)
        if guard == "TRUE":
            return "(Σ : %s)" % (self.value,)
        return "(Σ : %s : %s)" % (guard, self.value)


class SymbolicSum:
    """A symbolic count or sum: guarded terms plus an exactness tag.

    ``exactness`` is one of ``"exact"``, ``"upper"``, ``"lower"``,
    ``"approx"`` -- approximate answers arise from the UPPER / LOWER /
    MIDPOINT strategies of Section 4.2.1 and from approximate
    simplification (Section 4.6).
    """

    __slots__ = ("terms", "exactness")

    def __init__(self, terms: Iterable[Term], exactness: str = "exact"):
        if exactness not in ("exact", "upper", "lower", "approx"):
            raise ValueError("bad exactness %r" % exactness)
        cleaned = [t for t in terms if not t.value.is_zero()]
        object.__setattr__(self, "terms", tuple(cleaned))
        object.__setattr__(self, "exactness", exactness)

    def __setattr__(self, name, value):
        raise AttributeError("SymbolicSum is immutable")

    # -- evaluation -----------------------------------------------------

    def evaluate(self, env: Optional[Mapping[str, int]] = None, **kwargs: int):
        """Evaluate at concrete values of the symbolic constants.

        Returns an int when the result is integral (it always is for
        exact counts), otherwise a Fraction.

        This is the *interpreted reference* evaluator; the hot entry
        points (``__call__``, ``as_function``, ``table``) route through
        the :mod:`repro.evalc` compiler and fall back here.
        """
        if kwargs:
            full = dict(env or {})
            full.update(kwargs)
        else:
            # Hot path: evaluate never mutates the env, so a read-only
            # caller mapping needs no per-call defensive copy.
            full = env if env is not None else {}
        total = Fraction(0)
        for term in self.terms:
            total += term.evaluate(full)
        if total.denominator == 1:
            return int(total)
        return total

    def _compiled(self):
        """The compiled evaluator, or None (disabled / not compilable)."""
        from repro.evalc import compile_enabled, compile_sum

        if not compile_enabled():
            return None
        try:
            return compile_sum(self)
        except Exception:
            return None

    def __call__(self, **kwargs: int):
        compiled = self._compiled()
        if compiled is not None:
            return compiled.at(kwargs)
        return self.evaluate(kwargs)

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: "SymbolicSum") -> "SymbolicSum":
        exactness = _combine_exactness(self.exactness, other.exactness)
        return SymbolicSum(self.terms + other.terms, exactness)

    def scale(self, factor: Union[int, Fraction]) -> "SymbolicSum":
        return SymbolicSum(
            (Term(t.guard, t.value * factor) for t in self.terms),
            self.exactness,
        )

    def __neg__(self) -> "SymbolicSum":
        flipped = {"upper": "lower", "lower": "upper"}
        return SymbolicSum(
            (Term(t.guard, -t.value) for t in self.terms),
            flipped.get(self.exactness, self.exactness),
        )

    def __sub__(self, other: "SymbolicSum") -> "SymbolicSum":
        return self + (-other)

    # -- structure ------------------------------------------------------------

    def combine_like_guards(self) -> "SymbolicSum":
        """Add up the values of terms with identical guards."""
        buckets = {}
        order = []
        for t in self.terms:
            key = (t.guard.constraints, t.guard.wildcards)
            if key not in buckets:
                buckets[key] = Term(t.guard, Polynomial())
                order.append(key)
            buckets[key] = Term(t.guard, buckets[key].value + t.value)
        return SymbolicSum((buckets[k] for k in order), self.exactness)

    def symbols(self) -> List[str]:
        seen = {}
        for t in self.terms:
            for v in t.guard.free_variables():
                seen.setdefault(v, None)
            for v in t.value.variables():
                seen.setdefault(v, None)
        return list(seen)

    def is_constant(self) -> bool:
        return not self.symbols()

    def constant_value(self):
        if not self.is_constant():
            raise ValueError("symbolic result: %s" % self)
        return self.evaluate({})

    def simplified(self) -> "SymbolicSum":
        """Tidy guards/values, merge residue classes, widen guards."""
        from repro.core.merge import merge_residues, tidy_values, widen_guards

        tidied = tidy_values(self).combine_like_guards()
        return widen_guards(merge_residues(tidied))

    def compacted(self, symbol: Optional[str] = None) -> "SymbolicSum":
        """Collapse a single-symbol answer to one tail quasi-polynomial.

        Exact: past the largest guard threshold the piecewise answer is
        a quasi-polynomial recovered by interpolation; boundary points
        become explicit point terms.  Returns self unchanged when the
        preconditions do not hold (see :mod:`repro.core.compact`).
        """
        from repro.core.compact import compact_single_symbol

        return compact_single_symbol(self.simplified(), symbol)

    def as_function(self):
        """A plain Python callable over the symbolic constants.

        ``f = result.as_function(); f(n=10)`` -- convenient for
        plugging counts into schedulers or cost models.  The callable
        closes over the compiled evaluator, so repeated calls skip
        even the compile-cache lookup.
        """
        compiled = self._compiled()
        if compiled is not None:

            def evaluate(**kwargs: int):
                return compiled.at(kwargs)

        else:

            def evaluate(**kwargs: int):
                return self.evaluate(kwargs)

        return evaluate

    def table(self, var: str, values, **fixed: int):
        """Tabulate the result along one symbol: [(value, count), ...]."""
        compiled = self._compiled()
        if compiled is not None:
            return compiled.table(var, values, **fixed)
        env = dict(fixed)
        out = []
        for v in values:
            env[var] = v
            out.append((v, self.evaluate(env)))
        return out

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """Exact JSON form; ``from_json`` round-trips to an equal value."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "exactness": self.exactness,
            "terms": [t.to_json() for t in self.terms],
        }

    @classmethod
    def from_json(cls, obj: Mapping) -> "SymbolicSum":
        version = obj.get("schema")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                "unsupported result schema %r (expected %d)"
                % (version, RESULT_SCHEMA_VERSION)
            )
        return cls(
            (Term.from_json(t) for t in obj["terms"]), obj["exactness"]
        )

    # -- identity ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolicSum):
            return NotImplemented
        return self.terms == other.terms and self.exactness == other.exactness

    def __hash__(self) -> int:
        return hash((self.terms, self.exactness))

    # -- display -----------------------------------------------------------------

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        body = " + ".join(str(t) for t in self.terms)
        if self.exactness != "exact":
            return "%s  [%s bound]" % (body, self.exactness)
        return body

    def __repr__(self) -> str:
        return "SymbolicSum(%s)" % self


def _combine_exactness(a: str, b: str) -> str:
    if a == b:
        return a
    if "exact" in (a, b):
        return a if b == "exact" else b
    return "approx"
