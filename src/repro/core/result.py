"""Guarded piecewise quasi-polynomial results.

The answer to ``(Σ V : P : z)`` is a *sum of guarded terms*

    (Σ : G1 : q1) + (Σ : G2 : q2) + ...

where each guard Gi is a conjunct over the symbolic constants (affine
constraints plus strides) and each value qi is a quasi-polynomial.
A term contributes its value when its guard holds and 0 otherwise
(the paper's "nullary form of a summation", Section 1).  Terms need
not be disjoint -- values add -- though the engine produces disjoint
guards wherever the pieces partition a case split.
"""

from fractions import Fraction
from typing import Iterable, List, Mapping, NamedTuple, Optional, Union

from repro.omega.problem import Conjunct
from repro.qpoly import Polynomial


class Term(NamedTuple):
    """One guarded value: contributes ``value`` when ``guard`` holds."""

    guard: Conjunct
    value: Polynomial

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        if self.guard.is_satisfied(env):
            return self.value.evaluate(env)
        return Fraction(0)

    def __str__(self) -> str:
        guard = str(self.guard)
        if guard == "TRUE":
            return "(Σ : %s)" % (self.value,)
        return "(Σ : %s : %s)" % (guard, self.value)


class SymbolicSum:
    """A symbolic count or sum: guarded terms plus an exactness tag.

    ``exactness`` is one of ``"exact"``, ``"upper"``, ``"lower"``,
    ``"approx"`` -- approximate answers arise from the UPPER / LOWER /
    MIDPOINT strategies of Section 4.2.1 and from approximate
    simplification (Section 4.6).
    """

    __slots__ = ("terms", "exactness")

    def __init__(self, terms: Iterable[Term], exactness: str = "exact"):
        if exactness not in ("exact", "upper", "lower", "approx"):
            raise ValueError("bad exactness %r" % exactness)
        cleaned = [t for t in terms if not t.value.is_zero()]
        object.__setattr__(self, "terms", tuple(cleaned))
        object.__setattr__(self, "exactness", exactness)

    def __setattr__(self, name, value):
        raise AttributeError("SymbolicSum is immutable")

    # -- evaluation -----------------------------------------------------

    def evaluate(self, env: Optional[Mapping[str, int]] = None, **kwargs: int):
        """Evaluate at concrete values of the symbolic constants.

        Returns an int when the result is integral (it always is for
        exact counts), otherwise a Fraction.
        """
        full = dict(env or {})
        full.update(kwargs)
        total = Fraction(0)
        for term in self.terms:
            total += term.evaluate(full)
        if total.denominator == 1:
            return int(total)
        return total

    def __call__(self, **kwargs: int):
        return self.evaluate(kwargs)

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: "SymbolicSum") -> "SymbolicSum":
        exactness = _combine_exactness(self.exactness, other.exactness)
        return SymbolicSum(self.terms + other.terms, exactness)

    def scale(self, factor: Union[int, Fraction]) -> "SymbolicSum":
        return SymbolicSum(
            (Term(t.guard, t.value * factor) for t in self.terms),
            self.exactness,
        )

    def __neg__(self) -> "SymbolicSum":
        flipped = {"upper": "lower", "lower": "upper"}
        return SymbolicSum(
            (Term(t.guard, -t.value) for t in self.terms),
            flipped.get(self.exactness, self.exactness),
        )

    def __sub__(self, other: "SymbolicSum") -> "SymbolicSum":
        return self + (-other)

    # -- structure ------------------------------------------------------------

    def combine_like_guards(self) -> "SymbolicSum":
        """Add up the values of terms with identical guards."""
        buckets = {}
        order = []
        for t in self.terms:
            key = (t.guard.constraints, t.guard.wildcards)
            if key not in buckets:
                buckets[key] = Term(t.guard, Polynomial())
                order.append(key)
            buckets[key] = Term(t.guard, buckets[key].value + t.value)
        return SymbolicSum((buckets[k] for k in order), self.exactness)

    def symbols(self) -> List[str]:
        seen = {}
        for t in self.terms:
            for v in t.guard.free_variables():
                seen.setdefault(v, None)
            for v in t.value.variables():
                seen.setdefault(v, None)
        return list(seen)

    def is_constant(self) -> bool:
        return not self.symbols()

    def constant_value(self):
        if not self.is_constant():
            raise ValueError("symbolic result: %s" % self)
        return self.evaluate({})

    def simplified(self) -> "SymbolicSum":
        """Tidy guards/values, merge residue classes, widen guards."""
        from repro.core.merge import merge_residues, tidy_values, widen_guards

        tidied = tidy_values(self).combine_like_guards()
        return widen_guards(merge_residues(tidied))

    def compacted(self, symbol: Optional[str] = None) -> "SymbolicSum":
        """Collapse a single-symbol answer to one tail quasi-polynomial.

        Exact: past the largest guard threshold the piecewise answer is
        a quasi-polynomial recovered by interpolation; boundary points
        become explicit point terms.  Returns self unchanged when the
        preconditions do not hold (see :mod:`repro.core.compact`).
        """
        from repro.core.compact import compact_single_symbol

        return compact_single_symbol(self.simplified(), symbol)

    def as_function(self):
        """A plain Python callable over the symbolic constants.

        ``f = result.as_function(); f(n=10)`` -- convenient for
        plugging counts into schedulers or cost models.
        """

        def evaluate(**kwargs: int):
            return self.evaluate(kwargs)

        return evaluate

    def table(self, var: str, values, **fixed: int):
        """Tabulate the result along one symbol: [(value, count), ...]."""
        out = []
        for v in values:
            env = dict(fixed)
            env[var] = v
            out.append((v, self.evaluate(env)))
        return out

    # -- display -----------------------------------------------------------------

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        body = " + ".join(str(t) for t in self.terms)
        if self.exactness != "exact":
            return "%s  [%s bound]" % (body, self.exactness)
        return body

    def __repr__(self) -> str:
        return "SymbolicSum(%s)" % self


def _combine_exactness(a: str, b: str) -> str:
    if a == b:
        return a
    if "exact" in (a, b):
        return a if b == "exact" else b
    return "approx"
