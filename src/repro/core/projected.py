"""Projected sums via Smith normal form (Section 4.5.2, literal path).

A clause in *projected format* describes the summation variables as an
affine image of auxiliary wildcards:

    ∃ ᾱ :  A·ᾱ <= β̄   ∧   v̄ = Q·ᾱ + γ̄

The paper reduces this with the Smith normal form U·Q·V = D: writing
ᾱ = V·β̂, the image coordinates decouple into d_i·β̂_i = (U(v̄-γ̄))_i,
turning the clause into constraints over β̂ plus strides.  When Q is
injective on the solution lattice the count over v̄ equals the count
over β̂.

The engine (:mod:`repro.core.convex`) reaches the same result through
incremental equality elimination; this module implements the paper's
matrix formulation directly so the two can be cross-checked, and
offers :func:`count_image` for callers that naturally have the matrix
form (e.g. array subscript maps).
"""

from typing import List, Optional, Sequence, Tuple

from repro.intarith import IntMatrix, smith_normal_form
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.omega.problem import Conjunct
from repro.core.options import DEFAULT_OPTIONS, SumOptions
from repro.core.result import SymbolicSum


class ProjectedClause:
    """``∃α: constraints(α, symbols) ∧ target = Q·α + γ``.

    ``q`` is an IntMatrix (one row per target variable), ``gamma`` a
    list of affine expressions over the symbolic constants, and
    ``constraints`` arbitrary linear constraints over the α variables
    and symbols.
    """

    def __init__(
        self,
        alpha_vars: Sequence[str],
        constraints: Sequence[Constraint],
        q: IntMatrix,
        gamma: Sequence[Affine],
    ):
        if q.ncols != len(alpha_vars):
            raise ValueError("Q must have one column per α variable")
        if q.nrows != len(gamma):
            raise ValueError("Q must have one row per target variable")
        self.alpha_vars = list(alpha_vars)
        self.constraints = list(constraints)
        self.q = q
        self.gamma = list(gamma)
        # Lazily filled by smith_reduce: the SNF change of variables is
        # a pure function of the clause, so one reduction serves every
        # later count over this instance.
        self._smith: Optional[Tuple] = None

    def image_conjunct(self, target_vars: Sequence[str]) -> Conjunct:
        """The clause as a conjunct over target variables + wildcards."""
        if len(target_vars) != self.q.nrows:
            raise ValueError("need one target variable per Q row")
        cons = list(self.constraints)
        for i, tv in enumerate(target_vars):
            expr = Affine.var(tv) - self.gamma[i]
            for j, av in enumerate(self.alpha_vars):
                expr = expr - Affine({av: self.q[i, j]})
            cons.append(Constraint.eq(expr))
        return Conjunct(cons, self.alpha_vars)


def smith_reduce(clause: ProjectedClause) -> Tuple[List[str], Conjunct, IntMatrix, List[int]]:
    """Change variables ᾱ = V·β̂ so the image map diagonalizes.

    Returns (beta_vars, transformed constraint conjunct, U, diag) where
    U·Q·V = D and ``diag`` is D's diagonal: in the new variables the
    image relation reads  d_i·β̂_i = (U·(v̄ - γ̄))_i  for i < rank and
    0 = (U·(v̄ - γ̄))_i  beyond the rank.

    The reduction is cached on the clause instance (it depends only on
    the clause, and repeated ``count_image_via_smith`` calls would
    otherwise redo the SNF and mint new β̂ names each time); do not
    mutate a clause after its first reduction.  Reusing the *same* β̂
    names on every call also keeps repeat counts of one instance
    keyed identically in the answer memo -- though even fresh names
    would hit, since the memo's canonical key renames bound variables
    away.
    """
    if clause._smith is not None:
        beta_vars, conj, u, diag = clause._smith
        return list(beta_vars), conj, u, list(diag)
    u, d, v = smith_normal_form(clause.q)
    beta_vars = [fresh_var("b") for _ in clause.alpha_vars]
    substitution = {}
    for i, av in enumerate(clause.alpha_vars):
        substitution[av] = Affine(
            {beta_vars[j]: v[i, j] for j in range(len(beta_vars))}
        )
    new_cons = []
    for c in clause.constraints:
        updated = c
        for av, repl in substitution.items():
            updated = updated.substitute(av, repl)
        new_cons.append(updated)
    diag = [d[i, i] for i in range(min(d.nrows, d.ncols))]
    conj = Conjunct(new_cons)
    clause._smith = (tuple(beta_vars), conj, u, tuple(diag))
    return beta_vars, conj, u, diag


def count_image(
    clause: ProjectedClause,
    target_vars: Optional[Sequence[str]] = None,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Count the distinct image points of a projected clause.

    Builds the image conjunct (target = Q·α + γ with α existential) and
    counts it with the engine; the Smith reduction happens implicitly
    through the equality machinery.  ``target_vars`` default to fresh
    names (the count does not depend on them, and the answer memo's
    canonical key renames them away, so repeat counts of one clause
    hit the memo even with fresh names each call).
    """
    from repro.core.general import count_conjunct

    if target_vars is None:
        target_vars = [fresh_var("z") for _ in range(clause.q.nrows)]
    conj = clause.image_conjunct(target_vars)
    return count_conjunct(conj, list(target_vars), options)


def count_image_via_smith(
    clause: ProjectedClause,
    target_vars: Optional[Sequence[str]] = None,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Count image points by the paper's explicit SNF reduction.

    The target coordinates are expressed through β̂ via
    d_i β̂_i = (U (v̄ - γ̄))_i; the image count is the count of the β̂
    region intersected with the strides induced by the diagonal --
    computed here by substituting v̄_i = (Q V β̂ + γ)_i and counting β̂
    directly when the map is injective (all diagonal entries nonzero).
    Raises ValueError when Q has a nontrivial kernel (the map is not
    1-1 and the β̂ count would overcount).
    """
    beta_vars, transformed, u, diag = smith_reduce(clause)
    rank = sum(1 for x in diag if x != 0)
    if rank < len(beta_vars):
        raise ValueError(
            "Q has a nontrivial kernel: the projected map is not 1-1"
        )
    from repro.core.general import count_conjunct

    # With full column rank, β̂ -> v̄ is injective: count β̂ directly.
    return count_conjunct(transformed, beta_vars, options)
