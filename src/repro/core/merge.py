"""Post-processing of symbolic sums: residue merging and guard widening.

``merge_residues`` recombines a full set of residue-class splinters
into a single quasi-polynomial term with a ``mod`` atom -- the move the
paper performs by hand at the end of Example 6, turning two parity
splinters into ``(3n² + 2n - (n mod 2))/4``.

``widen_guards`` relaxes a guard constraint when the term's value
provably vanishes on the region the relaxation adds -- the paper's
"the value of the first clause for n = 1 is 0, so we can safely relax
the guard to n >= 1 and combine the terms" (Example 6).
"""

import itertools
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable
from repro.core.result import SymbolicSum, Term
from repro.qpoly import ModAtom, Polynomial


def simplify_guard(conj: Conjunct) -> Conjunct:
    """Put a guard in its simplest equivalent form.

    Guards produced by the engine often carry determined wildcards
    (floor definitions like ∃g: 2g <= n <= 2g+1 ∧ g >= 1, meaning
    n >= 2).  Projecting the wildcards exactly recovers the affine
    form whenever the projection yields a single piece.
    """
    from repro.omega.redundancy import remove_redundant
    from repro.presburger.disjoint import project_to_stride_only

    n = conj.normalize()
    if n is None:
        return conj
    if not n.stride_only():
        pieces = project_to_stride_only(n)
        if len(pieces) != 1:
            return remove_redundant(n)
        n = pieces[0]
    return remove_redundant(n)


def reduce_mod_powers(poly: Polynomial) -> Polynomial:
    """Rewrite powers of mod atoms below their modulus.

    ``(e mod M)**k`` for k >= M is a function of ``e mod M`` taking the
    values r**k on r = 0..M-1; interpolation rewrites it as a
    polynomial of degree < M.  The paper uses the M = 2 instance:
    ``(n mod 2)² == n mod 2`` (Example 6).
    """
    out = Polynomial()
    for mono, coef in poly.terms.items():
        piece = Polynomial.constant(coef)
        for atom, exp in mono:
            if isinstance(atom, ModAtom) and exp >= atom.modulus > 1:
                values = {
                    r: Polynomial.constant(Fraction(r) ** exp)
                    for r in range(atom.modulus)
                }
                piece = piece * _interpolate(
                    values, Polynomial.atom(atom), atom.modulus
                )
            else:
                piece = piece * Polynomial.atom(atom) ** exp
        out = out + piece
    return out


def canonicalize_mod_shifts(poly: Polynomial, max_modulus: int = 8) -> Polynomial:
    """Express shifted mod atoms through their constant-free form.

    ``(e + c) mod M`` takes the value ((r + c) mod M) when
    ``e mod M == r``; interpolation rewrites it as a polynomial in
    ``e mod M``, so e.g. ``(n+1) mod 2 == 1 - (n mod 2)``.  This lets
    terms produced by different residue splits combine.
    """
    out = Polynomial()
    for mono, coef in poly.terms.items():
        piece = Polynomial.constant(coef)
        for atom, exp in mono:
            if (
                isinstance(atom, ModAtom)
                and atom.const != 0
                and atom.coeffs
                and atom.modulus <= max_modulus
            ):
                base = ModAtom(dict(atom.coeffs), 0, atom.modulus)
                values = {
                    r: Polynomial.constant(
                        Fraction((r + atom.const) % atom.modulus)
                    )
                    for r in range(atom.modulus)
                }
                repl = _interpolate(
                    values, Polynomial.atom(base), atom.modulus
                )
                piece = piece * repl ** exp
            else:
                piece = piece * Polynomial.atom(atom) ** exp
        out = out + piece
    return out


def tidy_values(sum_: SymbolicSum) -> SymbolicSum:
    """Guard simplification + mod-atom canonicalization on every term."""
    terms = []
    for t in sum_.terms:
        value = reduce_mod_powers(canonicalize_mod_shifts(t.value))
        value = reduce_mod_powers(value)
        terms.append(Term(simplify_guard(t.guard), value))
    return SymbolicSum(terms, sum_.exactness)


def merge_residues(sum_: SymbolicSum) -> SymbolicSum:
    """Merge complete residue-class splits into mod-atom terms.

    Looks for groups of terms whose guards are identical except for a
    single stride constraint ``M | (e - r)`` with r covering all of
    0..M-1; the group is replaced by one term whose value interpolates
    the pieces as a polynomial in the atom ``e mod M``.
    """
    groups: Dict[tuple, Dict[int, Term]] = {}
    order: List[tuple] = []
    passthrough: List[Tuple[int, Term]] = []
    for idx, term in enumerate(sum_.terms):
        split = _split_one_stride(term.guard)
        if split is None:
            passthrough.append((idx, term))
            continue
        base, modulus, expr, residue = split
        key = (base.constraints, modulus, expr.coeffs, expr.const)
        if key not in groups:
            groups[key] = {}
            order.append((idx, key, base, modulus, expr))
        if residue in groups[key]:
            # duplicate residue: give up on this group member
            passthrough.append((idx, term))
        else:
            groups[key][residue] = term

    out: List[Tuple[int, Term]] = list(passthrough)
    for idx, key, base, modulus, expr in order:
        members = groups[key]
        if set(members) == set(range(modulus)):
            atom = Polynomial.atom(
                ModAtom(expr.coeff_dict(), expr.const, modulus)
            )
            merged_value = _interpolate(
                {r: members[r].value for r in members}, atom, modulus
            )
            if merged_value is not None:
                out.append((idx, Term(base, merged_value)))
                continue
        out.extend(
            (idx, t) for t in members.values()
        )
    out.sort(key=lambda it: it[0])
    return SymbolicSum((t for _, t in out), sum_.exactness)


def _split_one_stride(
    guard: Conjunct,
) -> Optional[Tuple[Conjunct, int, Affine, int]]:
    """If the guard has exactly one stride, factor it out.

    Returns (guard without the stride, modulus M, expr e, residue r)
    where the stride means ``e ≡ r (mod M)`` with e's constant dropped
    to zero (the residue captures it).
    """
    others, strides = guard.stride_view()
    if len(strides) != 1:
        return None
    modulus, expr = strides[0]
    # stride M | expr with expr = e0 + const:  e0 mod M == (-const) mod M
    e0 = Affine(expr.coeff_dict(), 0)
    r = (-expr.const) % modulus
    base = Conjunct(others)
    return base, modulus, e0, r


def _interpolate(
    values: Dict[int, Polynomial], atom: Polynomial, modulus: int
) -> Optional[Polynomial]:
    """Find Q with Q(r) == values[r] for r in 0..M-1, Q polynomial in atom.

    Lagrange interpolation over the residue points; coefficients are
    polynomials in the symbolic constants.  Returns None if any value
    itself contains the target's variables inside other mod atoms in a
    way interpolation cannot absorb (conservatively: never -- Lagrange
    always succeeds; kept for future-proofing).
    """
    total = Polynomial()
    points = list(range(modulus))
    for r in points:
        basis = Polynomial.one
        denom = Fraction(1)
        for s in points:
            if s == r:
                continue
            basis = basis * (atom - s)
            denom *= r - s
        total = total + values[r] * basis * Fraction(1, denom)
    return total


def widen_guards(sum_: SymbolicSum, max_steps: int = 8) -> SymbolicSum:
    """Align guards that differ by a boundary when the value vanishes.

    Example 6's final move: the guard ``n >= 2`` can be relaxed to
    ``n >= 1`` because the term's value is 0 at n = 1; the two terms
    then share a guard and combine.  We look for pairs of terms whose
    guards differ in exactly one GEQ constraint by a constant offset,
    and widen the stronger one step by step, checking symbolically
    (substituting the boundary slice into the value) that each added
    slice contributes 0.
    """
    terms = list(sum_.terms)
    changed = True
    while changed:
        changed = False
        for i, t1 in enumerate(terms):
            for j, t2 in enumerate(terms):
                if i == j:
                    continue
                widened = _try_align(t1, t2, max_steps)
                if widened is not None:
                    terms[i] = widened
                    changed = True
        if changed:
            combined = SymbolicSum(terms, sum_.exactness).combine_like_guards()
            terms = list(combined.terms)
    return SymbolicSum(terms, sum_.exactness).combine_like_guards()


def _try_align(t1: Term, t2: Term, max_steps: int) -> Optional[Term]:
    """Widen t1's guard to equal t2's when only zero-value slices join."""
    g1, g2 = t1.guard.normalize(), t2.guard.normalize()
    if g1 is None or g2 is None:
        return None
    c1_set, c2_set = set(g1.constraints), set(g2.constraints)
    only1 = [c for c in g1.constraints if c not in c2_set]
    only2 = [c for c in g2.constraints if c not in c1_set]
    if len(only1) != 1 or len(only2) != 1:
        return None
    c1, c2 = only1[0], only2[0]
    if not (c1.is_geq() and c2.is_geq()):
        return None
    if c1.expr.coeffs != c2.expr.coeffs:
        return None
    d = c2.expr.const - c1.expr.const
    if not 0 < d <= max_steps:
        return None  # t1 must be strictly stronger, by few steps
    # slices: expr1 == -1, -2, ..., -d  (i.e. expr2 == d-1, ..., 0)
    for k in range(1, d + 1):
        if not _slice_value_zero(t1.value, c1.expr, -k):
            return None
    return Term(g2, t1.value)


def _slice_value_zero(value: Polynomial, expr: Affine, const: int) -> bool:
    """Is the value identically zero on the slice ``expr == const``?

    Conservative: solves the slice for a unit-coefficient symbol and
    substitutes; returns False when no unit symbol exists.
    """
    unit = next((v for v, c in expr.coeffs if abs(c) == 1), None)
    if unit is None:
        return False
    k = expr.coeff(unit)
    rest = Affine(
        {v: c for v, c in expr.coeffs if v != unit}, expr.const - const
    )
    # k·unit + rest' == 0 with rest' = expr - k·unit - const
    replacement = (rest if k == -1 else -rest).to_polynomial()
    try:
        substituted = value.substitute(unit, replacement)
    except ValueError:
        return False
    return substituted.is_zero()


def _enumerate_region(
    conj: Conjunct, max_enum: int
) -> Optional[List[Dict[str, int]]]:
    """All integer points of a conjunct if provably few, else None."""
    n = conj.normalize()
    if n is None:
        return []
    free = n.free_variables()
    if not free:
        return [{}] if satisfiable(n) else []
    boxes = []
    for v in free:
        lo, hi = None, None
        for c in n.geqs():
            coeffs = dict(c.expr.coeffs)
            k = coeffs.get(v)
            if k is None or len(coeffs) != 1:
                continue
            # single-variable bounds only (normalize keeps them unit)
            if k == 1:
                lo = max(lo, -c.expr.const) if lo is not None else -c.expr.const
            elif k == -1:
                hi = min(hi, c.expr.const) if hi is not None else c.expr.const
        if lo is None or hi is None or hi - lo + 1 > max_enum:
            return None
        boxes.append(range(lo, hi + 1))
    pts = []
    for vals in itertools.product(*boxes):
        env = dict(zip(free, vals))
        if n.is_satisfied(env):
            pts.append(env)
        if len(pts) > max_enum:
            return None
    return pts
