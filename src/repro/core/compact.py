"""Compacting single-symbol answers into one quasi-polynomial term.

A sum of guarded terms over one symbolic constant n is, beyond the
largest guard threshold, a single quasi-polynomial: every affine guard
``a·n + c >= 0`` with a > 0 has stabilized to true, every stride guard
is periodic, and the values are quasi-polynomials.  So the whole
answer can be rewritten as

    (Σ : n >= N0 : Q(n))  +  one point term per n below N0,

with Q recovered *exactly* by interpolation: on [N0, ∞) the total is a
quasi-polynomial of degree <= d and period p, so agreement on d+1
sample points per residue class determines it (polynomial identity
theorem, per class).

This reproduces by algorithm what the paper does by hand at the end of
Example 6 and in Example 2 ("we realize that it can be defined by a
first degree polynomial"): recognizing that piecewise answers collapse.
"""

from fractions import Fraction
from typing import List, Optional

from repro.intarith import ceil_div, lcm_list
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.core.result import SymbolicSum, Term
from repro.qpoly import ModAtom, Polynomial


def compact_single_symbol(
    sum_: SymbolicSum, symbol: Optional[str] = None, max_points: int = 512
) -> SymbolicSum:
    """Rewrite a single-symbol answer as one tail term + point terms.

    Returns the input unchanged when the preconditions fail (more than
    one symbol, wildcard guards that do not tidy away, terms without a
    lower bound on the symbol, or a boundary region larger than
    ``max_points``).
    """
    from repro.core.merge import simplify_guard

    if not sum_.terms:
        return sum_
    symbols = sum_.symbols()
    if symbol is None:
        if len(symbols) != 1:
            return sum_
        symbol = symbols[0]
    elif symbols and symbols != [symbol]:
        return sum_

    # Tidy guards (project floor-definition wildcards away) and collect
    # thresholds, strides and degrees.
    degree = 0
    moduli: List[int] = [1]
    thresholds: List[int] = []
    tidied: List[Term] = []
    for term in sum_.terms:
        guard = simplify_guard(term.guard)
        if any(
            not guard.is_stride_wildcard(w) for w in guard.wildcards
        ):
            return sum_
        has_lower = False
        for c in guard.constraints:
            if c.is_eq():
                wilds = [v for v in c.variables() if v in guard.wildcards]
                if wilds:
                    moduli.append(abs(c.coeff(wilds[0])))
                    continue
                # n == k: a point guard
                a = c.coeff(symbol)
                if a == 0:
                    return sum_
                if (-c.expr.const) % a:
                    continue  # never satisfied
                thresholds.append((-c.expr.const) // a + 1)
                has_lower = True
                continue
            a = c.coeff(symbol)
            if a == 0:
                if c.expr.is_constant():
                    continue
                return sum_
            # a·n + const >= 0: true from ceil(-const/a) upward (a>0)
            # or up to floor(-const/-a) (a<0): both give a threshold
            # past which the truth value is constant.
            if a > 0:
                has_lower = True
                thresholds.append(ceil_div(-c.expr.const, a))
            else:
                thresholds.append(ceil_div(-c.expr.const, a) + 1)
        if not has_lower:
            return sum_  # a left-infinite piece: no compact tail form
        for atom in term.value.atoms():
            if isinstance(atom, ModAtom):
                moduli.append(atom.modulus)
        degree = max(degree, term.value.total_degree())
        tidied.append(Term(guard, term.value))

    period = lcm_list(moduli)
    n0 = max(thresholds) if thresholds else 0
    n_min = min(thresholds) if thresholds else 0
    if n0 - n_min > max_points or period * (degree + 1) > max_points:
        return sum_
    working = SymbolicSum(tidied, sum_.exactness)

    # Interpolate the stable tail per residue class of the period.
    tail_value = Polynomial()
    n_poly = Polynomial.variable(symbol)
    mod_atom = (
        Polynomial.atom(ModAtom({symbol: 1}, 0, period))
        if period > 1
        else None
    )
    for residue in range(period):
        # d+1 sample points in this class at or beyond n0
        first = n0 + ((residue - n0) % period)
        xs = [first + period * k for k in range(degree + 1)]
        ys = [Fraction(working.evaluate({symbol: x})) for x in xs]
        poly_r = _lagrange(xs, ys, n_poly)
        if period == 1:
            tail_value = poly_r
        else:
            indicator = _residue_indicator(mod_atom, residue, period)
            tail_value = tail_value + poly_r * indicator

    # Absorb boundary points that already agree with the tail: extend
    # the guard downward while total(n) == Q(n) (the move the paper
    # makes in Example 6: "we can safely relax the guard").
    while n0 > n_min and Fraction(
        working.evaluate({symbol: n0 - 1})
    ) == tail_value.evaluate({symbol: n0 - 1}):
        n0 -= 1

    tail_guard = Conjunct(
        [Constraint.geq(Affine({symbol: 1}, -n0))]
    )
    out = [Term(tail_guard, tail_value)]

    # Points below the stable region get explicit point terms.
    for n in range(n_min, n0):
        v = working.evaluate({symbol: n})
        if v:
            point = Conjunct([Constraint.eq(Affine({symbol: 1}, -n))])
            out.append(Term(point, Polynomial.constant(v)))
    return SymbolicSum(out, sum_.exactness)


def _lagrange(xs, ys, x_poly: Polynomial) -> Polynomial:
    total = Polynomial()
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if not yi:
            continue
        basis = Polynomial.one
        denom = Fraction(1)
        for j, xj in enumerate(xs):
            if i == j:
                continue
            basis = basis * (x_poly - xj)
            denom *= xi - xj
        total = total + basis * (yi / denom)
    return total


def _residue_indicator(
    mod_atom: Polynomial, residue: int, period: int
) -> Polynomial:
    """A polynomial in (n mod p) that is 1 at ``residue``, 0 elsewhere."""
    total = Polynomial.one
    denom = Fraction(1)
    for r in range(period):
        if r == residue:
            continue
        total = total * (mod_atom - r)
        denom *= residue - r
    return total * (Fraction(1) / denom)
