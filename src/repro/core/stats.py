"""Global engine counters and timers ("observability layer").

The counting engine spends its time in a handful of hot primitives:
satisfiability checks, ``Conjunct.normalize`` fixed-point passes,
Fourier-Motzkin shadow computations, splinters, residue splits and
complete redundancy tests.  This module provides cheap process-global
counters for those events so that slow queries can be diagnosed
without a profiler.

The layer is off by default and designed for near-zero overhead when
disabled: instrumented call sites guard every update with a single
``if stats.ENABLED`` attribute check.  This module deliberately
imports nothing from the rest of the package at import time so the
low-level ``repro.omega`` modules can depend on it without layering
cycles (``engine_snapshot`` imports the sat cache lazily).

Two service-facing facilities also live here:

* **Work budgets.**  ``set_work_budget(n)`` arms a process-global cap
  on engine work, measured in satisfiability calls (the engine's unit
  of forward progress).  Instrumented sites call ``charge_budget``,
  which raises :class:`WorkBudgetExceeded` past the cap.  Like the
  counters, the check behind ``BUDGET_LIMIT is None`` is a single
  attribute load when disarmed.
* **Snapshot isolation.**  All counters are process-global, so
  concurrent jobs in one process would interleave.  The batch service
  therefore runs each job in its own worker process and calls
  :func:`reset_stats` + :func:`enable_stats` at job start; the
  per-job ``stats`` block in a batch response is an
  :func:`engine_snapshot` taken right before the worker returns.

Usage::

    from repro.core import stats

    with stats.collecting_stats() as counters:
        count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
    print(stats.format_stats(counters))

or imperatively with :func:`enable_stats` / :func:`stats_snapshot`.
"""

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

#: Master switch.  Instrumented call sites check this before touching
#: any counter; keep reads as plain module-attribute loads (do *not*
#: ``from ... import ENABLED``, which would freeze the value).
ENABLED = False

#: Names every instrumented call site uses, with their meaning.  The
#: snapshot always contains all of them (zero when never hit) so
#: downstream tooling can rely on the schema.
COUNTER_NAMES = (
    "sat_calls",  # satisfiable() invocations, recursion included
    "sat_cache_hits",  # answered from the LRU memo
    "sat_cache_misses",  # required an actual elimination run
    "sat_cache_evictions",  # LRU entries dropped to respect the limit
    "normalize_calls",  # Conjunct.normalize() invocations
    "normalize_memo_hits",  # answered from the per-instance memo
    "normalize_iterations",  # fixed-point passes actually executed
    "kernel_rows_normalized",  # dense rows swept by normalize_rows
    "fm_eliminations",  # real/dark shadow projections computed
    "fm_rows_reused",  # parent rows carried unchanged through an FM step
    "splinters_taken",  # splinter subproblems generated
    "residue_splits",  # residue-class enumerations of a stride
    "residue_cases",  # total residue cases those splits expanded to
    "redundancy_checks",  # complete single-constraint redundancy tests
    "answer_memo_hits",  # recursion nodes answered from the answer memo
    "answer_memo_misses",  # nodes that had to be computed
    "answer_memo_evictions",  # LRU entries dropped to respect the cap
    "answer_memo_renames",  # hits translated across free-symbol names
    "genfunc_calls",  # queries the router first offered to genfunc
    "genfunc_fallbacks",  # of those, rejected and re-run on the recursion
    "genfunc_clauses",  # clauses the cone pipeline counted
    "genfunc_cones",  # signed unimodular cone terms specialized
    "automaton_calls",  # queries the router first offered to the DFA engine
    "automaton_fallbacks",  # of those, rejected and re-run on the recursion
    "automaton_builds",  # formula automata actually constructed
    "automaton_states",  # states across those constructions (post-minimize)
    "automaton_cache_hits",  # builds avoided by the resident LRU
    "automaton_disk_hits",  # builds restored from the persistent store
    "automaton_disk_writes",  # built automata persisted to the store
)

_counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
_timers: Dict[str, float] = {}

#: Work-budget switch.  ``None`` means no budget; otherwise the
#: maximum number of budget units (satisfiability calls) a computation
#: may spend before :class:`WorkBudgetExceeded` is raised.  Call sites
#: guard with ``if stats.BUDGET_LIMIT is not None``.
BUDGET_LIMIT = None
_budget_used = 0


#: Optional provider of serving-layer statistics (see repro.serve).
#: When a long-lived daemon is running in this process it registers a
#: zero-argument callable here and :func:`engine_snapshot` includes its
#: return value under a ``"serve"`` key -- uptime, queue depth,
#: coalesce/shed counters and per-tier latency quantiles.  ``None``
#: (the default, and the state in every batch worker process) adds
#: nothing, so snapshots taken outside a daemon are unchanged.
_SERVE_PROVIDER = None


def set_serve_stats_provider(provider):
    """Register (or, with None, clear) the serving-stats provider.

    Returns the previously registered provider so tests and nested
    daemons can restore it.
    """
    global _SERVE_PROVIDER
    previous = _SERVE_PROVIDER
    _SERVE_PROVIDER = provider
    return previous


class WorkBudgetExceeded(RuntimeError):
    """A computation exceeded its work budget (see set_work_budget)."""

    def __init__(self, used: int, limit: int):
        super().__init__(
            "work budget exceeded: %d units spent, limit %d" % (used, limit)
        )
        self.used = used
        self.limit = limit


def set_work_budget(limit: Optional[int]) -> Optional[int]:
    """Arm (or, with None, disarm) the work budget; returns the old limit.

    Arming resets the spent-unit counter, so a budget always applies to
    the work that follows the call.
    """
    global BUDGET_LIMIT, _budget_used
    if limit is not None and limit < 0:
        raise ValueError("work budget must be >= 0 or None")
    previous = BUDGET_LIMIT
    BUDGET_LIMIT = limit
    _budget_used = 0
    return previous


def budget_spent() -> int:
    """Budget units charged since the budget was last armed."""
    return _budget_used


def charge_budget(n: int = 1) -> None:
    """Spend ``n`` budget units; raises once the armed limit is passed.

    Call sites should guard with ``if stats.BUDGET_LIMIT is not None``
    so the disarmed cost stays one attribute load.
    """
    global _budget_used
    _budget_used += n
    limit = BUDGET_LIMIT
    if limit is not None and _budget_used > limit:
        raise WorkBudgetExceeded(_budget_used, limit)


def enable_stats() -> None:
    """Turn collection on (counters keep their current values)."""
    global ENABLED
    ENABLED = True


def disable_stats() -> None:
    """Turn collection off (counters keep their current values)."""
    global ENABLED
    ENABLED = False


def reset_stats() -> None:
    """Zero every counter and timer."""
    for name in _counters:
        _counters[name] = 0
    _timers.clear()


def bump(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter (call sites should guard with ENABLED)."""
    _counters[name] = _counters.get(name, 0) + n


def add_time(name: str, seconds: float) -> None:
    """Accumulate wall time under ``name``."""
    _timers[name] = _timers.get(name, 0.0) + seconds


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``name``.

    Only records when collection is enabled, so it is safe (and cheap)
    to leave in place permanently.
    """
    if not ENABLED:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        add_time(name, time.perf_counter() - start)


def stats_snapshot() -> Dict[str, Union[int, float]]:
    """A copy of all counters plus ``time_<name>`` timer totals."""
    snap: Dict[str, Union[int, float]] = dict(_counters)
    for name, seconds in _timers.items():
        snap["time_%s" % name] = seconds
    return snap


def engine_snapshot() -> Dict[str, Union[int, float]]:
    """Counters, timers *and* cache occupancy in one mapping.

    This is the single introspection entry point shared by the CLI's
    ``--stats`` output and the batch service's per-job ``stats`` block:
    everything in :func:`stats_snapshot` plus the satisfiability LRU's
    current ``sat_cache_size`` / ``sat_cache_limit``.  The sat cache is
    imported lazily to keep this module import-cycle free.
    """
    snap = stats_snapshot()
    from repro.omega.satisfiability import sat_cache_info

    info = sat_cache_info()
    snap["sat_cache_size"] = info["size"]
    snap["sat_cache_limit"] = info["limit"]
    from repro.core.memo import answer_memo_info

    memo = answer_memo_info()
    snap["answer_memo_size"] = memo["size"]
    snap["answer_memo_limit"] = memo["limit"]
    from repro.core.backend import current_backend

    snap["backend"] = current_backend()
    if _SERVE_PROVIDER is not None:
        try:
            snap["serve"] = _SERVE_PROVIDER()
        except Exception:  # a broken provider must not sink a snapshot
            pass
    return snap


@contextmanager
def collecting_stats(reset: bool = True) -> Iterator[Dict[str, int]]:
    """Enable collection for the ``with`` body.

    Yields the live counter mapping (read it inside or after the
    block).  By default the counters are zeroed on entry; the previous
    enabled/disabled state is restored on exit.
    """
    global ENABLED
    previous = ENABLED
    if reset:
        reset_stats()
    ENABLED = True
    try:
        yield _counters
    finally:
        ENABLED = previous


def format_stats(snapshot=None) -> str:
    """Human-readable one-counter-per-line rendering.

    Accepts a snapshot mapping; defaults to the live counters.  Hit
    rates are derived for the two caches when their totals are
    nonzero.
    """
    snap = dict(stats_snapshot() if snapshot is None else snapshot)
    lines = []
    for name in COUNTER_NAMES:
        lines.append("%-22s %d" % (name, snap.pop(name, 0)))
    for name in sorted(snap):
        value = snap[name]
        if isinstance(value, float):
            lines.append("%-22s %.6f" % (name, value))
        else:
            lines.append("%-22s %s" % (name, value))
    return "\n".join(lines)
