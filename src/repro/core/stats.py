"""Global engine counters and timers ("observability layer").

The counting engine spends its time in a handful of hot primitives:
satisfiability checks, ``Conjunct.normalize`` fixed-point passes,
Fourier-Motzkin shadow computations, splinters, residue splits and
complete redundancy tests.  This module provides cheap process-global
counters for those events so that slow queries can be diagnosed
without a profiler.

The layer is off by default and designed for near-zero overhead when
disabled: instrumented call sites guard every update with a single
``if stats.ENABLED`` attribute check.  This module deliberately
imports nothing from the rest of the package so the low-level
``repro.omega`` modules can depend on it without layering cycles.

Usage::

    from repro.core import stats

    with stats.collecting_stats() as counters:
        count("1 <= i <= n and 1 <= j <= i", ["i", "j"])
    print(stats.format_stats(counters))

or imperatively with :func:`enable_stats` / :func:`stats_snapshot`.
"""

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Union

#: Master switch.  Instrumented call sites check this before touching
#: any counter; keep reads as plain module-attribute loads (do *not*
#: ``from ... import ENABLED``, which would freeze the value).
ENABLED = False

#: Names every instrumented call site uses, with their meaning.  The
#: snapshot always contains all of them (zero when never hit) so
#: downstream tooling can rely on the schema.
COUNTER_NAMES = (
    "sat_calls",  # satisfiable() invocations, recursion included
    "sat_cache_hits",  # answered from the LRU memo
    "sat_cache_misses",  # required an actual elimination run
    "sat_cache_evictions",  # LRU entries dropped to respect the limit
    "normalize_calls",  # Conjunct.normalize() invocations
    "normalize_memo_hits",  # answered from the per-instance memo
    "normalize_iterations",  # fixed-point passes actually executed
    "fm_eliminations",  # real/dark shadow projections computed
    "splinters_taken",  # splinter subproblems generated
    "residue_splits",  # residue-class enumerations of a stride
    "residue_cases",  # total residue cases those splits expanded to
    "redundancy_checks",  # complete single-constraint redundancy tests
)

_counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
_timers: Dict[str, float] = {}


def enable_stats() -> None:
    """Turn collection on (counters keep their current values)."""
    global ENABLED
    ENABLED = True


def disable_stats() -> None:
    """Turn collection off (counters keep their current values)."""
    global ENABLED
    ENABLED = False


def reset_stats() -> None:
    """Zero every counter and timer."""
    for name in _counters:
        _counters[name] = 0
    _timers.clear()


def bump(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter (call sites should guard with ENABLED)."""
    _counters[name] = _counters.get(name, 0) + n


def add_time(name: str, seconds: float) -> None:
    """Accumulate wall time under ``name``."""
    _timers[name] = _timers.get(name, 0.0) + seconds


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``name``.

    Only records when collection is enabled, so it is safe (and cheap)
    to leave in place permanently.
    """
    if not ENABLED:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        add_time(name, time.perf_counter() - start)


def stats_snapshot() -> Dict[str, Union[int, float]]:
    """A copy of all counters plus ``time_<name>`` timer totals."""
    snap: Dict[str, Union[int, float]] = dict(_counters)
    for name, seconds in _timers.items():
        snap["time_%s" % name] = seconds
    return snap


@contextmanager
def collecting_stats(reset: bool = True) -> Iterator[Dict[str, int]]:
    """Enable collection for the ``with`` body.

    Yields the live counter mapping (read it inside or after the
    block).  By default the counters are zeroed on entry; the previous
    enabled/disabled state is restored on exit.
    """
    global ENABLED
    previous = ENABLED
    if reset:
        reset_stats()
    ENABLED = True
    try:
        yield _counters
    finally:
        ENABLED = previous


def format_stats(snapshot=None) -> str:
    """Human-readable one-counter-per-line rendering.

    Accepts a snapshot mapping; defaults to the live counters.  Hit
    rates are derived for the two caches when their totals are
    nonzero.
    """
    snap = dict(stats_snapshot() if snapshot is None else snapshot)
    lines = []
    for name in COUNTER_NAMES:
        lines.append("%-22s %d" % (name, snap.pop(name, 0)))
    for name in sorted(snap):
        value = snap[name]
        if isinstance(value, float):
            lines.append("%-22s %.6f" % (name, value))
        else:
            lines.append("%-22s %s" % (name, value))
    return "\n".join(lines)
