"""Basic sums via the paper's four-piece decomposition (Section 4.2).

The paper reduces ``(Σ i : L <= i <= U : i**p)`` to sums that start at
1, splitting into four guarded pieces to handle lower bounds other
than 1 and negative bounds:

    (Σ i : 1 <= i <= U ∧ L <= U : i**p)
  - (Σ i : 1 <= i <= L-1 < U : i**p)
  + (-1)**p (Σ i : 1 <= i <= -L ∧ L <= U : i**p)
  - (-1)**p (Σ i : 1 <= i <= -U-1 < -L : i**p)

The engine itself uses the equivalent telescoping identity
``F_p(U) - F_p(L-1)`` (see :mod:`repro.core.powersums`); this module
implements the literal four-piece form so tests can confirm the two
agree, and so the baselines can share it.
"""

from typing import List

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.core.powersums import power_sum
from repro.core.result import SymbolicSum, Term


def four_piece_power_sum(p: int, lower: Affine, upper: Affine) -> SymbolicSum:
    """(Σ i : lower <= i <= upper : i**p) by the four-piece decomposition.

    ``lower`` and ``upper`` are affine in the symbolic constants; the
    result is a guarded sum valid for *all* integer values of the
    symbols (empty ranges contribute 0).
    """
    sign = -1 if p % 2 else 1
    le = Constraint.leq(lower, upper)  # L <= U, common to every piece
    if p == 0:
        # §4.2: "If p is equal to zero, the sum is simply
        # (Σ : L <= U : U - L + 1)" -- the pieces below would miss the
        # i = 0 term (0**0 counts as 1 in a range count).
        return SymbolicSum(
            [Term(Conjunct([le]), (upper - lower + 1).to_polynomial())]
        )
    terms: List[Term] = []

    # + (Σ : 1 <= U ∧ L <= U : S_p(U))
    terms.append(
        Term(
            Conjunct([Constraint.leq(Affine.const_expr(1), upper), le]),
            power_sum(p, upper.to_polynomial()),
        )
    )
    # - (Σ : 1 <= L-1 ∧ L <= U : S_p(L-1))
    terms.append(
        Term(
            Conjunct([Constraint.leq(Affine.const_expr(2), lower), le]),
            -power_sum(p, (lower - 1).to_polynomial()),
        )
    )
    # + (-1)^p (Σ : 1 <= -L ∧ L <= U : S_p(-L))
    terms.append(
        Term(
            Conjunct([Constraint.leq(lower, Affine.const_expr(-1)), le]),
            power_sum(p, (-lower).to_polynomial()) * sign,
        )
    )
    # - (-1)^p (Σ : 1 <= -U-1 ∧ L <= U : S_p(-U-1))
    terms.append(
        Term(
            Conjunct([Constraint.leq(upper, Affine.const_expr(-2)), le]),
            -power_sum(p, (-upper - 1).to_polynomial()) * sign,
        )
    )
    return SymbolicSum(terms)


def four_piece_polynomial_sum(
    coefficients: List, lower: Affine, upper: Affine
) -> SymbolicSum:
    """(Σ i : L <= i <= U : Σ_p c_p·i**p)  (Section 4.3's rewrite)."""
    total = SymbolicSum([])
    for p, c in enumerate(coefficients):
        if c:
            total = total + four_piece_power_sum(p, lower, upper).scale(c)
    return total
