"""Counting-backend router state: recursion vs genfunc vs automaton.

The engine has three exact counting backends:

* ``"recursion"`` -- the paper's splinter-based summation recursion
  (:mod:`repro.core.convex`), fully general: symbolic constants,
  polynomial summands, any dimension, bound strategies.
* ``"genfunc"`` -- the generating-function engine
  (:mod:`repro.genfunc`): Brion/Barvinok-style signed unimodular
  cones, exact and coefficient-size-independent, on a concrete
  fragment (no free symbols, constant summand, residual dimension
  <= 2).
* ``"automaton"`` -- the binary-DFA engine (:mod:`repro.automaton`):
  LSBF two's-complement carry automata, exact on concrete formulas
  with constant summands in any dimension (within a state budget),
  and the only backend that *amortizes* -- one build per formula,
  then O(bits) membership and box/threshold count queries.

Which one ``count`` / ``sum_poly`` try first is process-global state
managed here, mirroring :mod:`repro.omega.kernels`: the
``REPRO_BACKEND`` environment variable picks the startup default
(``recursion`` when unset), :func:`set_backend` switches at runtime
(returning the previous choice so scopes can restore it), and the
per-call ``backend=`` keyword overrides without touching the global.

**Fallback rule:** the accelerated backends signal anything outside
their fragment by raising their ``UnsupportedFormula``
(:class:`repro.genfunc.UnsupportedFormula` /
:class:`repro.automaton.UnsupportedFormula`); the router catches
exactly that exception and re-answers with the recursion, bumping the
``genfunc_fallbacks`` / ``automaton_fallbacks`` stats counter.  Every
other exception (including ``UnboundedSumError``, which all backends
share) propagates.  Selecting an accelerated backend is therefore
always safe: answers either come from it or from the recursion, never
from neither.

This module imports nothing from the rest of the package so any layer
(CLI, service, serve) can depend on it without cycles.
"""

import os

BACKENDS = ("recursion", "genfunc", "automaton")


def _init_backend() -> str:
    name = os.environ.get("REPRO_BACKEND", "recursion")
    if name not in BACKENDS:
        raise ValueError(
            "REPRO_BACKEND must be one of %s, got %r"
            % ("/".join(BACKENDS), name)
        )
    return name


_BACKEND = _init_backend()


def current_backend() -> str:
    """The process-global default backend (one of :data:`BACKENDS`)."""
    return _BACKEND


def set_backend(name: str) -> str:
    """Switch the process-global default backend; returns the previous one."""
    global _BACKEND
    if name not in BACKENDS:
        raise ValueError(
            "backend must be one of %s, got %r" % ("/".join(BACKENDS), name)
        )
    previous = _BACKEND
    _BACKEND = name
    return previous


def resolve_backend(name=None) -> str:
    """Validate a per-call override, or return the global default."""
    if name is None:
        return _BACKEND
    if name not in BACKENDS:
        raise ValueError(
            "backend must be one of %s, got %r" % ("/".join(BACKENDS), name)
        )
    return name
