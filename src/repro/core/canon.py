"""Alpha-invariant canonicalization shared by hashing and memoization.

Two clients need to decide "is this problem the same as one I have
seen, up to renaming?":

* the batch service's request hashing
  (:mod:`repro.service.request`), which canonicalizes a parsed
  *formula* counted over a set of variables, and
* the answer memo (:mod:`repro.core.memo`), which canonicalizes a
  single *conjunct* plus summation variables, summand polynomial and
  mode at every node of the counting recursion.

Both are built on the same two-pass scheme.  Pass one assigns
canonical names to variables by **iterative signature refinement**
(:func:`_refine`): each variable's signature is the multiset of its
atom occurrences (atom shape with renameable names masked, its own
coefficient, and the coefficient/rank of co-occurring renameable
variables), refined until the rank partition stabilizes -- every
ingredient is alpha-invariant, so the final ranking is too.  Pass two
serializes the structure with the assigned names, sorting unordered
parts, which makes operand/constraint order irrelevant.

Variables left tied at the refinement fixpoint are structurally
interchangeable for every signature the refinement can see; for such
ties the assignment is broken by original name, which can, for
genuinely asymmetric inputs engineered to defeat refinement, cost a
duplicate cache entry -- never a wrong hit, since every key stays a
*complete* serialization of its input.

Canonical names live in control-character namespaces no user
identifier can occupy:

* ``"\\x02" + index`` -- bound variables (counted variables,
  quantifier-bound variables, conjunct wildcards),
* ``"\\x03" + index`` -- free symbolic constants, used only by the
  conjunct-level key, which must rename free symbols too so a cached
  answer can be *renamed back* into the caller's vocabulary on a hit.

(The satisfiability cache's key uses ``"\\x00"`` and the pass-one mask
is ``"\\x01"``; the namespaces are deliberately disjoint.)
"""

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.problem import Conjunct
from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
)
from repro.qpoly import Polynomial

#: Placeholder for a renameable variable in the shape (pass-one) key.
_MASK = "\x01"

#: Prefix for canonical bound-variable names in the exact (pass-two)
#: serialization.  A control character keeps canonical names outside
#: the identifier namespace: free constants keep their user-visible
#: names in the formula-level key, so naming one ``b0`` must not make
#: it serialize identically to a canonically-renamed bound variable.
_BOUND_PREFIX = "\x02"

#: Prefix for canonical free-symbol names in the conjunct-level key.
FREE_PREFIX = "\x03"


# -- pass one: iterative signature refinement ----------------------------


def _refine(
    variables,
    marks: Mapping[str, Sequence[str]],
    atoms: Sequence[Tuple[str, Sequence[Tuple[str, int]], bool]],
) -> Dict[str, int]:
    """Rank variables by iterative refinement of occurrence signatures.

    ``atoms`` holds one ``(descriptor, [(var, coeff), ...], is_eq)``
    triple per atom, where the descriptor is alpha-invariant and the
    pairs list the renameable variables the atom mentions.  ``marks``
    gives extra string occurrences (quantifier context, variable role)
    per variable.  Returns a rank for every variable; equal ranks mean
    the refinement could not distinguish the variables.
    """
    rank: Dict[str, int] = {v: 0 for v in variables}
    for _ in range(len(rank) + 1):
        sigs: Dict[str, str] = {}
        for v in rank:
            # Own previous rank first: refinement only ever splits
            # classes, so the loop terminates in <= |variables| rounds.
            parts: List = [("r", rank[v])]
            parts.extend(("q", m) for m in marks.get(v, ()))
            for desc, pairs, is_eq in atoms:
                occurrences = [c for u, c in pairs if u == v]
                if not occurrences:
                    continue
                others = sorted((k, rank[w]) for w, k in pairs if w != v)
                if is_eq:
                    # Record the sign-canonical orientation; an EQ atom
                    # is the same constraint negated.
                    flipped = sorted((-k, r) for k, r in others)
                    for c in occurrences:
                        parts.append(
                            ("a", desc)
                            + min((c, others), (-c, flipped))
                        )
                else:
                    for c in occurrences:
                        parts.append(("a", desc, c, others))
            sigs[v] = repr(sorted(parts))
        ordered = sorted(set(sigs.values()))
        position = {s: i for i, s in enumerate(ordered)}
        refined = {v: position[sigs[v]] for v in rank}
        if refined == rank:
            break
        rank = refined
    return rank


# -- formula-level canonicalization (the request-hash client) ------------


def _affine_shape(expr: Affine, bound) -> str:
    masked = sorted(
        (_MASK if v in bound else v, c) for v, c in expr.coeffs
    )
    return "%s+%d" % (masked, expr.const)


def _collect_occurrences(
    node: Formula,
    bound: frozenset,
    context: str,
    atoms: List[Tuple[str, List[Tuple[str, int]], bool]],
    marks: Dict[str, List[str]],
) -> None:
    """Pass-one scan: atom occurrences of bound variables.

    ``atoms`` receives ``(descriptor, [(var, coeff), ...], is_eq)``
    per atom, where the descriptor (atom shape with bound names masked
    plus the boolean-context path) is alpha-invariant.  ``marks``
    gives every quantifier-bound variable a baseline occurrence so a
    variable the body never mentions still gets a signature.
    """
    if node is TrueF or node is FalseF:
        return
    if isinstance(node, Atom):
        c = node.constraint
        if c.is_eq():
            # e = 0 and -e = 0 are the same atom, and Constraint.eq
            # orients the sign by variable *names* -- mask that out or
            # renaming would perturb the signatures.
            shape = min(
                _affine_shape(c.expr, bound),
                _affine_shape(-c.expr, bound),
            )
        else:
            shape = _affine_shape(c.expr, bound)
        desc = "%s:a(%s,%s)" % (context, c.kind, shape)
        atoms.append(
            (
                desc,
                [(v, k) for v, k in c.expr.coeffs if v in bound],
                c.is_eq(),
            )
        )
        return
    if isinstance(node, StrideAtom):
        desc = "%s:s(%d,%s)" % (
            context,
            node.modulus,
            _affine_shape(node.expr, bound),
        )
        atoms.append(
            (desc, [(v, k) for v, k in node.expr.coeffs if v in bound], False)
        )
        return
    if isinstance(node, Not):
        _collect_occurrences(node.child, bound, context + "n", atoms, marks)
        return
    if isinstance(node, (And, Or)):
        tag = "&" if isinstance(node, And) else "|"
        for child in node.children:
            _collect_occurrences(child, bound, context + tag, atoms, marks)
        return
    if isinstance(node, (Exists, Forall)):
        tag = "E" if isinstance(node, Exists) else "A"
        ctx = "%s%s%d" % (context, tag, len(node.variables))
        for v in node.variables:
            marks.setdefault(v, []).append(ctx)
        inner = bound | frozenset(node.variables)
        _collect_occurrences(node.body, inner, ctx, atoms, marks)
        return
    raise TypeError("unknown formula node %r" % (node,))


def _canonical_names(
    formula: Formula,
    over: Sequence[str],
    poly: Optional[Polynomial] = None,
) -> Dict[str, str]:
    """Alpha-invariant canonical names for every bound variable.

    Iterative refinement (see :func:`_refine`); original names only
    break ties between variables the refinement cannot tell apart
    (i.e. interchangeable for every signature it can see).

    For a ``sum`` request the summand also distinguishes variables: a
    formula symmetric in two counted variables with an asymmetric
    summand (``j*j*i`` over a box) must not fall through to the
    original-name tie-break, or renaming would flip which variable the
    canonical summand squares.  The poly's role marks are applied as a
    *secondary* key only -- they split ties but never reorder
    variables the formula refinement already separated, so hashes of
    non-degenerate requests are unchanged.
    """
    atoms: List[Tuple[str, List[Tuple[str, int]], bool]] = []
    marks: Dict[str, List[str]] = {}
    _collect_occurrences(formula, frozenset(over), "", atoms, marks)
    variables = set(over) | set(marks)
    for _, pairs, _eq in atoms:
        variables.update(v for v, _ in pairs)
    if not variables:
        return {}
    rank = _refine(variables, marks, atoms)
    tied = len(set(rank.values())) < len(rank)
    if poly is not None and tied:
        pmarks: Dict[str, List[str]] = {}
        _poly_marks(poly, pmarks)
        poly_key = {v: repr(sorted(pmarks.get(v, ()))) for v in variables}
        ordered = sorted(variables, key=lambda v: (rank[v], poly_key[v], v))
    else:
        ordered = sorted(variables, key=lambda v: (rank[v], v))
    return {
        v: "%s%d" % (_BOUND_PREFIX, index) for index, v in enumerate(ordered)
    }


def _affine_exact(expr: Affine, bound, names: Dict[str, str]) -> str:
    """Serialize with canonical names applied to in-scope bound vars."""
    out = [
        (names[v] if v in bound else v, c) for v, c in expr.coeffs
    ]
    return "%s+%d" % (sorted(out), expr.const)


def _canonical(node: Formula, bound: frozenset, names: Dict[str, str]) -> str:
    """Pass two: emit the canonical form with precomputed names.

    ``and`` / ``or`` children are ordered by their finished canonical
    serialization, so operand order cannot leak into the key.
    """
    if node is TrueF:
        return "T"
    if node is FalseF:
        return "F"
    if isinstance(node, Atom):
        c = node.constraint
        body = _affine_exact(c.expr, bound, names)
        if c.is_eq():
            # Constraint.eq orients the sign by variable names; pick
            # the lexicographically smaller of the two equivalent
            # orientations so renaming cannot flip the serialization.
            body = min(body, _affine_exact(-c.expr, bound, names))
        return "a(%s,%s)" % (c.kind, body)
    if isinstance(node, StrideAtom):
        return "s(%d,%s)" % (
            node.modulus,
            _affine_exact(node.expr, bound, names),
        )
    if isinstance(node, Not):
        return "n(%s)" % _canonical(node.child, bound, names)
    if isinstance(node, (And, Or)):
        tag = "&" if isinstance(node, And) else "|"
        return "%s(%s)" % (
            tag,
            ",".join(
                sorted(_canonical(c, bound, names) for c in node.children)
            ),
        )
    if isinstance(node, (Exists, Forall)):
        tag = "E" if isinstance(node, Exists) else "A"
        inner = bound | frozenset(node.variables)
        body = _canonical(node.body, inner, names)
        quantified = sorted(names[v] for v in node.variables)
        return "%s[%s](%s)" % (tag, ",".join(quantified), body)
    raise TypeError("unknown formula node %r" % (node,))


def canonical_formula_key(
    formula: Formula,
    over: Sequence[str],
    poly: Optional[Polynomial] = None,
) -> Tuple[str, Dict[str, str]]:
    """Canonical string for a formula counted over ``over``.

    Returns ``(key, names)`` where ``names`` maps every bound variable
    (counted or quantifier-bound, whether or not it occurs) to its
    canonical name (needed to canonicalize a summand polynomial
    consistently).  For ``sum`` requests pass the summand: its role
    marks break naming ties between variables the formula cannot
    distinguish (see :func:`_canonical_names`).
    """
    names = _canonical_names(formula, over, poly)
    key = _canonical(formula, frozenset(over), names)
    return key, names


# -- conjunct-level canonicalization (the answer-memo client) ------------


def _shape_all(expr: Affine) -> str:
    """Atom shape with *every* variable masked (all get renamed here)."""
    masked = sorted((_MASK, c) for _, c in expr.coeffs)
    return "%s+%d" % (masked, expr.const)


def _poly_marks(poly: Polynomial, marks: Dict[str, List[str]]) -> None:
    """Role marks recording how each variable occurs in the summand.

    Per monomial occurrence: the coefficient, whether the variable is
    a plain power or sits inside a mod atom, and its own exponent or
    mod coefficient.  Coarser than full refinement over the polynomial
    but enough to split most summand asymmetries before name ties.
    """
    for mono, coef in poly.terms.items():
        for atom, exp in mono:
            if isinstance(atom, str):
                marks.setdefault(atom, []).append(
                    "p(%s,^%d)" % (coef, exp)
                )
            else:
                for v, k in atom.coeffs:
                    marks.setdefault(v, []).append(
                        "pm(%s,%d,%d,%d)" % (coef, atom.modulus, k, exp)
                    )


def _affine_canon(expr: Affine, names: Mapping[str, str]) -> str:
    out = sorted((names[v], c) for v, c in expr.coeffs)
    return "%s+%d" % (out, expr.const)


def canonical_conjunct_key(
    conj: Conjunct,
    cvars: Sequence[str],
    poly: Polynomial,
    mode: str = "",
) -> Tuple[str, Dict[str, str], Dict[str, str]]:
    """Alpha-invariant key for one node of the counting recursion.

    A node is ``(Σ cvars : conj : poly)`` computed under ``mode`` (a
    caller-supplied string folding in the strategy and every option
    that can change the answer).  Unlike the formula-level key, *free*
    symbols are renamed too (into the :data:`FREE_PREFIX` namespace):
    two nodes that differ only in their free-symbol names produce the
    same key, and the returned maps let the memo translate a cached
    answer back into the caller's vocabulary.

    Returns ``(key, to_canonical, from_canonical)`` where
    ``to_canonical`` maps every variable in sight (bound and free) to
    its canonical name and ``from_canonical`` is the exact inverse.

    Soundness: the key is a complete serialization of the node under
    the assignment, so equal keys imply the assignment composes to a
    genuine isomorphism of nodes -- renaming one node's answer through
    it yields a correct answer for the other.
    """
    bound = set(cvars) | set(conj.wildcards)
    atoms: List[Tuple[str, List[Tuple[str, int]], bool]] = []
    for c in conj.constraints:
        if c.is_eq():
            shape = min(_shape_all(c.expr), _shape_all(-c.expr))
        else:
            shape = _shape_all(c.expr)
        atoms.append(
            ("a(%s,%s)" % (c.kind, shape), list(c.expr.coeffs), c.is_eq())
        )
    marks: Dict[str, List[str]] = {}
    for v in cvars:
        marks.setdefault(v, []).append("c")
    for w in conj.wildcards:
        marks.setdefault(w, []).append("w")
    _poly_marks(poly, marks)
    variables = set(bound) | set(marks)
    for _, pairs, _eq in atoms:
        variables.update(v for v, _ in pairs)
    variables.update(poly.variables())
    rank = _refine(variables, marks, atoms)
    names: Dict[str, str] = {}
    ordered = sorted(variables, key=lambda v: (rank[v], v))
    bound_index = free_index = 0
    for v in ordered:
        if v in bound:
            names[v] = "%s%d" % (_BOUND_PREFIX, bound_index)
            bound_index += 1
        else:
            names[v] = "%s%d" % (FREE_PREFIX, free_index)
            free_index += 1

    cons_parts = []
    for c in conj.constraints:
        body = _affine_canon(c.expr, names)
        if c.is_eq():
            # Constraint.eq orients the sign by variable names; take
            # the smaller orientation so renaming cannot flip it.
            body = min(body, _affine_canon(-c.expr, names))
        cons_parts.append("%s(%s)" % (c.kind, body))
    cons_parts.sort()

    poly_map = {v: names[v] for v in poly.variables()}
    from repro.core.result import polynomial_to_json
    import json

    poly_part = json.dumps(
        polynomial_to_json(poly.rename(poly_map) if poly_map else poly),
        sort_keys=True,
        separators=(",", ":"),
    )
    key = "m[%s]v[%s]w[%s]c[%s]p[%s]" % (
        mode,
        ",".join(sorted(names[v] for v in cvars)),
        ",".join(sorted(names[w] for w in conj.wildcards)),
        ";".join(cons_parts),
        poly_part,
    )
    back = {canon: orig for orig, canon in names.items()}
    return key, names, back


__all__ = [
    "FREE_PREFIX",
    "canonical_conjunct_key",
    "canonical_formula_key",
]
