"""repro.serve: a long-lived, multi-tenant counting daemon.

The batch CLI (``python -m repro batch``) pays full process start-up,
parser, and engine cost on every invocation.  This package keeps one
warm process that answers the same structured requests over HTTP or
JSONL-over-TCP, through three tiers:

1. **warm** -- the persistent results store (and, for evaluate jobs,
   compiled evaluator artifacts) answers with zero engine work;
2. **coalesced** -- requests whose canonical content hash matches a
   computation already in flight await that one computation;
3. **cold** -- everything else dispatches to the fork-per-job executor
   under admission control (bounded queue, per-tenant token buckets,
   sat-call budget clamps).

Responses are byte-identical to the batch CLI's (modulo the volatile
keys), so a client can move between the two freely.

Modules: :mod:`~repro.serve.daemon` (the tiered core),
:mod:`~repro.serve.http` (wire front ends + CLI),
:mod:`~repro.serve.admission` (token buckets, budget clamps),
:mod:`~repro.serve.metrics` (histograms, counters, hit rates),
:mod:`~repro.serve.loadgen` (the replay benchmark client).
"""

from repro.serve.admission import TenantTable, TokenBucket
from repro.serve.daemon import CountingDaemon, ServeConfig
from repro.serve.http import HttpFrontend, JsonlFrontend, serve_main
from repro.serve.loadgen import loadgen_main
from repro.serve.metrics import LatencyHistogram, ServeMetrics

__all__ = [
    "CountingDaemon",
    "HttpFrontend",
    "JsonlFrontend",
    "LatencyHistogram",
    "ServeConfig",
    "ServeMetrics",
    "TenantTable",
    "TokenBucket",
    "loadgen_main",
    "serve_main",
]
