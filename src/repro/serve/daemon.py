"""The long-lived counting daemon: a three-tier async serve path.

One :class:`CountingDaemon` instance lives in an asyncio event loop
and answers count/sum/simplify/evaluate requests for many concurrent
clients (HTTP and JSONL front ends in :mod:`repro.serve.http`; the
load generator drives :meth:`CountingDaemon.handle` directly).  Every
request is canonicalized through :mod:`repro.core.canon` content
hashing, then served through the cheapest possible tier:

1. **warm** -- the persistent results store (the same sqlite
   :class:`~repro.service.diskcache.DiskCache` the batch CLI uses)
   already holds this content hash: answer straight from disk, zero
   engine work.  ``evaluate`` jobs get a second warm source: a
   bounded in-daemon artifact map from *point-free* formula hash to
   the serialized symbolic answer, so a new point set for an
   already-computed formula is served by the compiled
   :mod:`repro.evalc` evaluator without forking a worker.  ``member``
   and ``count_below`` jobs get a third: when the formula's binary
   automaton is already resident in the process-global
   :mod:`repro.automaton.cache`, the query is an O(bits) walk or a
   path DP on a worker thread -- no admission control, no fork.
2. **coalesced** -- an identical computation (same content hash, so
   including every alpha-renamed variant) is already in flight: join
   it.  One executor job settles every waiter; waiters hold the shared
   task through :func:`asyncio.shield`, so a client that disconnects
   mid-flight cancels only its own response, never the computation the
   other waiters (and the cache) are relying on.
3. **cold** -- dispatch a fresh fork-per-job executor run
   (:func:`repro.service.executor.run_jobs`: wall-clock timeout, work
   budget, crash retry) on a bounded thread pool.  Cold dispatch is
   the only tier that passes **admission control**: a bounded
   in-flight queue (load-shed with a structured 429-style
   ``overloaded`` error), and per-tenant token-bucket rate limits plus
   sat-call budget clamps (:mod:`repro.serve.admission`).

Responses are shaped exactly like ``python -m repro batch`` responses
plus one extra ``"tier"`` key (which is in
:data:`~repro.service.batch.VOLATILE_RESPONSE_KEYS`), so a daemon
answer is byte-identical to the batch CLI's answer for the same
request once volatile fields are stripped -- the serve bench asserts
this.

Graceful drain: :meth:`CountingDaemon.drain` stops admitting work
(late requests are shed with an ``overloaded`` error), waits for every
in-flight computation up to ``drain_timeout``, flushes them to the
results store, and releases the pools, the stats provider hook and the
cache.  The CLI wires SIGTERM/SIGINT to it.
"""

import asyncio
import os
import sqlite3
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional

from repro.core import stats
from repro.core.result import SymbolicSum
from repro.presburger.parser import ParseError
from repro.qpoly.parse import PolynomialParseError
from repro.serve.admission import TenantTable
from repro.serve.metrics import ServeMetrics
from repro.service.batch import response_core
from repro.service.diskcache import DiskCache
from repro.service.executor import (
    BAD_REQUEST,
    ENGINE_ERROR,
    PARSE_ERROR,
    JobError,
    _evaluate_points,
    execute_request,
    run_jobs,
)
from repro.service.request import JobRequest, RequestError

#: Admission-control failure kinds (429-style; join the executor's
#: taxonomy on the wire).
OVERLOADED = "overloaded"
RATE_LIMITED = "rate_limited"

#: A request whose canonical content hash falls outside this daemon's
#: owned hash-prefix slice (sharded serving; HTTP maps it to 421).
#: Clients should talk to the shard router, which can never misroute
#: because it derives ownership from the same canonical hash.
MISROUTED = "misrouted"

#: Cap on the in-daemon formula-hash -> symbolic-answer artifact map.
ARTIFACT_CAP = 1024

#: Request kinds answered by the resident binary automaton.  They run
#: in the daemon process (thread pool, not a forked worker) so the
#: automaton built for one request stays resident for the next.
AUTOMATON_KINDS = ("member", "count_below")


def _env_int(name: str) -> Optional[int]:
    value = os.environ.get(name)
    return int(value) if value else None


def _env_float(name: str) -> Optional[float]:
    value = os.environ.get(name)
    return float(value) if value else None


class ServeConfig:
    """Daemon tuning knobs, with ``REPRO_SERVE_*`` environment defaults.

    Explicit constructor arguments always win; :meth:`from_env` layers
    the environment between the hard defaults and any overrides, which
    is what the CLI uses.
    """

    __slots__ = (
        "host",
        "http_port",
        "jsonl_port",
        "workers",
        "queue_limit",
        "rate",
        "burst",
        "tenant_budget",
        "default_timeout",
        "default_budget",
        "cache_path",
        "cache_limit",
        "drain_timeout",
        "shard_index",
        "shard_count",
        "shard_bits",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        http_port: int = 8722,
        jsonl_port: Optional[int] = None,
        workers: int = 4,
        queue_limit: int = 64,
        rate: Optional[float] = None,
        burst: float = 16.0,
        tenant_budget: Optional[int] = None,
        default_timeout: Optional[float] = 60.0,
        default_budget: Optional[int] = None,
        cache_path: Optional[str] = ".repro-cache.sqlite",
        cache_limit: int = 100000,
        drain_timeout: float = 30.0,
        shard_index: Optional[int] = None,
        shard_count: Optional[int] = None,
        shard_bits: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if shard_index is not None:
            if shard_count is None or shard_count < 1:
                raise ValueError(
                    "shard_index needs a shard_count >= 1"
                )
            if not 0 <= shard_index < shard_count:
                raise ValueError(
                    "shard_index %d out of range for %d shards"
                    % (shard_index, shard_count)
                )
        self.host = host
        self.http_port = http_port
        self.jsonl_port = jsonl_port
        self.workers = workers
        self.queue_limit = queue_limit
        self.rate = rate
        self.burst = burst
        self.tenant_budget = tenant_budget
        self.default_timeout = default_timeout
        self.default_budget = default_budget
        self.cache_path = cache_path
        self.cache_limit = cache_limit
        self.drain_timeout = drain_timeout
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.shard_bits = shard_bits

    @classmethod
    def from_env(cls, **overrides) -> "ServeConfig":
        values = {
            "workers": _env_int("REPRO_SERVE_WORKERS"),
            "queue_limit": _env_int("REPRO_SERVE_QUEUE"),
            "rate": _env_float("REPRO_SERVE_RATE"),
            "burst": _env_float("REPRO_SERVE_BURST"),
            "tenant_budget": _env_int("REPRO_SERVE_TENANT_BUDGET"),
            "default_timeout": _env_float("REPRO_SERVE_TIMEOUT"),
            "default_budget": _env_int("REPRO_SERVE_BUDGET"),
            "drain_timeout": _env_float("REPRO_SERVE_DRAIN"),
            # The shard supervisor sets these in worker environments;
            # REPRO_SHARD_INDEX is the opt-in (REPRO_SHARD_N alone --
            # say, in a shell that also launches the router -- must not
            # give a standalone daemon a partial keyspace).
            "shard_index": _env_int("REPRO_SHARD_INDEX"),
            "shard_count": _env_int("REPRO_SHARD_N"),
            "shard_bits": _env_int("REPRO_SHARD_BITS"),
        }
        values = {k: v for k, v in values.items() if v is not None}
        if "shard_index" not in values:
            values.pop("shard_count", None)
            values.pop("shard_bits", None)
        values.update(overrides)
        return cls(**values)

    def shard_slice(self):
        """The owned keyspace slice, or None for a whole-keyspace daemon."""
        if self.shard_index is None:
            return None
        from repro.shard.config import DEFAULT_PREFIX_BITS, ShardSlice

        return ShardSlice(
            self.shard_bits or DEFAULT_PREFIX_BITS,
            self.shard_count,
            self.shard_index,
        )


class _InFlight:
    """A shared cold computation plus how many clients are on it."""

    __slots__ = ("task", "waiters")

    def __init__(self, task):
        self.task = task
        self.waiters = 1


class CountingDaemon:
    """The serve core: three-tier request handling over the executor."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache: Optional[DiskCache] = None,
    ):
        self.config = config or ServeConfig.from_env()
        self.metrics = ServeMetrics()
        self.metrics.queue_probe = lambda: len(self._inflight)
        self.tenants = TenantTable(
            rate=self.config.rate,
            burst=self.config.burst,
            budget_ceiling=self.config.tenant_budget,
        )
        self._slice = self.config.shard_slice()
        self._owns_cache = cache is None and self.config.cache_path is not None
        if cache is not None:
            self.cache: Optional[DiskCache] = cache
        elif self.config.cache_path is not None:
            # Under shard ownership the store refuses foreign writes
            # too (defense in depth behind the handle() refusal).
            self.cache = DiskCache(
                self.config.cache_path,
                max_entries=self.config.cache_limit,
                owns=self._slice.owns if self._slice is not None else None,
            )
        else:
            self.cache = None
        self._inflight: "dict[str, _InFlight]" = {}
        self._artifacts: "OrderedDict[str, dict]" = OrderedDict()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._io: Optional[ThreadPoolExecutor] = None
        self._draining = False
        self._started = False
        self._prev_provider = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Create the worker pools and register the stats provider."""
        if self._started:
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-cold",
        )
        # A single dedicated thread serializes all disk-cache traffic,
        # so sqlite contention inside the daemon is impossible by
        # construction (cross-process contention is absorbed by the
        # cache's WAL + busy-timeout configuration).
        self._io = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-io"
        )
        self._prev_provider = stats.set_serve_stats_provider(
            self.metrics.snapshot
        )
        self._draining = False
        self._started = True

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Stop admitting work, settle in-flight jobs, release resources."""
        self._draining = True
        tasks = [entry.task for entry in self._inflight.values()]
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._io is not None:
            self._io.shutdown(wait=True)
            self._io = None
        if self._started:
            stats.set_serve_stats_provider(self._prev_provider)
        if self._owns_cache and self.cache is not None:
            self.cache.close()
            self.cache = None
        self._started = False

    # -- the serve path ---------------------------------------------------

    async def handle(self, obj, tenant: str = "") -> dict:
        """Answer one raw request object; never raises for bad input.

        Returns a batch-shaped response dict plus a ``"tier"`` key
        (``warm`` / ``coalesced`` / ``cold`` for answers, ``shed`` for
        admission refusals, ``front`` for requests that failed before
        reaching any tier).
        """
        t0 = time.monotonic()
        m = self.metrics
        m.bump("requests")
        if not isinstance(obj, Mapping):
            m.bump("front_errors")
            return self._error_response(
                None, BAD_REQUEST, "request must be a JSON object", t0, "front"
            )
        rid = obj.get("id")
        if self._draining:
            m.bump("shed")
            return self._error_response(
                rid, OVERLOADED, "daemon is draining", t0, "shed"
            )
        try:
            req = JobRequest.from_json(obj)
        except RequestError as exc:
            m.bump("front_errors")
            return self._error_response(rid, BAD_REQUEST, str(exc), t0, "front")
        try:
            key = req.content_hash()
        except (ParseError, PolynomialParseError) as exc:
            m.bump("front_errors")
            return self._error_response(
                req.id, PARSE_ERROR, str(exc), t0, "front"
            )
        except Exception as exc:
            m.bump("front_errors")
            return self._error_response(
                req.id,
                BAD_REQUEST,
                "%s: %s" % (type(exc).__name__, exc),
                t0,
                "front",
            )

        if self._slice is not None and not self._slice.owns(key):
            # A shard answers only its own keyspace slice.  Serving a
            # foreign hash would compute and cache an answer another
            # shard owns, silently splitting the authoritative store.
            m.bump("misrouted")
            return self._error_response(
                req.id,
                MISROUTED,
                "content hash %s... belongs to shard %d of %d"
                " (this is shard %d); route via the shard router"
                % (
                    key[:12],
                    self._slice.owner(key),
                    self._slice.count,
                    self._slice.index,
                ),
                t0,
                "front",
            )

        loop = asyncio.get_event_loop()

        # Tier 1: warm -- the persistent results store.
        if self.cache is not None and self._io is not None:
            payload = await loop.run_in_executor(self._io, self.cache.get, key)
            if payload is not None and "result" in payload:
                m.bump("warm_hits")
                return self._ok_response(
                    req.id, payload, t0, "warm", cached=True
                )
        if req.kind == "evaluate":
            response = await self._from_artifact(req, key, t0)
            if response is not None:
                return response
        if req.kind in AUTOMATON_KINDS:
            response = await self._from_automaton(req, key, t0)
            if response is not None:
                return response

        # Tier 2: coalesce onto an identical in-flight computation.
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            m.bump("coalesced")
            outcome = await self._await_shared(entry)
            return self._outcome_response(req.id, outcome, t0, "coalesced")

        # Tier 3: cold dispatch, admission-controlled.
        if len(self._inflight) >= self.config.queue_limit:
            m.bump("shed")
            return self._error_response(
                req.id,
                OVERLOADED,
                "cold queue full (%d computations in flight)"
                % len(self._inflight),
                t0,
                "shed",
            )
        if not self.tenants.admit(tenant):
            m.bump("rate_limited")
            return self._error_response(
                req.id,
                RATE_LIMITED,
                "tenant %r is over its cold-dispatch rate" % tenant,
                t0,
                "shed",
            )
        budget = self.tenants.clamp_budget(
            req.budget, self.config.default_budget
        )
        entry = _InFlight(loop.create_task(self._compute(key, req, budget)))
        self._inflight[key] = entry
        outcome = await self._await_shared(entry)
        return self._outcome_response(req.id, outcome, t0, "cold")

    async def _await_shared(self, entry: _InFlight) -> dict:
        """Wait on a shared computation without being able to kill it.

        ``asyncio.shield`` detaches the waiter's fate from the task's:
        cancelling this coroutine (client disconnect) raises here but
        leaves the computation running for the other waiters and the
        cache.
        """
        try:
            return await asyncio.shield(entry.task)
        except asyncio.CancelledError:
            self.metrics.bump("cancelled_waiters")
            raise

    async def _compute(self, key: str, req: JobRequest, budget) -> dict:
        """The single shared cold computation for one content hash."""
        m = self.metrics
        m.bump("cold_jobs")
        loop = asyncio.get_event_loop()
        try:
            outcome = await loop.run_in_executor(
                self._pool, self._run_cold, req, budget
            )
            if outcome["ok"]:
                payload = outcome["payload"]
                if self.cache is not None and self._io is not None:
                    # A cache-write failure must not sink the response:
                    # the answer is computed, serve it uncached.
                    try:
                        await loop.run_in_executor(
                            self._io, self.cache.put, key, payload
                        )
                    except (sqlite3.Error, OSError):
                        pass
                self._remember_artifact(req, payload)
            return outcome
        finally:
            # Unregister only after the result is cached, so a
            # duplicate arriving during settle finds the warm tier (or
            # the still-registered task), never a second cold dispatch.
            self._inflight.pop(key, None)

    def _run_cold(self, req: JobRequest, budget) -> dict:
        """Blocking executor dispatch (runs on the cold thread pool)."""
        if budget is not None:
            req.budget = budget
        if req.kind in AUTOMATON_KINDS:
            return self._run_resident(req)
        outcomes = run_jobs(
            [req],
            workers=1,
            default_timeout=self.config.default_timeout,
            default_budget=self.config.default_budget,
        )
        return outcomes[0]

    def _run_resident(self, req: JobRequest) -> dict:
        """Run an automaton-kind job in-process (no fork).

        A forked worker would build the automaton in a child that dies
        with the job; running on the cold thread pool instead means the
        build lands in the daemon's resident cache, so the next query
        against the same formula takes the warm
        :meth:`_from_automaton` path.  The fork-level isolation knobs
        (wall-clock timeout, crash retry, work budget) do not apply --
        automaton-fragment queries are bounded by the builder's state
        budget instead.
        """
        t0 = time.monotonic()
        try:
            outcome = {"ok": True, "payload": execute_request(req)}
        except JobError as exc:
            outcome = {"ok": False, "error": exc.to_json()}
        except Exception as exc:
            outcome = {
                "ok": False,
                "error": {
                    "kind": ENGINE_ERROR,
                    "message": "%s: %s" % (type(exc).__name__, exc),
                },
            }
        outcome["wall_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        outcome["attempts"] = 1
        return outcome

    # -- the evaluate artifact fast path ----------------------------------

    def _remember_artifact(self, req: JobRequest, payload: dict) -> None:
        """Keep the symbolic answer keyed by point-free formula hash."""
        if "result_json" not in payload:
            return
        try:
            fkey = req.formula_hash()
        except Exception:  # pragma: no cover - hash already computed once
            return
        artifacts = self._artifacts
        artifacts[fkey] = {
            "result": payload["result"],
            "result_json": payload["result_json"],
            "exactness": payload["exactness"],
        }
        artifacts.move_to_end(fkey)
        while len(artifacts) > ARTIFACT_CAP:
            artifacts.popitem(last=False)

    async def _from_artifact(
        self, req: JobRequest, key: str, t0: float
    ) -> Optional[dict]:
        """Serve an evaluate job from a stored symbolic answer, if any.

        The artifact map is keyed by the request's *point-free* formula
        hash, so an evaluate request with a fresh point set for an
        already-computed formula is answered in-process by the compiled
        :mod:`repro.evalc` evaluator -- no fork, no engine recursion.
        The full response is then written to the results store so the
        identical request is a plain warm hit next time.
        """
        doc = self._artifacts.get(req.formula_hash())
        if doc is None:
            return None
        try:
            result = SymbolicSum.from_json(doc["result_json"])
            points = _evaluate_points(req, result)
        except Exception:
            return None  # fall through to the coalesce/cold tiers
        payload = {
            "kind": req.kind,
            "result": doc["result"],
            "result_json": doc["result_json"],
            "exactness": doc["exactness"],
            "points": points,
            "stats": stats.engine_snapshot(),
        }
        if self.cache is not None and self._io is not None:
            loop = asyncio.get_event_loop()
            try:
                await loop.run_in_executor(
                    self._io, self.cache.put, key, payload
                )
            except (sqlite3.Error, OSError):
                pass
        self.metrics.bump("artifact_hits")
        return self._ok_response(req.id, payload, t0, "warm", cached=False)

    # -- the resident-automaton fast path ----------------------------------

    async def _from_automaton(
        self, req: JobRequest, key: str, t0: float
    ) -> Optional[dict]:
        """Serve member/count_below from a resident automaton, if any.

        The probe (:func:`repro.automaton.has_resident_automaton`) is
        keyed by the *point-free* alpha-invariant formula key, so any
        spelling of an already-built formula qualifies.  A hit runs the
        query on the cold thread pool -- it is pure CPU for microseconds,
        not a fork -- bypassing admission control, and writes the full
        response through to the results store so the identical request
        is a plain warm hit next time.  A probe miss (or a query that
        errors) returns ``None`` and falls through to the cold tier,
        where :meth:`_run_resident` builds the automaton in-process.
        """
        if self._pool is None:
            return None
        try:
            from repro.automaton import has_resident_automaton

            resident = has_resident_automaton(req.formula, req.over)
        except Exception:
            return None
        if not resident:
            return None
        loop = asyncio.get_event_loop()
        try:
            payload = await loop.run_in_executor(
                self._pool, execute_request, req
            )
        except Exception:
            return None  # fall through to the coalesce/cold tiers
        if self.cache is not None and self._io is not None:
            try:
                await loop.run_in_executor(
                    self._io, self.cache.put, key, payload
                )
            except (sqlite3.Error, OSError):
                pass
        self.metrics.bump("automaton_hits")
        return self._ok_response(req.id, payload, t0, "warm", cached=False)

    # -- response shaping (mirrors repro.service.batch) -------------------

    def _observe(self, tier: str, t0: float) -> None:
        if tier in self.metrics.tiers:
            self.metrics.observe(tier, (time.monotonic() - t0) * 1000.0)

    def _ok_response(
        self,
        rid,
        payload: dict,
        t0: float,
        tier: str,
        cached: bool,
        attempts: int = 0,
    ) -> dict:
        response = {"id": rid, "ok": True}
        response.update(response_core(payload))
        response["cached"] = cached
        response["wall_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        response["attempts"] = attempts
        response["tier"] = tier
        self._observe(tier, t0)
        return response

    def _outcome_response(
        self, rid, outcome: dict, t0: float, tier: str
    ) -> dict:
        response = {"id": rid, "ok": outcome["ok"]}
        if outcome["ok"]:
            response.update(response_core(outcome["payload"]))
        else:
            response["error"] = outcome["error"]
            self.metrics.bump("job_errors")
        response["cached"] = False
        response["wall_ms"] = outcome["wall_ms"]
        response["attempts"] = outcome["attempts"]
        response["tier"] = tier
        self._observe(tier, t0)
        return response

    def _error_response(
        self, rid, kind: str, message: str, t0: float, tier: str
    ) -> dict:
        self._observe(tier, t0)
        return {
            "id": rid,
            "ok": False,
            "error": {"kind": kind, "message": message},
            "cached": False,
            "wall_ms": 0.0,
            "attempts": 0,
            "tier": tier,
        }


__all__ = [
    "ARTIFACT_CAP",
    "AUTOMATON_KINDS",
    "CountingDaemon",
    "MISROUTED",
    "OVERLOADED",
    "RATE_LIMITED",
    "ServeConfig",
]
