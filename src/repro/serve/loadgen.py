"""Load generator for the serve daemon (``python -m repro loadgen``).

Replays a request corpus at N concurrent clients against either an
in-process daemon (the default: spin one up, drive
:meth:`~repro.serve.daemon.CountingDaemon.handle` directly, drain it)
or a running daemon over HTTP (``--url``), and reports throughput,
per-tier latency (p50/p99 over exact recorded samples, not histogram
buckets), and the daemon's own coalesce/hit-rate counters.

The corpus can be:

* the built-in base set (small count/sum/evaluate jobs spanning the
  paper's loop-nest shapes, plus member/count_below jobs for the
  resident-automaton tier);
* a directory of testkit regression-corpus entries
  (``--corpus tests/corpus``) -- each fuzz case becomes a count job,
  plus a sum job when it carries a summand;
* a JSONL file of raw service requests (``--corpus file.jsonl``).

``--rename-mix p`` alpha-renames the counted variables of a fraction
``p`` of the replayed requests.  Renamed variants share the original's
canonical content hash, so they exercise exactly the machinery the
daemon exists for: warm hits across names, and coalescing when
variants are in flight together.
"""

import asyncio
import json
import os
import random
import sys
import time
from collections import deque
from typing import List, Optional, Sequence, Tuple
from urllib.parse import urlparse

from repro.serve.daemon import CountingDaemon, ServeConfig
from repro.serve.metrics import TIERS

#: Small, fast jobs covering every kind; ids are stable so summaries
#: and byte-identity checks can correlate across passes and runners.
DEFAULT_BASE_REQUESTS = (
    {
        "id": "tri",
        "kind": "count",
        "formula": "1 <= i and i < j and j <= n",
        "over": ["i", "j"],
    },
    {
        "id": "box-stride",
        "kind": "count",
        "formula": "1 <= i <= n and 1 <= j <= m and 2 | (i + j)",
        "over": ["i", "j"],
    },
    {
        "id": "diag",
        "kind": "count",
        "formula": "1 <= i <= n and 1 <= j <= n and i + j <= n",
        "over": ["i", "j"],
    },
    {
        "id": "mod3",
        "kind": "count",
        "formula": "0 <= i <= n and 3 | (i + n)",
        "over": ["i"],
    },
    {
        "id": "sum-sq",
        "kind": "sum",
        "formula": "1 <= i <= n",
        "over": ["i"],
        "poly": "i*i",
    },
    {
        "id": "sum-prod",
        "kind": "sum",
        "formula": "1 <= i <= n and 1 <= j <= i",
        "over": ["i", "j"],
        "poly": "i*j",
    },
    {
        "id": "eval-tri",
        "kind": "evaluate",
        "formula": "1 <= i and i < j and j <= n",
        "over": ["i", "j"],
        "at": [{"n": 10}, {"n": 25}, {"n": 100}],
    },
    {
        "id": "simp",
        "kind": "simplify",
        "formula": "x >= 1 and x >= 0 and (x <= 5 or x <= 9)",
    },
    {
        "id": "mem-diag",
        "kind": "member",
        "formula": "0 <= i <= 20 and 0 <= j <= 20 and i + j <= 20 and 2 | (i + j)",
        "over": ["i", "j"],
        "at": [{"i": 3, "j": 5}, {"i": 7, "j": 9}, {"i": 21, "j": 0}],
    },
    {
        "id": "below-stride",
        "kind": "count_below",
        "formula": "3 | (i + 2*j) and i <= 2*j",
        "over": ["i", "j"],
        "bound": 16,
    },
)


def alpha_variant(obj: dict, rng: random.Random) -> dict:
    """An alpha-renamed copy: same canonical hash, different spelling.

    Only the counted variables (and their bound occurrences) are
    renamed -- free symbolic constants appear in the answer, so
    renaming them would change the response.
    """
    over = list(obj.get("over") or [])
    if not over:
        return dict(obj)
    from repro.presburger.parser import parse
    from repro.qpoly.parse import parse_polynomial
    from repro.testkit.generate import formula_to_text, rename_formula

    mapping = {v: "%s_v%d" % (v, rng.randrange(1000000)) for v in over}
    out = dict(obj)
    out["formula"] = formula_to_text(rename_formula(parse(obj["formula"]), mapping))
    out["over"] = [mapping[v] for v in over]
    if out.get("poly"):
        out["poly"] = str(parse_polynomial(out["poly"]).rename(mapping))
    if out.get("at"):
        # Member points key on counted variables; evaluate points key
        # on free symbols, which mapping does not contain -- so this
        # renames exactly the keys that were renamed in the formula.
        out["at"] = [
            {mapping.get(k, k): v for k, v in env.items()}
            for env in out["at"]
        ]
    return out


def base_requests(corpus: Optional[str] = None) -> List[dict]:
    """The base request pool: built-in, corpus directory, or JSONL file."""
    if corpus is None:
        return [dict(obj) for obj in DEFAULT_BASE_REQUESTS]
    if os.path.isdir(corpus):
        return requests_from_corpus_dir(corpus)
    out = []
    with open(corpus, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            obj = json.loads(line)
            obj.setdefault("id", "line%d" % line_no)
            out.append(obj)
    if not out:
        raise ValueError("no requests in %s" % corpus)
    return out


def requests_from_corpus_dir(directory: str) -> List[dict]:
    """Testkit regression-corpus entries as count (and sum) requests."""
    from repro.testkit.corpus import load_corpus
    from repro.testkit.generate import formula_to_text

    out = []
    for path, case, _check in load_corpus(directory):
        name = os.path.splitext(os.path.basename(path))[0]
        formula = formula_to_text(case.formula)
        out.append(
            {
                "id": "%s-count" % name,
                "kind": "count",
                "formula": formula,
                "over": list(case.over),
            }
        )
        if case.poly_text:
            out.append(
                {
                    "id": "%s-sum" % name,
                    "kind": "sum",
                    "formula": formula,
                    "over": list(case.over),
                    "poly": case.poly_text,
                }
            )
    if not out:
        raise ValueError("no corpus entries in %s" % directory)
    return out


def build_requests(
    base: Sequence[dict],
    total: int,
    rename_mix: float = 0.0,
    seed: int = 0,
) -> List[dict]:
    """``total`` requests cycling the base pool, a fraction alpha-renamed."""
    rng = random.Random(seed)
    out = []
    for k in range(total):
        obj = dict(base[k % len(base)])
        obj["id"] = "%s#%d" % (obj.get("id", k % len(base)), k)
        if rename_mix > 0 and rng.random() < rename_mix:
            obj = alpha_variant(obj, rng)
        out.append(obj)
    return out


# -- drivers -------------------------------------------------------------


async def _drive(submit, requests, clients, keep_responses=False):
    """Run ``requests`` through ``submit`` at ``clients`` concurrency."""
    queue = deque(requests)
    records = []

    async def worker():
        while True:
            try:
                obj = queue.popleft()
            except IndexError:
                return
            t0 = time.perf_counter()
            response = await submit(obj)
            ms = (time.perf_counter() - t0) * 1000.0
            record = {
                "id": response.get("id"),
                "ok": bool(response.get("ok")),
                "tier": response.get("tier", "remote"),
                "ms": ms,
            }
            if "shard" in response:
                record["shard"] = response["shard"]
            if keep_responses:
                record["response"] = response
            records.append(record)

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    wall = time.perf_counter() - start
    return records, wall


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    index = min(len(sorted_ms) - 1, int(q * (len(sorted_ms) - 1) + 0.5))
    return round(sorted_ms[index], 3)


def fleet_summary(requests: Sequence[dict], records) -> dict:
    """Fleet-dedup accounting: did any content hash cold-compute twice?

    Request ids are unique per pass (``build_requests`` stamps
    ``base#k``), so mapping id -> canonical content hash lets the
    summary count cold-tier responses per *hash*.  Against a shard
    router, a hash going cold on more than one shard -- or twice
    anywhere -- means fleet-wide coalescing failed;
    ``duplicate_computations`` must be 0 and ``--assert-no-duplicates``
    turns that into an exit code.  Per-shard response counts and
    latency quantiles ride along when responses carry a ``shard`` key.
    """
    from repro.service.request import JobRequest

    hash_of = {}
    for obj in requests:
        try:
            hash_of[obj.get("id")] = JobRequest.from_json(
                dict(obj)
            ).content_hash()
        except Exception:
            continue
    cold_hashes = [
        hash_of[r["id"]]
        for r in records
        if r["tier"] == "cold" and r["id"] in hash_of
    ]
    distinct_cold = set(cold_hashes)
    per_shard = {}
    for record in records:
        shard = record.get("shard")
        if shard is None:
            continue
        per_shard.setdefault(str(shard), []).append(record["ms"])
    shards = {}
    for shard, samples in sorted(per_shard.items()):
        samples.sort()
        shards[shard] = {
            "count": len(samples),
            "p50_ms": _percentile(samples, 0.50),
            "p99_ms": _percentile(samples, 0.99),
        }
    summary = {
        "unique_hashes": len(set(hash_of.values())),
        "cold_responses": len(cold_hashes),
        "distinct_cold_hashes": len(distinct_cold),
        "duplicate_computations": len(cold_hashes) - len(distinct_cold),
    }
    if shards:
        summary["per_shard"] = shards
    return summary


def summarize(
    records, wall: float, clients: int, serve_snapshot=None, requests=None
) -> dict:
    """Throughput + exact per-tier latency quantiles for one pass."""
    by_tier = {}
    ok = 0
    errors = 0
    for record in records:
        by_tier.setdefault(record["tier"], []).append(record["ms"])
        if record["ok"]:
            ok += 1
        else:
            errors += 1
    tiers = {}
    for tier, samples in sorted(by_tier.items()):
        samples.sort()
        tiers[tier] = {
            "count": len(samples),
            "p50_ms": _percentile(samples, 0.50),
            "p99_ms": _percentile(samples, 0.99),
            "mean_ms": round(sum(samples) / len(samples), 3),
            "max_ms": round(samples[-1], 3),
        }
    summary = {
        "requests": len(records),
        "clients": clients,
        "ok": ok,
        "errors": errors,
        "wall_seconds": round(wall, 6),
        "throughput_rps": round(len(records) / wall, 3) if wall > 0 else 0.0,
        "tiers": tiers,
    }
    if serve_snapshot is not None:
        summary["serve"] = serve_snapshot
    if requests is not None:
        summary["fleet"] = fleet_summary(requests, records)
    return summary


async def run_inprocess(
    requests: Sequence[dict],
    clients: int,
    config: Optional[ServeConfig] = None,
    passes: int = 1,
    keep_responses: bool = False,
) -> List[Tuple[dict, List[dict]]]:
    """Drive an in-process daemon; one (summary, records) per pass."""
    daemon = CountingDaemon(config)
    daemon.start()
    try:
        results = []
        for _ in range(max(1, passes)):
            records, wall = await _drive(
                daemon.handle, requests, clients, keep_responses
            )
            results.append(
                (
                    summarize(
                        records,
                        wall,
                        clients,
                        daemon.metrics.snapshot(),
                        requests=requests,
                    ),
                    records,
                )
            )
        return results
    finally:
        await daemon.drain()


# -- a tiny HTTP/1.1 client (stdlib-only, keep-alive) --------------------


async def _http_request(reader, writer, method, path, doc=None):
    body = b"" if doc is None else json.dumps(doc).encode("utf-8")
    head = (
        "%s %s HTTP/1.1\r\n"
        "Host: loadgen\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "\r\n" % (method, path, len(body))
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, json.loads(payload) if payload else {}


async def run_http(
    url: str,
    requests: Sequence[dict],
    clients: int,
    keep_responses: bool = False,
) -> Tuple[dict, List[dict]]:
    """Drive a running daemon over HTTP; returns (summary, records)."""
    parsed = urlparse(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 8722
    connections = []

    async def connect():
        reader, writer = await asyncio.open_connection(host, port)
        connections.append(writer)
        return reader, writer

    locks_free = asyncio.Queue()
    for _ in range(max(1, clients)):
        locks_free.put_nowait(await connect())

    async def submit(obj):
        reader, writer = await locks_free.get()
        try:
            _status, doc = await _http_request(
                reader, writer, "POST", "/job", obj
            )
            return doc
        finally:
            locks_free.put_nowait((reader, writer))

    try:
        records, wall = await _drive(submit, requests, clients, keep_responses)
        reader, writer = await locks_free.get()
        _status, stats_doc = await _http_request(reader, writer, "GET", "/stats")
        locks_free.put_nowait((reader, writer))
        serve_snapshot = stats_doc.get("serve")
        return (
            summarize(
                records, wall, clients, serve_snapshot, requests=requests
            ),
            records,
        )
    finally:
        for writer in connections:
            writer.close()


# -- CLI -----------------------------------------------------------------


def loadgen_main(args) -> int:
    """Entry point behind ``python -m repro loadgen``."""
    base = base_requests(args.corpus)
    requests = build_requests(
        base, args.requests, rename_mix=args.rename_mix, seed=args.seed
    )
    if args.url:
        summary, _records = asyncio.run(
            run_http(args.url, requests, args.clients)
        )
        summaries = [summary]
    else:
        config = ServeConfig.from_env(
            cache_path=None if args.no_cache else args.cache,
            **{
                k: v
                for k, v in (
                    ("workers", args.workers),
                    ("queue_limit", args.queue_limit),
                    ("default_timeout", args.timeout),
                    ("default_budget", args.budget),
                )
                if v is not None
            }
        )
        results = asyncio.run(
            run_inprocess(requests, args.clients, config, passes=args.passes)
        )
        summaries = [summary for summary, _records in results]
    doc = summaries[0] if len(summaries) == 1 else {"passes": summaries}
    text = json.dumps(doc, indent=2, sort_keys=True)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if getattr(args, "assert_no_duplicates", False):
        duplicates = sum(
            summary.get("fleet", {}).get("duplicate_computations", 0)
            for summary in summaries
        )
        if duplicates:
            print(
                "loadgen: FAIL: %d content hash(es) cold-computed more "
                "than once" % duplicates,
                file=sys.stderr,
            )
            return 1
    return 0


__all__ = [
    "DEFAULT_BASE_REQUESTS",
    "TIERS",
    "alpha_variant",
    "base_requests",
    "build_requests",
    "fleet_summary",
    "loadgen_main",
    "requests_from_corpus_dir",
    "run_http",
    "run_inprocess",
    "summarize",
]
