"""Serving-layer observability: latency histograms and tier counters.

The daemon answers every request through one of three tiers -- warm
(persistent answer/artifact stores, zero engine work), coalesced
(joined an identical in-flight computation), cold (a fresh executor
job) -- plus the admission-control outcomes (shed, rate-limited) and
front-door failures.  This module keeps the numbers that make that
behaviour observable without a profiler:

* a **latency histogram per tier** with fixed geometric bucket bounds,
  cheap to update (one ``bisect`` per observation) and good enough for
  p50/p99 tail reads at serving volumes;
* **monotonic counters** for every request disposition (warm hits,
  coalesced waiters, cold dispatches, sheds, rate limits, cancelled
  waiters, errors);
* a **queue-depth probe** (a callable the daemon installs) so
  snapshots report instantaneous backlog next to the cumulative
  counters.

:meth:`ServeMetrics.snapshot` is the single JSON-safe view, used by
the ``/stats`` endpoint, the load generator's summary, and -- via
:func:`repro.core.stats.set_serve_stats_provider` -- by
``engine_snapshot()``'s ``"serve"`` key.

Everything here must be safe to update from the event-loop thread
while snapshots are taken; plain int increments and list-cell updates
are atomic enough under the GIL for monitoring-grade accuracy.
"""

import time
from bisect import bisect_left
from typing import Callable, Dict, Optional

#: Histogram bucket upper bounds in milliseconds (the last bucket is
#: open-ended).  Geometric spacing keeps relative error roughly
#: constant from sub-millisecond warm hits to minute-long cold jobs.
BUCKET_BOUNDS_MS = (
    0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 60000.0,
)

#: The response tiers a request can be answered through.
TIERS = ("warm", "coalesced", "cold")

#: Counter names in the snapshot (always all present, zero when never
#: hit, so downstream tooling can rely on the schema).
COUNTER_NAMES = (
    "requests",  # every request entering the daemon
    "warm_hits",  # answered from the persistent results store
    "artifact_hits",  # evaluate jobs served from a compiled artifact
    "automaton_hits",  # member/count_below served by a resident automaton
    "coalesced",  # waiters that joined an in-flight computation
    "cold_jobs",  # executor jobs actually dispatched
    "shed",  # refused: cold queue full or daemon draining
    "rate_limited",  # refused: tenant token bucket empty
    "front_errors",  # bad request / parse failures before any tier
    "job_errors",  # cold jobs that settled with a structured error
    "cancelled_waiters",  # client tasks cancelled while awaiting a job
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Quantiles are read as the upper bound of the bucket where the
    cumulative count crosses the rank (the open last bucket reports
    the exact observed maximum), so estimates are conservative: a
    reported p99 is never below the true p99's bucket.
    """

    __slots__ = ("counts", "count", "total_ms", "max_ms", "min_ms")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.min_ms: Optional[float] = None

    def observe(self, ms: float) -> None:
        self.counts[bisect_left(BUCKET_BOUNDS_MS, ms)] += 1
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        if self.min_ms is None or ms < self.min_ms:
            self.min_ms = ms

    def quantile_ms(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` in [0, 1] (0.0 if empty)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if i == len(BUCKET_BOUNDS_MS):
                    return round(self.max_ms, 3)
                return BUCKET_BOUNDS_MS[i]
        return round(self.max_ms, 3)  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, float]:
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "p50_ms": self.quantile_ms(0.50),
            "p99_ms": self.quantile_ms(0.99),
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
        }


class ServeMetrics:
    """All serving counters, per-tier histograms and the queue probe."""

    def __init__(self):
        self.started_monotonic = time.monotonic()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.tiers: Dict[str, LatencyHistogram] = {
            tier: LatencyHistogram() for tier in TIERS
        }
        #: Installed by the daemon: () -> current cold-queue depth.
        self.queue_probe: Optional[Callable[[], int]] = None

    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, tier: str, ms: float) -> None:
        self.tiers[tier].observe(ms)

    def uptime_seconds(self) -> float:
        return round(time.monotonic() - self.started_monotonic, 3)

    def queue_depth(self) -> int:
        probe = self.queue_probe
        if probe is None:
            return 0
        try:
            return int(probe())
        except Exception:  # pragma: no cover - defensive
            return 0

    def hit_rates(self) -> Dict[str, float]:
        """Fractions of *answered* requests per source.

        ``warm`` folds in artifact hits and resident-automaton hits
        (all three answer without dispatching an executor job);
        ``coalesced``/``cold`` complete the partition.  Shed,
        rate-limited and front-error requests were never answered, so
        they are not in the denominator.
        """
        c = self.counters
        warm = c["warm_hits"] + c["artifact_hits"] + c["automaton_hits"]
        answered = warm + c["coalesced"] + c["cold_jobs"]
        if answered == 0:
            return {"warm": 0.0, "coalesced": 0.0, "cold": 0.0}
        return {
            "warm": round(warm / answered, 6),
            "coalesced": round(c["coalesced"] / answered, 6),
            "cold": round(c["cold_jobs"] / answered, 6),
        }

    def snapshot(self) -> dict:
        """The JSON-safe serving view (``/stats``, loadgen, snapshots)."""
        return {
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": self.queue_depth(),
            "counters": dict(self.counters),
            "hit_rates": self.hit_rates(),
            "tiers": {
                tier: hist.snapshot() for tier, hist in self.tiers.items()
            },
        }


__all__ = [
    "BUCKET_BOUNDS_MS",
    "COUNTER_NAMES",
    "LatencyHistogram",
    "ServeMetrics",
    "TIERS",
]
