"""Serving-layer observability: latency histograms and tier counters.

The daemon answers every request through one of three tiers -- warm
(persistent answer/artifact stores, zero engine work), coalesced
(joined an identical in-flight computation), cold (a fresh executor
job) -- plus the admission-control outcomes (shed, rate-limited) and
front-door failures.  This module keeps the numbers that make that
behaviour observable without a profiler:

* a **latency histogram per tier** with fixed geometric bucket bounds,
  cheap to update (one ``bisect`` per observation) and good enough for
  p50/p99 tail reads at serving volumes;
* **monotonic counters** for every request disposition (warm hits,
  coalesced waiters, cold dispatches, sheds, rate limits, cancelled
  waiters, errors);
* a **queue-depth probe** (a callable the daemon installs) so
  snapshots report instantaneous backlog next to the cumulative
  counters.

:meth:`ServeMetrics.snapshot` is the single JSON-safe view, used by
the ``/stats`` endpoint, the load generator's summary, and -- via
:func:`repro.core.stats.set_serve_stats_provider` -- by
``engine_snapshot()``'s ``"serve"`` key.

Everything here must be safe to update from the event-loop thread
while snapshots are taken; plain int increments and list-cell updates
are atomic enough under the GIL for monitoring-grade accuracy.
"""

import time
from bisect import bisect_left
from typing import Callable, Dict, Optional

#: Histogram bucket upper bounds in milliseconds (the last bucket is
#: open-ended).  Geometric spacing keeps relative error roughly
#: constant from sub-millisecond warm hits to minute-long cold jobs.
BUCKET_BOUNDS_MS = (
    0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 60000.0,
)

#: The response tiers a request can be answered through.
TIERS = ("warm", "coalesced", "cold")

#: Counter names in the snapshot (always all present, zero when never
#: hit, so downstream tooling can rely on the schema).
COUNTER_NAMES = (
    "requests",  # every request entering the daemon
    "warm_hits",  # answered from the persistent results store
    "artifact_hits",  # evaluate jobs served from a compiled artifact
    "automaton_hits",  # member/count_below served by a resident automaton
    "coalesced",  # waiters that joined an in-flight computation
    "cold_jobs",  # executor jobs actually dispatched
    "shed",  # refused: cold queue full or daemon draining
    "rate_limited",  # refused: tenant token bucket empty
    "front_errors",  # bad request / parse failures before any tier
    "job_errors",  # cold jobs that settled with a structured error
    "cancelled_waiters",  # client tasks cancelled while awaiting a job
    "misrouted",  # refused: content hash outside this shard's slice
)


def _quantile_from_buckets(
    counts, count: int, max_ms: float, q: float
) -> float:
    """Quantile read off fixed bucket counts (shared by live histograms
    and merged snapshots, so a merged quantile is *defined* to equal the
    quantile of one histogram that observed the union stream)."""
    if count == 0:
        return 0.0
    rank = q * count
    seen = 0
    for i, n in enumerate(counts):
        seen += n
        if seen >= rank:
            if i == len(BUCKET_BOUNDS_MS):
                return round(max_ms, 3)
            return BUCKET_BOUNDS_MS[i]
    return round(max_ms, 3)  # pragma: no cover - defensive


def merge_latency_snapshots(snapshots) -> Dict[str, float]:
    """Merge histogram snapshots from several daemons into one.

    The merge is **associative and commutative**: it sums the raw
    bucket counts (plus count/total, max of max, min of min) and
    re-derives the quantiles from the merged buckets with the same
    rule a live histogram uses.  Merging per-shard snapshots therefore
    yields exactly the snapshot a single daemon would have produced
    for the union of the observation streams -- the property the
    router's aggregated ``/stats`` relies on, pinned by
    ``tests/test_serve_metrics.py``.

    Snapshots predating the ``buckets`` field merge degenerately (their
    observations land in the open last bucket) rather than failing.
    """
    counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
    count = 0
    total_ms = 0.0
    max_ms = 0.0
    for snap in snapshots:
        n = int(snap.get("count", 0))
        if n == 0:
            continue
        buckets = snap.get("buckets")
        if buckets is None or len(buckets) != len(counts):
            counts[-1] += n  # legacy snapshot: position unknown
        else:
            for i, c in enumerate(buckets):
                counts[i] += c
        count += n
        total_ms += float(snap.get("total_ms", n * snap.get("mean_ms", 0.0)))
        if snap.get("max_ms", 0.0) > max_ms:
            max_ms = snap["max_ms"]
    mean = total_ms / count if count else 0.0
    return {
        "count": count,
        "p50_ms": _quantile_from_buckets(counts, count, max_ms, 0.50),
        "p99_ms": _quantile_from_buckets(counts, count, max_ms, 0.99),
        "mean_ms": round(mean, 3),
        "max_ms": round(max_ms, 3),
        "buckets": counts,
        "total_ms": total_ms,
    }


def hit_rates_from_counters(c: Dict[str, int]) -> Dict[str, float]:
    """Fractions of *answered* requests per source (see
    :meth:`ServeMetrics.hit_rates`; extracted so merged counter sets
    re-derive their rates the same way a live daemon does)."""
    warm = (
        c.get("warm_hits", 0)
        + c.get("artifact_hits", 0)
        + c.get("automaton_hits", 0)
    )
    answered = warm + c.get("coalesced", 0) + c.get("cold_jobs", 0)
    if answered == 0:
        return {"warm": 0.0, "coalesced": 0.0, "cold": 0.0}
    return {
        "warm": round(warm / answered, 6),
        "coalesced": round(c.get("coalesced", 0) / answered, 6),
        "cold": round(c.get("cold_jobs", 0) / answered, 6),
    }


def merge_serve_snapshots(snapshots) -> dict:
    """Merge whole ``ServeMetrics.snapshot()`` documents fleet-wide.

    Counters sum, per-tier histograms merge via
    :func:`merge_latency_snapshots`, queue depth sums (instantaneous
    backlog across the fleet), uptime reports the oldest member, and
    hit rates are re-derived from the merged counters.  Associativity
    is inherited from the component merges, so
    ``merge([a, b, c]) == merge([merge([a, b]), c])`` -- the router can
    aggregate incrementally or all at once and report the same truth.
    """
    snapshots = list(snapshots)
    counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
    queue_depth = 0
    uptime = 0.0
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        queue_depth += int(snap.get("queue_depth", 0))
        if snap.get("uptime_seconds", 0.0) > uptime:
            uptime = snap["uptime_seconds"]
    tiers = {}
    for tier in TIERS:
        tiers[tier] = merge_latency_snapshots(
            snap["tiers"][tier]
            for snap in snapshots
            if tier in snap.get("tiers", {})
        )
    return {
        "uptime_seconds": uptime,
        "queue_depth": queue_depth,
        "counters": counters,
        "hit_rates": hit_rates_from_counters(counters),
        "tiers": tiers,
        "merged_from": len(snapshots),
    }


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Quantiles are read as the upper bound of the bucket where the
    cumulative count crosses the rank (the open last bucket reports
    the exact observed maximum), so estimates are conservative: a
    reported p99 is never below the true p99's bucket.
    """

    __slots__ = ("counts", "count", "total_ms", "max_ms", "min_ms")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.min_ms: Optional[float] = None

    def observe(self, ms: float) -> None:
        self.counts[bisect_left(BUCKET_BOUNDS_MS, ms)] += 1
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        if self.min_ms is None or ms < self.min_ms:
            self.min_ms = ms

    def quantile_ms(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` in [0, 1] (0.0 if empty)."""
        return _quantile_from_buckets(self.counts, self.count, self.max_ms, q)

    def snapshot(self) -> Dict[str, float]:
        """The JSON-safe view; carries the raw ``buckets`` so snapshots
        from different daemons can be merged losslessly (see
        :func:`merge_latency_snapshots`)."""
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "p50_ms": self.quantile_ms(0.50),
            "p99_ms": self.quantile_ms(0.99),
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": list(self.counts),
            "total_ms": self.total_ms,
        }


class ServeMetrics:
    """All serving counters, per-tier histograms and the queue probe."""

    def __init__(self):
        self.started_monotonic = time.monotonic()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.tiers: Dict[str, LatencyHistogram] = {
            tier: LatencyHistogram() for tier in TIERS
        }
        #: Installed by the daemon: () -> current cold-queue depth.
        self.queue_probe: Optional[Callable[[], int]] = None

    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, tier: str, ms: float) -> None:
        self.tiers[tier].observe(ms)

    def uptime_seconds(self) -> float:
        return round(time.monotonic() - self.started_monotonic, 3)

    def queue_depth(self) -> int:
        probe = self.queue_probe
        if probe is None:
            return 0
        try:
            return int(probe())
        except Exception:  # pragma: no cover - defensive
            return 0

    def hit_rates(self) -> Dict[str, float]:
        """Fractions of *answered* requests per source.

        ``warm`` folds in artifact hits and resident-automaton hits
        (all three answer without dispatching an executor job);
        ``coalesced``/``cold`` complete the partition.  Shed,
        rate-limited and front-error requests were never answered, so
        they are not in the denominator.
        """
        return hit_rates_from_counters(self.counters)

    def snapshot(self) -> dict:
        """The JSON-safe serving view (``/stats``, loadgen, snapshots)."""
        return {
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": self.queue_depth(),
            "counters": dict(self.counters),
            "hit_rates": self.hit_rates(),
            "tiers": {
                tier: hist.snapshot() for tier, hist in self.tiers.items()
            },
        }


__all__ = [
    "BUCKET_BOUNDS_MS",
    "COUNTER_NAMES",
    "LatencyHistogram",
    "ServeMetrics",
    "TIERS",
    "hit_rates_from_counters",
    "merge_latency_snapshots",
    "merge_serve_snapshots",
]
