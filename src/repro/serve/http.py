"""Wire front ends for the counting daemon: HTTP/1.1 and JSONL.

Both front ends are thin asyncio adapters over
:meth:`repro.serve.daemon.CountingDaemon.handle`; they parse bytes,
pick the tenant, and map structured responses to the wire.  The HTTP
server is hand-rolled on ``asyncio.start_server`` -- the stdlib is the
only dependency this project allows, and the daemon needs exactly the
small subset implemented here (request line, headers, Content-Length
bodies, keep-alive).

HTTP surface::

    GET  /healthz          -> {"ok": true, "uptime_seconds": ..., ...}
    GET  /stats            -> engine_snapshot() incl. the "serve" key
    POST /count|/sum|/simplify|/evaluate|/member|/count_below
                           body = request JSON (the path fixes the
                              "kind" field)
    POST /job              body = full request JSON incl. "kind"

The tenant is the ``X-Repro-Tenant`` header (anonymous when absent).
Status codes follow the structured error kind: admission refusals
(``overloaded``, ``rate_limited``) are 429, client mistakes
(``bad_request``, ``parse_error``) are 400, ``timeout`` is 504, other
job failures are 500; the JSON body is always the full structured
response either way.

JSONL surface: one request object per line in, one response object per
line out (a ``tenant`` field on the request names the tenant; it is
stripped before the request model sees it).  Lines are served
concurrently, so responses come back in completion order -- clients
correlate by ``id`` exactly as with the batch CLI.

``serve_main`` is the CLI entry (``python -m repro serve``): it wires
SIGTERM/SIGINT to graceful drain, prints a ready line with the bound
ports once listening, and exits 0 after a clean drain.
"""

import asyncio
import inspect
import json
import signal
import sys
from typing import Optional, Tuple

from repro.core import stats
from repro.serve.daemon import (
    MISROUTED,
    OVERLOADED,
    RATE_LIMITED,
    CountingDaemon,
    ServeConfig,
)
from repro.service.executor import BAD_REQUEST, PARSE_ERROR, TIMEOUT

#: Largest accepted request body; a counting request is a few hundred
#: bytes, so anything near this is garbage or abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    421: "Misdirected Request",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

_ERROR_STATUS = {
    OVERLOADED: 429,
    RATE_LIMITED: 429,
    BAD_REQUEST: 400,
    PARSE_ERROR: 400,
    TIMEOUT: 504,
    MISROUTED: 421,
}

_JOB_PATHS = (
    "/count",
    "/sum",
    "/simplify",
    "/evaluate",
    "/member",
    "/count_below",
)


def response_status(response: dict) -> int:
    """The HTTP status for a structured daemon response."""
    if response.get("ok"):
        return 200
    kind = (response.get("error") or {}).get("kind")
    return _ERROR_STATUS.get(kind, 500)


class HttpFrontend:
    """Minimal HTTP/1.1 server over the daemon."""

    def __init__(
        self, daemon: CountingDaemon, host: str = "127.0.0.1", port: int = 8722
    ):
        self.daemon = daemon
        self.host = host
        self.port = port
        self.server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self.server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _client(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body, parse_failure = request
                if parse_failure is not None:
                    await self._respond(writer, 400, parse_failure, close=True)
                    break
                close = (
                    headers.get("connection", "").lower() == "close"
                )
                status, doc = await self._route(method, path, headers, body)
                await self._respond(writer, status, doc, close)
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """One request: (method, path, headers, body, failure) or None."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None, None, None, None, self._failure(
                "malformed request line"
            )
        method, path, _version = parts
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None, None, None, None, self._failure(
                "malformed Content-Length"
            )
        if length > MAX_BODY_BYTES:
            return None, None, None, None, self._failure(
                "request body too large"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body, None

    @staticmethod
    def _failure(message: str, kind: str = BAD_REQUEST) -> dict:
        return {
            "id": None,
            "ok": False,
            "error": {"kind": kind, "message": message},
            "cached": False,
            "wall_ms": 0.0,
            "attempts": 0,
            "tier": "front",
        }

    async def _route(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> Tuple[int, dict]:
        if method == "GET":
            # The shard router serves these same front ends but needs
            # fleet-level answers, so a daemon-like object may bring
            # its own (possibly async) healthz / stats_snapshot.
            if path == "/healthz":
                provider = getattr(self.daemon, "healthz", None)
                if provider is not None:
                    doc = provider()
                    if inspect.isawaitable(doc):
                        doc = await doc
                    return 200, doc
                return 200, {
                    "ok": not self.daemon.draining,
                    "draining": self.daemon.draining,
                    "uptime_seconds": self.daemon.metrics.uptime_seconds(),
                    "queue_depth": self.daemon.metrics.queue_depth(),
                }
            if path == "/stats":
                provider = getattr(self.daemon, "stats_snapshot", None)
                if provider is not None:
                    doc = provider()
                    if inspect.isawaitable(doc):
                        doc = await doc
                    return 200, doc
                return 200, stats.engine_snapshot()
            return 404, self._failure("no such endpoint: %s" % path, "not_found")
        if method != "POST":
            return 405, self._failure("method %s not allowed" % method)
        if path not in _JOB_PATHS and path != "/job":
            return 404, self._failure("no such endpoint: %s" % path, "not_found")
        try:
            obj = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, self._failure("invalid JSON body: %s" % (exc,))
        if path != "/job" and isinstance(obj, dict):
            obj["kind"] = path[1:]
        tenant = headers.get("x-repro-tenant", "")
        response = await self.daemon.handle(obj, tenant)
        return response_status(response), response

    async def _respond(
        self, writer, status: int, doc: dict, close: bool
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: %s\r\n"
            "\r\n" % (
                status,
                _STATUS_TEXT.get(status, "Unknown"),
                len(body),
                "close" if close else "keep-alive",
            )
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


class JsonlFrontend:
    """JSONL-over-TCP front end: one request/response object per line."""

    def __init__(
        self, daemon: CountingDaemon, host: str = "127.0.0.1", port: int = 0
    ):
        self.daemon = daemon
        self.host = host
        self.port = port
        self.server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self.server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _client(self, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionError, asyncio.CancelledError):
            for task in tasks:
                task.cancel()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_line(self, line: bytes, writer, lock) -> None:
        try:
            obj = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            response = HttpFrontend._failure("invalid JSON line: %s" % (exc,))
        else:
            tenant = ""
            if isinstance(obj, dict):
                tenant = str(obj.pop("tenant", "") or "")
            response = await self.daemon.handle(obj, tenant)
        async with lock:
            writer.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            try:
                await writer.drain()
            except ConnectionError:  # client went away mid-response
                pass


async def _serve(config: ServeConfig, ready_stream=None) -> int:
    daemon = CountingDaemon(config)
    daemon.start()
    http = HttpFrontend(daemon, config.host, config.http_port)
    await http.start()
    jsonl = None
    if config.jsonl_port is not None:
        jsonl = JsonlFrontend(daemon, config.host, config.jsonl_port)
        await jsonl.start()

    # Handlers must be live before the ready line goes out: a
    # supervisor that reacts to the line by signalling immediately
    # (tests do) must hit the drain path, not the default handler.
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(getattr(signal, signame), stop.set)

    stream = ready_stream if ready_stream is not None else sys.stderr
    ready = "repro serve: listening on http://%s:%d" % (config.host, http.port)
    if jsonl is not None:
        ready += ", jsonl on %s:%d" % (config.host, jsonl.port)
    print(ready, file=stream, flush=True)
    await stop.wait()

    print("repro serve: draining...", file=stream, flush=True)
    await http.stop()
    if jsonl is not None:
        await jsonl.stop()
    snapshot = daemon.metrics.snapshot()
    await daemon.drain()
    counters = snapshot["counters"]
    print(
        "repro serve: drained; %d requests (%d warm, %d coalesced,"
        " %d cold, %d shed)"
        % (
            counters["requests"],
            counters["warm_hits"]
            + counters["artifact_hits"]
            + counters["automaton_hits"],
            counters["coalesced"],
            counters["cold_jobs"],
            counters["shed"] + counters["rate_limited"],
        ),
        file=stream,
        flush=True,
    )
    return 0


def serve_main(args) -> int:
    """Entry point behind ``python -m repro serve`` (parsed argparse ns)."""
    import os

    if getattr(args, "answer_cache", None):
        # Worker processes inherit the environment at fork, so this
        # points every cold job's answer memo at one persistent store.
        os.environ["REPRO_ANSWER_DB"] = args.answer_cache
    if getattr(args, "automaton_cache", None):
        # Same trick for built automata: the persistent store keeps
        # resident member/count_below sets across daemon restarts.
        os.environ["REPRO_AUTOMATON_DB"] = args.automaton_cache
    config = ServeConfig.from_env(
        host=args.host,
        http_port=args.http_port,
        jsonl_port=args.jsonl_port,
        cache_path=None if args.no_cache else args.cache,
        cache_limit=args.cache_limit,
        **{
            k: v
            for k, v in (
                ("workers", args.workers),
                ("queue_limit", args.queue_limit),
                ("rate", args.rate),
                ("burst", args.burst),
                ("tenant_budget", args.tenant_budget),
                ("default_timeout", args.timeout),
                ("default_budget", args.budget),
                ("drain_timeout", args.drain_timeout),
            )
            if v is not None
        }
    )
    return asyncio.run(_serve(config))


__all__ = [
    "HttpFrontend",
    "JsonlFrontend",
    "MAX_BODY_BYTES",
    "response_status",
    "serve_main",
]
