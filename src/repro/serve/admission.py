"""Admission control for the serve daemon: rate limits and budgets.

Only the *cold* tier passes through here.  Warm hits and coalesced
waiters cost the daemon microseconds and no engine work, so refusing
them would only convert cheap answers into retries; a cold dispatch
forks a worker and can burn an unbounded number of satisfiability
calls, so that is where multi-tenant fairness has to be enforced:

* a **token bucket per tenant** (``rate`` tokens/second, ``burst``
  capacity) gates how fast one tenant can trigger fresh computations;
* a **per-job satisfiability budget clamp**: a tenant-level ceiling on
  the sat-call work budget of any job it dispatches, so one tenant's
  pathological formula exhausts its own budget (a structured
  ``budget_exceeded`` response) instead of a shared worker slot.

Tenants are identified by an opaque string (the HTTP front end reads
``X-Repro-Tenant``, the JSONL front end a ``tenant`` field); the empty
string is the anonymous default tenant.  State is created lazily per
tenant and is deliberately tiny (two floats), so an open population of
tenants is fine.
"""

import time
from typing import Dict, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate=None`` disables limiting (every take succeeds); ``burst``
    then only matters as the initial balance, which is irrelevant.
    Time is injected on every call so tests can drive the clock.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: Optional[float], burst: float):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive or None")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def try_take(self, now: Optional[float] = None) -> bool:
        """Take one token if available; refills lazily from elapsed time."""
        if self.rate is None:
            return True
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self.updated)
        self.updated = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantTable:
    """Per-tenant admission state: one token bucket + the budget clamp."""

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: float = 16,
        budget_ceiling: Optional[int] = None,
    ):
        self.rate = rate
        self.burst = burst
        self.budget_ceiling = budget_ceiling
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, tenant: str, now: Optional[float] = None) -> bool:
        """True if ``tenant`` may dispatch a cold job right now."""
        if self.rate is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(self.rate, self.burst)
        return bucket.try_take(now)

    def clamp_budget(
        self, requested: Optional[int], default: Optional[int]
    ) -> Optional[int]:
        """The effective per-job sat-call budget for a tenant's job.

        The request's own budget (falling back to the daemon default)
        is honoured up to the tenant ceiling; ``None`` everywhere means
        unbudgeted.
        """
        effective = requested if requested is not None else default
        ceiling = self.budget_ceiling
        if ceiling is None:
            return effective
        if effective is None:
            return ceiling
        return min(effective, ceiling)

    def tenants(self) -> int:
        """How many distinct tenants have dispatched cold work."""
        return len(self._buckets)


__all__ = ["TenantTable", "TokenBucket"]
