"""repro -- Counting Solutions to Presburger Formulas: How and Why.

A from-scratch reproduction of William Pugh's PLDI 1994 paper: count
the number of integer solutions to selected free variables of a
Presburger formula, or sum a polynomial over those solutions, with the
answer given *symbolically* in terms of the remaining free variables.

Quickstart::

    >>> from repro import count
    >>> r = count("1 <= i and i < j and j <= n", over=["i", "j"])
    >>> print(r)
    (Σ : n - 2 >= 0 : 1/2*n**2 - 1/2*n)
    >>> r.evaluate(n=10)
    45

Layers (see DESIGN.md):

* :mod:`repro.omega` -- the Omega test: integer linear constraints,
  projection with dark shadows and splintering, satisfiability, gist.
* :mod:`repro.presburger` -- formula AST, parser, DNF and disjoint DNF.
* :mod:`repro.core` -- the counting/summation engine.
* :mod:`repro.polyhedra` -- stencil summarization (§5.1).
* :mod:`repro.apps` -- loop analysis: iterations, flops, memory and
  cache footprints, HPF communication, load balance.
* :mod:`repro.baselines` -- naive CAS summation, Tawbi, FST91,
  Haghighat-Polychronopoulos comparators.
"""

from repro.core import (
    Strategy,
    SumOptions,
    SymbolicSum,
    Term,
    count,
    count_conjunct,
    sum_poly,
)
from repro.core.general import count_bounds
from repro.omega import Affine, Conjunct, Constraint
from repro.presburger import parse, simplify, to_disjoint_dnf, to_dnf
from repro.qpoly import ModAtom, Polynomial

__version__ = "1.0.0"

__all__ = [
    "Affine",
    "Conjunct",
    "Constraint",
    "ModAtom",
    "Polynomial",
    "Strategy",
    "SumOptions",
    "SymbolicSum",
    "Term",
    "count",
    "count_bounds",
    "count_conjunct",
    "parse",
    "simplify",
    "sum_poly",
    "to_disjoint_dnf",
    "to_dnf",
]
