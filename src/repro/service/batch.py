"""JSONL batch front end for the counting service.

``python -m repro batch requests.jsonl --workers 4 --cache cache.sqlite``
reads one JSON request per line, answers one JSON response per line on
stdout (same order as the input), and prints an end-of-batch summary
to stderr.  The pipeline per job:

1. parse + canonical content hash (a malformed line or formula becomes
   a structured ``bad_request`` / ``parse_error`` response, never an
   abort);
2. disk-cache lookup by content hash -- hits are answered from the
   stored payload with ``"cached": true`` and deterministic timing
   fields, so a fully cached re-run is byte-identical to the previous
   run apart from the ``cached`` flag itself;
3. misses are deduplicated within the batch (identical jobs compute
   once) and run on the worker pool with per-job timeouts and work
   budgets;
4. successful payloads are written back to the cache.  Failures are
   *not* cached: timeouts and crashes may succeed on retry with a
   longer budget, and parse errors are cheap to re-derive.

Exit codes separate three failure planes: per-job failures (timeout,
budget, engine error) are data -- they become structured error
responses and the process still exits 0; *input-line* failures (a line
that is not valid JSON, or cannot even be decoded as UTF-8) also get a
structured per-line error response but flip the exit code to 1, since
the batch file itself was malformed; a batch file that cannot be read
at all exits 2.  Blank lines (a trailing newline, spacer lines between
sections) are tolerated and skipped.
"""

import json
import os
import sqlite3
import sys
import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.service.diskcache import DiskCache
from repro.service.executor import (
    BAD_REQUEST,
    PARSE_ERROR,
    JobError,
    run_jobs,
)
from repro.service.request import (
    JobRequest,
    ParseError,
    PolynomialParseError,
    RequestError,
)

#: Response keys that may differ between a computed run and a cached
#: re-run of the same batch; strip them to compare runs byte-for-byte.
#: ``stats`` joined the list with the persistent answer memo: a warm
#: run that answers a clause from the answer store does genuinely less
#: engine work, so its per-job counters differ while the result is
#: byte-identical.  ``tier`` is the serve daemon's annotation of which
#: serving tier answered (warm/coalesced/cold/...); the batch CLI does
#: not emit it, so it must be volatile for daemon-vs-batch
#: byte-identity checks to hold.  ``shard`` is the shard router's
#: annotation of the owning shard index -- same story: a topology
#: detail, not part of the answer.
VOLATILE_RESPONSE_KEYS = (
    "cached",
    "wall_ms",
    "attempts",
    "stats",
    "tier",
    "shard",
)

#: Payload keys not echoed into response lines (bulky; clients that
#: want the full serialized result can read the cache).
_PAYLOAD_ONLY_KEYS = ("result_json",)

Entry = Union[JobRequest, JobError]


class BatchSummary:
    """End-of-batch accounting: job counts, failure taxonomy, cache."""

    def __init__(
        self,
        jobs: int,
        ok: int,
        errors: dict,
        cache_hits: int,
        cache_misses: int,
        cache_corrupt: int,
        deduped: int,
        workers: int,
        wall_seconds: float,
    ):
        self.jobs = jobs
        self.ok = ok
        self.errors = dict(errors)
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.cache_corrupt = cache_corrupt
        self.deduped = deduped
        self.workers = workers
        self.wall_seconds = wall_seconds

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "ok": self.ok,
            "errors": self.errors,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "corrupt": self.cache_corrupt,
            },
            "deduped": self.deduped,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
        }

    def __str__(self) -> str:
        errors = (
            ", ".join(
                "%s=%d" % (k, v) for k, v in sorted(self.errors.items())
            )
            or "none"
        )
        return (
            "batch: %d jobs, %d ok, errors: %s | cache: %d hits,"
            " %d misses, %d corrupt | %d deduped | %d workers | %.3fs"
            % (
                self.jobs,
                self.ok,
                errors,
                self.cache_hits,
                self.cache_misses,
                self.cache_corrupt,
                self.deduped,
                self.workers,
                self.wall_seconds,
            )
        )


def response_core(payload: dict) -> dict:
    """An ok payload with bulky payload-only keys stripped.

    Shared by the batch settle path and the serve daemon so both wire
    formats carry exactly the same response fields for the same job.
    """
    return {
        k: v for k, v in payload.items() if k not in _PAYLOAD_ONLY_KEYS
    }


_response_core = response_core


def run_batch(
    entries: Sequence[Entry],
    workers: int = 1,
    cache: Optional[DiskCache] = None,
    default_timeout: Optional[float] = None,
    default_budget: Optional[int] = None,
    emit=None,
) -> Tuple[List[dict], BatchSummary]:
    """Answer every entry; returns (responses-in-order, summary).

    ``entries`` holds :class:`JobRequest` objects plus
    :class:`JobError` placeholders for input lines that already failed
    upstream parsing (they produce error responses in place).

    ``emit(response)``, when given, is called with each response *in
    input order as soon as it is ready* -- a response is held back
    only while an earlier job is still running, so the CLI streams
    output while the pool works.
    """
    start = time.monotonic()
    n = len(entries)
    responses: List[Optional[dict]] = [None] * n
    hits0 = cache.hits if cache else 0
    misses0 = cache.misses if cache else 0
    corrupt0 = cache.corrupt if cache else 0
    next_emit = [0]

    def record(index: int, response: dict) -> None:
        responses[index] = response
        if emit is None:
            return
        while next_emit[0] < n and responses[next_emit[0]] is not None:
            emit(responses[next_emit[0]])
            next_emit[0] += 1

    def ident(index: int) -> object:
        eid = getattr(entries[index], "id", None)
        return eid if eid is not None else index

    # Phase 1: hash + cache lookup; collect misses, deduplicated.
    to_run: List[JobRequest] = []
    run_index_of = {}  # content hash -> position in to_run
    waiting = {}  # position in to_run -> [entry indices]
    deduped = 0
    for i, entry in enumerate(entries):
        if isinstance(entry, JobError):
            record(
                i,
                {
                    "id": ident(i),
                    "ok": False,
                    "error": entry.to_json(),
                    "cached": False,
                    "wall_ms": 0.0,
                    "attempts": 0,
                },
            )
            continue
        try:
            key = entry.content_hash()
        except (ParseError, PolynomialParseError) as exc:
            record(
                i,
                {
                    "id": ident(i),
                    "ok": False,
                    "error": JobError(PARSE_ERROR, str(exc)).to_json(),
                    "cached": False,
                    "wall_ms": 0.0,
                    "attempts": 0,
                },
            )
            continue
        except Exception as exc:
            record(
                i,
                {
                    "id": ident(i),
                    "ok": False,
                    "error": JobError(
                        BAD_REQUEST,
                        "%s: %s" % (type(exc).__name__, exc),
                    ).to_json(),
                    "cached": False,
                    "wall_ms": 0.0,
                    "attempts": 0,
                },
            )
            continue
        payload = cache.get(key) if cache is not None else None
        if payload is not None and "result" in payload:
            response = {"id": ident(i), "ok": True}
            response.update(_response_core(payload))
            response["cached"] = True
            response["wall_ms"] = 0.0
            response["attempts"] = 0
            record(i, response)
            continue
        if key in run_index_of:
            deduped += 1
            waiting[run_index_of[key]].append(i)
        else:
            run_index_of[key] = len(to_run)
            waiting[len(to_run)] = [i]
            to_run.append(entry)

    # Phase 2: run the misses on the pool, streaming as jobs settle.
    if to_run:
        key_of = {pos: key for key, pos in run_index_of.items()}

        def settle(pos: int, outcome: dict) -> None:
            if outcome["ok"] and cache is not None:
                # A cache-write failure (disk full, db locked past the
                # busy timeout) must not sink the batch: the result is
                # already computed, so serve it and just skip caching.
                try:
                    cache.put(key_of[pos], outcome["payload"])
                except (sqlite3.Error, OSError) as exc:
                    print(
                        "repro batch: cache write failed for job %s"
                        " (%s: %s); result served uncached"
                        % (ident(waiting[pos][0]), type(exc).__name__, exc),
                        file=sys.stderr,
                    )
            for i in waiting[pos]:
                response = {"id": ident(i), "ok": outcome["ok"]}
                if outcome["ok"]:
                    response.update(_response_core(outcome["payload"]))
                else:
                    response["error"] = outcome["error"]
                response["cached"] = False
                response["wall_ms"] = outcome["wall_ms"]
                response["attempts"] = outcome["attempts"]
                record(i, response)

        run_jobs(
            to_run,
            workers=workers,
            default_timeout=default_timeout,
            default_budget=default_budget,
            on_outcome=settle,
        )

    errors = {}
    n_ok = 0
    for response in responses:
        if response["ok"]:
            n_ok += 1
        else:
            kind = response["error"].get("kind", "unknown")
            errors[kind] = errors.get(kind, 0) + 1
    summary = BatchSummary(
        jobs=n,
        ok=n_ok,
        errors=errors,
        cache_hits=(cache.hits - hits0) if cache else 0,
        cache_misses=(cache.misses - misses0) if cache else 0,
        cache_corrupt=(cache.corrupt - corrupt0) if cache else 0,
        deduped=deduped,
        workers=workers,
        wall_seconds=round(time.monotonic() - start, 6),
    )
    return responses, summary


def _line_error(line_no: int, message: str) -> JobError:
    """A structured record for an input line that is not a request.

    ``line_error`` marks the failure as belonging to the *input file*
    (truncated record, stray bytes) rather than to a well-formed but
    unservable request; :func:`batch_main` turns any such line into a
    nonzero exit code while still answering every other line.
    """
    error = JobError(BAD_REQUEST, "line %d: %s" % (line_no, message), id=line_no)
    error.line_error = True
    return error


def parse_request_line(line: str, line_no: int) -> Entry:
    """One JSONL line -> JobRequest, or a JobError placeholder."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        return _line_error(line_no, "invalid JSON: %s" % (exc,))
    try:
        return JobRequest.from_json(obj, default_id=line_no)
    except RequestError as exc:
        return JobError(
            BAD_REQUEST,
            "line %d: %s" % (line_no, exc),
            id=obj.get("id", line_no) if isinstance(obj, dict) else line_no,
        )


def batch_main(args) -> int:
    """Entry point behind ``python -m repro batch`` (parsed argparse ns)."""
    if args.input == "-":
        # Read raw bytes when stdin has them (the real CLI path);
        # text-only stand-ins (tests monkeypatching sys.stdin) lack
        # ``.buffer`` and are re-encoded so the per-line decode below
        # is the single code path.
        stream = getattr(sys.stdin, "buffer", sys.stdin)
        raw = stream.read()
        if isinstance(raw, str):
            raw = raw.encode("utf-8")
    else:
        try:
            with open(args.input, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            print("repro batch: cannot read %s: %s" % (args.input, exc), file=sys.stderr)
            return 2

    # Decode line by line: one undecodable record must not take down
    # the rest of the batch (it becomes a structured per-line error
    # like any other malformed line, instead of a UnicodeDecodeError
    # traceback for the whole file).
    entries: List[Entry] = []
    for line_no, line_bytes in enumerate(raw.splitlines(), start=1):
        try:
            line = line_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            entries.append(_line_error(line_no, "undecodable bytes: %s" % (exc,)))
            continue
        if not line.strip():
            continue
        entries.append(parse_request_line(line, line_no))
    line_errors = sum(
        1 for e in entries if getattr(e, "line_error", False)
    )

    if getattr(args, "answer_cache", None):
        # Workers inherit the environment at fork, so setting the
        # variable here points every worker's answer memo at the same
        # persistent root store.
        os.environ["REPRO_ANSWER_DB"] = args.answer_cache
    cache = None
    if not args.no_cache:
        cache = DiskCache(args.cache, max_entries=args.cache_limit)
    out = sys.stdout

    def emit(response: dict) -> None:
        out.write(json.dumps(response, sort_keys=True))
        out.write("\n")
        out.flush()

    try:
        _, summary = run_batch(
            entries,
            workers=args.workers,
            cache=cache,
            default_timeout=args.timeout,
            default_budget=args.budget,
            emit=emit,
        )
    finally:
        if cache is not None:
            cache.close()
    print(summary, file=sys.stderr)
    if args.summary_json:
        with open(args.summary_json, "w") as fh:
            json.dump(summary.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    if line_errors:
        print(
            "repro batch: %d malformed input line%s (see bad_request"
            " responses above)"
            % (line_errors, "" if line_errors == 1 else "s"),
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = [
    "BatchSummary",
    "VOLATILE_RESPONSE_KEYS",
    "batch_main",
    "parse_request_line",
    "response_core",
    "run_batch",
]
