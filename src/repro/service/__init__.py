"""Batched counting service: requests, disk cache, executor, batch I/O.

The engine answers one query at a time; real clients (dependence
testers, cache-miss estimators, load balancers) issue *streams* of
count/sum/simplify queries whose individual cost varies by orders of
magnitude.  This package is the serving skeleton in front of the
engine:

* :mod:`repro.service.request` -- the canonical request model.  Every
  job gets a stable content hash derived from the *parsed* formula
  (invariant under variable order and alpha-renaming of the counted
  variables), the options, and the engine version.
* :mod:`repro.service.diskcache` -- a persistent, size-bounded,
  sqlite-backed result cache keyed by content hash, safe under
  concurrent writers.
* :mod:`repro.service.executor` -- a worker-pool executor running one
  process per job with per-job wall-clock timeouts and work budgets;
  a crashed worker is retried once, and every failure mode degrades
  to a structured :class:`~repro.service.executor.JobError` instead
  of failing the batch.
* :mod:`repro.service.batch` -- the JSONL front end behind
  ``python -m repro batch``: one request per input line, one response
  per output line, end-of-batch summary on stderr.
"""

from repro.service.batch import BatchSummary, run_batch
from repro.service.diskcache import DiskCache
from repro.service.executor import JobError, execute_request, run_jobs
from repro.service.request import ENGINE_VERSION, JobRequest, RequestError

__all__ = [
    "BatchSummary",
    "DiskCache",
    "ENGINE_VERSION",
    "JobError",
    "JobRequest",
    "RequestError",
    "execute_request",
    "run_batch",
    "run_jobs",
]
