"""Worker-pool executor: one process per job, timeouts, budgets, retry.

Jobs run in freshly forked/spawned worker processes, which buys three
properties the in-process engine cannot provide:

* **Per-job wall-clock timeouts.**  The engine has no preemption
  points, so the only reliable timeout is killing the worker; a
  process per job makes that safe (nothing else shares its state).
* **Crash isolation.**  A worker that dies mid-job (OOM kill, C-level
  fault, the test suite's poison hook) takes down only its own job.
  Crashes are retried once -- transient kills are common in
  production -- then reported as a structured error.
* **Snapshot isolation for stats and budgets.**  ``repro.core.stats``
  is process-global; each worker resets it at job start, arms the
  per-job work budget, and returns an ``engine_snapshot`` with its
  payload, so per-job counters never interleave (see the stats module
  docstring).

Every failure mode -- timeout, parse error, budget exhaustion, engine
failure, worker crash -- degrades to a :class:`JobError` carried in
the job's response slot; the rest of the batch always completes.

Test hooks (both gated on environment variables, inert otherwise):

* ``REPRO_SERVICE_POISON=<token>``: a worker whose formula text
  contains the token dies immediately via ``os._exit`` -- simulates a
  worker killed mid-job.
* ``REPRO_SERVICE_POISON_ONCE=<token>:<flagfile>``: like POISON, but
  the worker creates ``flagfile`` before dying and only dies if the
  file did not already exist -- a *transient* kill, so the retry
  succeeds.  This is the only way to exercise the crash-then-recover
  path deterministically.
* ``REPRO_SERVICE_SLEEP=<token>``: a worker whose formula text
  contains the token sleeps forever -- a deterministic way to force
  the timeout path without a genuinely expensive formula.
"""

import multiprocessing
import os
import time
from collections import deque
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core import Strategy, SumOptions, count, stats, sum_poly
from repro.presburger.parser import ParseError, parse
from repro.presburger.simplify import simplify as simplify_formula
from repro.qpoly.parse import PolynomialParseError
from repro.service.request import JobRequest

#: Exit code the poison hook dies with (distinguishable in tests).
POISON_EXIT_CODE = 86

#: Structured failure taxonomy (the "error.kind" wire values).
TIMEOUT = "timeout"
PARSE_ERROR = "parse_error"
BUDGET_EXCEEDED = "budget_exceeded"
ENGINE_ERROR = "engine_error"
WORKER_CRASH = "worker_crash"
BAD_REQUEST = "bad_request"


class JobError(Exception):
    """A structured per-job failure (never aborts the batch).

    ``id`` is an optional client-facing job identifier carried so an
    input line that fails before a :class:`JobRequest` even exists
    (bad JSON) still gets a correctly labelled response.
    """

    def __init__(self, kind: str, message: str, id=None):
        super().__init__(message)
        self.kind = kind
        self.message = message
        self.id = id

    def to_json(self) -> dict:
        return {"kind": self.kind, "message": self.message}

    def __repr__(self) -> str:
        return "JobError(%s: %s)" % (self.kind, self.message)


def _encode_value(value) -> object:
    """Exact JSON encoding of an evaluation result (int or Fraction)."""
    if isinstance(value, Fraction):
        return "%d/%d" % (value.numerator, value.denominator)
    return int(value)


def _evaluate_points(req: JobRequest, result) -> List[dict]:
    """Evaluate the request's points against the symbolic answer.

    ``evaluate`` jobs exist to serve many points fast, so they go
    through the :mod:`repro.evalc` compiler (shared artifact keyed by
    the request's point-free formula hash); compiled results are
    bit-for-bit equal to the interpreted path, and any compilation
    failure degrades to interpretation rather than failing the job.
    """
    if not req.at:
        return []
    values = None
    if req.kind == "evaluate":
        from repro.evalc import compile_enabled, compile_sum

        if compile_enabled():
            try:
                compiled = compile_sum(result, cache_key=req.formula_hash())
                values = compiled.many(req.at)
            except Exception:
                values = None
    if values is None:
        values = [result.evaluate(env) for env in req.at]
    return [
        {"at": dict(env), "value": _encode_value(value)}
        for env, value in zip(req.at, values)
    ]


def _execute_resident(req: JobRequest) -> dict:
    """``member`` / ``count_below``: query the resident automaton.

    The formula's automaton comes from the process-global resident
    cache (:mod:`repro.automaton.cache`), so a stream of queries
    against one formula pays for a single build; the queries
    themselves are O(bits) walks / path DPs.  Out-of-fragment formulas
    (free symbols, state-budget blowups) fall back to the engine:
    direct formula evaluation for membership, a boxed recursion count
    for thresholds -- same silent-fallback contract as the router.
    """
    from repro.automaton import UnsupportedFormula, automaton_for, member
    from repro.automaton import count_below as automaton_count_below

    formula = parse(req.formula)
    over = list(req.over)
    options = SumOptions(
        strategy=Strategy(req.strategy),
        remove_redundant=req.remove_redundant,
    )
    if stats.ENABLED:
        stats.bump("automaton_calls")
    aut = None
    try:
        aut = automaton_for(formula, over, options)
    except UnsupportedFormula:
        if stats.ENABLED:
            stats.bump("automaton_fallbacks")

    if req.kind == "member":
        points = []
        for env in req.at:
            missing = sorted(v for v in over if v not in env)
            if missing:
                raise JobError(
                    BAD_REQUEST,
                    "member point is missing values for: %s"
                    % ", ".join(missing),
                )
            if aut is not None:
                value = member(aut, [env[v] for v in over])
            else:
                try:
                    value = bool(formula.evaluate(env))
                except KeyError as exc:
                    raise JobError(
                        BAD_REQUEST,
                        "member point is missing a value for %s" % (exc,),
                    )
            points.append({"at": dict(env), "value": bool(value)})
        inside = sum(1 for p in points if p["value"])
        return {
            "kind": req.kind,
            "result": "%d/%d in set" % (inside, len(points)),
            "exactness": "exact",
            "points": points,
            "stats": stats.engine_snapshot(),
        }

    lo = req.lo if req.lo is not None else 0
    hi = req.bound - 1
    if aut is not None:
        total = automaton_count_below(aut, req.bound, lo)
        exactness = "exact"
    else:
        box = " and ".join(
            "%d <= %s and %s <= %d" % (lo, v, v, hi) for v in over
        )
        result = count("(%s) and %s" % (req.formula, box), over, options)
        try:
            total = int(result.evaluate({}))
        except Exception:
            # Symbolic constants survive into the answer: report the
            # symbolic threshold count like a count job would.
            return {
                "kind": req.kind,
                "result": str(result),
                "result_json": result.to_json(),
                "exactness": result.exactness,
                "points": [],
                "stats": stats.engine_snapshot(),
            }
        exactness = result.exactness
    return {
        "kind": req.kind,
        "result": str(total),
        "value": total,
        "exactness": exactness,
        "points": [],
        "stats": stats.engine_snapshot(),
    }


def execute_request(req: JobRequest) -> dict:
    """Run one job in the current process and return its ok payload.

    Raises :class:`JobError` for parse errors and budget exhaustion;
    anything else that escapes is an engine failure the caller wraps.
    The caller is responsible for stats reset/enable when per-job
    isolation is wanted (the pool worker does this).

    A request carrying ``backend`` runs under that counting backend:
    the process-global router default is switched for the duration of
    the job (and restored after), so the ``backend`` key of the
    payload's ``stats`` block reports what the job actually ran with.
    The field is excluded from the content hash, so a cached response
    may have been computed by either backend -- both are exact.
    """
    from repro.core import set_backend
    from repro.core.backend import resolve_backend

    previous_backend = set_backend(resolve_backend(req.backend))
    try:
        if req.kind == "simplify":
            clauses = simplify_formula(
                parse(req.formula), disjoint=req.disjoint
            )
            lines = [str(c) for c in clauses] or ["FALSE"]
            return {
                "kind": req.kind,
                "result": "\n".join(lines),
                "clauses": lines,
                "points": [],
                "stats": stats.engine_snapshot(),
            }
        if req.kind in ("member", "count_below"):
            return _execute_resident(req)
        options = SumOptions(
            strategy=Strategy(req.strategy),
            remove_redundant=req.remove_redundant,
        )
        if req.poly is not None:
            result = sum_poly(
                req.formula, list(req.over), req.poly, options
            )
        else:
            result = count(req.formula, list(req.over), options)
        if req.simplify:
            result = result.simplified()
        points = _evaluate_points(req, result)
        return {
            "kind": req.kind,
            "result": str(result),
            "result_json": result.to_json(),
            "exactness": result.exactness,
            "points": points,
            "stats": stats.engine_snapshot(),
        }
    except (ParseError, PolynomialParseError) as exc:
        raise JobError(PARSE_ERROR, str(exc))
    except stats.WorkBudgetExceeded as exc:
        raise JobError(BUDGET_EXCEEDED, str(exc))
    finally:
        set_backend(previous_backend)


def _worker_main(req_json: dict, conn, budget: Optional[int]) -> None:
    """Worker entry point: run one job, send one (status, dict) pair."""
    req = JobRequest.from_json(req_json)
    for env_var, action in (
        ("REPRO_SERVICE_POISON", "die"),
        ("REPRO_SERVICE_SLEEP", "sleep"),
    ):
        token = os.environ.get(env_var)
        if token and token in req.formula:
            if action == "die":
                os._exit(POISON_EXIT_CODE)
            time.sleep(3600)
    once = os.environ.get("REPRO_SERVICE_POISON_ONCE")
    if once and ":" in once:
        token, flag_path = once.split(":", 1)
        if token in req.formula:
            try:
                # O_EXCL makes create-if-absent atomic, so exactly one
                # attempt dies even if two poisoned workers race.
                fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # second attempt: run the job normally
            else:
                os.close(fd)
                os._exit(POISON_EXIT_CODE)
    from repro.automaton.cache import clear_automaton_cache
    from repro.core.memo import clear_answer_memo
    from repro.omega.satisfiability import clear_sat_cache

    # Per-job isolation: a forked worker inherits whatever the parent
    # (or, on some platforms, a reused interpreter) had cached, so the
    # job's stats block must start from empty caches.  The persistent
    # answer layer (REPRO_ANSWER_DB, inherited through the environment)
    # deliberately survives: that is how warm batch runs answer clauses
    # from disk.
    clear_sat_cache()
    clear_answer_memo()
    clear_automaton_cache()
    stats.reset_stats()
    stats.enable_stats()
    stats.set_work_budget(budget)
    try:
        payload = execute_request(req)
        conn.send(("ok", payload))
    except JobError as exc:
        conn.send(("error", exc.to_json()))
    except Exception as exc:  # engine failure: report, don't crash
        conn.send(
            ("error", {"kind": ENGINE_ERROR, "message": "%s: %s" % (type(exc).__name__, exc)})
        )
    finally:
        conn.close()


class _Running:
    __slots__ = ("proc", "conn", "index", "req", "started", "attempt")

    def __init__(self, proc, conn, index, req, attempt):
        self.proc = proc
        self.conn = conn
        self.index = index
        self.req = req
        self.started = time.monotonic()
        self.attempt = attempt


def run_jobs(
    requests: Sequence[JobRequest],
    workers: int = 1,
    default_timeout: Optional[float] = None,
    default_budget: Optional[int] = None,
    poll_interval: float = 0.005,
    on_outcome=None,
) -> List[dict]:
    """Run jobs on a bounded pool; one outcome dict per request, in order.

    Each outcome is ``{"ok": True, "payload": ..., "wall_ms": ...,
    "attempts": n}`` or ``{"ok": False, "error": {"kind", "message"},
    "wall_ms": ..., "attempts": n}``.  A job's timeout/budget comes
    from the request, falling back to the defaults given here.
    ``on_outcome(index, outcome)``, when given, fires as each job
    settles (completion order, not input order) so callers can stream.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ctx = multiprocessing.get_context()
    outcomes: List[Optional[dict]] = [None] * len(requests)
    pending = deque((i, req, 1) for i, req in enumerate(requests))
    running: List[_Running] = []

    def finish(slot: _Running, outcome: dict) -> None:
        outcome["wall_ms"] = round(
            (time.monotonic() - slot.started) * 1000.0, 3
        )
        outcome["attempts"] = slot.attempt
        outcomes[slot.index] = outcome
        running.remove(slot)
        slot.conn.close()
        if on_outcome is not None:
            on_outcome(slot.index, outcome)

    def crashed(slot: _Running) -> None:
        """A worker died without reporting: retry once, then record."""
        code = slot.proc.exitcode
        if slot.attempt < 2:
            running.remove(slot)
            slot.conn.close()
            # Requeue at the front so the retry does not starve
            # behind the rest of the batch.
            pending.appendleft((slot.index, slot.req, slot.attempt + 1))
            return
        finish(
            slot,
            {
                "ok": False,
                "error": {
                    "kind": WORKER_CRASH,
                    "message": "worker died with exit code %s (after retry)"
                    % (code,),
                },
            },
        )

    while pending or running:
        while pending and len(running) < workers:
            index, req, attempt = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            budget = req.budget if req.budget is not None else default_budget
            proc = ctx.Process(
                target=_worker_main,
                args=(req.to_json(), child_conn, budget),
            )
            proc.daemon = True
            proc.start()
            child_conn.close()
            running.append(_Running(proc, parent_conn, index, req, attempt))

        progressed = False
        for slot in list(running):
            timeout = (
                slot.req.timeout
                if slot.req.timeout is not None
                else default_timeout
            )
            if slot.conn.poll():
                try:
                    status, payload = slot.conn.recv()
                except (EOFError, OSError):
                    status = None
                    payload = None
                slot.proc.join()
                if status == "ok":
                    finish(slot, {"ok": True, "payload": payload})
                elif status == "error":
                    finish(slot, {"ok": False, "error": payload})
                else:  # pipe broke mid-message: treat as a crash
                    crashed(slot)
                progressed = True
            elif not slot.proc.is_alive():
                slot.proc.join()
                # Drain the race where the result landed between the
                # poll above and the liveness check.
                if slot.conn.poll():
                    continue  # picked up next loop iteration
                crashed(slot)
                progressed = True
            elif (
                timeout is not None
                and time.monotonic() - slot.started > timeout
            ):
                slot.proc.terminate()
                slot.proc.join(1.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join()
                finish(
                    slot,
                    {
                        "ok": False,
                        "error": {
                            "kind": TIMEOUT,
                            "message": "job exceeded its %.3fs wall-clock timeout"
                            % timeout,
                        },
                    },
                )
                progressed = True
        if not progressed:
            time.sleep(poll_interval)
    return outcomes


__all__ = [
    "BAD_REQUEST",
    "BUDGET_EXCEEDED",
    "ENGINE_ERROR",
    "JobError",
    "PARSE_ERROR",
    "POISON_EXIT_CODE",
    "TIMEOUT",
    "WORKER_CRASH",
    "execute_request",
    "run_jobs",
]
