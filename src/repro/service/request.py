"""Canonical request model for the batch counting service.

A :class:`JobRequest` describes one unit of work -- a ``count``,
``sum`` or ``simplify`` query plus its options -- and knows how to
compute a **content hash** that is stable across processes and
sessions.  The hash is the disk-cache key, so its design rules are:

* **Sound**: two requests share a hash only if they are guaranteed to
  produce the same response.  The hashed payload is a *complete*
  serialization of a canonical form, so distinct canonical forms can
  only collide by SHA-256 collision.
* **Canonical where cheap**: the hash is derived from the parsed AST,
  not the formula text, and is invariant under (a) whitespace and
  other purely lexical variation, (b) the order of the ``over`` list,
  (c) alpha-renaming of the counted and quantifier-bound variables,
  and (d) the order of ``and`` / ``or`` operands.  Free symbolic
  constants keep their names -- they appear in the answer, so renaming
  them *does* change the response.
* **Versioned**: the engine version and a schema version are part of
  the payload, so upgrading the engine invalidates the cache instead
  of serving stale semantics.

Canonicalization is two-pass.  Pass one assigns canonical names (a
control-character prefix plus an index, e.g. ``"\\x020"``) to bound
variables by **iterative signature refinement**: each bound variable's
signature is the multiset of its atom occurrences (atom shape with
bound names masked, its own coefficient, boolean-context path, and the
coefficient/rank of co-occurring bound variables), refined until the
rank partition stabilizes -- every ingredient is alpha-invariant, so
the final ranking is too.  Pass two serializes the tree bottom-up with
those names, sorting ``and`` / ``or`` children by their finished
serialization, which makes operand order irrelevant.  Variables left
tied at the refinement fixpoint are structurally interchangeable for
every signature the refinement can see; for such ties the assignment
is broken by original name, which can, for genuinely asymmetric
formulas engineered to defeat refinement, cost a duplicate cache entry
-- never a wrong hit, since the payload stays a complete serialization
of the formula.  The name prefix puts canonical names in a namespace
no user identifier can occupy, so a free constant that happens to be
named like a canonical bound name can never collide with one.
"""

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import __version__ as ENGINE_VERSION
from repro.core.options import Strategy
from repro.core.result import polynomial_to_json
from repro.omega.affine import Affine
from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
)
from repro.presburger.parser import ParseError, parse
from repro.qpoly.parse import PolynomialParseError, parse_polynomial

#: Hash-payload schema; bump on any change to the canonical form.
REQUEST_SCHEMA_VERSION = 3

KINDS = ("count", "sum", "simplify", "evaluate")

#: Placeholder for a bound variable in the shape (pass-one) key.
_MASK = "\x01"

#: Prefix for canonical bound-variable names in the exact (pass-two)
#: serialization.  A control character keeps canonical names outside
#: the identifier namespace: free constants keep their user-visible
#: names, so naming one ``b0`` must not make it serialize identically
#: to a canonically-renamed bound variable.
_BOUND_PREFIX = "\x02"


class RequestError(ValueError):
    """A malformed service request (bad kind, missing field, ...)."""


# -- AST canonicalization ------------------------------------------------


def _affine_shape(expr: Affine, bound) -> str:
    masked = sorted(
        (_MASK if v in bound else v, c) for v, c in expr.coeffs
    )
    return "%s+%d" % (masked, expr.const)


def _collect_occurrences(
    node: Formula,
    bound: frozenset,
    context: str,
    atoms: List[Tuple[str, List[Tuple[str, int]], bool]],
    marks: Dict[str, List[str]],
) -> None:
    """Pass-one scan: atom occurrences of bound variables.

    ``atoms`` receives ``(descriptor, [(var, coeff), ...], is_eq)``
    per atom, where the descriptor (atom shape with bound names masked
    plus the boolean-context path) is alpha-invariant.  ``marks``
    gives every quantifier-bound variable a baseline occurrence so a
    variable the body never mentions still gets a signature.
    """
    if node is TrueF or node is FalseF:
        return
    if isinstance(node, Atom):
        c = node.constraint
        if c.is_eq():
            # e = 0 and -e = 0 are the same atom, and Constraint.eq
            # orients the sign by variable *names* -- mask that out or
            # renaming would perturb the signatures.
            shape = min(
                _affine_shape(c.expr, bound),
                _affine_shape(-c.expr, bound),
            )
        else:
            shape = _affine_shape(c.expr, bound)
        desc = "%s:a(%s,%s)" % (context, c.kind, shape)
        atoms.append(
            (
                desc,
                [(v, k) for v, k in c.expr.coeffs if v in bound],
                c.is_eq(),
            )
        )
        return
    if isinstance(node, StrideAtom):
        desc = "%s:s(%d,%s)" % (
            context,
            node.modulus,
            _affine_shape(node.expr, bound),
        )
        atoms.append(
            (desc, [(v, k) for v, k in node.expr.coeffs if v in bound], False)
        )
        return
    if isinstance(node, Not):
        _collect_occurrences(node.child, bound, context + "n", atoms, marks)
        return
    if isinstance(node, (And, Or)):
        tag = "&" if isinstance(node, And) else "|"
        for child in node.children:
            _collect_occurrences(child, bound, context + tag, atoms, marks)
        return
    if isinstance(node, (Exists, Forall)):
        tag = "E" if isinstance(node, Exists) else "A"
        ctx = "%s%s%d" % (context, tag, len(node.variables))
        for v in node.variables:
            marks.setdefault(v, []).append(ctx)
        inner = bound | frozenset(node.variables)
        _collect_occurrences(node.body, inner, ctx, atoms, marks)
        return
    raise TypeError("unknown formula node %r" % (node,))


def _canonical_names(formula: Formula, over: Sequence[str]) -> Dict[str, str]:
    """Alpha-invariant canonical names for every bound variable.

    Iterative refinement: rank bound variables by the multiset of
    their occurrences, where each occurrence records the (masked) atom
    it sits in, its own coefficient, and the coefficients and current
    ranks of co-occurring bound variables; repeat until the partition
    stops splitting.  No ingredient mentions an original name, so the
    fixpoint ranking is invariant under alpha-renaming; original names
    only break ties between variables the refinement cannot tell apart
    (i.e. interchangeable for every signature it can see).
    """
    atoms: List[Tuple[str, List[Tuple[str, int]], bool]] = []
    marks: Dict[str, List[str]] = {}
    _collect_occurrences(formula, frozenset(over), "", atoms, marks)
    variables = set(over) | set(marks)
    for _, pairs, _eq in atoms:
        variables.update(v for v, _ in pairs)
    if not variables:
        return {}
    rank: Dict[str, int] = {v: 0 for v in variables}
    for _ in range(len(variables) + 1):
        sigs: Dict[str, str] = {}
        for v in variables:
            # Own previous rank first: refinement only ever splits
            # classes, so the loop terminates in <= |variables| rounds.
            parts: List = [("r", rank[v])]
            parts.extend(("q", m) for m in marks.get(v, ()))
            for desc, pairs, is_eq in atoms:
                occurrences = [c for u, c in pairs if u == v]
                if not occurrences:
                    continue
                others = sorted((k, rank[w]) for w, k in pairs if w != v)
                if is_eq:
                    # Record the sign-canonical orientation; an EQ atom
                    # is the same constraint negated.
                    flipped = sorted((-k, r) for k, r in others)
                    for c in occurrences:
                        parts.append(
                            ("a", desc)
                            + min((c, others), (-c, flipped))
                        )
                else:
                    for c in occurrences:
                        parts.append(("a", desc, c, others))
            sigs[v] = repr(sorted(parts))
        ordered = sorted(set(sigs.values()))
        position = {s: i for i, s in enumerate(ordered)}
        refined = {v: position[sigs[v]] for v in variables}
        if refined == rank:
            break
        rank = refined
    return {
        v: "%s%d" % (_BOUND_PREFIX, index)
        for index, v in enumerate(sorted(variables, key=lambda v: (rank[v], v)))
    }


def _affine_exact(expr: Affine, bound, names: Dict[str, str]) -> str:
    """Serialize with canonical names applied to in-scope bound vars."""
    out = [
        (names[v] if v in bound else v, c) for v, c in expr.coeffs
    ]
    return "%s+%d" % (sorted(out), expr.const)


def _canonical(node: Formula, bound: frozenset, names: Dict[str, str]) -> str:
    """Pass two: emit the canonical form with precomputed names.

    ``and`` / ``or`` children are ordered by their finished canonical
    serialization, so operand order cannot leak into the key.
    """
    if node is TrueF:
        return "T"
    if node is FalseF:
        return "F"
    if isinstance(node, Atom):
        c = node.constraint
        body = _affine_exact(c.expr, bound, names)
        if c.is_eq():
            # Constraint.eq orients the sign by variable names; pick
            # the lexicographically smaller of the two equivalent
            # orientations so renaming cannot flip the serialization.
            body = min(body, _affine_exact(-c.expr, bound, names))
        return "a(%s,%s)" % (c.kind, body)
    if isinstance(node, StrideAtom):
        return "s(%d,%s)" % (
            node.modulus,
            _affine_exact(node.expr, bound, names),
        )
    if isinstance(node, Not):
        return "n(%s)" % _canonical(node.child, bound, names)
    if isinstance(node, (And, Or)):
        tag = "&" if isinstance(node, And) else "|"
        return "%s(%s)" % (
            tag,
            ",".join(
                sorted(_canonical(c, bound, names) for c in node.children)
            ),
        )
    if isinstance(node, (Exists, Forall)):
        tag = "E" if isinstance(node, Exists) else "A"
        inner = bound | frozenset(node.variables)
        body = _canonical(node.body, inner, names)
        quantified = sorted(names[v] for v in node.variables)
        return "%s[%s](%s)" % (tag, ",".join(quantified), body)
    raise TypeError("unknown formula node %r" % (node,))


def canonical_formula_key(
    formula: Formula, over: Sequence[str]
) -> Tuple[str, Dict[str, str]]:
    """Canonical string for a formula counted over ``over``.

    Returns ``(key, names)`` where ``names`` maps every bound variable
    (counted or quantifier-bound, whether or not it occurs) to its
    canonical name (needed to canonicalize a summand polynomial
    consistently).
    """
    names = _canonical_names(formula, over)
    key = _canonical(formula, frozenset(over), names)
    return key, names


# -- the request model ---------------------------------------------------


class JobRequest:
    """One service job: kind, formula, options, evaluation points.

    ``at`` is a list of symbol assignments to evaluate the symbolic
    answer at; the evaluated points ride along in the response (and in
    the content hash, order included -- a request asking for different
    points, or the same points in a different order, is a different
    response because ``points`` mirrors the ``at`` list positionally).
    """

    __slots__ = (
        "id",
        "kind",
        "formula",
        "over",
        "poly",
        "strategy",
        "remove_redundant",
        "simplify",
        "disjoint",
        "at",
        "timeout",
        "budget",
    )

    def __init__(
        self,
        kind: str,
        formula: str,
        over: Sequence[str] = (),
        poly: Optional[str] = None,
        id: Optional[str] = None,
        strategy: str = "exact",
        remove_redundant: bool = True,
        simplify: bool = False,
        disjoint: bool = False,
        at: Sequence[Mapping[str, int]] = (),
        timeout: Optional[float] = None,
        budget: Optional[int] = None,
    ):
        if kind not in KINDS:
            raise RequestError("unknown job kind %r (want one of %s)" % (kind, "/".join(KINDS)))
        if not isinstance(formula, str) or not formula.strip():
            raise RequestError("job needs a non-empty 'formula' string")
        if kind in ("count", "sum", "evaluate") and not over:
            raise RequestError("%s job needs a non-empty 'over' list" % kind)
        if kind == "sum" and not poly:
            raise RequestError("sum job needs a 'poly' summand")
        if kind not in ("sum", "evaluate") and poly:
            raise RequestError("'poly' is only valid for sum/evaluate jobs")
        try:
            Strategy(strategy)
        except ValueError:
            raise RequestError(
                "unknown strategy %r (want one of %s)"
                % (strategy, "/".join(s.value for s in Strategy))
            )
        self.id = id
        self.kind = kind
        self.formula = formula
        self.over = tuple(over)
        self.poly = poly
        self.strategy = strategy
        self.remove_redundant = bool(remove_redundant)
        self.simplify = bool(simplify)
        self.disjoint = bool(disjoint)
        cleaned: List[Dict[str, int]] = []
        for env in at:
            if not isinstance(env, Mapping):
                raise RequestError("'at' entries must be objects, got %r" % (env,))
            point = {}
            for sym, value in env.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    raise RequestError(
                        "'at' value for %r must be an integer, got %r"
                        % (sym, value)
                    )
                point[str(sym)] = value
            cleaned.append(point)
        self.at = tuple(cleaned)
        if kind == "evaluate" and not self.at:
            raise RequestError("evaluate job needs a non-empty 'at' list")
        self.timeout = float(timeout) if timeout is not None else None
        self.budget = int(budget) if budget is not None else None

    # -- wire format ------------------------------------------------------

    @classmethod
    def from_json(cls, obj: Mapping, default_id: Optional[str] = None) -> "JobRequest":
        if not isinstance(obj, Mapping):
            raise RequestError("request must be a JSON object, got %r" % (obj,))
        known = {
            "id",
            "kind",
            "formula",
            "over",
            "poly",
            "strategy",
            "remove_redundant",
            "simplify",
            "disjoint",
            "at",
            "timeout",
            "budget",
        }
        unknown = sorted(set(obj) - known)
        if unknown:
            raise RequestError("unknown request fields: %s" % ", ".join(unknown))
        over = obj.get("over", ())
        if isinstance(over, str):
            over = [v.strip() for v in over.split(",") if v.strip()]
        return cls(
            kind=obj.get("kind", "count"),
            formula=obj.get("formula", ""),
            over=over,
            poly=obj.get("poly"),
            id=obj.get("id", default_id),
            strategy=obj.get("strategy", "exact"),
            remove_redundant=obj.get("remove_redundant", True),
            simplify=obj.get("simplify", False),
            disjoint=obj.get("disjoint", False),
            at=obj.get("at", ()),
            timeout=obj.get("timeout"),
            budget=obj.get("budget"),
        )

    def to_json(self) -> dict:
        out = {
            "kind": self.kind,
            "formula": self.formula,
            "strategy": self.strategy,
            "remove_redundant": self.remove_redundant,
            "simplify": self.simplify,
            "disjoint": self.disjoint,
        }
        if self.id is not None:
            out["id"] = self.id
        if self.over:
            out["over"] = list(self.over)
        if self.poly is not None:
            out["poly"] = self.poly
        if self.at:
            out["at"] = [dict(env) for env in self.at]
        if self.timeout is not None:
            out["timeout"] = self.timeout
        if self.budget is not None:
            out["budget"] = self.budget
        return out

    # -- content identity -------------------------------------------------

    def canonical_payload(self) -> str:
        """The exact string that is hashed (exposed for tests/debugging).

        Raises :class:`~repro.presburger.parser.ParseError` /
        :class:`~repro.qpoly.parse.PolynomialParseError` on malformed
        formula or summand text -- callers classify that as a
        ``parse_error`` job failure.
        """
        formula = parse(self.formula)
        key, names = canonical_formula_key(formula, self.over)
        payload = {
            "schema": REQUEST_SCHEMA_VERSION,
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "formula": key,
            "strategy": self.strategy,
            "remove_redundant": self.remove_redundant,
            "simplify": self.simplify,
        }
        if self.kind == "simplify":
            payload["disjoint"] = self.disjoint
        else:
            # Canonical names for counted variables; one not occurring
            # in the formula still needs a stable name for the summand.
            over_names = []
            for v in sorted(self.over):
                if v not in names:
                    names[v] = "%s%d" % (_BOUND_PREFIX, len(names))
            for v in self.over:
                over_names.append(names[v])
            payload["over"] = sorted(over_names)
        if self.poly is not None:
            poly = parse_polynomial(self.poly)
            renaming = {v: names[v] for v in poly.variables() if v in names}
            payload["poly"] = polynomial_to_json(poly.rename(renaming))
        if self.at:
            # Order is part of the identity: the cached response's
            # 'points' list preserves the order of the request that
            # computed it, so a reordered 'at' must miss, not hit with
            # points misordered relative to its own list.
            payload["at"] = [
                json.dumps(env, sort_keys=True) for env in self.at
            ]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical payload (the cache key)."""
        return hashlib.sha256(
            self.canonical_payload().encode("utf-8")
        ).hexdigest()

    def formula_hash(self) -> str:
        """Content hash with the 'at' points removed.

        The compiled-evaluator cache key: the artifact depends only on
        the symbolic answer, so evaluate jobs that differ solely in
        their points must share one compilation.
        """
        payload = json.loads(self.canonical_payload())
        payload.pop("at", None)
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        ).hexdigest()


__all__ = [
    "ENGINE_VERSION",
    "JobRequest",
    "KINDS",
    "ParseError",
    "PolynomialParseError",
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "canonical_formula_key",
]
