"""Canonical request model for the batch counting service.

A :class:`JobRequest` describes one unit of work -- a ``count``,
``sum``, ``simplify``, ``evaluate``, ``member`` or ``count_below``
query plus its options -- and knows how to compute a **content hash**
that is stable across processes and sessions.  The hash is the disk-cache key, so its design rules are:

* **Sound**: two requests share a hash only if they are guaranteed to
  produce the same response.  The hashed payload is a *complete*
  serialization of a canonical form, so distinct canonical forms can
  only collide by SHA-256 collision.
* **Canonical where cheap**: the hash is derived from the parsed AST,
  not the formula text, and is invariant under (a) whitespace and
  other purely lexical variation, (b) the order of the ``over`` list,
  (c) alpha-renaming of the counted and quantifier-bound variables,
  and (d) the order of ``and`` / ``or`` operands.  Free symbolic
  constants keep their names -- they appear in the answer, so renaming
  them *does* change the response.
* **Versioned**: the engine version and a schema version are part of
  the payload, so upgrading the engine invalidates the cache instead
  of serving stale semantics.

The canonicalization itself lives in :mod:`repro.core.canon` (shared
with the counting engine's answer memo): pass one assigns canonical
names (``"\\x02" + index``) to bound variables by iterative signature
refinement, pass two serializes the tree with those names, sorting
``and`` / ``or`` children by their finished serialization.  Free
symbolic constants keep their names in this formula-level key -- they
appear in the answer, so renaming them *does* change the response.
This module re-exports :func:`canonical_formula_key` and keeps the
hash payload layout; the serialized form is byte-identical to what it
was before the extraction, so the schema version is unchanged.
"""

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro import __version__ as ENGINE_VERSION
from repro.core.backend import BACKENDS
from repro.core.canon import (
    _BOUND_PREFIX,
    _MASK,
    canonical_formula_key,
)
from repro.core.options import Strategy
from repro.core.result import polynomial_to_json
from repro.presburger.parser import ParseError, parse
from repro.qpoly.parse import PolynomialParseError, parse_polynomial

#: Hash-payload schema; bump on any change to the canonical form.
REQUEST_SCHEMA_VERSION = 3

KINDS = ("count", "sum", "simplify", "evaluate", "member", "count_below")


class RequestError(ValueError):
    """A malformed service request (bad kind, missing field, ...)."""


# -- the request model ---------------------------------------------------


class JobRequest:
    """One service job: kind, formula, options, evaluation points.

    ``at`` is a list of symbol assignments to evaluate the symbolic
    answer at; the evaluated points ride along in the response (and in
    the content hash, order included -- a request asking for different
    points, or the same points in a different order, is a different
    response because ``points`` mirrors the ``at`` list positionally).
    """

    __slots__ = (
        "id",
        "kind",
        "formula",
        "over",
        "poly",
        "strategy",
        "remove_redundant",
        "simplify",
        "disjoint",
        "at",
        "timeout",
        "budget",
        "backend",
        "bound",
        "lo",
    )

    def __init__(
        self,
        kind: str,
        formula: str,
        over: Sequence[str] = (),
        poly: Optional[str] = None,
        id: Optional[str] = None,
        strategy: str = "exact",
        remove_redundant: bool = True,
        simplify: bool = False,
        disjoint: bool = False,
        at: Sequence[Mapping[str, int]] = (),
        timeout: Optional[float] = None,
        budget: Optional[int] = None,
        backend: Optional[str] = None,
        bound: Optional[int] = None,
        lo: Optional[int] = None,
    ):
        if kind not in KINDS:
            raise RequestError("unknown job kind %r (want one of %s)" % (kind, "/".join(KINDS)))
        if not isinstance(formula, str) or not formula.strip():
            raise RequestError("job needs a non-empty 'formula' string")
        if kind in ("count", "sum", "evaluate", "member", "count_below") and not over:
            raise RequestError("%s job needs a non-empty 'over' list" % kind)
        if kind == "sum" and not poly:
            raise RequestError("sum job needs a 'poly' summand")
        if kind not in ("sum", "evaluate") and poly:
            raise RequestError("'poly' is only valid for sum/evaluate jobs")
        try:
            Strategy(strategy)
        except ValueError:
            raise RequestError(
                "unknown strategy %r (want one of %s)"
                % (strategy, "/".join(s.value for s in Strategy))
            )
        self.id = id
        self.kind = kind
        self.formula = formula
        self.over = tuple(over)
        self.poly = poly
        self.strategy = strategy
        self.remove_redundant = bool(remove_redundant)
        self.simplify = bool(simplify)
        self.disjoint = bool(disjoint)
        cleaned: List[Dict[str, int]] = []
        for env in at:
            if not isinstance(env, Mapping):
                raise RequestError("'at' entries must be objects, got %r" % (env,))
            point = {}
            for sym, value in env.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    raise RequestError(
                        "'at' value for %r must be an integer, got %r"
                        % (sym, value)
                    )
                point[str(sym)] = value
            cleaned.append(point)
        self.at = tuple(cleaned)
        if kind in ("evaluate", "member") and not self.at:
            raise RequestError("%s job needs a non-empty 'at' list" % kind)
        if kind == "count_below":
            if isinstance(bound, bool) or not isinstance(bound, int):
                raise RequestError(
                    "count_below job needs an integer 'bound'"
                )
            if lo is not None and (
                isinstance(lo, bool) or not isinstance(lo, int)
            ):
                raise RequestError("count_below 'lo' must be an integer")
            if self.at:
                raise RequestError("'at' is not valid for count_below jobs")
        elif bound is not None or lo is not None:
            raise RequestError(
                "'bound'/'lo' are only valid for count_below jobs"
            )
        self.bound = bound
        self.lo = lo
        self.timeout = float(timeout) if timeout is not None else None
        self.budget = int(budget) if budget is not None else None
        if backend is not None and backend not in BACKENDS:
            raise RequestError(
                "unknown backend %r (want one of %s)"
                % (backend, "/".join(BACKENDS))
            )
        # Deliberately NOT part of canonical_payload(): all backends
        # are exact, so answers are interchangeable and cross-backend
        # cache hits stay valid.
        self.backend = backend

    # -- wire format ------------------------------------------------------

    @classmethod
    def from_json(cls, obj: Mapping, default_id: Optional[str] = None) -> "JobRequest":
        if not isinstance(obj, Mapping):
            raise RequestError("request must be a JSON object, got %r" % (obj,))
        known = {
            "id",
            "kind",
            "formula",
            "over",
            "poly",
            "strategy",
            "remove_redundant",
            "simplify",
            "disjoint",
            "at",
            "timeout",
            "budget",
            "backend",
            "bound",
            "lo",
        }
        unknown = sorted(set(obj) - known)
        if unknown:
            raise RequestError("unknown request fields: %s" % ", ".join(unknown))
        over = obj.get("over", ())
        if isinstance(over, str):
            over = [v.strip() for v in over.split(",") if v.strip()]
        return cls(
            kind=obj.get("kind", "count"),
            formula=obj.get("formula", ""),
            over=over,
            poly=obj.get("poly"),
            id=obj.get("id", default_id),
            strategy=obj.get("strategy", "exact"),
            remove_redundant=obj.get("remove_redundant", True),
            simplify=obj.get("simplify", False),
            disjoint=obj.get("disjoint", False),
            at=obj.get("at", ()),
            timeout=obj.get("timeout"),
            budget=obj.get("budget"),
            backend=obj.get("backend"),
            bound=obj.get("bound"),
            lo=obj.get("lo"),
        )

    def to_json(self) -> dict:
        out = {
            "kind": self.kind,
            "formula": self.formula,
            "strategy": self.strategy,
            "remove_redundant": self.remove_redundant,
            "simplify": self.simplify,
            "disjoint": self.disjoint,
        }
        if self.id is not None:
            out["id"] = self.id
        if self.over:
            out["over"] = list(self.over)
        if self.poly is not None:
            out["poly"] = self.poly
        if self.at:
            out["at"] = [dict(env) for env in self.at]
        if self.timeout is not None:
            out["timeout"] = self.timeout
        if self.budget is not None:
            out["budget"] = self.budget
        if self.backend is not None:
            out["backend"] = self.backend
        if self.bound is not None:
            out["bound"] = self.bound
        if self.lo is not None:
            out["lo"] = self.lo
        return out

    # -- content identity -------------------------------------------------

    def canonical_payload(self) -> str:
        """The exact string that is hashed (exposed for tests/debugging).

        Raises :class:`~repro.presburger.parser.ParseError` /
        :class:`~repro.qpoly.parse.PolynomialParseError` on malformed
        formula or summand text -- callers classify that as a
        ``parse_error`` job failure.
        """
        formula = parse(self.formula)
        poly = (
            parse_polynomial(self.poly) if self.poly is not None else None
        )
        key, names = canonical_formula_key(formula, self.over, poly)
        payload = {
            "schema": REQUEST_SCHEMA_VERSION,
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "formula": key,
            "strategy": self.strategy,
            "remove_redundant": self.remove_redundant,
            "simplify": self.simplify,
        }
        if self.kind == "simplify":
            payload["disjoint"] = self.disjoint
        else:
            # Canonical names for counted variables; one not occurring
            # in the formula still needs a stable name for the summand.
            over_names = []
            for v in sorted(self.over):
                if v not in names:
                    names[v] = "%s%d" % (_BOUND_PREFIX, len(names))
            for v in self.over:
                over_names.append(names[v])
            payload["over"] = sorted(over_names)
        if poly is not None:
            renaming = {v: names[v] for v in poly.variables() if v in names}
            payload["poly"] = polynomial_to_json(poly.rename(renaming))
        if self.kind == "count_below":
            payload["bound"] = self.bound
            payload["lo"] = self.lo if self.lo is not None else 0
        if self.at:
            # Order is part of the identity: the cached response's
            # 'points' list preserves the order of the request that
            # computed it, so a reordered 'at' must miss, not hit with
            # points misordered relative to its own list.  Keys naming
            # bound/counted variables (member points) go through their
            # canonical names so alpha-renamed requests share a hash;
            # free-symbol keys keep their names like everywhere else.
            payload["at"] = [
                json.dumps(
                    {names.get(k, k): v for k, v in env.items()},
                    sort_keys=True,
                )
                for env in self.at
            ]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical payload (the cache key)."""
        return hashlib.sha256(
            self.canonical_payload().encode("utf-8")
        ).hexdigest()

    def formula_hash(self) -> str:
        """Content hash with the 'at' points removed.

        The compiled-evaluator cache key: the artifact depends only on
        the symbolic answer, so evaluate jobs that differ solely in
        their points must share one compilation.
        """
        payload = json.loads(self.canonical_payload())
        payload.pop("at", None)
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        ).hexdigest()


__all__ = [
    "ENGINE_VERSION",
    "JobRequest",
    "KINDS",
    "ParseError",
    "PolynomialParseError",
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "canonical_formula_key",
]
