"""Persistent, size-bounded, sqlite-backed result cache.

Maps a request content hash (see :mod:`repro.service.request`) to the
serialized ok-response payload for that job.  Design points:

* **Persistent**: a single sqlite file; reopening the cache sees every
  previously stored result, so a re-run of a batch is pure lookups.
* **Size-bounded with LRU eviction**: ``max_entries`` caps the row
  count; inserts evict the least-recently-*used* rows (each hit bumps
  a monotone access stamp kept in the table itself, so recency
  survives restarts and is shared across processes).
* **Safe under concurrent writers and readers**: every operation is
  one sqlite transaction; sqlite's file locking serializes writers
  across processes.  Connections are opened with WAL journaling (when
  the filesystem supports it) so readers never block on a writer, and
  with an explicit ``PRAGMA busy_timeout`` so a reader or writer that
  does hit a lock retries inside sqlite instead of surfacing a
  transient ``database is locked`` error; both pragmas are applied on
  *every* open path, including the recreate-after-corruption one.  A
  single instance may also be shared between threads: operations are
  serialized by an internal lock (the connection is opened with
  ``check_same_thread=False``), which the long-lived serve daemon
  relies on.
* **Self-healing**: a row whose payload fails to decode (truncated
  write, manual tampering, schema drift) is deleted and reported as a
  miss, never surfaced to the client; a cache file that is not a
  sqlite database at all is moved aside and recreated empty.

Hit/miss/corrupt counters are per-instance (process-local); occupancy
comes from the database so it is shared.

One file can host several independent caches: ``table`` selects the
table (default ``results``, the batch-response cache; the answer memo
uses ``answers``).  Each table gets the same schema, LRU stamping and
self-healing, and instances bound to different tables of one file
coexist without interfering.
"""

import json
import os
import re
import sqlite3
import threading
from typing import Optional

_SCHEMA = """
CREATE TABLE IF NOT EXISTS {table} (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    stamp INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS {table}_stamp ON {table} (stamp);
"""

_TABLE_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class MisroutedWriteError(ValueError):
    """A write for a key outside this cache's owned hash-prefix slice.

    Raised by :meth:`DiskCache.put` when the cache was constructed with
    an ``owns`` predicate (sharded serving gives every shard's store
    the shard's :meth:`~repro.shard.config.ShardSlice.owns`): a shard
    must never persist an answer it does not own, or two shards could
    diverge on who holds the authoritative row for a hash.
    """


class DiskCache:
    """A persistent LRU mapping ``content_hash -> payload dict``.

    ``owns``, when given, is a ``key -> bool`` ownership predicate;
    writes for keys outside the owned slice raise
    :class:`MisroutedWriteError` instead of landing.  Reads are not
    guarded -- a read of a foreign key is a harmless miss (or a stale
    leftover from a re-partition, which self-corrects via LRU), while a
    foreign *write* would silently violate the single-writer-per-key
    invariant sharded serving relies on.
    """

    def __init__(
        self,
        path: str,
        max_entries: int = 100000,
        busy_timeout: float = 30.0,
        table: str = "results",
        owns=None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not _TABLE_NAME.match(table):
            raise ValueError("table must be an identifier, got %r" % (table,))
        self.path = path
        self.table = table
        self.owns = owns
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._busy_timeout = busy_timeout
        self._lock = threading.Lock()
        self._conn = self._open()

    def _connect(self) -> sqlite3.Connection:
        """Open a connection with WAL + busy-timeout pragmas applied.

        The pragmas are set before any schema statement runs so even
        table creation benefits, and this is the single place both the
        normal and the recreate-after-corruption paths go through.
        ``timeout=`` covers Python-level waits; the explicit
        ``busy_timeout`` pragma makes sqlite itself retry, which is
        what stops many daemon readers + one writer from seeing
        transient ``database is locked`` errors.
        """
        conn = sqlite3.connect(
            self.path,
            timeout=self._busy_timeout,
            check_same_thread=False,
        )
        conn.execute(
            "PRAGMA busy_timeout = %d" % int(self._busy_timeout * 1000)
        )
        conn.execute("PRAGMA journal_mode=WAL")
        return conn

    def _open(self) -> sqlite3.Connection:
        schema = _SCHEMA.format(table=self.table)
        conn = None
        try:
            conn = self._connect()
            conn.executescript(schema)
            conn.commit()
        except sqlite3.DatabaseError:
            # Not a sqlite file (or unrecoverably damaged): move the
            # wreck aside and start fresh rather than failing every job.
            if conn is not None:
                conn.close()
            os.replace(self.path, self.path + ".corrupt")
            conn = self._connect()
            conn.executescript(schema)
            conn.commit()
        return conn

    # -- operations -------------------------------------------------------

    def journal_mode(self) -> str:
        """The connection's active journal mode (``wal`` when supported)."""
        with self._lock:
            return self._conn.execute("PRAGMA journal_mode").fetchone()[0]

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on miss (corrupt rows self-delete)."""
        t = self.table
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM %s WHERE key = ?" % t, (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            try:
                payload = json.loads(row[0])
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
            except (ValueError, TypeError):
                self.corrupt += 1
                self.misses += 1
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM %s WHERE key = ?" % t, (key,)
                    )
                return None
            self.hits += 1
            with self._conn:
                self._conn.execute(
                    "UPDATE %s SET stamp ="
                    " (SELECT COALESCE(MAX(stamp), 0) + 1 FROM %s)"
                    " WHERE key = ?" % (t, t),
                    (key,),
                )
            return payload

    def put(self, key: str, payload: dict) -> None:
        """Store (or refresh) a payload, evicting LRU rows past the cap."""
        if self.owns is not None and not self.owns(key):
            raise MisroutedWriteError(
                "refusing write for key %s: outside this store's owned"
                " hash-prefix slice" % key[:16]
            )
        t = self.table
        text = json.dumps(payload, sort_keys=True)
        with self._lock:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO %s (key, payload, stamp)"
                    " VALUES (?, ?,"
                    " (SELECT COALESCE(MAX(stamp), 0) + 1 FROM %s))" % (t, t),
                    (key, text),
                )
                excess = (
                    self._conn.execute(
                        "SELECT COUNT(*) FROM %s" % t
                    ).fetchone()[0]
                    - self.max_entries
                )
                if excess > 0:
                    self._conn.execute(
                        "DELETE FROM %s WHERE key IN"
                        " (SELECT key FROM %s ORDER BY stamp ASC LIMIT ?)"
                        % (t, t),
                        (excess,),
                    )

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM %s" % self.table
            ).fetchone()[0]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return (
                self._conn.execute(
                    "SELECT 1 FROM %s WHERE key = ?" % self.table, (key,)
                ).fetchone()
                is not None
            )

    def info(self) -> dict:
        """Process-local hit counters plus shared occupancy."""
        return {
            "path": self.path,
            "table": self.table,
            "size": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["DiskCache", "MisroutedWriteError"]
