"""Small exact integer/rational matrices.

The summation engine needs exact linear algebra in low dimensions
(Smith normal form of subscript maps, solving small systems for the
quasi-polynomial interpolation in residue merging).  numpy's float
matrices are useless for this, so we carry a tiny exact implementation
on top of ``fractions.Fraction``.
"""

from fractions import Fraction
from typing import List, Sequence, Union

Number = Union[int, Fraction]


class IntMatrix:
    """A dense exact matrix with integer or rational entries.

    Rows are stored as lists; all arithmetic is exact.  The class is
    deliberately small: just what HNF/SNF and interpolation need.
    """

    def __init__(self, rows: Sequence[Sequence[Number]]):
        self.rows: List[List[Number]] = [list(r) for r in rows]
        if self.rows:
            width = len(self.rows[0])
            if any(len(r) != width for r in self.rows):
                raise ValueError("ragged matrix")

    # -- construction ------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "IntMatrix":
        return cls([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, m: int, n: int) -> "IntMatrix":
        return cls([[0] * n for _ in range(m)])

    def copy(self) -> "IntMatrix":
        return IntMatrix(self.rows)

    # -- shape / access ----------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self.rows)

    @property
    def ncols(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def __getitem__(self, ij):
        i, j = ij
        return self.rows[i][j]

    def __setitem__(self, ij, value):
        i, j = ij
        self.rows[i][j] = value

    def __eq__(self, other) -> bool:
        return isinstance(other, IntMatrix) and self.rows == other.rows

    def __repr__(self) -> str:
        return "IntMatrix(%r)" % (self.rows,)

    # -- arithmetic ---------------------------------------------------

    def __mul__(self, other: "IntMatrix") -> "IntMatrix":
        if self.ncols != other.nrows:
            raise ValueError("dimension mismatch in matrix product")
        out = []
        for i in range(self.nrows):
            row = []
            for j in range(other.ncols):
                acc = 0
                for k in range(self.ncols):
                    acc += self.rows[i][k] * other.rows[k][j]
                row.append(acc)
            out.append(row)
        return IntMatrix(out)

    def mul_vector(self, vec: Sequence[Number]) -> List[Number]:
        if self.ncols != len(vec):
            raise ValueError("dimension mismatch in matrix-vector product")
        return [
            sum(self.rows[i][k] * vec[k] for k in range(self.ncols))
            for i in range(self.nrows)
        ]

    def transpose(self) -> "IntMatrix":
        return IntMatrix(
            [[self.rows[i][j] for i in range(self.nrows)] for j in range(self.ncols)]
        )

    # -- row / column operations (in place) ---------------------------

    def swap_rows(self, i: int, j: int) -> None:
        self.rows[i], self.rows[j] = self.rows[j], self.rows[i]

    def swap_cols(self, i: int, j: int) -> None:
        for row in self.rows:
            row[i], row[j] = row[j], row[i]

    def add_row_multiple(self, dst: int, src: int, factor: Number) -> None:
        """row[dst] += factor * row[src]"""
        self.rows[dst] = [
            d + factor * s for d, s in zip(self.rows[dst], self.rows[src])
        ]

    def add_col_multiple(self, dst: int, src: int, factor: Number) -> None:
        """col[dst] += factor * col[src]"""
        for row in self.rows:
            row[dst] += factor * row[src]

    def scale_row(self, i: int, factor: Number) -> None:
        self.rows[i] = [factor * v for v in self.rows[i]]

    def scale_col(self, j: int, factor: Number) -> None:
        for row in self.rows:
            row[j] *= factor

    # -- solving -------------------------------------------------------

    def solve(self, rhs: Sequence[Number]) -> List[Fraction]:
        """Solve self @ x == rhs exactly (square, nonsingular).

        Gaussian elimination over the rationals.  Raises ValueError when
        the matrix is singular.
        """
        n = self.nrows
        if n != self.ncols or n != len(rhs):
            raise ValueError("solve needs a square system")
        a = [[Fraction(v) for v in row] + [Fraction(rhs[i])]
             for i, row in enumerate(self.rows)]
        for col in range(n):
            pivot = next((r for r in range(col, n) if a[r][col] != 0), None)
            if pivot is None:
                raise ValueError("singular matrix")
            a[col], a[pivot] = a[pivot], a[col]
            inv = 1 / a[col][col]
            a[col] = [v * inv for v in a[col]]
            for r in range(n):
                if r != col and a[r][col] != 0:
                    f = a[r][col]
                    a[r] = [v - f * w for v, w in zip(a[r], a[col])]
        return [a[i][n] for i in range(n)]

    def determinant(self) -> Fraction:
        """Exact determinant via fraction-free-ish Gaussian elimination."""
        n = self.nrows
        if n != self.ncols:
            raise ValueError("determinant of a non-square matrix")
        a = [[Fraction(v) for v in row] for row in self.rows]
        det = Fraction(1)
        for col in range(n):
            pivot = next((r for r in range(col, n) if a[r][col] != 0), None)
            if pivot is None:
                return Fraction(0)
            if pivot != col:
                a[col], a[pivot] = a[pivot], a[col]
                det = -det
            det *= a[col][col]
            inv = 1 / a[col][col]
            for r in range(col + 1, n):
                if a[r][col] != 0:
                    f = a[r][col] * inv
                    a[r] = [v - f * w for v, w in zip(a[r], a[col])]
        return det
