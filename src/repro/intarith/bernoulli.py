"""Bernoulli numbers and Faulhaber power-sum polynomials.

Section 4.1 of the paper uses the standard closed forms for
``sum(i**p for i in 1..n)`` ("described in the CRC Standard
Mathematical Tables"); the paper hard-codes p up to 10.  We keep a
hard-coded table for p <= 10 (tested against the general formula) and
compute arbitrary p through Bernoulli numbers, so the engine has no
degree limit.
"""

from fractions import Fraction
from functools import lru_cache
from math import comb
from typing import Dict, List


@lru_cache(maxsize=None)
def bernoulli(n: int) -> Fraction:
    """The n-th Bernoulli number with the B1 = +1/2 convention.

    The +1/2 convention makes Faulhaber's formula come out as
    ``S_p(n) = (1/(p+1)) * sum_j C(p+1, j) * B_j * n**(p+1-j)``.
    """
    if n < 0:
        raise ValueError("Bernoulli numbers are indexed by n >= 0")
    if n == 0:
        return Fraction(1)
    if n == 1:
        return Fraction(1, 2)
    if n % 2 == 1:
        return Fraction(0)
    # B_n = 1 - sum_{k=0}^{n-1} C(n, k) B_k / (n - k + 1)
    total = Fraction(1)
    for k in range(n):
        bk = bernoulli(k)
        if bk:
            total -= Fraction(comb(n, k), n - k + 1) * bk
    return total


@lru_cache(maxsize=None)
def faulhaber_coefficients(p: int) -> tuple:
    """Coefficients of F_p(x) = sum(i**p for i in 1..x) as a polynomial.

    Returns a tuple ``(c0, c1, ..., c_{p+1})`` of Fractions so that
    ``F_p(x) = sum(c_k * x**k)``.  The identity
    ``F_p(x) - F_p(x-1) == x**p`` holds for *all* integers x and
    ``F_p(0) == 0``, so ``sum(i**p for i in L..U) == F_p(U) - F_p(L-1)``
    for any integers L <= U (including negative bounds).  This is the
    telescoping form the engine uses instead of the paper's literal
    four-piece decomposition (see DESIGN.md).
    """
    if p < 0:
        raise ValueError("power must be non-negative")
    coeffs: List[Fraction] = [Fraction(0)] * (p + 2)
    inv = Fraction(1, p + 1)
    for j in range(p + 1):
        bj = bernoulli(j)
        if bj:
            coeffs[p + 1 - j] += inv * comb(p + 1, j) * bj
    return tuple(coeffs)


#: Hard-coded table for p <= 10, as the paper's implementation planned.
#: Maps p to the coefficient tuple of F_p; verified against
#: :func:`faulhaber_coefficients` in the tests.
HARDCODED_POWER_SUMS: Dict[int, tuple] = {
    0: (Fraction(0), Fraction(1)),
    1: (Fraction(0), Fraction(1, 2), Fraction(1, 2)),
    2: (Fraction(0), Fraction(1, 6), Fraction(1, 2), Fraction(1, 3)),
    3: (Fraction(0), Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(1, 4)),
    4: (
        Fraction(0),
        Fraction(-1, 30),
        Fraction(0),
        Fraction(1, 3),
        Fraction(1, 2),
        Fraction(1, 5),
    ),
    5: (
        Fraction(0),
        Fraction(0),
        Fraction(-1, 12),
        Fraction(0),
        Fraction(5, 12),
        Fraction(1, 2),
        Fraction(1, 6),
    ),
    6: (
        Fraction(0),
        Fraction(1, 42),
        Fraction(0),
        Fraction(-1, 6),
        Fraction(0),
        Fraction(1, 2),
        Fraction(1, 2),
        Fraction(1, 7),
    ),
    7: (
        Fraction(0),
        Fraction(0),
        Fraction(1, 12),
        Fraction(0),
        Fraction(-7, 24),
        Fraction(0),
        Fraction(7, 12),
        Fraction(1, 2),
        Fraction(1, 8),
    ),
    8: (
        Fraction(0),
        Fraction(-1, 30),
        Fraction(0),
        Fraction(2, 9),
        Fraction(0),
        Fraction(-7, 15),
        Fraction(0),
        Fraction(2, 3),
        Fraction(1, 2),
        Fraction(1, 9),
    ),
    9: (
        Fraction(0),
        Fraction(0),
        Fraction(-3, 20),
        Fraction(0),
        Fraction(1, 2),
        Fraction(0),
        Fraction(-7, 10),
        Fraction(0),
        Fraction(3, 4),
        Fraction(1, 2),
        Fraction(1, 10),
    ),
    10: (
        Fraction(0),
        Fraction(5, 66),
        Fraction(0),
        Fraction(-1, 2),
        Fraction(0),
        Fraction(1),
        Fraction(0),
        Fraction(-1),
        Fraction(0),
        Fraction(5, 6),
        Fraction(1, 2),
        Fraction(1, 11),
    ),
}


def power_sum_value(p: int, n: int) -> Fraction:
    """Evaluate F_p(n) = sum(i**p for i in 1..n) for any integer n.

    For n < 0 this evaluates the Faulhaber polynomial (which is what
    the telescoping identity needs), not a literal sum.
    """
    coeffs = HARDCODED_POWER_SUMS.get(p) or faulhaber_coefficients(p)
    acc = Fraction(0)
    xk = 1
    for c in coeffs:
        if c:
            acc += c * xk
        xk *= n
    return acc
