"""Exact integer arithmetic substrate.

Everything the Omega test and the summation engine need from number
theory and integer linear algebra: gcd/lcm helpers, symmetric residues,
exact rational matrices, Hermite and Smith normal forms, Bernoulli
numbers and Faulhaber (power-sum) polynomials.
"""

from repro.intarith.gcdlcm import (
    ceil_div,
    ext_gcd,
    floor_div,
    gcd_list,
    lcm_list,
    sym_mod,
)
from repro.intarith.matrix import IntMatrix
from repro.intarith.smith import hermite_normal_form, smith_normal_form
from repro.intarith.bernoulli import bernoulli, faulhaber_coefficients

__all__ = [
    "IntMatrix",
    "bernoulli",
    "ceil_div",
    "ext_gcd",
    "faulhaber_coefficients",
    "floor_div",
    "gcd_list",
    "hermite_normal_form",
    "lcm_list",
    "smith_normal_form",
    "sym_mod",
]
