"""Elementary integer helpers used throughout the Omega test.

The Omega test works exclusively with exact integer arithmetic; the
helpers here centralize the handful of operations (floor/ceiling
division, gcd over lists, the symmetric residue ``a mod^ b`` from
Pugh's equality elimination) so the rest of the code never reaches for
floating point.
"""

from math import gcd
from typing import Iterable


def floor_div(a: int, b: int) -> int:
    """Floor of a/b for integers, b may be negative but not zero."""
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    q, r = divmod(a, b)
    return q


def ceil_div(a: int, b: int) -> int:
    """Ceiling of a/b for integers, b may be negative but not zero."""
    return -floor_div(-a, b)


def ext_gcd(a: int, b: int):
    """Extended gcd: return (g, x, y) with a*x + b*y == g == gcd(a, b).

    g is non-negative.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def gcd_list(values: Iterable[int]) -> int:
    """gcd of an iterable of integers; gcd of an empty iterable is 0."""
    g = 0
    for v in values:
        g = gcd(g, v)
        if g == 1:
            return 1
    return g


def lcm_list(values: Iterable[int]) -> int:
    """lcm of an iterable of positive integers; empty iterable gives 1."""
    result = 1
    for v in values:
        if v == 0:
            return 0
        result = result // gcd(result, v) * abs(v)
    return result


def sym_mod(a: int, b: int) -> int:
    """Pugh's symmetric residue ``a mod^ b``.

    Returns the unique r congruent to a (mod b) with -b/2 < r <= b/2.
    This is the residue used by the Omega test's equality elimination
    (it shrinks coefficients as fast as possible).
    """
    if b <= 0:
        raise ValueError("sym_mod modulus must be positive")
    r = a % b
    if 2 * r > b:
        r -= b
    return r
