"""Hermite and Smith normal forms of integer matrices.

Section 4.5.2 of the paper reduces a "projected" clause -- a clause
whose variables are defined by an affine map from auxiliary wildcard
variables -- to a directly summable form by computing the Smith normal
form U @ A @ V = D of the map.  We implement both HNF and SNF with the
accompanying unimodular transforms.
"""

from typing import Tuple

from repro.intarith.matrix import IntMatrix


def _check_integer(mat: IntMatrix) -> None:
    for row in mat.rows:
        for v in row:
            if v != int(v):
                raise ValueError("normal forms require integer matrices")


def hermite_normal_form(mat: IntMatrix) -> Tuple[IntMatrix, IntMatrix]:
    """Column-style Hermite normal form.

    Returns (H, V) with ``mat @ V == H``, V unimodular, H lower
    triangular with non-negative entries and each row's off-diagonal
    entries reduced modulo the pivot.
    """
    _check_integer(mat)
    h = IntMatrix([[int(v) for v in row] for row in mat.rows])
    n = h.ncols
    v = IntMatrix.identity(n)
    pivot_col = 0
    for row in range(h.nrows):
        if pivot_col >= n:
            break
        # Find a nonzero entry in this row at or after pivot_col.
        nz = [c for c in range(pivot_col, n) if h[row, c] != 0]
        if not nz:
            continue
        # Euclidean reduction across columns until one nonzero remains.
        while len(nz) > 1:
            nz.sort(key=lambda c: abs(h[row, c]))
            c0 = nz[0]
            for c in nz[1:]:
                q = h[row, c] // h[row, c0]
                if q:
                    h.add_col_multiple(c, c0, -q)
                    v.add_col_multiple(c, c0, -q)
            nz = [c for c in nz if h[row, c] != 0]
        c0 = nz[0]
        if c0 != pivot_col:
            h.swap_cols(c0, pivot_col)
            v.swap_cols(c0, pivot_col)
        if h[row, pivot_col] < 0:
            h.scale_col(pivot_col, -1)
            v.scale_col(pivot_col, -1)
        # Reduce the entries to the left of the pivot.
        p = h[row, pivot_col]
        for c in range(pivot_col):
            q = h[row, c] // p
            if q:
                h.add_col_multiple(c, pivot_col, -q)
                v.add_col_multiple(c, pivot_col, -q)
        pivot_col += 1
    return h, v


def smith_normal_form(
    mat: IntMatrix,
) -> Tuple[IntMatrix, IntMatrix, IntMatrix]:
    """Smith normal form.

    Returns (U, D, V) with ``U @ mat @ V == D``, U and V unimodular and
    D diagonal with d1 | d2 | ... (non-negative diagonal).
    """
    _check_integer(mat)
    d = IntMatrix([[int(v) for v in row] for row in mat.rows])
    m, n = d.nrows, d.ncols
    u = IntMatrix.identity(m)
    v = IntMatrix.identity(n)

    def smallest_nonzero(start: int):
        best = None
        for i in range(start, m):
            for j in range(start, n):
                if d[i, j] != 0 and (best is None or abs(d[i, j]) < abs(d[best[0], best[1]])):
                    best = (i, j)
        return best

    k = 0
    while k < min(m, n):
        pos = smallest_nonzero(k)
        if pos is None:
            break
        i, j = pos
        if i != k:
            d.swap_rows(i, k)
            u.swap_rows(i, k)
        if j != k:
            d.swap_cols(j, k)
            v.swap_cols(j, k)
        # Eliminate the rest of row k and column k.
        dirty = True
        while dirty:
            dirty = False
            for r in range(k + 1, m):
                if d[r, k] != 0:
                    q = d[r, k] // d[k, k]
                    d.add_row_multiple(r, k, -q)
                    u.add_row_multiple(r, k, -q)
                    if d[r, k] != 0:
                        d.swap_rows(r, k)
                        u.swap_rows(r, k)
                        dirty = True
            for c in range(k + 1, n):
                if d[k, c] != 0:
                    q = d[k, c] // d[k, k]
                    d.add_col_multiple(c, k, -q)
                    v.add_col_multiple(c, k, -q)
                    if d[k, c] != 0:
                        d.swap_cols(c, k)
                        v.swap_cols(c, k)
                        dirty = True
        if d[k, k] < 0:
            d.scale_row(k, -1)
            u.scale_row(k, -1)
        # Divisibility fix-up: d[k,k] must divide every later entry.
        fixed = False
        for r in range(k + 1, m):
            for c in range(k + 1, n):
                if d[r, c] % d[k, k] != 0:
                    d.add_row_multiple(k, r, 1)
                    u.add_row_multiple(k, r, 1)
                    fixed = True
                    break
            if fixed:
                break
        if fixed:
            continue  # redo this k with the new row folded in
        k += 1
    return u, d, v
