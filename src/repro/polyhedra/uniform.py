"""Summarizing uniformly generated sets (Section 5.1).

References ``a[i+p1], ..., a[i+pm]`` inside a loop nest touch
``{ i + p : i ∈ D, p ∈ {p1..pm} }``.  Building the formula as a union
of m shifted copies of D yields overlapping clauses; summarizing the
offsets first -- as the integer points of their convex hull (plus
stride constraints when the offsets are sparse) -- produces a single
clause and hence disjoint DNF for free.
"""

from typing import List, Optional, Sequence, Tuple

from repro.intarith import IntMatrix, hermite_normal_form
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.polyhedra.hull import Point, convex_hull_constraints
from repro.presburger.ast import And, Atom, Exists, Formula

__all__ = ["summarize_offsets", "uniformly_generated_set", "offset_strides"]


def offset_strides(
    points: Sequence[Point], variables: Sequence[str]
) -> List[Constraint]:
    """Stride constraints satisfied by every offset (paper's method 2).

    The differences p_i - p_0 generate a sublattice; its Hermite normal
    form yields congruences every point satisfies (e.g. "the first
    coordinate is always odd").  Conservative: the returned strides may
    admit extra points; exactness is checked by counting.
    """
    points = [tuple(p) for p in points]
    d = len(points[0])
    p0 = points[0]
    diffs = [[p[i] - p0[i] for i in range(d)] for p in points[1:]]
    out: List[Constraint] = []
    if not diffs:
        return out
    # Column-HNF of the difference matrix: lattice basis.  A direction
    # u (row of the inverse relation) with diagonal entry h gives the
    # congruence u·(x - p0) ≡ 0 (mod h).  We use the simple per-
    # coordinate and pairwise-difference congruences the paper cites.
    from repro.intarith import gcd_list

    candidates = []
    for i in range(d):
        candidates.append([1 if t == i else 0 for t in range(d)])
    for i in range(d):
        for j in range(i + 1, d):
            vec = [0] * d
            vec[i], vec[j] = 1, -1
            candidates.append(vec)
            vec2 = [0] * d
            vec2[i], vec2[j] = 1, 1
            candidates.append(vec2)
    for u in candidates:
        values = [sum(u[i] * diff[i] for i in range(d)) for diff in diffs]
        g = gcd_list(values)
        if g > 1:
            expr = Affine(
                {variables[i]: u[i] for i in range(d)},
                -sum(u[i] * p0[i] for i in range(d)),
            )
            w = fresh_var("s")
            out.append(Constraint.equal(Affine({w: g}), expr))
    return out


def summarize_offsets(
    points: Sequence[Point], variables: Sequence[str]
) -> Tuple[Formula, bool]:
    """Describe an offset set by hull + stride constraints.

    Returns ``(formula, exact)`` -- ``exact`` is True when the
    constraints admit exactly the input points, verified by counting
    (the paper's exactness check).
    """
    from repro.core.general import count
    from repro.omega.problem import Conjunct

    points = [tuple(p) for p in points]
    hull = convex_hull_constraints(points, variables)
    strides = offset_strides(points, variables)
    wildcards = [
        v
        for c in strides
        for v in c.variables()
        if v.startswith("_s")
    ]
    conj = Conjunct(list(hull) + list(strides), wildcards)
    n = count(conj, list(variables))
    exact = n.is_constant() and n.constant_value() == len(set(points))
    formula = _conjunct_to_formula(conj)
    return formula, exact


def _conjunct_to_formula(conj) -> Formula:
    from repro.presburger.ast import StrideAtom

    others, strides = conj.stride_view()
    parts: List[Formula] = [Atom(c) for c in others]
    parts.extend(StrideAtom(m, e) for m, e in strides)
    return And.of(*parts)


def uniformly_generated_set(
    domain: Formula,
    iter_vars: Sequence[str],
    offsets: Sequence[Point],
    target_vars: Sequence[str],
    use_hull: bool = True,
) -> Tuple[Formula, bool]:
    """The set ``{ iter + offset : domain(iter), offset ∈ offsets }``.

    With ``use_hull`` (the paper's preferred route) the offsets are
    summarized by their convex hull + strides, giving a single-clause
    formula; otherwise a union over the offsets is built (which needs
    the disjoint-DNF machinery downstream).  Returns (formula, exact).
    """
    d = len(iter_vars)
    offsets = [tuple(p) for p in offsets]
    if any(len(p) != d for p in offsets):
        raise ValueError("offset dimension mismatch")
    if use_hull:
        delta_vars = [fresh_var("d") for _ in range(d)]
        summary, exact = summarize_offsets(offsets, delta_vars)
        link = And.of(
            *(
                Atom(
                    Constraint.equal(
                        Affine.var(target_vars[i]),
                        Affine.var(iter_vars[i]) + Affine.var(delta_vars[i]),
                    )
                )
                for i in range(d)
            )
        )
        body = And.of(domain, summary, link)
        return Exists(list(iter_vars) + delta_vars, body), exact
    from repro.presburger.ast import Or

    copies = []
    for p in offsets:
        link = And.of(
            *(
                Atom(
                    Constraint.equal(
                        Affine.var(target_vars[i]),
                        Affine.var(iter_vars[i]) + p[i],
                    )
                )
                for i in range(d)
            )
        )
        copies.append(Exists(list(iter_vars), And.of(domain, link)))
    return Or.of(*copies), True
