"""Ancourt's 0-1 programming encoding of constant offsets (§5.1.1).

The offset set {p1, ..., pm} is described by m fresh 0-1 variables
with Σ z_k == 1 and offset = Σ z_k·p_k.  The paper notes this "depends
on the constraint system being able to simplify a 0-1 integer
programming problem, an iffy proposition at best" -- their Omega
implementation summarized 4- and 5-point stencils this way but not a
9-point stencil.  We implement it so the benchmarks can compare both
methods on the same stencils.
"""

from typing import List, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.polyhedra.hull import Point
from repro.presburger.ast import And, Atom, Exists, Formula


def zero_one_formula(
    points: Sequence[Point], variables: Sequence[str]
) -> Formula:
    """``x ∈ {p1..pm}`` via 0-1 selector variables."""
    points = [tuple(p) for p in points]
    d = len(points[0])
    if len(variables) != d:
        raise ValueError("need one variable per coordinate")
    selectors = [fresh_var("z") for _ in points]
    constraints: List[Constraint] = []
    for z in selectors:
        zv = Affine.var(z)
        constraints.append(Constraint.geq(zv))            # z >= 0
        constraints.append(Constraint.leq(zv, Affine.const_expr(1)))
    total = Affine({z: 1 for z in selectors})
    constraints.append(Constraint.equal(total, Affine.const_expr(1)))
    for i in range(d):
        combo = Affine({z: p[i] for z, p in zip(selectors, points) if p[i]})
        constraints.append(
            Constraint.equal(Affine.var(variables[i]), combo)
        )
    return Exists(selectors, And.of(*(Atom(c) for c in constraints)))


def zero_one_summary(
    points: Sequence[Point], variables: Sequence[str], budget: int = 4000
) -> Tuple[List, bool]:
    """Simplify the 0-1 encoding into disjoint clauses.

    Returns ``(clauses, ok)``: ``ok`` reports whether the Omega-test
    simplification produced a *compact* summary (at most as many
    clauses as the paper's hull route would -- i.e. 1) rather than
    falling back to one clause per point.

    ``budget`` caps the disjointification work.  When it runs out --
    which happens on the 9-point stencil, exactly the case the paper's
    implementation "was unable to produce a convex summary for" -- the
    raw per-point clauses are returned with ``ok = False``.
    """
    from repro.omega.satisfiability import SatBlowupError
    from repro.presburger.disjoint import DisjointBudgetError, to_disjoint_dnf
    from repro.presburger.dnf import to_dnf

    formula = zero_one_formula(points, variables)
    try:
        clauses = to_disjoint_dnf(formula, budget=budget)
    except (DisjointBudgetError, SatBlowupError):
        from repro.omega.affine import Affine
        from repro.omega.constraints import Constraint
        from repro.omega.problem import Conjunct

        clauses = [
            Conjunct(
                [
                    Constraint.equal(Affine.var(v), Affine.const_expr(p[i]))
                    for i, v in enumerate(variables)
                ]
            )
            for p in sorted(set(map(tuple, points)))
        ]
        return clauses, False
    return clauses, len(clauses) <= 1
