"""Exact integer convex hulls of small point sets.

Stencil offset sets are tiny (a handful of points in 2-3 dimensions),
so we enumerate candidate facet hyperplanes from point subsets and keep
those with all points on one side.  Lower-dimensional hulls contribute
equality constraints (the affine hull).  All arithmetic is exact.
"""

import itertools
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.intarith import lcm_list
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint


Point = Tuple[int, ...]


def _to_integer_vector(vec: Sequence[Fraction]) -> List[int]:
    denom = lcm_list(v.denominator for v in vec)
    ints = [int(v * denom) for v in vec]
    from repro.intarith import gcd_list

    g = gcd_list(ints)
    if g > 1:
        ints = [v // g for v in ints]
    return ints


def _affine_hull_basis(points: List[Point]):
    """Orthogonal description of the affine hull.

    Returns (span_basis, normal_basis): rational row vectors spanning
    the difference space and its orthogonal complement.
    """
    d = len(points[0])
    diffs = [
        [Fraction(p[i] - points[0][i]) for i in range(d)] for p in points[1:]
    ]
    # Row-reduce the difference vectors.
    basis: List[List[Fraction]] = []
    pivots: List[int] = []
    for row in diffs:
        row = row[:]
        for b, piv in zip(basis, pivots):
            if row[piv]:
                f = row[piv] / b[piv]
                row = [x - f * y for x, y in zip(row, b)]
        piv = next((i for i, x in enumerate(row) if x), None)
        if piv is not None:
            basis.append(row)
            pivots.append(piv)
    # Orthogonal complement via free coordinates of the row space.
    normals: List[List[Fraction]] = []
    for free in range(d):
        if free in pivots:
            continue
        vec = [Fraction(0)] * d
        vec[free] = Fraction(1)
        # Make vec orthogonal to every basis vector (solve n·b == 0 by
        # adjusting pivot coordinates).
        for b, piv in reversed(list(zip(basis, pivots))):
            dot = sum(x * y for x, y in zip(vec, b))
            if dot:
                vec[piv] -= dot / b[piv]
        normals.append(vec)
    return basis, normals


def convex_hull_constraints(
    points: Sequence[Point], variables: Sequence[str]
) -> List[Constraint]:
    """Linear constraints whose rational solutions are conv(points).

    Includes equality constraints when the hull is lower-dimensional.
    The *integer* points of the hull may be a superset of the input
    (the summarization's exactness check lives in
    :mod:`repro.polyhedra.uniform`).
    """
    points = [tuple(p) for p in points]
    if not points:
        raise ValueError("need at least one point")
    d = len(points[0])
    if any(len(p) != d for p in points):
        raise ValueError("points of mixed dimension")
    if len(variables) != d:
        raise ValueError("need one variable per coordinate")
    unique = sorted(set(points))
    p0 = unique[0]

    basis, normals = _affine_hull_basis(unique)
    k = len(basis)
    out: List[Constraint] = []

    # Equalities: n·x == n·p0 for the orthogonal complement.
    for n in normals:
        n_int = _to_integer_vector(n)
        expr = Affine(
            {variables[i]: n_int[i] for i in range(d)},
            -sum(n_int[i] * p0[i] for i in range(d)),
        )
        out.append(Constraint.eq(expr))

    if k == 0:
        return out  # single point: equalities pin everything

    # Facets: hyperplanes (within the affine hull) through k of the
    # points with every point on one side.
    seen = set()
    for subset in itertools.combinations(unique, k):
        dirs = [
            [Fraction(subset[i][j] - subset[0][j]) for j in range(d)]
            for i in range(1, k)
        ]
        normal = _normal_in_span(basis, dirs)
        if normal is None:
            continue
        n_int = _to_integer_vector(normal)
        if not any(n_int):
            continue
        b = sum(n_int[i] * subset[0][i] for i in range(d))
        dots = [sum(n_int[i] * p[i] for i in range(d)) for p in unique]
        for sign in (1, -1):
            if all(sign * dot <= sign * b for dot in dots):
                key = tuple(sign * x for x in n_int) + (sign * b,)
                if key in seen:
                    continue
                seen.add(key)
                # sign·n·x <= sign·b   ==>   sign·b - sign·n·x >= 0
                expr = Affine(
                    {variables[i]: -sign * n_int[i] for i in range(d)},
                    sign * b,
                )
                out.append(Constraint.geq(expr))
    return out


def _normal_in_span(basis, dirs):
    """A vector in span(basis) orthogonal to every vector of dirs."""
    k = len(basis)
    if len(dirs) != k - 1:
        return None
    # normal = Σ c_j basis_j  with  normal · dir_i == 0 for all i.
    # Build the (k-1) x k system over the c coefficients.
    rows = []
    for direc in dirs:
        rows.append(
            [sum(b[t] * direc[t] for t in range(len(direc))) for b in basis]
        )
    # Find a nonzero nullspace vector by Gaussian elimination.
    m = [row[:] for row in rows]
    piv_cols = []
    r = 0
    for col in range(k):
        pivot = next((i for i in range(r, len(m)) if m[i][col]), None)
        if pivot is None:
            continue
        m[r], m[pivot] = m[pivot], m[r]
        inv = 1 / m[r][col]
        m[r] = [x * inv for x in m[r]]
        for i in range(len(m)):
            if i != r and m[i][col]:
                f = m[i][col]
                m[i] = [x - f * y for x, y in zip(m[i], m[r])]
        piv_cols.append(col)
        r += 1
    free = next((c for c in range(k) if c not in piv_cols), None)
    if free is None:
        return None
    c = [Fraction(0)] * k
    c[free] = Fraction(1)
    for row, col in zip(m[: len(piv_cols)], piv_cols):
        c[col] = -row[free]
    normal = [
        sum(c[j] * basis[j][t] for j in range(k))
        for t in range(len(basis[0]))
    ]
    return normal


def hull_formula(points: Sequence[Point], variables: Sequence[str]):
    """The hull constraints as a Presburger formula."""
    from repro.presburger.ast import And, Atom

    return And.of(
        *(Atom(c) for c in convex_hull_constraints(points, variables))
    )
