"""Polyhedral helpers for summarizing uniformly generated sets (§5.1).

Computing the memory locations touched by a set of array references
that differ only by constant offsets (a stencil) requires describing
the offset set ``{p1, ..., pm}`` by linear constraints.  The paper
offers two methods, both implemented here:

* the **convex hull** of the offsets plus detected stride constraints,
  with an exactness check by counting (``summarize_offsets``);
* Ancourt's **0-1 programming** encoding (``zero_one_formula``).
"""

from repro.polyhedra.hull import convex_hull_constraints, hull_formula
from repro.polyhedra.uniform import (
    summarize_offsets,
    uniformly_generated_set,
)
from repro.polyhedra.zeroone import zero_one_formula, zero_one_summary

__all__ = [
    "convex_hull_constraints",
    "hull_formula",
    "summarize_offsets",
    "uniformly_generated_set",
    "zero_one_formula",
    "zero_one_summary",
]
