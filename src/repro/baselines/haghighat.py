"""Haghighat-Polychronopoulos style summation [HP93a, HP93b] (§6).

Their symbolic-analysis framework sums loops in a fixed order and
handles multiple bounds by introducing **min/max** expressions and the
positive-part operator p(x) (1 if x > 0 else 0) rather than splitting,
producing answers like (their Example 1)

    p(min(n-2, 3)) · ((min(n,5))³ - 15(min(n,5))² + ...) / 6 + 6·max(n-5, 0)

The paper notes such answers agree numerically with its own but "the
results tend to be much more complicated" and the method "requires 9
steps / 15 steps" on their examples.  We reproduce the method: a small
min/max expression calculus plus a fixed-order summation that never
splits, so the benchmarks can compare complexity and agreement.
"""

from fractions import Fraction
from typing import List, Mapping, Sequence, Tuple, Union

from repro.core.powersums import faulhaber_polynomial
from repro.intarith.bernoulli import faulhaber_coefficients
from repro.omega.affine import Affine
from repro.omega.problem import Conjunct
from repro.qpoly import Polynomial


class MinMaxExpr:
    """Expression over polynomials closed under min, max, p(), +, ·."""

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        raise NotImplementedError

    def size(self) -> int:
        """Node count -- the complexity measure used by the benches."""
        raise NotImplementedError

    def __add__(self, other):
        return _add(self, _coerce(other))

    def __radd__(self, other):
        return _add(_coerce(other), self)

    def __mul__(self, other):
        return _mul(self, _coerce(other))

    __rmul__ = __mul__

    def __sub__(self, other):
        return _add(self, _mul(_coerce(-1), _coerce(other)))


def _coerce(value) -> MinMaxExpr:
    if isinstance(value, MinMaxExpr):
        return value
    if isinstance(value, (int, Fraction)):
        return Leaf(Polynomial.constant(value))
    if isinstance(value, Polynomial):
        return Leaf(value)
    raise TypeError("cannot use %r" % (value,))


def _add(a: "MinMaxExpr", b: "MinMaxExpr") -> "MinMaxExpr":
    """Addition with constant folding on polynomial leaves."""
    if isinstance(a, Leaf) and isinstance(b, Leaf):
        return Leaf(a.poly + b.poly)
    if isinstance(a, Leaf) and a.poly.is_zero():
        return b
    if isinstance(b, Leaf) and b.poly.is_zero():
        return a
    return _Add(a, b)


def _mul(a: "MinMaxExpr", b: "MinMaxExpr") -> "MinMaxExpr":
    """Multiplication with constant folding on polynomial leaves."""
    if isinstance(a, Leaf) and isinstance(b, Leaf):
        return Leaf(a.poly * b.poly)
    for x, y in ((a, b), (b, a)):
        if isinstance(x, Leaf):
            if x.poly.is_zero():
                return Leaf(Polynomial())
            if x.poly == Polynomial.one:
                return y
    return _Mul(a, b)


class Leaf(MinMaxExpr):
    def __init__(self, poly: Polynomial):
        self.poly = poly

    def evaluate(self, env):
        return self.poly.evaluate(env)

    def size(self):
        return 1

    def __str__(self):
        return str(self.poly)


class _Add(MinMaxExpr):
    def __init__(self, a, b):
        self.a, self.b = a, b

    def evaluate(self, env):
        return self.a.evaluate(env) + self.b.evaluate(env)

    def size(self):
        return 1 + self.a.size() + self.b.size()

    def __str__(self):
        return "(%s + %s)" % (self.a, self.b)


class _Mul(MinMaxExpr):
    def __init__(self, a, b):
        self.a, self.b = a, b

    def evaluate(self, env):
        return self.a.evaluate(env) * self.b.evaluate(env)

    def size(self):
        return 1 + self.a.size() + self.b.size()

    def __str__(self):
        return "(%s * %s)" % (self.a, self.b)


class Min(MinMaxExpr):
    def __init__(self, children: Sequence[MinMaxExpr]):
        self.children = [_coerce(c) for c in children]

    def evaluate(self, env):
        return min(c.evaluate(env) for c in self.children)

    def size(self):
        return 1 + sum(c.size() for c in self.children)

    def __str__(self):
        return "min(%s)" % ", ".join(map(str, self.children))


class Max(MinMaxExpr):
    def __init__(self, children: Sequence[MinMaxExpr]):
        self.children = [_coerce(c) for c in children]

    def evaluate(self, env):
        return max(c.evaluate(env) for c in self.children)

    def size(self):
        return 1 + sum(c.size() for c in self.children)

    def __str__(self):
        return "max(%s)" % ", ".join(map(str, self.children))


class Pos(MinMaxExpr):
    """p(x): 1 when x > 0, else 0 (HP's guard operator)."""

    def __init__(self, child: MinMaxExpr):
        self.child = _coerce(child)

    def evaluate(self, env):
        return Fraction(1) if self.child.evaluate(env) > 0 else Fraction(0)

    def size(self):
        return 1 + self.child.size()

    def __str__(self):
        return "p(%s)" % self.child


class _Compose(MinMaxExpr):
    """A univariate polynomial applied to a min/max expression."""

    def __init__(self, coeffs: Sequence[Fraction], arg: MinMaxExpr):
        self.coeffs = list(coeffs)
        self.arg = arg

    def evaluate(self, env):
        x = self.arg.evaluate(env)
        total = Fraction(0)
        power = Fraction(1)
        for c in self.coeffs:
            total += c * power
            power *= x
        return total

    def size(self):
        return 1 + len(self.coeffs) + self.arg.size()

    def __str__(self):
        return "poly<deg %d>(%s)" % (len(self.coeffs) - 1, self.arg)


def hp_nested_sum(
    conj: Conjunct, order: Sequence[str], z: Union[Polynomial, int]
) -> MinMaxExpr:
    """Fixed-order summation with min/max bounds (no splitting).

    Requires unit coefficients on the summation variables.  Each
    variable is summed between ``max(lowers)`` and ``min(uppers)``,
    guarded by ``p(U - L + 1)``; when bounds involve min/max from an
    inner step the closed forms compose symbolically.
    """
    if isinstance(z, int):
        z = Polynomial.constant(z)
    value: MinMaxExpr = Leaf(z)
    current = conj.normalize()
    if current is None:
        return Leaf(Polynomial())
    remaining = current
    env_exprs = {}
    # Work innermost-first; bounds of later variables stay affine
    # because inner sums only changed the *value*, not the constraints.
    for v in order:
        lowers, uppers, rest = remaining.bounds_on(v)
        if not lowers or not uppers:
            raise ValueError("variable %s unbounded" % v)
        if any(b != 1 for b, _ in lowers) or any(a != 1 for a, _ in uppers):
            raise ValueError("HP baseline handles unit coefficients only")
        lo_exprs = _dedupe_leaves(
            [Leaf(beta.to_polynomial()) for _, beta in lowers]
        )
        hi_exprs = _dedupe_leaves(
            [Leaf(alpha.to_polynomial()) for _, alpha in uppers]
        )
        lo: MinMaxExpr = lo_exprs[0] if len(lo_exprs) == 1 else Max(lo_exprs)
        hi: MinMaxExpr = hi_exprs[0] if len(hi_exprs) == 1 else Min(hi_exprs)
        value = _sum_value(value, v, lo, hi)
        remaining = Conjunct(rest, remaining.wildcards)
    return value


def _fold(cls, exprs):
    """Build Min/Max with constant folding.

    Duplicate leaves collapse, constant leaves combine (max(2, 1) is
    2), and a single survivor is returned unwrapped.
    """
    constants = []
    rest = []
    for e in exprs:
        if isinstance(e, Leaf) and e.poly.is_constant():
            constants.append(e.poly.constant_value())
        else:
            rest.append(e)
    if constants:
        combined = max(constants) if cls is Max else min(constants)
        rest.append(Leaf(Polynomial.constant(combined)))
    rest = _dedupe_leaves(rest)
    if len(rest) == 1:
        return rest[0]
    return cls(rest)


def _dedupe_leaves(exprs):
    """Drop duplicate polynomial bounds (min(x, x) == x)."""
    seen = []
    for e in exprs:
        if isinstance(e, Leaf) and any(
            isinstance(s, Leaf) and s.poly == e.poly for s in seen
        ):
            continue
        seen.append(e)
    return seen


def _sum_value(
    value: MinMaxExpr, v: str, lo: MinMaxExpr, hi: MinMaxExpr
) -> MinMaxExpr:
    """Σ_{v=lo}^{hi} value, guarded by p(hi - lo + 1).

    ``value`` must be a Leaf polynomial in v (HP's method cannot sum a
    min/max-valued summand over a deeper variable; in their examples
    the min/max only ever appears in the *outermost* remaining value).
    """
    guard = Pos(hi - lo + 1)
    if isinstance(value, Leaf):
        by_power = value.poly.coefficients_in(v)
        total: MinMaxExpr = Leaf(Polynomial())
        for p, coeff in by_power.items():
            upper = _compose_faulhaber(p, hi)
            lower = _compose_faulhaber(p, lo - 1)
            total = total + Leaf(coeff) * (upper - lower)
        return guard * total
    # Min/max-valued summand: sum term-by-term through + and ·const.
    if isinstance(value, _Add):
        return _sum_value(value.a, v, lo, hi) + _sum_value(value.b, v, lo, hi)
    if isinstance(value, _Mul):
        # A p(a·v + b) factor tightens the bound instead of splitting:
        # Σ p(v - c)·f(v) over lo..hi == Σ f(v) over max(lo, c+1)..hi
        # (HP's guard-absorption rule).
        for first, second in ((value.a, value.b), (value.b, value.a)):
            adj = _pos_bound_adjustment(first, v)
            if adj is not None:
                which, bound = adj
                if which == "lo":
                    return _sum_value(second, v, _fold(Max, [lo, bound]), hi)
                return _sum_value(second, v, lo, _fold(Min, [hi, bound]))
        if isinstance(value.a, Leaf) and not value.a.poly.uses_var(v):
            return value.a * _sum_value(value.b, v, lo, hi)
        if isinstance(value.b, Leaf) and not value.b.poly.uses_var(v):
            return value.b * _sum_value(value.a, v, lo, hi)
        if not _uses(value, v):
            return guard * value * (hi - lo + 1)
    if not _uses(value, v):
        # constant in v: multiply by the guarded length
        return guard * value * (hi - lo + 1)
    split = _split_minmax(value, v)
    if split is not None:
        low_piece, high_piece = split
        return _sum_value(low_piece, v, lo, hi) + _sum_value(
            high_piece, v, lo, hi
        )
    raise ValueError(
        "HP baseline cannot sum %s over %s symbolically" % (value, v)
    )


def _split_minmax(value: MinMaxExpr, v: str):
    """Split one min/max of affine arguments into guarded branches.

    ``min(A, B)`` becomes ``p(B-A+1)·[min→A] + p(A-B)·[min→B]`` (the
    branches are disjoint); the p() factors are later absorbed into
    the summation bounds.  Returns the two replacement values or None.
    """
    node = _find_minmax(value, v)
    if node is None:
        return None
    kids = node.children
    if len(kids) > 2:
        # fold left: min(a, b, c) == min(min(a, b), c)
        folded = type(node)([type(node)(kids[:2])] + list(kids[2:]))
        return _split_minmax(_substitute_node(value, node, folded), v)
    a, b = kids
    if not (isinstance(a, Leaf) and isinstance(b, Leaf)):
        return None
    diff = b.poly - a.poly  # B - A
    if isinstance(node, Min):
        guard_a = Pos(Leaf(diff + 1))   # A <= B
        guard_b = Pos(Leaf(-diff))      # A > B
    else:
        guard_a = Pos(Leaf(-diff + 1))  # A >= B
        guard_b = Pos(Leaf(diff))       # A < B
    piece_a = guard_a * _substitute_node(value, node, a)
    piece_b = guard_b * _substitute_node(value, node, b)
    return piece_a, piece_b


def _find_minmax(expr: MinMaxExpr, v: str):
    if isinstance(expr, (Min, Max)) and _uses(expr, v):
        inner = next(
            (c for c in expr.children if not isinstance(c, Leaf)), None
        )
        if inner is None:
            return expr
        return _find_minmax(inner, v) or expr
    if isinstance(expr, (_Add, _Mul)):
        return _find_minmax(expr.a, v) or _find_minmax(expr.b, v)
    if isinstance(expr, Pos):
        return _find_minmax(expr.child, v)
    if isinstance(expr, _Compose):
        return _find_minmax(expr.arg, v)
    return None


def _substitute_node(
    expr: MinMaxExpr, target: MinMaxExpr, replacement: MinMaxExpr
) -> MinMaxExpr:
    """Replace a node (by identity) throughout an expression tree."""
    if expr is target:
        return replacement
    if isinstance(expr, Leaf):
        return expr
    if isinstance(expr, _Add):
        return _add(
            _substitute_node(expr.a, target, replacement),
            _substitute_node(expr.b, target, replacement),
        )
    if isinstance(expr, _Mul):
        return _mul(
            _substitute_node(expr.a, target, replacement),
            _substitute_node(expr.b, target, replacement),
        )
    if isinstance(expr, (Min, Max)):
        return type(expr)(
            [_substitute_node(c, target, replacement) for c in expr.children]
        )
    if isinstance(expr, Pos):
        return Pos(_substitute_node(expr.child, target, replacement))
    if isinstance(expr, _Compose):
        arg = _substitute_node(expr.arg, target, replacement)
        if isinstance(arg, Leaf):
            total = Polynomial()
            power = Polynomial.one
            for c in expr.coeffs:
                if c:
                    total = total + power * c
                power = power * arg.poly
            return Leaf(total)
        return _Compose(expr.coeffs, arg)
    raise TypeError(expr)


def _pos_bound_adjustment(expr: MinMaxExpr, v: str):
    """p(k·v + rest) factors become bound adjustments on v.

    For |k| > 1 the threshold is exact only when the division comes
    out even; otherwise None is returned and the caller gives up --
    reproducing the limits of a min/max calculus without floors.
    """
    if not isinstance(expr, Pos) or not isinstance(expr.child, Leaf):
        return None
    try:
        coeffs, const = expr.child.poly.as_integer_affine()
    except ValueError:
        return None
    from repro.intarith import ceil_div, floor_div

    k = coeffs.pop(v, 0)
    if k == 0:
        return None
    if k > 0:
        # k·v + rest >= 1  =>  v >= ceil((1 - rest)/k); affine exactly
        # when every variable coefficient of rest is divisible by k.
        num = {x: -c for x, c in coeffs.items()}
        num_const = 1 - const
        if any(c % k for c in num.values()):
            return None
        bound = Leaf(
            Polynomial.from_affine(
                {x: c // k for x, c in num.items()}, ceil_div(num_const, k)
            )
        )
        return "lo", bound
    k = -k
    # k·v <= rest - 1  =>  v <= floor((rest - 1)/k)
    num = dict(coeffs)
    num_const = const - 1
    if any(c % k for c in num.values()):
        return None
    bound = Leaf(
        Polynomial.from_affine(
            {x: c // k for x, c in num.items()}, floor_div(num_const, k)
        )
    )
    return "hi", bound


def _uses(expr: MinMaxExpr, v: str) -> bool:
    if isinstance(expr, Leaf):
        return expr.poly.uses_var(v)
    if isinstance(expr, (_Add, _Mul)):
        return _uses(expr.a, v) or _uses(expr.b, v)
    if isinstance(expr, (Min, Max)):
        return any(_uses(c, v) for c in expr.children)
    if isinstance(expr, Pos):
        return _uses(expr.child, v)
    if isinstance(expr, _Compose):
        return _uses(expr.arg, v)
    raise TypeError(expr)


def _compose_faulhaber(p: int, arg: MinMaxExpr) -> MinMaxExpr:
    if isinstance(arg, Leaf):
        return Leaf(faulhaber_polynomial(p, arg.poly))
    return _Compose(faulhaber_coefficients(p), arg)
