"""Ferrante-Sarkar-Thrash style inclusion-exclusion [FST91] (§4.5.1).

To count the union of overlapping reference sets, [FST91] subtracts
the doubly-counted overlaps:

    (Σ V : P ∨ Q : z) = (Σ V : P : z) + (Σ V : Q : z) - (Σ V : P∧Q : z)

"The problem with this is that it quickly gets out of control if there
are more than a few clauses (7 summations are needed for 3 clauses)" --
2^k - 1 summations for k clauses, versus the paper's disjoint DNF.
This module implements the full inclusion-exclusion so the benchmarks
can measure that growth against ``disjointify``.

Despite the shared acronym territory, this is *not* an automaton
technique: the finite-state counting backend lives in
:mod:`repro.automaton` (binary DFAs over LSBF two's-complement
encodings), and this baseline stays what it is -- an independent
inclusion-exclusion oracle for the disjoint-DNF engine.
"""

import itertools
from typing import List, Sequence, Tuple

from repro.core.general import count_conjunct
from repro.core.options import DEFAULT_OPTIONS, SumOptions
from repro.core.result import SymbolicSum
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable


def inclusion_exclusion_count(
    clauses: Sequence[Conjunct],
    over: Sequence[str],
    options: SumOptions = DEFAULT_OPTIONS,
    prune_infeasible: bool = True,
) -> Tuple[SymbolicSum, int]:
    """Count |C1 ∪ ... ∪ Ck| by inclusion-exclusion.

    Returns (symbolic count, number of summations performed).  With
    ``prune_infeasible`` empty intersections are detected by the
    satisfiability test and skipped (they still count as work: the
    satisfiability test replaces the summation).
    """
    clauses = list(clauses)
    total = SymbolicSum([])
    summations = 0
    for size in range(1, len(clauses) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in itertools.combinations(range(len(clauses)), size):
            summations += 1
            merged = clauses[subset[0]]
            for idx in subset[1:]:
                merged = merged.merge(clauses[idx])
            normalized = merged.normalize()
            if normalized is None:
                continue
            if prune_infeasible and not satisfiable(normalized):
                continue
            piece = count_conjunct(normalized, over, options)
            total = total + (piece if sign > 0 else -piece)
    return total, summations


def union_count_work(k: int) -> int:
    """Summations inclusion-exclusion needs for k clauses: 2^k - 1."""
    return 2 ** k - 1
