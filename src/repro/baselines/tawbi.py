"""Tawbi's summation algorithm [Taw91, TF92, Taw94] (Section 6).

Differences from the paper's method, per the comparison in Section 6:

* the variables are eliminated in a **predetermined order** (innermost
  loop first);
* **no redundant-constraint elimination** is attempted;
* empty summations are avoided by an up-front **polyhedral splitting**
  step that respects the elimination order -- which "may split a
  summation into more pieces" than the free-order method (Example 1:
  3 pieces instead of 2).

We reproduce the algorithm on convex problems (conjunctions of
inequalities with unit coefficients on the summation variables, her
scope) and report the number of pieces so the benchmarks can compare.
"""

from typing import List, Sequence, Tuple, Union

from repro.core.powersums import sum_over_range
from repro.core.result import SymbolicSum, Term
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.qpoly import Polynomial
from repro.qpoly.parse import parse_polynomial


def tawbi_sum(
    conj: Conjunct,
    order: Sequence[str],
    z: Union[Polynomial, int, str],
) -> Tuple[SymbolicSum, int]:
    """Sum ``z`` over the conjunct in the fixed order (innermost first).

    Returns (symbolic sum, number of pieces the splitting produced).
    """
    if isinstance(z, int):
        z = Polynomial.constant(z)
    elif isinstance(z, str):
        z = parse_polynomial(z)
    n = conj.normalize()
    if n is None:
        return SymbolicSum([]), 0
    terms, pieces = _sum_fixed(n, list(order), z)
    return SymbolicSum(terms), pieces


def tawbi_count(
    conj: Conjunct, order: Sequence[str]
) -> Tuple[SymbolicSum, int]:
    return tawbi_sum(conj, order, 1)


def _sum_fixed(
    conj: Conjunct, order: List[str], z: Polynomial
) -> Tuple[List[Term], int]:
    if not order:
        return [Term(conj, z)], 1
    v, rest_order = order[0], order[1:]
    # A pinned variable (e.g. an ordering split collapsed j <= n <= j
    # to j == n) sums over a single point.
    eq = next((c for c in conj.eqs() if c.uses(v)), None)
    if eq is not None:
        k = eq.coeff(v)
        if abs(k) != 1:
            raise ValueError("Tawbi's algorithm handles unit coefficients only")
        from repro.omega.equalities import solve_unit

        solved, repl = solve_unit(conj, eq, v)
        n = solved.normalize()
        if n is None:
            return [], 1
        return _sum_fixed(n, rest_order, z.substitute(v, repl.to_polynomial()))
    lowers, uppers, rest = conj.bounds_on(v)
    if not lowers or not uppers:
        raise ValueError("variable %s unbounded" % v)
    if any(b != 1 for b, _ in lowers) or any(a != 1 for a, _ in uppers):
        raise ValueError(
            "Tawbi's algorithm handles unit coefficients only"
        )
    if len(uppers) > 1:
        return _split(conj, order, z, v, uppers, lowers, rest, True)
    if len(lowers) > 1:
        return _split(conj, order, z, v, uppers, lowers, rest, False)
    (_, beta), (_, alpha) = lowers[0], uppers[0]
    z2 = sum_over_range(z, v, beta.to_polynomial(), alpha.to_polynomial())
    conj2 = Conjunct(
        list(rest) + [Constraint.leq(beta, alpha)], conj.wildcards
    )
    n = conj2.normalize()
    if n is None:
        return [], 1
    return _sum_fixed(n, rest_order, z2)


def _split(conj, order, z, v, uppers, lowers, rest, split_uppers):
    """Polyhedral splitting on bound order; no redundancy elimination.

    Unlike the engine, the split does *not* reconsider the variable
    choice, and keeps every original constraint (Tawbi does not remove
    redundant constraints).
    """
    bounds = uppers if split_uppers else lowers
    terms: List[Term] = []
    pieces = 0
    for i, (_, ei) in enumerate(bounds):
        cons = list(conj.constraints)
        for j, (_, ej) in enumerate(bounds):
            if j == i:
                continue
            if split_uppers:
                lhs, rhs = ei, ej
            else:
                lhs, rhs = ej, ei
            if j < i:
                cons.append(Constraint.leq(lhs + 1, rhs))
            else:
                cons.append(Constraint.leq(lhs, rhs))
        piece = Conjunct(cons, conj.wildcards).normalize()
        if piece is None:
            continue  # an empty region: her splitting discards it
        # Within the piece, bound i binds; drop the other bound
        # constraints on v so the recursion sees a single bound.
        drop = []
        for c in piece.constraints:
            k = c.coeff(v)
            if split_uppers and k < 0:
                alpha = Affine(
                    {x: cf for x, cf in c.expr.coeffs if x != v}, c.expr.const
                )
                if alpha != ei:
                    drop.append(c)
            elif not split_uppers and k > 0:
                beta = -Affine(
                    {x: cf for x, cf in c.expr.coeffs if x != v}, c.expr.const
                )
                if beta != ei:
                    drop.append(c)
        piece = piece.without_constraints(drop)
        sub_terms, sub_pieces = _sum_fixed(piece, list(order), z)
        terms.extend(sub_terms)
        pieces += sub_pieces
    return terms, pieces
