"""Naive CAS-style nested summation (the paper's introduction).

Symbolic math packages compute ``Σ_{i=L}^{U} f(i)`` as
``F(U) - F(L-1)`` *assuming the range is non-empty*.  For nested sums
with dependent bounds the assumption silently fails: the paper's
example,

    Σ_{i=1}^{n} Σ_{j=i}^{m} 1,

is reported by Mathematica as ``n(2m - n + 1)/2``, which is only valid
for 1 <= n <= m (for 1 <= m < n the true answer is m(m+1)/2).

``naive_nested_sum`` reproduces that behaviour: it applies the closed
form unconditionally, producing a single polynomial with no guards.
The benchmarks compare it against the engine's guarded answer.
"""

from typing import List, Sequence, Tuple, Union

from repro.core.powersums import sum_over_range
from repro.qpoly import Polynomial
from repro.qpoly.parse import parse_polynomial

PolyLike = Union[Polynomial, int, str]


def _poly(value: PolyLike) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, int):
        return Polynomial.constant(value)
    return parse_polynomial(value)


def naive_nested_sum(
    ranges: Sequence[Tuple[str, PolyLike, PolyLike]], z: PolyLike
) -> Polynomial:
    """Sum ``z`` over nested ranges, innermost last, no emptiness guards.

    ``ranges`` is ``[(var, lower, upper), ...]`` outermost first, each
    bound a polynomial in the outer variables and symbolic constants.
    The summations are performed innermost-first in the given nesting
    order (the predetermined order the paper criticizes), always
    assuming lower <= upper.
    """
    value = _poly(z)
    for var, lo, hi in reversed(list(ranges)):
        value = sum_over_range(value, var, _poly(lo), _poly(hi))
    return value
