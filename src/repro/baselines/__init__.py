"""Comparators from Section 6's related work.

* :mod:`repro.baselines.naive` -- CAS-style symbolic summation that
  assumes ranges are non-empty (the Mathematica behaviour the paper's
  introduction calls out as incorrect).
* :mod:`repro.baselines.tawbi` -- Tawbi's algorithm [Taw91, TF92,
  Taw94]: fixed elimination order, polyhedral splitting so no
  summation is empty, no redundant-constraint elimination.
* :mod:`repro.baselines.fst` -- Ferrante, Sarkar and Thrash [FST91]:
  inclusion-exclusion over overlapping reference sets.
* :mod:`repro.baselines.haghighat` -- Haghighat and Polychronopoulos
  [HP93a]: symbolic sums with min/max and positive-part operators.
"""

from repro.baselines.naive import naive_nested_sum
from repro.baselines.tawbi import tawbi_count, tawbi_sum
from repro.baselines.fst import inclusion_exclusion_count
from repro.baselines.haghighat import MinMaxExpr, hp_nested_sum

__all__ = [
    "MinMaxExpr",
    "hp_nested_sum",
    "inclusion_exclusion_count",
    "naive_nested_sum",
    "tawbi_count",
    "tawbi_sum",
]
