"""Formula AST for Presburger arithmetic.

Atoms are linear constraints (``Atom``) and stride/divisibility
constraints (``StrideAtom``, Section 3.2).  Connectives: And, Or, Not,
Exists, Forall.  Formulas are immutable; ``&``, ``|`` and ``~`` build
connectives, which keeps examples and tests readable.

For testing, :meth:`Formula.evaluate` decides truth under a complete
assignment of the free variables, resolving quantifiers by bounded
search plus the exact satisfiability test for the linear fragment.
"""

from typing import Iterable, Mapping, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint


class Formula:
    """Base class for formula nodes."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And.of(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or.of(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def free_variables(self) -> Tuple[str, ...]:
        """Variables not bound by any enclosing quantifier."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int], search: int = 30) -> bool:
        """Truth under a complete assignment of the free variables.

        Quantifiers over the linear fragment are resolved exactly (via
        the Omega satisfiability test on the DNF); ``search`` bounds
        the fallback enumeration used for alternating quantifiers.
        """
        from repro.presburger.dnf import to_dnf

        missing = [v for v in self.free_variables() if v not in env]
        if missing:
            raise ValueError("unassigned variables: %s" % missing)
        substituted = self.substitute_values(env)
        return any(
            conj.is_satisfied({}) for conj in to_dnf(substituted)
        )

    def substitute_values(self, env: Mapping[str, int]) -> "Formula":
        """Substitute integer constants for free variables."""
        return self.substitute_affine(
            {v: Affine.const_expr(k) for v, k in env.items()}
        )

    def substitute_affine(self, subst: Mapping[str, Affine]) -> "Formula":
        """Capture-avoiding substitution of affine expressions."""
        raise NotImplementedError


class _TrueFormula(Formula):
    __slots__ = ()

    def free_variables(self):
        return ()

    def substitute_affine(self, subst):
        return self

    def __str__(self):
        return "TRUE"

    __repr__ = __str__


class _FalseFormula(Formula):
    __slots__ = ()

    def free_variables(self):
        return ()

    def substitute_affine(self, subst):
        return self

    def __str__(self):
        return "FALSE"

    __repr__ = __str__


TrueF = _TrueFormula()
FalseF = _FalseFormula()


class Atom(Formula):
    """A single linear constraint ``e >= 0`` or ``e == 0``."""

    __slots__ = ("constraint",)

    def __init__(self, constraint: Constraint):
        object.__setattr__(self, "constraint", constraint)

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    @classmethod
    def geq(cls, expr: Affine) -> "Atom":
        return cls(Constraint.geq(expr))

    @classmethod
    def leq(cls, lhs: Affine, rhs: Affine) -> "Atom":
        return cls(Constraint.leq(lhs, rhs))

    @classmethod
    def equal(cls, lhs: Affine, rhs: Affine) -> "Atom":
        return cls(Constraint.equal(lhs, rhs))

    def free_variables(self):
        return self.constraint.variables()

    def substitute_affine(self, subst):
        c = self.constraint
        for var, repl in subst.items():
            c = c.substitute(var, repl)
        if c.is_trivial_true():
            return TrueF
        if c.is_trivial_false():
            return FalseF
        return Atom(c)

    def __str__(self):
        return str(self.constraint)

    __repr__ = __str__


class StrideAtom(Formula):
    """``modulus | expr`` -- expr is evenly divisible by modulus."""

    __slots__ = ("modulus", "expr")

    def __init__(self, modulus: int, expr: Affine):
        if modulus <= 0:
            raise ValueError("stride modulus must be positive")
        object.__setattr__(self, "modulus", modulus)
        object.__setattr__(self, "expr", expr)

    def __setattr__(self, name, value):
        raise AttributeError("StrideAtom is immutable")

    def free_variables(self):
        return self.expr.variables()

    def substitute_affine(self, subst):
        e = self.expr
        for var, repl in subst.items():
            e = e.substitute(var, repl)
        if e.is_constant():
            return TrueF if e.const % self.modulus == 0 else FalseF
        return StrideAtom(self.modulus, e)

    def __str__(self):
        return "%d | (%s)" % (self.modulus, self.expr)

    __repr__ = __str__


class And(Formula):
    """Conjunction; build with :meth:`And.of` (flattens, folds units)."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Formula]):
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, name, value):
        raise AttributeError("And is immutable")

    @classmethod
    def of(cls, *children: Formula) -> Formula:
        flat = []
        for c in children:
            if c is TrueF:
                continue
            if c is FalseF:
                return FalseF
            if isinstance(c, And):
                flat.extend(c.children)
            else:
                flat.append(c)
        if not flat:
            return TrueF
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def free_variables(self):
        seen = {}
        for c in self.children:
            for v in c.free_variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def substitute_affine(self, subst):
        return And.of(*(c.substitute_affine(subst) for c in self.children))

    def __str__(self):
        return "(" + " and ".join(str(c) for c in self.children) + ")"

    __repr__ = __str__


class Or(Formula):
    """Disjunction; build with :meth:`Or.of` (flattens, folds units)."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Formula]):
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, name, value):
        raise AttributeError("Or is immutable")

    @classmethod
    def of(cls, *children: Formula) -> Formula:
        flat = []
        for c in children:
            if c is FalseF:
                continue
            if c is TrueF:
                return TrueF
            if isinstance(c, Or):
                flat.extend(c.children)
            else:
                flat.append(c)
        if not flat:
            return FalseF
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def free_variables(self):
        seen = {}
        for c in self.children:
            for v in c.free_variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def substitute_affine(self, subst):
        return Or.of(*(c.substitute_affine(subst) for c in self.children))

    def __str__(self):
        return "(" + " or ".join(str(c) for c in self.children) + ")"

    __repr__ = __str__


class Not(Formula):
    """Negation; DNF conversion pushes it to the atoms (§2.5)."""

    __slots__ = ("child",)

    def __init__(self, child: Formula):
        object.__setattr__(self, "child", child)

    def __setattr__(self, name, value):
        raise AttributeError("Not is immutable")

    def free_variables(self):
        return self.child.free_variables()

    def substitute_affine(self, subst):
        inner = self.child.substitute_affine(subst)
        if inner is TrueF:
            return FalseF
        if inner is FalseF:
            return TrueF
        return Not(inner)

    def __str__(self):
        return "not (%s)" % (self.child,)

    __repr__ = __str__


class _Quantifier(Formula):
    __slots__ = ("variables", "body")
    _name = "?"

    def __init__(self, variables: Sequence[str], body: Formula):
        if not variables:
            raise ValueError("quantifier needs at least one variable")
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("quantifiers are immutable")

    def free_variables(self):
        bound = set(self.variables)
        return tuple(v for v in self.body.free_variables() if v not in bound)

    def substitute_affine(self, subst):
        bound = set(self.variables)
        capture = {
            v
            for repl in subst.values()
            for v in repl.variables()
            if v in bound
        }
        body = self.body
        variables = self.variables
        if capture or any(v in subst for v in bound):
            from repro.omega.constraints import fresh_var

            renaming = {v: fresh_var("b") for v in self.variables}
            body = body.substitute_affine(
                {v: Affine.var(n) for v, n in renaming.items()}
            )
            variables = tuple(renaming[v] for v in self.variables)
        inner = body.substitute_affine(
            {v: r for v, r in subst.items() if v not in set(variables)}
        )
        if inner is TrueF or inner is FalseF:
            return inner
        return type(self)(variables, inner)

    def __str__(self):
        return "%s %s: (%s)" % (self._name, ", ".join(self.variables), self.body)

    __repr__ = __str__


class Exists(_Quantifier):
    """∃ vars: body -- lowered to conjunct wildcards by to_dnf."""

    __slots__ = ()
    _name = "exists"


class Forall(_Quantifier):
    """∀ vars: body -- handled as ¬∃¬ (projection + negation)."""

    __slots__ = ()
    _name = "forall"
