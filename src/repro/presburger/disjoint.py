"""Disjoint disjunctive normal form (Section 5).

Counting sums the clauses of a DNF independently, so overlapping
clauses would be counted more than once (Section 4.5.1).  This module
provides:

* ``negate_constraint_in`` / ``disjoint_negation`` -- the *disjoint
  negation* of Section 5.3: ¬(c1 ∧ c2 ∧ ...) as the disjoint union
  ¬c1 + (c1 ∧ ¬c2) + (c1 ∧ c2 ∧ ¬c3) + ...
* ``project_to_stride_only`` -- eliminate every wildcard that is not a
  pure stride, splitting into disjoint pieces when the elimination
  splinters (Section 5.2).
* ``disjointify`` -- convert an arbitrary list of clauses into disjoint
  clauses using subset elimination, connected components,
  articulation-point extraction and gist simplification (Section 5.3's
  Steps 1-4).
"""

from typing import List, Optional

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.omega.problem import Conjunct


class DisjointBudgetError(RuntimeError):
    """Disjointification exceeded its work budget."""


class WorkMeter:
    """A shared work budget for one disjointification job.

    Disjointification recurses through projection and nested
    disjointify calls; a single meter threads through all of them so
    the budget bounds the *total* work (nested calls must not reset
    the counter)."""

    __slots__ = ("units", "limit")

    def __init__(self, limit: int):
        self.units = 0
        self.limit = limit

    def charge(self, amount: int = 1) -> None:
        self.units += amount
        if self.units > self.limit:
            raise DisjointBudgetError(
                "disjointification budget exhausted (%d units)" % self.limit
            )


def negate_constraint_in(conj: Conjunct, constraint: Constraint) -> List[Conjunct]:
    """Disjoint clauses covering the negation of one constraint.

    ``conj`` supplies context: it tells us whether an equality is a
    stride (its wildcard lives only there).  GEQ: one clause.  Plain
    equality: two clauses (e >= 1, e <= -1).  Stride ``g | e``: the
    g - 1 clauses ``g | (e - r)`` for r = 1..g-1.
    """
    if constraint.is_geq():
        return [Conjunct([constraint.negate_geq()])]
    wilds = [
        v
        for v in constraint.variables()
        if v in conj.wildcards and conj.is_stride_wildcard(v)
    ]
    if not wilds:
        if any(v in conj.wildcards for v in constraint.variables()):
            raise ValueError(
                "cannot negate equality with non-stride wildcard: %s"
                % constraint
            )
        return [
            Conjunct([Constraint.geq(constraint.expr - 1)]),
            Conjunct([Constraint.geq(-constraint.expr - 1)]),
        ]
    if len(wilds) > 1:
        raise ValueError("non-canonical stride %s" % constraint)
    w = wilds[0]
    g = abs(constraint.coeff(w))
    sign = 1 if constraint.coeff(w) > 0 else -1
    rest = Affine(
        {v: c for v, c in constraint.expr.coeffs if v != w},
        constraint.expr.const,
    )
    # constraint: g·w·sign + rest == 0, i.e. g | rest; negation fans out
    # over the nonzero residues of (-sign·rest) mod g.
    e = -rest * sign
    out = []
    for r in range(1, g):
        out.append(Conjunct.true().add_stride(g, e - r))
    return out


def disjoint_negation(conj: Conjunct) -> List[Conjunct]:
    """¬conj as a list of pairwise-disjoint conjuncts.

    Requires every wildcard of ``conj`` to be stride-only (project
    first otherwise).  Implements ¬(c1∧c2∧...) =
    ¬c1 + c1∧¬c2 + c1∧c2∧¬c3 + ...
    """
    if not conj.stride_only():
        raise ValueError("disjoint_negation requires a stride-only conjunct")
    pieces: List[Conjunct] = []
    prior: List[Constraint] = []
    prior_wild: List[str] = []
    for c in conj.constraints:
        for neg in negate_constraint_in(conj, c):
            piece = Conjunct(
                list(prior) + list(neg.constraints),
                list(prior_wild) + list(neg.wildcards),
            ).normalize()
            if piece is not None:
                pieces.append(piece)
        prior.append(c)
        prior_wild.extend(
            v for v in c.variables() if v in conj.wildcards
        )
    return pieces


def project_to_stride_only(
    conj: Conjunct, budget: int = 25000, meter: Optional[WorkMeter] = None
) -> List[Conjunct]:
    """Eliminate non-stride wildcards, returning disjoint pieces.

    The result pieces have only stride-only wildcards; their disjoint
    union equals the original conjunct (as a predicate on the free
    variables).
    """
    from repro.omega.eliminate import eliminate_exact
    from repro.omega.equalities import eliminate_wildcards_from_equality
    from repro.omega.satisfiability import satisfiable

    if meter is None:
        meter = WorkMeter(budget)
    work = [conj]
    done: List[Conjunct] = []
    while work:
        current = work.pop()
        # charge by size: the satisfiability and elimination work on a
        # piece grows with its constraint count
        meter.charge(1 + len(current.constraints))
        n = current.normalize()
        if n is None:
            continue
        bad = [w for w in n.wildcards if not n.is_stride_wildcard(w)]
        if not bad:
            done.append(n)
            continue
        w = bad[0]
        in_eq = any(c.is_eq() and c.uses(w) for c in n.constraints)
        if in_eq:
            eq = next(c for c in n.constraints if c.is_eq() and c.uses(w))
            work.append(eliminate_wildcards_from_equality(n, eq).conjunct)
        else:
            pieces = eliminate_exact(n, w)
            if len(pieces) > 1:
                # Splinters may overlap; disjointify before continuing.
                pieces = disjointify(pieces, meter=meter)
            work.extend(pieces)
    feasible = []
    for c in done:
        meter.charge(1 + len(c.constraints))
        if satisfiable(c):
            feasible.append(c)
    if len(feasible) > 1:
        return disjointify(feasible, meter=meter)
    return feasible


def _implies(a: Conjunct, b: Conjunct) -> bool:
    from repro.omega.satisfiability import implies

    return implies(a, b)


def _overlap(a: Conjunct, b: Conjunct) -> bool:
    from repro.omega.satisfiability import satisfiable

    return satisfiable(a.merge(b))


def disjointify(
    clauses: List[Conjunct],
    budget: int = 50000,
    meter: Optional[WorkMeter] = None,
) -> List[Conjunct]:
    """Convert clauses to pairwise-disjoint clauses (Section 5.3).

    Step 1: drop clauses subsumed by another clause.
    Step 2: split into connected components of the overlap graph.
    Step 3: within a component, repeatedly extract one clause
            (articulation point preferred, then fewest constraints).
    Step 4: conjoin the remaining clauses with the *disjoint negation*
            of the gist of the extracted clause.

    A single :class:`WorkMeter` bounds the total work including nested
    projection; implication/overlap tests are charged proportionally
    to their wildcard count (a proxy for the eliminations the
    satisfiability test performs).  The default budget is sized so
    that small formulas with negated strides (whose disjoint negation
    fans out g - 1 residue clauses each) comfortably fit: a 7-atom
    formula mixing a quantifier with mod-4 strides already needs
    ~30k units, while genuine blowups run to millions.
    """
    from repro.omega.redundancy import gist
    from repro.omega.satisfiability import satisfiable

    if meter is None:
        meter = WorkMeter(budget)

    prepared: List[Conjunct] = []
    for c in clauses:
        n = c.normalize()
        if n is None:
            continue
        meter.charge(1 + len(n.constraints))
        if not satisfiable(n):
            continue
        if n.stride_only():
            prepared.append(n)
        else:
            prepared.extend(project_to_stride_only(n, meter=meter))

    if len(prepared) <= 1:
        return prepared

    def charge_pair(a: Conjunct, b: Conjunct) -> None:
        meter.charge(
            1
            + len(a.wildcards)
            + len(b.wildcards)
            + (len(a.constraints) + len(b.constraints)) // 4
        )

    # Step 1: subset elimination.
    kept: List[Conjunct] = []
    for c in prepared:
        for other in kept:
            charge_pair(c, other)
        if any(_implies(c, other) for other in kept):
            continue
        kept = [k for k in kept if not _implies(k, c)]
        kept.append(c)

    # Step 2: connected components of the overlap graph.
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(len(kept)))
    for i in range(len(kept)):
        for j in range(i + 1, len(kept)):
            charge_pair(kept[i], kept[j])
            if _overlap(kept[i], kept[j]):
                graph.add_edge(i, j)

    result: List[Conjunct] = []
    for component in nx.connected_components(graph):
        remaining = [kept[i] for i in component]
        while remaining:
            meter.charge()
            pick = _pick_extraction(remaining)
            extracted = remaining.pop(pick)
            result.append(extracted)
            if not remaining:
                break
            new_remaining: List[Conjunct] = []
            for other in remaining:
                charge_pair(extracted, other)
                interesting = gist(extracted, other)
                if interesting.is_trivial_true():
                    continue  # other ⊆ extracted: fully covered
                for neg in disjoint_negation(interesting):
                    piece = other.merge(neg).normalize()
                    if piece is None:
                        continue
                    meter.charge()
                    if satisfiable(piece):
                        new_remaining.append(piece)
            remaining = new_remaining
    return result


def _pick_extraction(remaining: List[Conjunct]) -> int:
    """Step 3 heuristics: articulation point, then fewest constraints."""
    if len(remaining) > 2:
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(len(remaining)))
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                if _overlap(remaining[i], remaining[j]):
                    graph.add_edge(i, j)
        articulation = set(nx.articulation_points(graph))
        if articulation:
            return min(
                articulation, key=lambda i: len(remaining[i].constraints)
            )
    return min(
        range(len(remaining)), key=lambda i: len(remaining[i].constraints)
    )


def to_disjoint_dnf(formula, budget: int = 50000) -> List[Conjunct]:
    """Formula → disjoint DNF clauses (the paper's preferred output)."""
    from repro.presburger.dnf import to_dnf

    return disjointify(to_dnf(formula), budget=budget)
