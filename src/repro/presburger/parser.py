"""A small text syntax for Presburger formulas.

Grammar (informal)::

    formula  := disj
    disj     := conj ('or' conj)*
    conj     := unary ('and' unary)*
    unary    := 'not' unary | quantifier | primary
    quantifier := ('exists' | 'forall') names ':' unary
    primary  := '(' formula ')' | chain | stride | 'true' | 'false'
    chain    := expr (relop expr)+          relop: <= < >= > = == !=
    stride   := INT 'divides' expr          (also INT '|' expr)
    expr     := term (('+'|'-') term)* ('mod' INT)?
    term     := factor ('*' factor)* ('mod' INT)?
    factor   := INT | NAME | '-' factor | '(' expr ')'
              | 'floor(' expr '/' INT ')' | 'ceil(' expr '/' INT ')'

Examples::

    parse("1 <= i <= n and 2*i <= 3*j")
    parse("exists a: 5 <= a <= 27 and x = 3*a - 1")
    parse("x mod 16 = 0 or 3 divides (n - 1)")
    parse("l = t - 4*p - 32*floor(t/32) and 0 <= l <= 3")
"""

import re
from typing import List, Optional

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import (
    And,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
)
from repro.presburger.nonlinear import (
    NLCeil,
    NLExpr,
    NLFloor,
    NLLin,
    NLMod,
    lower,
    lowered_atom,
)

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9']*)"
    r"|(?P<op><=|>=|==|!=|[-+*/()=<>:,|]))"
)

_KEYWORDS = {
    "and",
    "or",
    "not",
    "exists",
    "forall",
    "mod",
    "floor",
    "ceil",
    "divides",
    "true",
    "false",
}


class ParseError(ValueError):
    """Raised on malformed formula text."""


class _Tokens:
    """A token stream with one-token lookahead."""

    def __init__(self, text: str):
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if not m:
                if text[pos:].strip():
                    raise ParseError(
                        "unexpected character %r at %d" % (text[pos], pos)
                    )
                break
            self.tokens.append(m.group(m.lastgroup))
            pos = m.end()
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    def expect(self, token: str) -> None:
        got = self.peek()
        if got != token:
            raise ParseError("expected %r, got %r" % (token, got))
        self.pos += 1


def parse(text: str) -> Formula:
    """Parse a formula from text."""
    toks = _Tokens(text)
    formula = _parse_disj(toks)
    if toks.peek() is not None:
        raise ParseError("trailing input at token %r" % toks.peek())
    return formula


def parse_expr(text: str) -> NLExpr:
    """Parse just an expression (possibly with floor/ceil/mod)."""
    toks = _Tokens(text)
    expr = _parse_sum(toks)
    if toks.peek() is not None:
        raise ParseError("trailing input at token %r" % toks.peek())
    return expr


def _parse_disj(toks: _Tokens) -> Formula:
    parts = [_parse_conj(toks)]
    while toks.accept("or"):
        parts.append(_parse_conj(toks))
    return Or.of(*parts)


def _parse_conj(toks: _Tokens) -> Formula:
    parts = [_parse_unary(toks)]
    while toks.accept("and"):
        parts.append(_parse_unary(toks))
    return And.of(*parts)


def _parse_unary(toks: _Tokens) -> Formula:
    if toks.accept("not"):
        return Not(_parse_unary(toks))
    if toks.peek() in ("exists", "forall"):
        kind = toks.next()
        names = [_parse_name(toks)]
        while toks.accept(","):
            names.append(_parse_name(toks))
        toks.expect(":")
        # The quantifier body extends as far right as possible (to the
        # closing paren or end of input), matching the paper's usage.
        body = _parse_disj(toks)
        return (Exists if kind == "exists" else Forall)(names, body)
    return _parse_primary(toks)


def _parse_name(toks: _Tokens) -> str:
    tok = toks.next()
    if not re.match(r"^[A-Za-z_]", tok) or tok in _KEYWORDS:
        raise ParseError("expected a variable name, got %r" % tok)
    return tok


_RELOPS = {"<=", "<", ">=", ">", "=", "==", "!="}


def _parse_primary(toks: _Tokens) -> Formula:
    if toks.accept("true"):
        return TrueF
    if toks.accept("false"):
        return FalseF
    if toks.peek() == "(":
        # Could be a parenthesized formula or a parenthesized expression
        # beginning a chain; try formula first, backtracking on failure.
        save = toks.pos
        try:
            toks.expect("(")
            inner = _parse_disj(toks)
            toks.expect(")")
            if toks.peek() not in _RELOPS:
                return inner
        except ParseError:
            pass
        toks.pos = save
    return _parse_chain(toks)


def _parse_chain(toks: _Tokens) -> Formula:
    exprs = [_parse_sum(toks)]
    ops: List[str] = []
    # Stride syntax: INT divides expr   /   INT | expr
    if toks.peek() in ("divides", "|"):
        toks.next()
        modulus_expr = exprs[0]
        affine, side, wilds = lower(modulus_expr)
        if not affine.is_constant() or side:
            raise ParseError("stride modulus must be a constant")
        target = _parse_sum(toks)
        t_affine, t_side, t_wilds = lower(target)
        stride = StrideAtom(affine.const, t_affine)
        if t_side:
            from repro.presburger.ast import Atom

            body = And.of(*(Atom(c) for c in t_side), stride)
            return Exists(t_wilds, body)
        return stride
    while toks.peek() in _RELOPS:
        ops.append(toks.next())
        exprs.append(_parse_sum(toks))
    if not ops:
        raise ParseError("expected a comparison")
    atoms = []
    for left, op, right in zip(exprs, ops, exprs[1:]):
        atoms.append(_comparison(left, op, right))
    return And.of(*atoms)


def _comparison(left: NLExpr, op: str, right: NLExpr) -> Formula:
    def build(la: Affine, ra: Affine) -> List[Constraint]:
        if op == "<=":
            return [Constraint.leq(la, ra)]
        if op == "<":
            return [Constraint.leq(la + 1, ra)]
        if op == ">=":
            return [Constraint.leq(ra, la)]
        if op == ">":
            return [Constraint.leq(ra + 1, la)]
        if op in ("=", "=="):
            return [Constraint.equal(la, ra)]
        raise AssertionError(op)

    if op == "!=":
        return Not(lowered_atom(
            lambda la, ra: [Constraint.equal(la, ra)], left, right
        ))
    return lowered_atom(build, left, right)


def _parse_sum(toks: _Tokens) -> NLExpr:
    expr = _parse_term(toks)
    while toks.peek() in ("+", "-"):
        op = toks.next()
        rhs = _parse_term(toks)
        expr = expr + rhs if op == "+" else expr - rhs
    if toks.accept("mod"):
        expr = NLMod(expr, _parse_int(toks))
    return expr


def _parse_term(toks: _Tokens) -> NLExpr:
    expr = _parse_factor(toks)
    while toks.peek() == "*":
        toks.next()
        rhs = _parse_factor(toks)
        expr = _nl_multiply(expr, rhs)
    if toks.peek() == "mod":
        toks.next()
        expr = NLMod(expr, _parse_int(toks))
    return expr


def _nl_multiply(a: NLExpr, b: NLExpr) -> NLExpr:
    for first, second in ((a, b), (b, a)):
        la, lc, lw = lower(first)
        if la.is_constant() and not lc:
            return second * la.const
    raise ParseError("nonlinear product (only constant * expr allowed)")


def _parse_factor(toks: _Tokens) -> NLExpr:
    tok = toks.peek()
    if tok is None:
        raise ParseError("unexpected end of expression")
    if tok == "-":
        toks.next()
        return -_parse_factor(toks)
    if tok == "(":
        toks.next()
        inner = _parse_sum(toks)
        toks.expect(")")
        return inner
    if tok in ("floor", "ceil"):
        kind = toks.next()
        toks.expect("(")
        inner = _parse_sum(toks)
        toks.expect("/")
        divisor = _parse_int(toks)
        toks.expect(")")
        return (NLFloor if kind == "floor" else NLCeil)(inner, divisor)
    if re.match(r"^\d+$", tok):
        toks.next()
        return NLLin(Affine.const_expr(int(tok)))
    if re.match(r"^[A-Za-z_]", tok) and tok not in _KEYWORDS:
        toks.next()
        return NLLin(Affine.var(tok))
    raise ParseError("unexpected token %r in expression" % tok)


def _parse_int(toks: _Tokens) -> int:
    tok = toks.next()
    if not re.match(r"^\d+$", tok):
        raise ParseError("expected an integer, got %r" % tok)
    return int(tok)
