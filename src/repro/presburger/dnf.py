"""Conversion of Presburger formulas to disjunctive normal form.

``to_dnf`` lowers a formula to a list of :class:`Conjunct`s whose union
is the formula.  Negation is pushed inward; negated equalities split in
two, negated strides fan out over the nonzero residues (Section 3.2),
and negated existentials are resolved by *projecting* the quantified
variables first (the Omega test's exact elimination) and then negating
the resulting stride-only clauses -- the approach of [PW93a] that the
paper relies on for formulas involving negation (Section 2.5).
"""

from typing import List

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.omega.problem import Conjunct
from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
)

_MAX_CLAUSES = 20000


class DnfExplosion(RuntimeError):
    """The DNF grew past the safety cap (the worst case is unavoidable:
    Presburger simplification has nondeterministic lower bound 2^2^Ω(n))."""


def to_dnf(formula: Formula) -> List[Conjunct]:
    """Lower a formula to (possibly overlapping) DNF clauses."""
    clauses = _dnf(formula)
    out = []
    for c in clauses:
        n = c.normalize()
        if n is not None:
            out.append(n)
    return out


def _dnf(f: Formula) -> List[Conjunct]:
    if f is TrueF:
        return [Conjunct.true()]
    if f is FalseF:
        return []
    if isinstance(f, Atom):
        return [Conjunct([f.constraint])]
    if isinstance(f, StrideAtom):
        return [Conjunct.true().add_stride(f.modulus, f.expr)]
    if isinstance(f, And):
        lists = [_dnf(c) for c in f.children]
        return _merge_product(lists)
    if isinstance(f, Or):
        out: List[Conjunct] = []
        for c in f.children:
            out.extend(_dnf(c))
            _check_size(out)
        return out
    if isinstance(f, Not):
        return _dnf_not(f.child)
    if isinstance(f, Exists):
        renaming = {v: fresh_var("e") for v in f.variables}
        body = f.body.substitute_affine(
            {v: Affine.var(n) for v, n in renaming.items()}
        )
        return [
            piece.with_wildcards(renaming.values()) for piece in _dnf(body)
        ]
    if isinstance(f, Forall):
        return _dnf(Not(Exists(f.variables, Not(f.body))))
    raise TypeError("unknown formula node %r" % (f,))


def _dnf_not(f: Formula) -> List[Conjunct]:
    if f is TrueF:
        return []
    if f is FalseF:
        return [Conjunct.true()]
    if isinstance(f, Atom):
        c = f.constraint
        if c.is_geq():
            return [Conjunct([c.negate_geq()])]
        # ¬(e == 0)  ≡  e >= 1  ∨  e <= -1   (disjoint)
        return [
            Conjunct([Constraint.geq(c.expr - 1)]),
            Conjunct([Constraint.geq(-c.expr - 1)]),
        ]
    if isinstance(f, StrideAtom):
        # ¬(m | e)  ≡  ∨_{r=1..m-1}  m | (e - r)   (disjoint)
        return [
            Conjunct.true().add_stride(f.modulus, f.expr - r)
            for r in range(1, f.modulus)
        ]
    if isinstance(f, And):
        out: List[Conjunct] = []
        for c in f.children:
            out.extend(_dnf_not(c))
            _check_size(out)
        return out
    if isinstance(f, Or):
        return _merge_product([_dnf_not(c) for c in f.children])
    if isinstance(f, Not):
        return _dnf(f.child)
    if isinstance(f, Forall):
        return _dnf(Exists(f.variables, Not(f.body)))
    if isinstance(f, Exists):
        return _negate_clauses(_dnf(f))
    raise TypeError("unknown formula node %r" % (f,))


def _negate_clauses(clauses: List[Conjunct]) -> List[Conjunct]:
    """¬(C1 ∨ ... ∨ Cp) as a DNF, projecting wildcards as needed."""
    from repro.presburger.disjoint import (
        disjoint_negation,
        project_to_stride_only,
    )

    stride_only: List[Conjunct] = []
    for c in clauses:
        n = c.normalize()
        if n is None:
            continue
        if n.stride_only():
            stride_only.append(n)
        else:
            stride_only.extend(project_to_stride_only(n))
    negations = [disjoint_negation(c) for c in stride_only]
    return _merge_product(negations) if negations else [Conjunct.true()]


#: Above this many clauses after a product step, spend satisfiability
#: calls to prune infeasible partial products before growing further.
_PRUNE_THRESHOLD = 512


def _merge_product(lists: List[List[Conjunct]]) -> List[Conjunct]:
    """Distribute a conjunction of clause lists into one clause list.

    The product is pruned incrementally: every merged conjunct is
    normalized (dropping directly contradictory combinations), and
    when a step still yields more than :data:`_PRUNE_THRESHOLD`
    clauses the full satisfiability test culls infeasible partial
    products before the next multiplication.  Negated quantifiers
    produce many mutually-exclusive residue/bound combinations, so
    without this the intermediate product can blow past the clause cap
    even though the final DNF is small.
    """
    result = [Conjunct.true()]
    prune = True
    for options in lists:
        new: List[Conjunct] = []
        for base in result:
            for extra in options:
                merged = base.merge(extra).normalize()
                if merged is not None:
                    new.append(merged)
        if prune and len(new) > _PRUNE_THRESHOLD:
            from repro.omega.satisfiability import satisfiable

            kept = [c for c in new if satisfiable(c)]
            if len(kept) * 10 > len(new) * 9:
                # Pruning barely helps: the product is genuinely
                # large, so stop paying for satisfiability calls and
                # let _check_size fire.
                prune = False
            new = kept
        _check_size(new)
        result = new
        if not result:
            break
    return result


def _check_size(clauses: List[Conjunct]) -> None:
    if len(clauses) > _MAX_CLAUSES:
        raise DnfExplosion(
            "DNF exceeded %d clauses; simplify the formula first"
            % _MAX_CLAUSES
        )
