"""Simplification of arbitrary Presburger formulas (Section 2.6).

``simplify`` lowers a formula to DNF, normalizes every clause, removes
redundant constraints and subsumed clauses, and (optionally) makes the
clauses disjoint.  ``formulas_equivalent`` decides semantic equivalence
exactly (both directions of implication via satisfiability).
"""

from typing import List, Union

from repro.omega.problem import Conjunct
from repro.omega.redundancy import remove_redundant
from repro.omega.satisfiability import implies, satisfiable
from repro.presburger.ast import Formula, Not, And
from repro.presburger.dnf import to_dnf
from repro.presburger.disjoint import disjointify


def simplify(
    formula: Union[Formula, List[Conjunct]],
    disjoint: bool = False,
    aggressive: bool = True,
) -> List[Conjunct]:
    """Simplify a formula into a compact list of DNF clauses.

    * infeasible clauses are dropped;
    * each clause is normalized and (with ``aggressive``) stripped of
      redundant constraints using the complete redundancy test;
    * clauses subsumed by another clause are removed;
    * with ``disjoint=True`` the result is in disjoint DNF.
    """
    clauses = to_dnf(formula) if isinstance(formula, Formula) else list(formula)
    cleaned: List[Conjunct] = []
    for clause in clauses:
        n = clause.normalize()
        if n is None or not satisfiable(n):
            continue
        if aggressive:
            n = remove_redundant(n)
        cleaned.append(n)

    kept: List[Conjunct] = []
    for clause in cleaned:
        if any(implies(clause, other) for other in kept):
            continue
        kept = [k for k in kept if not implies(k, clause)]
        kept.append(clause)

    if disjoint:
        return disjointify(kept)
    return kept


def clause_union_equivalent(
    a: List[Conjunct], b: List[Conjunct]
) -> bool:
    """Do two clause lists denote the same set of solutions?

    Exact: every clause of one side must be covered by the union of the
    other side.  Coverage of a clause C by clauses D1..Dk is checked by
    verifying that C ∧ ¬D1 ∧ ... ∧ ¬Dk is unsatisfiable.
    """
    return _covered(a, b) and _covered(b, a)


def _covered(clauses: List[Conjunct], cover: List[Conjunct]) -> bool:
    from repro.presburger.disjoint import (
        disjoint_negation,
        project_to_stride_only,
    )

    prepared: List[Conjunct] = []
    for d in cover:
        n = d.normalize()
        if n is None:
            continue
        if n.stride_only():
            prepared.append(n)
        else:
            prepared.extend(project_to_stride_only(n))
    for c in clauses:
        n = c.normalize()
        if n is None:
            continue
        residue = [n]
        for d in prepared:
            new_residue = []
            for r in residue:
                for neg in disjoint_negation(d):
                    piece = r.merge(neg).normalize()
                    if piece is not None and satisfiable(piece):
                        new_residue.append(piece)
            residue = new_residue
            if not residue:
                break
        if residue:
            return False
    return True


def formulas_equivalent(f: Formula, g: Formula) -> bool:
    """Exact semantic equivalence of two formulas."""
    return clause_union_equivalent(to_dnf(f), to_dnf(g))


def formula_implies(f: Formula, g: Formula) -> bool:
    """Exact implication f ⇒ g (Section 2.4 verification)."""
    return _covered(to_dnf(f), to_dnf(g))
