"""Presburger formulas: AST, parser, DNF and disjoint DNF conversion.

The user-facing formula language: linear constraints over integer
variables combined with ∧, ∨, ¬, ∃, ∀, plus the nonlinear-but-
Presburger extensions of Section 3 (floor, ceiling, mod, strides).
"""

from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
)
from repro.presburger.parser import parse
from repro.presburger.dnf import to_dnf
from repro.presburger.disjoint import disjointify, to_disjoint_dnf
from repro.presburger.simplify import simplify, formulas_equivalent

__all__ = [
    "And",
    "Atom",
    "Exists",
    "FalseF",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "StrideAtom",
    "TrueF",
    "disjointify",
    "formulas_equivalent",
    "parse",
    "simplify",
    "to_disjoint_dnf",
    "to_dnf",
]
