"""Nonlinear constraints that stay Presburger (Section 3).

Floors, ceilings and mods of the form ``floor(e/c)``, ``ceil(e/c)``,
``e mod c`` (c a positive integer constant) are representable inside
Presburger formulas by introducing an existentially quantified variable
with bounding constraints:

* ``floor(e/c) -> α``  with  ``c·α <= e <= c·α + c - 1``
* ``ceil(e/c)  -> β``  with  ``c·β - c + 1 <= e <= c·β``
* ``e mod c    -> e - c·α``  with α as for floor.

:class:`NLExpr` is a tiny expression tree for such terms; ``lower``
flattens it to an affine expression plus side constraints over fresh
variables, which the parser and the applications layer wrap in
``Exists``.
"""

from typing import List, Tuple, Union

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var


class NLExpr:
    """Expression possibly containing floor/ceil/mod subterms."""

    __slots__ = ()

    def __add__(self, other):
        return NLSum(self, _coerce(other), 1)

    def __radd__(self, other):
        return NLSum(_coerce(other), self, 1)

    def __sub__(self, other):
        return NLSum(self, _coerce(other), -1)

    def __rsub__(self, other):
        return NLSum(_coerce(other), self, -1)

    def __mul__(self, k: int):
        if not isinstance(k, int):
            return NotImplemented
        return NLScale(self, k)

    __rmul__ = __mul__

    def __neg__(self):
        return NLScale(self, -1)


def _coerce(value) -> "NLExpr":
    if isinstance(value, NLExpr):
        return value
    if isinstance(value, int):
        return NLLin(Affine.const_expr(value))
    if isinstance(value, Affine):
        return NLLin(value)
    raise TypeError("cannot use %r in an expression" % (value,))


class NLLin(NLExpr):
    __slots__ = ("affine",)

    def __init__(self, affine: Affine):
        object.__setattr__(self, "affine", affine)

    def __str__(self):
        return str(self.affine)


class NLSum(NLExpr):
    __slots__ = ("left", "right", "sign")

    def __init__(self, left: NLExpr, right: NLExpr, sign: int):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "sign", sign)

    def __str__(self):
        op = "+" if self.sign > 0 else "-"
        return "(%s %s %s)" % (self.left, op, self.right)


class NLScale(NLExpr):
    __slots__ = ("child", "factor")

    def __init__(self, child: NLExpr, factor: int):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "factor", factor)

    def __str__(self):
        return "%d*%s" % (self.factor, self.child)


class NLFloor(NLExpr):
    """floor(child / divisor)"""

    __slots__ = ("child", "divisor")

    def __init__(self, child: NLExpr, divisor: int):
        if divisor <= 0:
            raise ValueError("floor divisor must be positive")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "divisor", divisor)

    def __str__(self):
        return "floor(%s / %d)" % (self.child, self.divisor)


class NLCeil(NLExpr):
    """ceil(child / divisor)"""

    __slots__ = ("child", "divisor")

    def __init__(self, child: NLExpr, divisor: int):
        if divisor <= 0:
            raise ValueError("ceil divisor must be positive")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "divisor", divisor)

    def __str__(self):
        return "ceil(%s / %d)" % (self.child, self.divisor)


class NLMod(NLExpr):
    """child mod divisor, in 0..divisor-1"""

    __slots__ = ("child", "divisor")

    def __init__(self, child: NLExpr, divisor: int):
        if divisor <= 0:
            raise ValueError("mod divisor must be positive")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "divisor", divisor)

    def __str__(self):
        return "(%s mod %d)" % (self.child, self.divisor)


Lowered = Tuple[Affine, List[Constraint], List[str]]


def lower(expr: Union[NLExpr, Affine, int]) -> Lowered:
    """Flatten to (affine, side constraints, fresh variables).

    The expression equals the affine part whenever the side constraints
    hold; the fresh variables are to be existentially quantified.
    """
    expr = _coerce(expr)
    if isinstance(expr, NLLin):
        return expr.affine, [], []
    if isinstance(expr, NLSum):
        la, lc, lw = lower(expr.left)
        ra, rc, rw = lower(expr.right)
        return la + ra * expr.sign, lc + rc, lw + rw
    if isinstance(expr, NLScale):
        a, cons, wilds = lower(expr.child)
        return a * expr.factor, cons, wilds
    if isinstance(expr, (NLFloor, NLCeil, NLMod)):
        a, cons, wilds = lower(expr.child)
        c = expr.divisor
        alpha = fresh_var("f")
        av = Affine.var(alpha)
        if isinstance(expr, NLFloor):
            # c·α <= a <= c·α + c - 1
            cons = cons + [
                Constraint.leq(av * c, a),
                Constraint.leq(a, av * c + (c - 1)),
            ]
            return av, cons, wilds + [alpha]
        if isinstance(expr, NLCeil):
            # c·α - c + 1 <= a <= c·α
            cons = cons + [
                Constraint.leq(av * c - (c - 1), a),
                Constraint.leq(a, av * c),
            ]
            return av, cons, wilds + [alpha]
        # mod: a - c·α with α = floor(a/c)
        cons = cons + [
            Constraint.leq(av * c, a),
            Constraint.leq(a, av * c + (c - 1)),
        ]
        return a - av * c, cons, wilds + [alpha]
    raise TypeError("cannot lower %r" % (expr,))


def lowered_atom(build_constraints, *exprs) -> "Formula":
    """Lower expressions and wrap the produced atoms in Exists.

    ``build_constraints`` receives the affine forms and returns a list
    of :class:`Constraint`; the result is the conjunction, wrapped in
    an Exists over the fresh floor/ceil/mod variables.
    """
    from repro.presburger.ast import And, Atom, Exists, TrueF

    affines = []
    side: List[Constraint] = []
    wilds: List[str] = []
    for e in exprs:
        a, cons, ws = lower(e)
        affines.append(a)
        side.extend(cons)
        wilds.extend(ws)
    atoms = [Atom(c) for c in build_constraints(*affines)]
    body = And.of(*(Atom(c) for c in side), *atoms)
    if not wilds:
        return body if atoms or side else TrueF
    return Exists(wilds, body)
