"""Persistent automaton store: built DFAs survive process restarts.

The resident LRU (:mod:`repro.automaton.cache`) amortizes builds
within one process; this module extends the amortization across
restarts by serializing minimized automata into a ``diskcache`` table
(``automata``) living next to the answer store.  A daemon that is
bounced keeps its resident ``member`` / ``count_below`` working sets:
the first query after restart finds the DFA on disk and re-residents
it without rebuilding (``automaton_disk_hits`` vs a fresh
``automaton_builds``).

Keying follows the resident cache -- the *point-free* alpha-invariant
formula key plus track order (:func:`repro.automaton.count.automaton_key`)
-- wrapped in a SHA-256 with a serialization schema version and the
engine version, so upgrading either invalidates stored automata
instead of serving stale semantics.  The payload is a plain JSON
document (``nbits``, ``variables``, ``initial``, ``delta`` row lists,
``accept`` bitmasks); corrupt or schema-mismatched rows are misses.

Enabled by pointing ``REPRO_AUTOMATON_DB`` at a sqlite file (the
serve CLI's ``--automaton-cache`` flag is shorthand, exactly like
``--answer-cache`` / ``REPRO_ANSWER_DB``), or programmatically via
:func:`set_automaton_store`.  When unset every operation is a cheap
no-op, so library users pay nothing.
"""

import hashlib
import json
import os
import sqlite3
import threading
from typing import Optional

from repro import __version__ as ENGINE_VERSION
from repro.core import stats

#: Bump on any change to the serialized automaton layout.
AUTOMATON_SCHEMA_VERSION = 1

#: Rows kept in the automata table before LRU eviction.
STORE_LIMIT = 4096

_lock = threading.Lock()
_path: Optional[str] = None
_explicit = False  # set_automaton_store() wins over the environment
_store = None
_store_path: Optional[str] = None  # path the open handle belongs to


def set_automaton_store(path: Optional[str]) -> Optional[str]:
    """Point the store at ``path`` (None disables); returns the old path.

    An explicit setting wins over ``REPRO_AUTOMATON_DB``; passing None
    both closes the store and re-enables the environment lookup.
    """
    global _path, _explicit
    with _lock:
        previous = _path
        _path = path
        _explicit = path is not None
        _close_locked()
    return previous


def _active_path() -> Optional[str]:
    if _explicit:
        return _path
    return os.environ.get("REPRO_AUTOMATON_DB") or None


def _close_locked() -> None:
    global _store, _store_path
    if _store is not None:
        try:
            _store.close()
        except Exception:  # pragma: no cover - best-effort close
            pass
    _store = None
    _store_path = None


def _handle():
    """The open DiskCache (lazily created), or None when disabled."""
    global _store, _store_path
    path = _active_path()
    if path is None:
        if _store is not None:
            _close_locked()
        return None
    if _store is None or _store_path != path:
        _close_locked()
        from repro.service.diskcache import DiskCache

        try:
            _store = DiskCache(path, max_entries=STORE_LIMIT, table="automata")
            _store_path = path
        except (sqlite3.Error, OSError):
            _store = None
            _store_path = None
            return None
    return _store


def disk_key(key: str) -> str:
    """The stable row key for a resident-cache key."""
    payload = "automaton:%d:%s:%s" % (
        AUTOMATON_SCHEMA_VERSION,
        ENGINE_VERSION,
        key,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def serialize_automaton(aut) -> dict:
    return {
        "schema": AUTOMATON_SCHEMA_VERSION,
        "engine": ENGINE_VERSION,
        "nbits": aut.nbits,
        "variables": list(aut.variables),
        "initial": aut.initial,
        "delta": [list(row) for row in aut.delta],
        "accept": list(aut.accept),
    }


def deserialize_automaton(doc: dict):
    """Rebuild an :class:`~repro.automaton.build.Automaton`, or None.

    Any malformed document (wrong schema, missing fields, inconsistent
    row shapes) is treated as a miss, never an error: the store is an
    accelerator, so damage must degrade to a rebuild.
    """
    from repro.automaton.build import Automaton

    try:
        if doc.get("schema") != AUTOMATON_SCHEMA_VERSION:
            return None
        if doc.get("engine") != ENGINE_VERSION:
            return None
        nbits = int(doc["nbits"])
        variables = tuple(str(v) for v in doc["variables"])
        initial = int(doc["initial"])
        delta = [[int(s) for s in row] for row in doc["delta"]]
        accept = [int(mask) for mask in doc["accept"]]
        n_states = len(delta)
        width = 1 << len(variables)
        if n_states == 0 or len(accept) != n_states:
            return None
        if not 0 <= initial < n_states:
            return None
        for row in delta:
            if len(row) != width:
                return None
            for s in row:
                if not 0 <= s < n_states:
                    return None
    except (KeyError, TypeError, ValueError):
        return None
    return Automaton(nbits, variables, initial, delta, accept)


def store_get(key: str):
    """The persisted automaton for a resident-cache key, or None."""
    with _lock:
        store = _handle()
        if store is None:
            return None
        try:
            doc = store.get(disk_key(key))
        except (sqlite3.Error, OSError):
            return None
    if doc is None:
        return None
    aut = deserialize_automaton(doc)
    if aut is not None and stats.ENABLED:
        stats.bump("automaton_disk_hits")
    return aut


def store_contains(key: str) -> bool:
    """Is the automaton persisted?  (No deserialization, no counters.)"""
    with _lock:
        store = _handle()
        if store is None:
            return False
        try:
            return disk_key(key) in store
        except (sqlite3.Error, OSError):
            return False


def store_put(key: str, aut) -> None:
    """Persist a built automaton; failures are swallowed (accelerator)."""
    with _lock:
        store = _handle()
        if store is None:
            return
        try:
            store.put(disk_key(key), serialize_automaton(aut))
        except (sqlite3.Error, OSError, ValueError):
            return
    if stats.ENABLED:
        stats.bump("automaton_disk_writes")


def automaton_store_info() -> dict:
    with _lock:
        store = _handle()
        if store is None:
            return {"enabled": False, "path": _active_path()}
        try:
            return {
                "enabled": True,
                "path": store.path,
                "entries": len(store),
            }
        except (sqlite3.Error, OSError):  # pragma: no cover - defensive
            return {"enabled": True, "path": store.path, "entries": -1}


__all__ = [
    "AUTOMATON_SCHEMA_VERSION",
    "STORE_LIMIT",
    "automaton_store_info",
    "deserialize_automaton",
    "disk_key",
    "serialize_automaton",
    "set_automaton_store",
    "store_contains",
    "store_get",
    "store_put",
]
