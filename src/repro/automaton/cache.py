"""Bounded resident cache of built automata.

Mirrors the serve daemon's resident evalc-artifact tier: automata are
expensive to build and cheap to query, so the build is keyed by a
*point-free* alpha-invariant description (canonical formula key plus
the canonical names of the counted variables in query order -- the
query point, box bounds and request kind are deliberately excluded)
and kept in a process-global LRU.  A stream of ``member`` /
``count_below`` requests against one formula then pays for one build
no matter how the variables are named or how many distinct points and
thresholds arrive.

Thread-safe: the serve daemon queries automata from its worker-thread
pool.  ``REPRO_AUTOMATON_CACHE`` sets the capacity (default 256).
"""

import os
import threading
from collections import OrderedDict


def _cap() -> int:
    return max(1, int(os.environ.get("REPRO_AUTOMATON_CACHE", "256")))


_lock = threading.Lock()
_cache: "OrderedDict[str, object]" = OrderedDict()
_hits = 0
_misses = 0


def cache_get(key: str):
    """The cached automaton for ``key``, or ``None`` (LRU-touching)."""
    global _hits, _misses
    with _lock:
        aut = _cache.get(key)
        if aut is None:
            _misses += 1
            return None
        _cache.move_to_end(key)
        _hits += 1
        return aut


def cache_peek(key: str) -> bool:
    """Is ``key`` resident?  No LRU touch, no counters."""
    with _lock:
        return key in _cache


def cache_put(key: str, aut) -> None:
    with _lock:
        _cache[key] = aut
        _cache.move_to_end(key)
        cap = _cap()
        while len(_cache) > cap:
            _cache.popitem(last=False)


def clear_automaton_cache() -> None:
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def automaton_cache_info() -> dict:
    with _lock:
        return {
            "entries": len(_cache),
            "capacity": _cap(),
            "hits": _hits,
            "misses": _misses,
        }
