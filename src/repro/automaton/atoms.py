"""Carry automata for single EQ / GEQ atoms over binary tracks.

One affine atom ``a . x + c  (= | >=)  0`` becomes a deterministic
automaton whose states are integer carries.  Reading letters LSB
first, after ``j`` letters the running total is
``T_j = c + a . X_j`` where ``X_j`` is the value of the bits read so
far (non-negative interpretation).  The state is:

* **GEQ**: ``s_j = floor(T_j / 2**j)`` -- everything the remaining
  (more significant) bits can still shift.  The exact invariant gives
  the exact transition ``s' = (s + a.beta) >> 1`` (arithmetic shift),
  and since the last letter beta contributes ``-a.beta * 2**(k-1)``
  instead of ``+``, the atom holds iff ``T_{k-1} >= a.beta * 2**(k-1)``,
  i.e. iff ``s >= a.beta`` at the transition that consumes the sign
  letter.
* **EQ**: ``s_j = T_j / 2**j`` exactly; an odd total is a dead end
  (``T_j`` not divisible by ``2**j`` can never reach the multiple of
  ``2**(k-1)`` that a zero value requires).  The atom holds iff
  ``s == a.beta`` on the sign letter.

Acceptance therefore lives on **transitions**: ``accepts(s, letter)``
answers "if this letter were the last (sign) letter, would the atom
hold?".  This keeps atom state spaces to ``O(log|c| + sum|a_i|)``
carries -- no per-letter history is stored in the state.

``dots[letter]`` pre-tabulates ``a . beta`` for every letter of the
clause's alphabet so the hot product loop is one add and one shift.
"""

from typing import List, Optional, Sequence

from repro.omega.constraints import Constraint


def _dot_table(coeffs: Sequence[int], nbits: int) -> List[int]:
    dots = [0] * (1 << nbits)
    for letter in range(1, 1 << nbits):
        low = letter & -letter
        dots[letter] = dots[letter ^ low] + coeffs[low.bit_length() - 1]
    return dots


class GeqAtom:
    """``a . x + c >= 0`` as a carry automaton (states are ints)."""

    __slots__ = ("dots", "initial")

    def __init__(self, coeffs: Sequence[int], const: int, nbits: int):
        self.dots = _dot_table(coeffs, nbits)
        self.initial = const

    def step(self, s: int, letter: int) -> int:
        return (s + self.dots[letter]) >> 1

    def accepts(self, s: int, letter: int) -> bool:
        return s >= self.dots[letter]


class EqAtom:
    """``a . x + c == 0`` as a carry automaton (``None`` = dead)."""

    __slots__ = ("dots", "initial")

    def __init__(self, coeffs: Sequence[int], const: int, nbits: int):
        self.dots = _dot_table(coeffs, nbits)
        self.initial = const

    def step(self, s: int, letter: int) -> Optional[int]:
        t = s + self.dots[letter]
        if t & 1:
            return None
        return t >> 1

    def accepts(self, s: int, letter: int) -> bool:
        return s == self.dots[letter]


def atom_for_constraint(c: Constraint, tracks: Sequence[str]):
    """Build the carry automaton for one constraint over ``tracks``."""
    col = {v: i for i, v in enumerate(tracks)}
    coeffs = [0] * len(tracks)
    for v, k in c.expr.coeffs:
        coeffs[col[v]] = k
    cls = EqAtom if c.is_eq() else GeqAtom
    return cls(coeffs, c.expr.const, len(tracks))


def bound_atom(track: int, nbits: int, lo=None, hi=None) -> List[GeqAtom]:
    """Interval atoms ``lo <= x_track <= hi`` over an existing alphabet.

    Either bound may be ``None`` (one-sided).  Used by the box/threshold
    query engine to intersect a built automaton with per-variable
    ranges without rebuilding it.
    """
    unit = [0] * nbits
    unit[track] = 1
    out = []
    if lo is not None:
        out.append(GeqAtom(unit, -lo, nbits))  # x - lo >= 0
    if hi is not None:
        out.append(GeqAtom([-u for u in unit], hi, nbits))  # hi - x >= 0
    return out
