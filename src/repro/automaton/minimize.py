"""Moore minimization for transition-accepting automata.

Two states are equivalent iff they accept the same letters (equal
``accept`` masks) and step to equivalent states on every letter.  The
fixed point of signature refinement starting from the accept-mask
partition computes exactly that relation; the quotient automaton is
rebuilt with blocks numbered in first-occurrence order over the input
states, so minimization is deterministic given the (BFS-deterministic)
construction order.

This is the Moore variant of Hopcroft's algorithm: O(n * |alphabet|)
per pass, at most n passes.  The alphabets here are tiny (2**tracks)
and products arrive already trimmed to reachable states, so the simple
variant wins on constant factors and obviousness.
"""

from typing import Dict, List, Tuple

from repro.automaton.build import Automaton


def minimize(aut: Automaton) -> Automaton:
    n = len(aut.delta)
    if n <= 1:
        return aut
    nletters = 1 << aut.nbits
    delta = aut.delta
    accept = aut.accept

    ids: List[int] = []
    first: Dict[int, int] = {}
    for q in range(n):
        mask = accept[q]
        block = first.get(mask)
        if block is None:
            block = first[mask] = len(first)
        ids.append(block)
    blocks = len(first)

    while True:
        sigs: Dict[Tuple, int] = {}
        new_ids = []
        for q in range(n):
            sig = (ids[q], tuple(ids[t] for t in delta[q]))
            block = sigs.get(sig)
            if block is None:
                block = sigs[sig] = len(sigs)
            new_ids.append(block)
        if len(sigs) == blocks:
            break
        ids = new_ids
        blocks = len(sigs)

    if blocks == n:
        return aut
    rep = [-1] * blocks
    for q in range(n):
        if rep[ids[q]] < 0:
            rep[ids[q]] = q
    new_delta = [[ids[t] for t in delta[rep[b]]] for b in range(blocks)]
    new_accept = [accept[rep[b]] for b in range(blocks)]
    return Automaton(aut.nbits, aut.variables, ids[aut.initial],
                     new_delta, new_accept)
