"""LSBF two's-complement binary encoding of integer tuples.

The automaton backend reads integer tuples as words over the alphabet
``{0,1}^d``: letter ``j`` packs bit ``j`` of every track (variable)
into one integer, track ``i`` at bit position ``i``.  Bits come
least-significant-first and the **last** letter is the sign letter: a
word ``b_0 .. b_{k-1}`` of length ``k`` decodes track ``i`` as

    x_i  =  sum_{j < k-1} b_{j,i} * 2^j  -  b_{k-1,i} * 2^{k-1}

(ordinary two's complement read LSB first).  Every tuple has one
*minimal* encoding (length :func:`min_width` of its widest component)
plus infinitely many sign extensions -- repeating the last letter
leaves the decoded value unchanged.  A word is minimal iff it has
length 1 or its last two letters differ.

Python integers are already infinite two's complement (``>>`` is an
arithmetic shift, ``& 1`` reads the low bit of the complement form for
negatives), so encoding is plain shifting and masking.
"""

from typing import List, Sequence


def min_width(value: int) -> int:
    """Length of the shortest encoding of ``value`` (always >= 1).

    The smallest ``k`` with ``-2**(k-1) <= value < 2**(k-1)``.
    """
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def encode_point(values: Sequence[int], width: int) -> List[int]:
    """Encode a tuple as ``width`` letters (bit-vectors packed as ints).

    ``width`` must be at least ``max(min_width(v) for v in values)``
    for the decoding to round-trip; extra width sign-extends.
    """
    letters = []
    for j in range(width):
        letter = 0
        for i, v in enumerate(values):
            letter |= ((v >> j) & 1) << i
        letters.append(letter)
    return letters


def decode_word(letters: Sequence[int], dims: int) -> List[int]:
    """Inverse of :func:`encode_point` (used by tests)."""
    k = len(letters)
    if k == 0:
        raise ValueError("words have length >= 1")
    out = []
    for i in range(dims):
        v = 0
        for j in range(k - 1):
            v += ((letters[j] >> i) & 1) << j
        v -= ((letters[k - 1] >> i) & 1) << (k - 1)
        out.append(v)
    return out
