"""Automaton construction: product, projection, saturation, union.

The pipeline for one clause (conjunct):

1. ``normalize()`` the conjunct (gcd-tighten, trivial emptiness).
2. Build one carry automaton per constraint (:mod:`.atoms`) over the
   clause's tracks: the counted variables in their given order on the
   low letter bits, wildcard (quantified) variables on the high bits.
3. **Product** with on-the-fly reachability: only carry combinations
   reachable from the initial carries are materialized; a transition
   accepts iff every atom's does.
4. **Projection** of the wildcard bits (existential quantification):
   subset construction over the restricted alphabet, a transition
   accepting iff some member state accepts under some wildcard
   extension of the letter.
5. **Saturation**: projection breaks sign-extension closure (a short
   encoding of x may only have long witnesses for the wildcards), so
   re-close the language downward: a transition ``(q, letter)``
   accepts iff some ``delta_letter``-chain from ``q`` has an accepting
   ``letter`` transition.  Computed per letter by one reverse BFS over
   the functional graph ``q -> delta[q][letter]``.

Clauses are then folded together by an accepting-transition **union**
product (no disjointification needed -- automaton union is exact on
overlapping clauses) with Moore minimization (:mod:`.minimize`)
between folds to keep intermediates small.

All constructions share one state budget; exceeding it raises
:class:`UnsupportedFormula`, which the backend router treats as a
routing signal (fall back to the recursion), mirroring
:class:`repro.genfunc.UnsupportedFormula`.
"""

from typing import List, Optional, Sequence, Tuple

from repro.automaton.atoms import atom_for_constraint
from repro.omega.problem import Conjunct

#: Cap on letter bits per clause (counted variables + wildcards); the
#: alphabet is 2**tracks, so products past this are hopeless anyway.
MAX_TRACKS = 8

#: Cap on states materialized by any single product / subset
#: construction.  Past it the formula is routed back to the recursion.
STATE_BUDGET = 20000


class UnsupportedFormula(Exception):
    """The automaton backend cannot answer this query exactly.

    A *routing* signal, not an error: the backend router catches it
    and falls back to the recursion (``automaton_fallbacks`` counter).
    """


class Automaton:
    """A deterministic automaton with *accepting transitions*.

    ``delta[q][letter]`` is the successor state; bit ``letter`` of
    ``accept[q]`` says whether reading ``letter`` from ``q`` as the
    final (sign) letter accepts.  Words have length >= 1; the language
    is closed under sign extension and downward to each tuple's
    minimal encoding, so it is exactly "all encodings of the solution
    set" -- which is what makes membership at any width >= minimal and
    minimal-word counting well defined.
    """

    __slots__ = ("nbits", "variables", "initial", "delta", "accept",
                 "_depth_counts")

    def __init__(self, nbits: int, variables: Tuple[str, ...],
                 initial: int, delta: List[List[int]], accept: List[int]):
        self.nbits = nbits
        self.variables = tuple(variables)
        self.initial = initial
        self.delta = delta
        self.accept = accept
        self._depth_counts = None  # memoized state x depth count tables

    @property
    def n_states(self) -> int:
        return len(self.delta)


class _AutomatonComponent:
    """Adapter exposing a built Automaton to the generic product."""

    __slots__ = ("initial", "_delta", "_accept")

    def __init__(self, aut: Automaton):
        self.initial = aut.initial
        self._delta = aut.delta
        self._accept = aut.accept

    def step(self, s: int, letter: int) -> int:
        return self._delta[s][letter]

    def accepts(self, s: int, letter: int) -> bool:
        return bool((self._accept[s] >> letter) & 1)


def component(aut: Automaton) -> _AutomatonComponent:
    return _AutomatonComponent(aut)


_DEAD = "dead"  # interning key for the absorbing reject state


def product(components, nbits: int, variables: Sequence[str],
            mode: str = "and", budget: int = STATE_BUDGET) -> Automaton:
    """Reachable product of carry automata / built automata.

    ``mode="and"`` intersects (transition accepts iff all components
    accept), ``mode="or"`` unions.  Components may step to ``None``
    (dead): under "and" the product transitions to one absorbing
    reject state; under "or" dead components ride along as ``None``
    until all are dead.
    """
    conj = mode == "and"
    nletters = 1 << nbits
    init = tuple(c.initial for c in components)
    index = {init: 0}
    states = [init]
    delta: List[List[int]] = []
    accept: List[int] = []
    i = 0
    while i < len(states):
        state = states[i]
        i += 1
        if state is _DEAD:
            delta.append([index[_DEAD]] * nletters)
            accept.append(0)
            continue
        row = []
        mask = 0
        for letter in range(nletters):
            nxts = []
            alive_all = True
            alive_any = False
            ok = conj
            for comp, s in zip(components, state):
                if s is None:
                    nxts.append(None)
                    alive_all = False
                    continue
                nxt = comp.step(s, letter)
                acc = comp.accepts(s, letter)
                nxts.append(nxt)
                if nxt is None:
                    alive_all = False
                else:
                    alive_any = True
                if conj:
                    ok = ok and acc
                else:
                    ok = ok or acc
            if ok:
                mask |= 1 << letter
            if (conj and not alive_all) or not (alive_any or not components):
                target = _DEAD
            else:
                target = tuple(nxts)
            at = index.get(target)
            if at is None:
                at = index[target] = len(states)
                states.append(target)
                if len(states) > budget:
                    raise UnsupportedFormula(
                        "state budget exceeded (%d states)" % len(states)
                    )
            row.append(at)
        delta.append(row)
        accept.append(mask)
    return Automaton(nbits, tuple(variables), 0, delta, accept)


def project(aut: Automaton, keep: int, variables: Sequence[str],
            budget: int = STATE_BUDGET) -> Automaton:
    """Existentially project away all letter bits above ``keep``.

    Subset construction: the result reads only the low ``keep`` bits;
    a transition accepts iff some member state accepts under some
    assignment of the dropped bits on that letter.
    """
    drop = aut.nbits - keep
    exts = [w << keep for w in range(1 << drop)]
    nletters = 1 << keep
    full_delta = aut.delta
    full_accept = aut.accept
    init = frozenset([aut.initial])
    index = {init: 0}
    states = [init]
    delta: List[List[int]] = []
    accept: List[int] = []
    i = 0
    while i < len(states):
        subset = states[i]
        i += 1
        row = []
        mask = 0
        for letter in range(nletters):
            nxt = set()
            acc = False
            for ext in exts:
                full = letter | ext
                for q in subset:
                    nxt.add(full_delta[q][full])
                    if not acc and (full_accept[q] >> full) & 1:
                        acc = True
            if acc:
                mask |= 1 << letter
            target = frozenset(nxt)
            at = index.get(target)
            if at is None:
                at = index[target] = len(states)
                states.append(target)
                if len(states) > budget:
                    raise UnsupportedFormula(
                        "projection subset budget exceeded (%d states)"
                        % len(states)
                    )
            row.append(at)
        delta.append(row)
        accept.append(mask)
    return Automaton(keep, tuple(variables), 0, delta, accept)


def saturate(aut: Automaton) -> Automaton:
    """Close acceptance under sign extension of the last letter.

    Marks ``(q, letter)`` accepting iff some iterate
    ``delta_letter^m(q)`` (m >= 0) already accepts ``letter``: the word
    reaching ``q`` denotes the same tuple as its ``letter``-extensions,
    so if any extension is in the language the short encoding must be
    too.  One reverse BFS per letter over the functional graph.
    """
    n = len(aut.delta)
    nletters = 1 << aut.nbits
    new_accept = list(aut.accept)
    for letter in range(nletters):
        rev: List[List[int]] = [[] for _ in range(n)]
        for q in range(n):
            rev[aut.delta[q][letter]].append(q)
        stack = [q for q in range(n) if (aut.accept[q] >> letter) & 1]
        seen = [False] * n
        for q in stack:
            seen[q] = True
        while stack:
            q = stack.pop()
            for p in rev[q]:
                if not seen[p]:
                    seen[p] = True
                    stack.append(p)
        bit = 1 << letter
        for q in range(n):
            if seen[q]:
                new_accept[q] |= bit
    return Automaton(aut.nbits, aut.variables, aut.initial,
                     aut.delta, new_accept)


def empty_automaton(variables: Sequence[str]) -> Automaton:
    """The empty language over ``variables`` (one absorbing state)."""
    nletters = 1 << len(variables)
    return Automaton(len(variables), tuple(variables), 0,
                     [[0] * nletters], [0])


def clause_automaton(conj: Conjunct,
                     over: Sequence[str]) -> Optional[Automaton]:
    """Automaton for one conjunct's solution set over ``over``.

    Returns ``None`` for a trivially empty clause.  Raises
    :class:`UnsupportedFormula` on free symbolic constants or budget
    blowups.
    """
    from repro.automaton.minimize import minimize

    norm = conj.normalize()
    if norm is None:
        return None
    conj = norm
    wilds = sorted(conj.wildcards)
    tracks = list(over) + wilds
    used = set()
    for c in conj.constraints:
        used.update(c.variables())
    stray = sorted(v for v in used if v not in tracks)
    if stray:
        raise UnsupportedFormula(
            "free symbolic constants: %s" % ", ".join(stray)
        )
    if len(tracks) > MAX_TRACKS:
        raise UnsupportedFormula(
            "too many binary tracks (%d > %d)" % (len(tracks), MAX_TRACKS)
        )
    atoms = [atom_for_constraint(c, tracks) for c in conj.constraints]
    aut = product(atoms, len(tracks), tracks, "and")
    if wilds:
        aut = minimize(aut)
        aut = project(aut, len(over), over)
        aut = saturate(aut)
    return minimize(aut)


def build_automaton(formula, over: Sequence[str]) -> Automaton:
    """Automaton for a whole formula (DNF union of clause automata).

    Accepts everything :func:`repro.core.general.count` accepts as a
    formula.  Union needs no disjointification -- overlapping clauses
    are merged exactly by the "or" product.
    """
    from repro.automaton.minimize import minimize
    from repro.core.general import _clauses

    over = list(dict.fromkeys(over))
    autos = []
    for conj in _clauses(formula, disjoint=False):
        aut = clause_automaton(conj, over)
        if aut is not None:
            autos.append(aut)
    if not autos:
        return empty_automaton(over)
    result = autos[0]
    for other in autos[1:]:
        result = minimize(product(
            [component(result), component(other)],
            len(over), over, "or",
        ))
    return result
