"""Binary-automaton counting and membership backend.

A third exact engine beside the splinter recursion and
:mod:`repro.genfunc`: each clause's EQ/GEQ atoms become carry automata
over LSBF two's-complement binary tracks, products are built with
on-the-fly reachability, wildcards (strides, quantifiers) are
existentially projected by subset construction, and clauses are
unioned and Moore-minimized.  The payoff is *amortization*: one build
per formula, then streams of O(bits) membership queries and
box/threshold counts by path DP -- the shape behind the ``member``
and ``count_below`` service kinds.

Selected through the backend router
(``repro.core.set_backend("automaton")`` / ``REPRO_BACKEND=automaton``
/ ``count(..., backend="automaton")``); queries outside the supported
fragment raise :class:`UnsupportedFormula` and the router falls back
to the recursion.

Supported fragment: exact strategies, constant summands, no free
symbolic constants, and at most :data:`~repro.automaton.build.MAX_TRACKS`
binary tracks (counted variables + wildcards) per clause within the
state budget.  Unlike genfunc there is no dimension-2 limit -- cost
scales with carry ranges (log of coefficient/constant magnitude), not
with geometry.
"""

from repro.automaton.build import (
    MAX_TRACKS,
    STATE_BUDGET,
    Automaton,
    UnsupportedFormula,
    build_automaton,
    clause_automaton,
)
from repro.automaton.cache import (
    automaton_cache_info,
    clear_automaton_cache,
)
from repro.automaton.count import (
    automaton_count,
    automaton_count_value,
    automaton_for,
    automaton_key,
    automaton_sum,
    has_resident_automaton,
)
from repro.automaton.store import (
    automaton_store_info,
    set_automaton_store,
)
from repro.automaton.encode import decode_word, encode_point, min_width
from repro.automaton.minimize import minimize
from repro.automaton.query import (
    count_below,
    count_box,
    count_exact,
    count_width,
    member,
    member_env,
)

__all__ = [
    "MAX_TRACKS",
    "STATE_BUDGET",
    "Automaton",
    "UnsupportedFormula",
    "automaton_cache_info",
    "automaton_count",
    "automaton_store_info",
    "set_automaton_store",
    "automaton_count_value",
    "automaton_for",
    "automaton_key",
    "automaton_sum",
    "build_automaton",
    "clause_automaton",
    "clear_automaton_cache",
    "count_below",
    "count_box",
    "count_exact",
    "count_width",
    "decode_word",
    "encode_point",
    "has_resident_automaton",
    "member",
    "member_env",
    "min_width",
    "minimize",
]
