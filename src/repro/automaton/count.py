"""Backend adapters: the automaton engine behind the router.

``automaton_count_value`` / ``automaton_sum`` / ``automaton_count``
mirror the :mod:`repro.genfunc` entry points so the router in
:mod:`repro.core.general` can treat the two accelerated backends
uniformly: anything outside the fragment raises
:class:`UnsupportedFormula` (strategy not exact, free symbolic
constants, non-constant summand, state-budget blowups) and the router
falls back to the recursion; a genuinely infinite set raises
:class:`~repro.core.convex.UnboundedSumError` exactly like the other
two backends.

``automaton_for`` is the build entry every query path shares: it
consults the resident LRU (:mod:`repro.automaton.cache`) under the
point-free canonical key, so counting, membership streams and
threshold queries against one formula all amortize a single build.
"""

from typing import Optional, Sequence

from repro.automaton.build import UnsupportedFormula, build_automaton
from repro.automaton.cache import cache_get, cache_peek, cache_put
from repro.automaton.query import count_exact
from repro.core import stats
from repro.core.options import DEFAULT_OPTIONS, SumOptions
from repro.core.result import SymbolicSum, Term
from repro.omega.problem import Conjunct
from repro.presburger.ast import Formula
from repro.qpoly import Polynomial


def _parsed(formula):
    if isinstance(formula, str):
        from repro.presburger.parser import parse

        return parse(formula)
    return formula


def automaton_key(formula, over: Sequence[str]) -> Optional[str]:
    """Point-free alpha-invariant cache key, or ``None`` if unkeyable.

    Canonical formula key plus the canonical names of ``over`` in
    *query order* (track order changes the automaton's letter layout,
    so it is part of the identity; variable spellings are not).
    """
    from repro.core.canon import canonical_formula_key

    formula = _parsed(formula)
    if not isinstance(formula, Formula):
        return None
    key, names = canonical_formula_key(formula, over, None)
    return "%s||%s" % (key, ",".join(names.get(v, v) for v in over))


def automaton_for(formula, over: Sequence[str],
                  options: SumOptions = DEFAULT_OPTIONS,
                  cache: bool = True):
    """Build (or fetch resident) the automaton for a formula.

    Raises :class:`UnsupportedFormula` outside the fragment.
    """
    if not options.strategy.is_exact:
        raise UnsupportedFormula(
            "strategy %r needs the recursion's bound machinery"
            % options.strategy.value
        )
    formula = _parsed(formula)
    key = automaton_key(formula, over) if cache else None
    if key is not None:
        aut = cache_get(key)
        if aut is not None:
            if stats.ENABLED:
                stats.bump("automaton_cache_hits")
            return aut
        # Second chance: the persistent store (REPRO_AUTOMATON_DB).
        # A daemon restart keeps its working set -- deserializing a
        # minimized DFA is far cheaper than product + projection +
        # minimization, and the hit re-residents it for next time.
        from repro.automaton.store import store_get

        aut = store_get(key)
        if aut is not None:
            cache_put(key, aut)
            return aut
    aut = build_automaton(formula, over)
    if stats.ENABLED:
        stats.bump("automaton_builds")
        stats.bump("automaton_states", aut.n_states)
    if key is not None:
        cache_put(key, aut)
        from repro.automaton.store import store_put

        store_put(key, aut)
    return aut


def has_resident_automaton(formula, over: Sequence[str]) -> bool:
    """Is this formula's automaton already built and available cheaply?

    The serve daemon's fast path: when true, ``member`` /
    ``count_below`` requests can be answered on a worker thread
    without admission control or a fork.  "Available" covers the
    in-process resident LRU and the persistent automaton store
    (:mod:`repro.automaton.store`) -- a disk-resident DFA costs one
    sqlite read + deserialization, still orders of magnitude below a
    rebuild, and the load re-residents it.
    """
    key = automaton_key(formula, over)
    if key is None:
        return False
    if cache_peek(key):
        return True
    from repro.automaton.store import store_contains

    return store_contains(key)


def automaton_count_value(
    formula, over: Sequence[str], options: SumOptions = DEFAULT_OPTIONS
) -> int:
    """Exact integer count of a (symbol-free) formula's solutions.

    Raises :class:`UnsupportedFormula` outside the fragment and
    :class:`~repro.core.convex.UnboundedSumError` on infinite sets.
    """
    return count_exact(automaton_for(formula, over, options))


def automaton_sum(
    formula,
    over: Sequence[str],
    z: Polynomial,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """The automaton backend's answer to ``sum_poly``.

    Only constant summands are supported (``sum z = z * count``); the
    result is a constant :class:`SymbolicSum` with the same shape the
    genfunc backend produces, so the three backends are
    interchangeable inside the shared fragment.
    """
    if z.variables():
        raise UnsupportedFormula("non-constant summand")
    total = automaton_count_value(formula, over, options)
    value = Polynomial.constant(z.constant_value() * total)
    return SymbolicSum([Term(Conjunct.true(), value)], "exact")


def automaton_count(
    formula, over: Sequence[str], options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """The automaton backend's answer to ``count`` (a constant sum)."""
    return automaton_sum(formula, over, Polynomial.one, options)
