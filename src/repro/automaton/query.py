"""Query engines over a built automaton.

* :func:`member` -- O(bits) per query: encode the point at its minimal
  width (the language contains *every* encoding of every solution, so
  any sufficient width gives the same answer) and check whether the
  final transition accepts.
* :func:`count_exact` -- exact solution count via the minimal-word
  bijection: each tuple has exactly one minimal encoding (length 1, or
  last two letters differ), so the count is the number of accepted
  minimal words.  Those are counted by a path DP on the graph of
  ``(state, last letter)`` nodes; an accepting cycle reachable from
  the start and co-reachable to a counted final step means infinitely
  many solutions (:class:`~repro.core.convex.UnboundedSumError`),
  otherwise the graph restricted to useful nodes is acyclic and a
  topological DP sums path multiplicities.
* :func:`count_width` -- solutions with every variable in
  ``[-2**(k-1), 2**(k-1))``: accepted words of length exactly ``k``,
  by a state x depth DP whose tables are memoized on the automaton so
  a sweep over k re-uses every prefix.
* :func:`count_box` / :func:`count_below` -- general box and
  threshold counts: intersect the (cached, already built) automaton
  with tiny per-variable interval atoms on the fly and run
  :func:`count_exact` on the product.  The expensive formula automaton
  is built once; each query adds only interval carries.
"""

from typing import Dict, List, Optional, Sequence, Union

from repro.automaton.atoms import bound_atom
from repro.automaton.build import (
    Automaton,
    component,
    product,
)
from repro.automaton.encode import encode_point, min_width
from repro.core.convex import UnboundedSumError

Bound = Union[int, Sequence[int]]


def member(aut: Automaton, values: Sequence[int]) -> bool:
    """Is the tuple (aligned with ``aut.variables``) in the set?"""
    if len(values) != aut.nbits:
        raise ValueError(
            "expected %d values for %s, got %d"
            % (aut.nbits, aut.variables, len(values))
        )
    width = max([1] + [min_width(v) for v in values])
    letters = encode_point(values, width)
    q = aut.initial
    for letter in letters[:-1]:
        q = aut.delta[q][letter]
    return bool((aut.accept[q] >> letters[-1]) & 1)


def member_env(aut: Automaton, env: Dict[str, int]) -> bool:
    """:func:`member` with values given by variable name."""
    return member(aut, [env[v] for v in aut.variables])


_START = -1


def count_exact(aut: Automaton) -> int:
    """Exact number of solutions; raises on infinite sets.

    Nodes are ``q * nletters + letter`` ("at state q, just read
    letter") plus a virtual start.  A counted final step from a node
    is a letter that differs from the node's last letter (minimality)
    and accepts; from the start, any accepting letter (length-1 words
    are all minimal).
    """
    nletters = 1 << aut.nbits
    delta = aut.delta
    accept = aut.accept

    def succs(node: int) -> List[int]:
        if node == _START:
            q = aut.initial
            return [delta[q][b] * nletters + b for b in range(nletters)]
        q, a = divmod(node, nletters)
        return [delta[q][b] * nletters + b for b in range(nletters)]

    def out_acc(node: int) -> int:
        if node == _START:
            return bin(accept[aut.initial]).count("1")
        q, a = divmod(node, nletters)
        return bin(accept[q] & ~(1 << a)).count("1")

    reach = {_START}
    stack = [_START]
    while stack:
        node = stack.pop()
        for nxt in succs(node):
            if nxt not in reach:
                reach.add(nxt)
                stack.append(nxt)

    targets = [node for node in reach if out_acc(node)]
    if not targets:
        return 0

    rev: Dict[int, List[int]] = {}
    for node in reach:
        for nxt in succs(node):
            rev.setdefault(nxt, []).append(node)
    useful = set(targets)
    stack = list(targets)
    while stack:
        node = stack.pop()
        for prev in rev.get(node, ()):
            if prev not in useful:
                useful.add(prev)
                stack.append(prev)
    if _START not in useful:
        return 0

    indeg = {node: 0 for node in useful}
    for node in useful:
        for nxt in succs(node):
            if nxt in useful:
                indeg[nxt] += 1
    order = [node for node, d in indeg.items() if d == 0]
    seen = 0
    paths = {node: 0 for node in useful}
    paths[_START] = 1
    i = 0
    while i < len(order):
        node = order[i]
        i += 1
        seen += 1
        for nxt in succs(node):
            if nxt in useful:
                paths[nxt] += paths[node]
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
    if seen != len(useful):
        raise UnboundedSumError(
            "automaton language is infinite (accepting cycle)"
        )
    return sum(paths[node] * out_acc(node) for node in useful)


def count_width(aut: Automaton, k: int) -> int:
    """Solutions with every variable in ``[-2**(k-1), 2**(k-1))``.

    Counts accepted words of length exactly ``k``; the per-depth state
    vectors are memoized on the automaton, so sweeping k costs one new
    matrix-vector step per increment.
    """
    if k < 1:
        return 0
    tables = aut._depth_counts
    if tables is None:
        vec = [0] * len(aut.delta)
        vec[aut.initial] = 1
        tables = aut._depth_counts = [vec]
    while len(tables) < k:
        prev = tables[-1]
        nxt = [0] * len(aut.delta)
        for q, ways in enumerate(prev):
            if ways:
                for target in aut.delta[q]:
                    nxt[target] += ways
        tables.append(nxt)
    vec = tables[k - 1]
    return sum(
        ways * bin(aut.accept[q]).count("1")
        for q, ways in enumerate(vec)
        if ways
    )


def _per_var(bound: Optional[Bound], dims: int) -> List[Optional[int]]:
    if bound is None or isinstance(bound, int):
        return [bound] * dims
    out = list(bound)
    if len(out) != dims:
        raise ValueError("expected %d bounds, got %d" % (dims, len(out)))
    return out


def count_box(aut: Automaton, lo: Optional[Bound],
              hi: Optional[Bound]) -> int:
    """Solutions with ``lo[i] <= x_i <= hi[i]`` (inclusive; scalars
    broadcast; ``None`` leaves that side open)."""
    dims = aut.nbits
    los = _per_var(lo, dims)
    his = _per_var(hi, dims)
    comps = [component(aut)]
    for i in range(dims):
        comps.extend(bound_atom(i, dims, los[i], his[i]))
    if len(comps) == 1:
        return count_exact(aut)
    boxed = product(comps, dims, aut.variables, "and")
    return count_exact(boxed)


def count_below(aut: Automaton, bound: int, lo: int = 0) -> int:
    """Solutions with every variable in ``[lo, bound)`` -- the
    service's threshold-count query."""
    return count_box(aut, lo, bound - 1)
