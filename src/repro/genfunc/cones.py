"""Two-dimensional rational polyhedra and unimodular cone decomposition.

The residual system a clause leaves after integer equality elimination
lives in at most two ``t`` coordinates (higher dimensions are outside
the supported fragment and fall back to the recursion).  This module
supplies the geometry the Brion-style counting needs:

* vertex enumeration and a strictly-convex hull of the feasible set of
  ``a . t + c >= 0`` rows, over exact :class:`~fractions.Fraction`
  coordinates;
* a recession-cone test that either certifies boundedness or exhibits
  an unbounded integer direction;
* tangent cones at the hull vertices and their Hirzebruch-Jung
  (continued-fraction) partition into **unimodular** subcones, with the
  interior rays shared by adjacent subcones reported for
  inclusion-exclusion.

Every determinant here is an exact integer or Fraction computation --
there is no floating point anywhere in the backend.
"""

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.intarith import ext_gcd

#: An inequality row ``a1*t1 + a2*t2 + c >= 0``.
Row = Tuple[int, int, int]
#: A rational point.
Point = Tuple[Fraction, Fraction]
#: A primitive integer direction.
Vec = Tuple[int, int]


def det2(u: Sequence, v: Sequence):
    """The 2x2 determinant ``| u v |`` (columns)."""
    return u[0] * v[1] - u[1] * v[0]


def row_satisfied(row: Row, point: Point) -> bool:
    a1, a2, c = row
    return a1 * point[0] + a2 * point[1] + c >= 0


def recession_direction(rows: Sequence[Row]) -> Optional[Vec]:
    """A nonzero integer direction the feasible set recedes along.

    The recession cone is ``K = {u : a . u >= 0 for every row}``.  In
    two dimensions, if ``K`` is nontrivial it contains one of the
    boundary directions of its defining halfplanes -- every extreme ray
    of ``K`` is the boundary of some ``a . u >= 0``, i.e. a rotation of
    a row normal by +-90 degrees -- so checking those finitely many
    candidates decides nontriviality exactly.  Returns a receding
    direction, or None when the recession cone is ``{0}`` (the
    rational relaxation is bounded).
    """
    if not rows:
        return (1, 0)
    for a1, a2, _ in rows:
        for cand in ((-a2, a1), (a2, -a1)):
            if cand == (0, 0):
                continue
            if all(b1 * cand[0] + b2 * cand[1] >= 0 for b1, b2, _ in rows):
                return cand
    return None


def feasible_vertices(rows: Sequence[Row]) -> List[Point]:
    """All basic feasible points of the row system (may contain
    non-extreme points on degenerate inputs; the hull prunes them)."""
    pts = set()
    n = len(rows)
    for i in range(n):
        a1, a2, c = rows[i]
        for j in range(i + 1, n):
            b1, b2, d = rows[j]
            det = a1 * b2 - a2 * b1
            if det == 0:
                continue
            x = Fraction(-c * b2 + a2 * d, det)
            y = Fraction(-a1 * d + c * b1, det)
            if all(r1 * x + r2 * y + rc >= 0 for r1, r2, rc in rows):
                pts.add((x, y))
    return sorted(pts)


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Extreme points of ``points`` in counterclockwise order.

    Strictly convex (collinear interior points are dropped); an
    all-collinear input degenerates to its two endpoints, a single
    repeated point to one.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: List[Point] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return [pts[0], pts[-1]]
    return hull


def tangent_cone_generators(
    hull: Sequence[Point], index: int
) -> Tuple[Vec, Vec]:
    """Primitive generators of the tangent cone at hull vertex ``index``.

    For a CCW strictly-convex hull the pair (direction to the next
    vertex, direction to the previous vertex) spans the tangent cone
    with positive determinant.
    """
    from repro.genfunc.lattice import primitive_direction

    v = hull[index]
    nxt = hull[(index + 1) % len(hull)]
    prv = hull[(index - 1) % len(hull)]
    g1 = primitive_direction(nxt[0] - v[0], nxt[1] - v[1])
    g2 = primitive_direction(prv[0] - v[0], prv[1] - v[1])
    if det2(g1, g2) <= 0:
        raise ValueError("tangent cone at %r is not pointed CCW" % (v,))
    return g1, g2


def unimodular_partition(
    g1: Vec, g2: Vec
) -> Tuple[List[Tuple[Vec, Vec]], List[Vec]]:
    """Hirzebruch-Jung partition of ``cone(g1, g2)`` into unimodular cones.

    ``g1``/``g2`` must be primitive with ``det(g1, g2) > 0``.  Returns
    ``(cones, rays)``: generator pairs each with determinant exactly 1
    whose union is the input cone, plus the interior rays shared by
    consecutive subcones -- counted once each, for the
    inclusion-exclusion ``|cone ∩ Z^2| = Σ|subcone| − Σ|shared ray|``.

    Each step inserts the lattice vector ``w`` closest to the ray of
    ``a`` inside the cone (``det(a, w) = 1``, ``det(w, b)`` minimal
    positive); the index ``det(w, b)`` strictly decreases, exactly the
    continued-fraction recursion of Hirzebruch-Jung resolution.
    """
    d = det2(g1, g2)
    if d <= 0:
        raise ValueError("need det(g1, g2) > 0, got %d" % d)
    cones: List[Tuple[Vec, Vec]] = []
    rays: List[Vec] = []
    a, b = g1, g2
    while det2(a, b) > 1:
        d = det2(a, b)
        g, s, t = ext_gcd(a[0], a[1])
        if g != 1:
            raise ValueError("generator %r is not primitive" % (a,))
        w0 = (-t, s)  # det(a, w0) = a[0]*s + a[1]*t = 1
        r = det2(w0, b) % d  # det(w0 + k*a, b) = det(w0, b) + k*d
        if r == 0:
            # would make b an integer multiple of a lattice vector
            raise ValueError("generator %r is not primitive" % (b,))
        k = (r - det2(w0, b)) // d
        w = (w0[0] + k * a[0], w0[1] + k * a[1])
        cones.append((a, w))
        rays.append(w)
        a = w
    cones.append((a, b))
    return cones, rays
