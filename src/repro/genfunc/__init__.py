"""Generating-function counting backend (Barvinok / Polyhedral Omega style).

A second exact counting engine: each clause's solution set becomes a
signed sum of unimodular simplicial cones whose rational generating
functions are specialized at ``z = 1`` to the exact count -- no
splinter recursion, so performance is independent of coefficient
magnitude.  Selected through the backend router
(``repro.core.set_backend("genfunc")`` / ``REPRO_BACKEND=genfunc`` /
``count(..., backend="genfunc")``); queries outside the supported
fragment raise :class:`UnsupportedFormula` and the router falls back
to the recursion.

Supported fragment: exact strategies, constant summands, no free
symbolic constants, and residual dimension at most 2 after integer
equality elimination (the ``t``-space left once EQs and promotable
stride wildcards are folded away -- which covers every corpus and
fuzzer query over ``i``/``j`` boxes regardless of how many equalities,
strides and wildcards ride along).
"""

from repro.genfunc.count import (
    MAX_DIMENSION,
    UnsupportedFormula,
    clause_count,
    genfunc_count,
    genfunc_count_value,
    genfunc_sum,
)

__all__ = [
    "MAX_DIMENSION",
    "UnsupportedFormula",
    "clause_count",
    "genfunc_count",
    "genfunc_count_value",
    "genfunc_sum",
]
