"""Generating-function specialization: from signed cones to a number.

By Brion's theorem the generating function of a lattice polytope ``P``
is the sum over its vertices of the tangent-cone generating functions;
after the Hirzebruch-Jung partition every cone is **unimodular**, so
each piece is a closed form

    ``z^a / ((1 - z^{g1}) (1 - z^{g2}))``

with ``a`` the first lattice point of the cone's fundamental domain
and ``g1, g2`` its primitive generators (one-generator terms for the
shared interior rays being subtracted, zero-generator terms for bare
lattice points).  The count ``|P ∩ Z^2|`` is the evaluation at
``z = 1`` -- a pole of every term individually, removable for the sum.

The standard specialization substitutes ``z = e^{τλ}`` for a generic
integer direction ``λ`` (no generator orthogonal to it) and extracts
the coefficient of ``τ^0`` of the Laurent expansion.  With ``m``
generators, ``s = <λ, a>`` and ``c_j = <λ, g_j>``:

    ``z^a / Π_j (1 - z^{g_j})  ->  e^{sτ} Π_j (-1/c_j) · h(c_j τ) / τ^m``

where ``h(u) = u / (e^u - 1)`` is the Todd-style series, so the
``τ^0`` coefficient of the term is ``[τ^m] e^{sτ} Π_j (-1/c_j) h(c_j τ)``
-- a finite product of truncated power series over exact Fractions.
``h`` expands with Bernoulli numbers in the ``B1 = -1/2`` convention;
:func:`repro.intarith.bernoulli` uses ``B1 = +1/2``, so the linear
coefficient is negated here.
"""

import math
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.intarith import bernoulli
from repro.genfunc.cones import Point, Vec, det2
from repro.genfunc.lattice import line_lattice_point, primitive_vector

#: One signed unimodular term: (sign, lattice apex, generator list).
#: Zero generators = a single lattice point; one = a lattice ray;
#: two = a unimodular cone.
ConeTerm = Tuple[int, Tuple[int, int], Tuple[Vec, ...]]


def cone_lattice_apex(vertex: Point, g1: Vec, g2: Vec) -> Tuple[int, int]:
    """The lattice point ``a`` with
    ``cone(vertex; g1, g2) ∩ Z^2 = {a + k1 g1 + k2 g2 : k >= 0}``.

    Valid only for unimodular generators (``|det| = 1``): the half-open
    fundamental parallelepiped then holds exactly one lattice point.
    In the generator basis the cone is ``{vertex' + k : k >= 0}``, and
    lattice points are the integer translates of ``-G^{-1} vertex``;
    the componentwise-minimal one shifts each coordinate up by the
    fractional part.
    """
    d = det2(g1, g2)
    if d not in (1, -1):
        raise ValueError("apex formula needs a unimodular cone")
    t1 = Fraction(g2[1] * vertex[0] - g2[0] * vertex[1], d)
    t2 = Fraction(-g1[1] * vertex[0] + g1[0] * vertex[1], d)
    k1 = -t1 - math.floor(-t1)
    k2 = -t2 - math.floor(-t2)
    ax = vertex[0] + g1[0] * k1 + g2[0] * k2
    ay = vertex[1] + g1[1] * k1 + g2[1] * k2
    if ax.denominator != 1 or ay.denominator != 1:
        raise AssertionError("unimodular apex must be integral")
    return (int(ax), int(ay))


def ray_lattice_apex(vertex: Point, w: Vec) -> Optional[Tuple[int, int]]:
    """The first lattice point on ``{vertex + s w : s >= 0}``, or None.

    ``w`` must be primitive.  The carrier line has lattice points iff
    its (primitive-normal) offset is integral; they are then spaced by
    exactly ``w``, so the minimal feasible one is a ceiling away.
    """
    normal = (-w[1], w[0])
    beta = normal[0] * vertex[0] + normal[1] * vertex[1]
    base = line_lattice_point(normal, beta)
    if base is None:
        return None
    if w[0] != 0:
        s0 = Fraction(base[0] - vertex[0], w[0])
    else:
        s0 = Fraction(base[1] - vertex[1], w[1])
    k = math.ceil(-s0)
    return (base[0] + k * w[0], base[1] + k * w[1])


def segment_lattice_count(p: Point, q: Point) -> int:
    """``|[p, q] ∩ Z^2|`` for rational endpoints ``p != q``."""
    dx, dy = q[0] - p[0], q[1] - p[1]
    den = (dx.denominator * dy.denominator) // math.gcd(
        dx.denominator, dy.denominator
    )
    w = primitive_vector((int(dx * den), int(dy * den)))
    start = ray_lattice_apex(p, (w[0], w[1]))
    if start is None:
        return 0
    # parameter of the far endpoint along w from start
    if w[0] != 0:
        smax = Fraction(q[0] - start[0], w[0])
    else:
        smax = Fraction(q[1] - start[1], w[1])
    if smax < 0:
        return 0
    return math.floor(smax) + 1


def _generic_direction(terms: Sequence[ConeTerm]) -> Vec:
    """A deterministic λ with ``<λ, g> != 0`` for every generator.

    ``λ = (1, t)`` kills a generator only when ``t = -g_x / g_y``; with
    ``n`` generators some ``t in {0..n}`` survives them all.
    """
    gens = [g for _sign, _apex, gs in terms for g in gs]
    for t in range(len(gens) + 2):
        lam = (1, t)
        if all(lam[0] * g[0] + lam[1] * g[1] != 0 for g in gens):
            return lam
    raise AssertionError("unreachable: fewer bad directions than candidates")


def _exp_series(s: int, degree: int) -> List[Fraction]:
    """Taylor coefficients of ``e^{sτ}`` through ``τ^degree``."""
    out = [Fraction(1)]
    for n in range(1, degree + 1):
        out.append(out[-1] * s / n)
    return out


def _todd_series(c: int, degree: int) -> List[Fraction]:
    """Taylor coefficients of ``h(cτ) = cτ / (e^{cτ} - 1)``."""
    out = []
    power = Fraction(1)
    for n in range(degree + 1):
        bn = Fraction(-1, 2) if n == 1 else Fraction(bernoulli(n))
        out.append(bn * power / math.factorial(n))
        power *= c
    return out


def _mul_series(
    a: Sequence[Fraction], b: Sequence[Fraction], degree: int
) -> List[Fraction]:
    out = [Fraction(0)] * (degree + 1)
    for i, ai in enumerate(a[: degree + 1]):
        if ai == 0:
            continue
        for j in range(min(degree - i, len(b) - 1) + 1):
            out[i + j] += ai * b[j]
    return out


def specialize(terms: Iterable[ConeTerm]) -> int:
    """Evaluate a signed sum of unimodular-cone GFs at ``z = 1``.

    Returns the exact integer count; raises AssertionError if the
    rational total is non-integral (which would mean the cone
    decomposition upstream is wrong, never a property of the input).
    """
    terms = list(terms)
    if not terms:
        return 0
    lam = _generic_direction(terms)
    total = Fraction(0)
    for sign, apex, gens in terms:
        m = len(gens)
        s = lam[0] * apex[0] + lam[1] * apex[1]
        series = _exp_series(s, m)
        scale = Fraction(1)
        for g in gens:
            c = lam[0] * g[0] + lam[1] * g[1]
            series = _mul_series(series, _todd_series(c, m), m)
            scale *= Fraction(-1, c)
        total += sign * scale * series[m]
    if total.denominator != 1:
        raise AssertionError(
            "specialized count %r is not an integer" % (total,)
        )
    return int(total)
