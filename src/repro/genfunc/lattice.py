"""Integer linear algebra for the generating-function backend.

The cone pipeline first eliminates the clause's equality constraints
*over the integers*: an EQ system ``E x = f`` either has no integer
solution (the clause contributes 0), or its solution set is an affine
lattice ``{x0 + B t : t in Z^k}`` for a particular solution ``x0`` and
a basis ``B`` of the integer kernel of ``E``.  Substituting that
parametrization into the inequalities turns the clause into a full
-dimensional system in the ``t`` coordinates, and the map ``t -> x`` is
a **bijection** between Z^k and the solution lattice -- so counting
``t`` points counts ``x`` points.

Both facts come out of the Smith normal form ``U E V = D`` computed by
:mod:`repro.intarith.smith`: with ``g = U f`` the transformed system is
``D y = g``; each nonzero diagonal ``d_i`` must divide ``g_i`` (else no
integer solution), the zero rows must have ``g_i = 0`` (else no
rational solution either), and the trailing columns of ``V`` -- those
multiplying the unconstrained ``y`` coordinates -- are a kernel basis.
"""

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.intarith import ext_gcd
from repro.intarith.matrix import IntMatrix
from repro.intarith.smith import smith_normal_form


class NoIntegerSolution(Exception):
    """The equality system has no integer solution."""


def solve_eq_system(
    rows: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Tuple[List[int], List[List[int]]]:
    """Solve ``rows @ x == rhs`` over the integers.

    Returns ``(x0, basis)``: a particular integer solution and a basis
    of the integer kernel lattice, so the full integer solution set is
    ``{x0 + sum_i t_i basis_i : t in Z^k}`` with distinct ``t`` giving
    distinct ``x``.  Raises :class:`NoIntegerSolution` when the system
    has no integer solution.  ``rows`` may be empty (every ``x`` is a
    solution); each row must have the same width.
    """
    if not rows:
        raise ValueError("solve_eq_system needs at least one row; "
                         "the caller handles the no-EQ case")
    mat = IntMatrix([list(r) for r in rows])
    n = mat.ncols
    u, d, v = smith_normal_form(mat)
    g = u.mul_vector(list(rhs))
    y = [0] * n
    rank = 0
    for i in range(min(mat.nrows, n)):
        if d[i, i] != 0:
            rank += 1
    for i in range(mat.nrows):
        di = d[i, i] if i < n else 0
        if di != 0:
            if g[i] % di != 0:
                raise NoIntegerSolution(
                    "diagonal %d does not divide transformed rhs %d" % (di, g[i])
                )
            y[i] = g[i] // di
        elif g[i] != 0:
            raise NoIntegerSolution("inconsistent equality system")
    x0 = v.mul_vector(y)
    basis = [[v[i, j] for i in range(n)] for j in range(rank, n)]
    return x0, basis


def primitive_vector(vec: Sequence[int]) -> Tuple[int, ...]:
    """``vec`` divided by the gcd of its entries (must be nonzero)."""
    g = 0
    for c in vec:
        g = gcd(g, c)
    if g == 0:
        raise ValueError("zero vector has no primitive form")
    return tuple(c // g for c in vec)


def primitive_direction(dx: Fraction, dy: Fraction) -> Tuple[int, int]:
    """The primitive integer vector parallel (same sense) to ``(dx, dy)``."""
    den = (dx.denominator * dy.denominator) // gcd(
        dx.denominator, dy.denominator
    )
    ax = int(dx * den)
    ay = int(dy * den)
    out = primitive_vector((ax, ay))
    return (out[0], out[1])


def line_lattice_point(
    normal: Tuple[int, int], beta: Fraction
) -> Optional[Tuple[int, int]]:
    """An integer point on ``{x : normal . x == beta}``, or None.

    ``normal`` must be primitive, so the line holds lattice points iff
    ``beta`` is an integer; the point comes from a Bezout pair.
    """
    if Fraction(beta).denominator != 1:
        return None
    b = int(beta)
    a1, a2 = normal
    g, s, t = ext_gcd(a1, a2)
    if g != 1:
        raise ValueError("normal %r is not primitive" % (normal,))
    return (s * b, t * b)
