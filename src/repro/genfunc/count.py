"""The generating-function counting pipeline (clause level and up).

One clause travels through five stages:

1. **Normalize** -- gcd-tighten, merge, detect trivial emptiness.
2. **Wildcard resolution** -- stride wildcards whose equality involves
   no other wildcard are *promoted* to count dimensions (the equality
   determines them uniquely per solution, so the promotion is a
   bijection on solution sets); every other wildcard is *projected*
   with the Omega test's exact disjoint elimination and the pipeline
   recurses into the disjoint pieces (their counts add).
3. **Integer equality elimination** -- the EQ system is solved over Z
   by Smith normal form (:mod:`repro.genfunc.lattice`); no solution
   means 0, otherwise the inequalities are rewritten into the kernel
   coordinates ``t``, where counting is bijective again.
4. **Geometry** -- dimension 0 is a point check, dimension 1 an
   interval, dimension 2 runs Brion's theorem over the vertex tangent
   cones with Hirzebruch-Jung unimodular decomposition
   (:mod:`repro.genfunc.cones`).  Dimension >= 3 is outside the
   supported fragment.
5. **Specialization** -- the signed unimodular cones are evaluated at
   ``z = 1`` through the Todd-series limit
   (:mod:`repro.genfunc.specialize`), yielding the exact count.

Anything the pipeline cannot handle exactly raises
:class:`UnsupportedFormula`; the backend router in
:mod:`repro.core.general` catches exactly that and falls back to the
splinter recursion, bumping the ``genfunc_fallbacks`` counter.  A
genuinely infinite solution set raises
:class:`~repro.core.convex.UnboundedSumError` just like the recursion
backend does.
"""

from typing import List, Sequence, Tuple

from repro.core import stats
from repro.core.convex import UnboundedSumError
from repro.core.options import DEFAULT_OPTIONS, SumOptions
from repro.core.result import SymbolicSum, Term
from repro.genfunc.cones import (
    convex_hull,
    feasible_vertices,
    recession_direction,
    tangent_cone_generators,
    unimodular_partition,
)
from repro.genfunc.lattice import NoIntegerSolution, solve_eq_system
from repro.genfunc.specialize import (
    ConeTerm,
    cone_lattice_apex,
    ray_lattice_apex,
    segment_lattice_count,
    specialize,
)
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.eliminate import SplinterError, eliminate_exact_disjoint
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable
from repro.qpoly import Polynomial

#: Residual dimension the cone stage handles (points, segments, 2D
#: polygons).  Higher-dimensional clauses fall back to the recursion.
MAX_DIMENSION = 2

#: Cap on chained wildcard projections for one clause; past this the
#: clause is declared unsupported rather than risking a runaway
#: splinter cascade.
_MAX_PROJECTION_DEPTH = 16


class UnsupportedFormula(Exception):
    """The genfunc backend cannot answer this query exactly.

    This is a *routing* signal, not an error: the backend router
    catches it and falls back to the splinter recursion.
    """


def _promotable_wildcards(conj: Conjunct) -> List[str]:
    """Wildcards uniquely determined by a private equality.

    A stride wildcard ``w`` (single constraint, an EQ, nonzero
    coefficient after normalize) whose EQ mentions no *other* wildcard
    has at most one integer value per assignment of the remaining
    variables -- adding it to the count dimensions is a bijection on
    solution sets.
    """
    out = []
    for w in sorted(conj.wildcards):
        if not conj.is_stride_wildcard(w):
            continue
        eq = conj.constraints_on(w)[0]
        if any(v in conj.wildcards and v != w for v in eq.variables()):
            continue
        out.append(w)
    return out


def clause_count(conj: Conjunct, over: Sequence[str], _depth: int = 0) -> int:
    """Exact number of integer solutions of one conjunct in ``over``.

    Raises :class:`UnsupportedFormula` outside the supported fragment
    and :class:`UnboundedSumError` when the count is infinite.
    """
    over = list(dict.fromkeys(over))
    norm = conj.normalize()
    if norm is None:
        return 0
    conj = norm

    promoted = _promotable_wildcards(conj)
    leftover = [w for w in sorted(conj.wildcards) if w not in promoted]
    if leftover:
        if _depth >= _MAX_PROJECTION_DEPTH:
            raise UnsupportedFormula("wildcard projection depth exceeded")
        w = leftover[0]
        demoted = Conjunct(
            conj.constraints, (x for x in conj.wildcards if x != w)
        )
        try:
            pieces = eliminate_exact_disjoint(demoted, w)
        except SplinterError:
            raise UnsupportedFormula("wildcard projection splinters too much")
        return sum(clause_count(p, over, _depth + 1) for p in pieces)

    if stats.ENABLED:
        stats.bump("genfunc_clauses")

    used = set()
    for c in conj.constraints:
        used.update(c.variables())
    if any(v not in over and v not in promoted for v in used):
        raise UnsupportedFormula(
            "free symbolic constants: %s"
            % ", ".join(sorted(used - set(over) - set(promoted)))
        )
    if any(v not in used for v in over):
        # A counted variable no constraint mentions ranges over all of
        # Z; the count is infinite unless the rest is unsatisfiable.
        if satisfiable(conj):
            raise UnboundedSumError(
                "counted variable unconstrained in clause"
            )
        return 0

    dims = over + promoted
    col = {v: i for i, v in enumerate(dims)}

    eq_rows = []
    eq_rhs = []
    geqs = []
    for c in conj.constraints:
        if c.is_eq():
            row = [0] * len(dims)
            for v, k in c.expr.coeffs:
                row[col[v]] = k
            eq_rows.append(row)
            eq_rhs.append(-c.expr.const)
        else:
            geqs.append(c)

    if eq_rows:
        try:
            x0, basis = solve_eq_system(eq_rows, eq_rhs)
        except NoIntegerSolution:
            return 0
    else:
        x0 = [0] * len(dims)
        basis = [
            [1 if j == i else 0 for j in range(len(dims))]
            for i in range(len(dims))
        ]
    k = len(basis)
    if k > MAX_DIMENSION:
        raise UnsupportedFormula(
            "residual dimension %d exceeds %d" % (k, MAX_DIMENSION)
        )

    # Rewrite each GEQ  a.x + c >= 0  into t coordinates via
    # x = x0 + B t:  (a.B) t + (c + a.x0) >= 0.
    t_rows = []
    for c in geqs:
        coeff = [0] * len(dims)
        for v, kk in c.expr.coeffs:
            coeff[col[v]] = kk
        const = c.expr.const + sum(
            coeff[i] * x0[i] for i in range(len(dims))
        )
        trow = tuple(
            sum(coeff[i] * basis[j][i] for i in range(len(dims)))
            for j in range(k)
        ) + (const,)
        t_rows.append(trow)

    if k == 0:
        return 1 if all(row[-1] >= 0 for row in t_rows) else 0
    if k == 1:
        return _count_interval(t_rows)
    return _count_polygon([(r[0], r[1], r[2]) for r in t_rows])


def _count_interval(rows: Sequence[Tuple[int, int]]) -> int:
    """``|{t in Z : b t + c >= 0 for all rows}|`` (1-dimensional)."""
    lo = None
    hi = None
    for b, c in rows:
        if b == 0:
            if c < 0:
                return 0
            continue
        if b > 0:
            bound = -(c // b)  # t >= -c/b, so t >= ceil(-c/b)
            lo = bound if lo is None else max(lo, bound)
        else:
            bound = c // (-b)  # t <= c/(-b), so t <= floor(c/(-b))
            hi = bound if hi is None else min(hi, bound)
    if lo is None or hi is None:
        raise UnboundedSumError("one-sided integer interval is infinite")
    return max(0, hi - lo + 1)


def _count_polygon(rows) -> int:
    """``|{t in Z^2 : a . t + c >= 0 for all rows}|`` via Brion."""
    live = []
    for a1, a2, c in rows:
        if a1 == 0 and a2 == 0:
            if c < 0:
                return 0
            continue
        live.append((a1, a2, c))
    if not live or recession_direction(live) is not None:
        probe = Conjunct(
            Constraint.geq(Affine({"t1": a1, "t2": a2}, c))
            for a1, a2, c in live
        )
        if satisfiable(probe):
            raise UnboundedSumError("clause recedes along a lattice direction")
        return 0
    vertices = feasible_vertices(live)
    if not vertices:
        return 0
    hull = convex_hull(vertices)
    if len(hull) == 1:
        p = hull[0]
        return 1 if p[0].denominator == 1 and p[1].denominator == 1 else 0
    if len(hull) == 2:
        return segment_lattice_count(hull[0], hull[1])

    terms: List[ConeTerm] = []
    for idx, vertex in enumerate(hull):
        g1, g2 = tangent_cone_generators(hull, idx)
        subcones, inner_rays = unimodular_partition(g1, g2)
        for u, v in subcones:
            terms.append((1, cone_lattice_apex(vertex, u, v), (u, v)))
        for w in inner_rays:
            apex = ray_lattice_apex(vertex, w)
            if apex is not None:
                terms.append((-1, apex, (w,)))
    if stats.ENABLED:
        stats.bump("genfunc_cones", len(terms))
    total = specialize(terms)
    if total < 0:
        raise AssertionError("negative polygon count %d" % total)
    return total


def genfunc_count_value(
    formula, over: Sequence[str], options: SumOptions = DEFAULT_OPTIONS
) -> int:
    """Exact integer count of a (symbol-free) formula's solutions.

    Accepts everything :func:`repro.core.general.count` accepts as a
    formula.  Raises :class:`UnsupportedFormula` outside the supported
    fragment (free symbolic constants, non-exact strategies, residual
    dimension above :data:`MAX_DIMENSION`) and
    :class:`~repro.core.convex.UnboundedSumError` on infinite sets.
    """
    from repro.core.general import _clauses

    if not options.strategy.is_exact:
        raise UnsupportedFormula(
            "strategy %r needs the recursion's bound machinery"
            % options.strategy.value
        )
    clauses = _clauses(formula)
    return sum(clause_count(clause, over) for clause in clauses)


def genfunc_sum(
    formula,
    over: Sequence[str],
    z: Polynomial,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """The genfunc backend's answer to ``sum_poly``.

    Only constant summands are supported (``sum z = z * count``); the
    result is a constant :class:`SymbolicSum` compatible with the
    recursion's result type.
    """
    if z.variables():
        raise UnsupportedFormula("non-constant summand")
    total = genfunc_count_value(formula, over, options)
    value = Polynomial.constant(z.constant_value() * total)
    return SymbolicSum([Term(Conjunct.true(), value)], "exact")


def genfunc_count(
    formula, over: Sequence[str], options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """The genfunc backend's answer to ``count`` (a constant sum)."""
    return genfunc_sum(formula, over, Polynomial.one, options)
