"""HPF block-cyclic distributions and communication volume (§3.3).

The paper's example: a template T(0:1024) distributed block-cyclic to
8 processors with blocks of 4 is the mapping

    t == l + 4·p + 32·c   ∧   0 <= l <= 3   ∧   0 <= p <= 7

from template index t to processor p and local 2-D index (c, l).
Counting solutions of formulas built from this mapping quantifies
message traffic and sizes message buffers.
"""

from typing import Optional, Union

from repro.core import SumOptions, SymbolicSum, count
from repro.core.options import DEFAULT_OPTIONS
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import And, Atom, Exists, Formula
from repro.presburger.parser import parse


class BlockCyclicDistribution:
    """``DISTRIBUTE T(CYCLIC(block)) ONTO P(procs)``."""

    def __init__(self, block: int, procs: int):
        if block <= 0 or procs <= 0:
            raise ValueError("block and procs must be positive")
        self.block = block
        self.procs = procs

    def mapping_formula(
        self, t: str = "t", p: str = "p", c: str = "c", l: str = "l"
    ) -> Formula:
        """t == l + B·p + B·P·c ∧ 0 <= l < B ∧ 0 <= p < P."""
        b, pr = self.block, self.procs
        cons = [
            Constraint.equal(
                Affine.var(t),
                Affine({l: 1, p: b, c: b * pr}),
            ),
            Constraint.geq(Affine.var(l)),
            Constraint.leq(Affine.var(l), Affine.const_expr(b - 1)),
            Constraint.geq(Affine.var(p)),
            Constraint.leq(Affine.var(p), Affine.const_expr(pr - 1)),
        ]
        return And.of(*(Atom(x) for x in cons))

    def owner_formula(self, t: str, p: str) -> Formula:
        """∃ c, l: mapping -- "processor p owns template cell t"."""
        return Exists(["_c_own", "_l_own"], self.mapping_formula(t, p, "_c_own", "_l_own"))

    def elements_per_processor(
        self,
        extent: Union[str, Formula],
        t: str = "t",
        p: str = "p",
        options: SumOptions = DEFAULT_OPTIONS,
    ) -> SymbolicSum:
        """#template cells owned by processor p (p stays symbolic).

        ``extent`` constrains t, e.g. ``"0 <= t <= 1024"``.
        """
        if isinstance(extent, str):
            extent = parse(extent)
        return count(And.of(extent, self.owner_formula(t, p)), [t], options)


def communication_volume(
    dist: BlockCyclicDistribution,
    extent: Union[str, Formula],
    shift: int,
    t: str = "t",
    sender: str = "q",
    receiver: str = "p",
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Elements moved for ``a[t] = b[t + shift]`` per processor pair.

    Under the owner-computes rule, the owner of ``a[t]`` (receiver)
    needs ``b[t + shift]`` from its owner (sender); an element is
    communicated when the two owners differ.  The count is symbolic in
    (sender, receiver).
    """
    if isinstance(extent, str):
        extent = parse(extent)
    t_src = "_tsrc"
    link = Atom(
        Constraint.equal(Affine.var(t_src), Affine.var(t) + shift)
    )
    different = parse("%s != %s" % (sender, receiver))
    formula = And.of(
        extent,
        dist.owner_formula(t, receiver),
        Exists([t_src], And.of(link, dist.owner_formula(t_src, sender))),
        different,
    )
    return count(formula, [t], options)


def message_buffer_size(
    dist: BlockCyclicDistribution,
    extent: Union[str, Formula],
    shift: int,
    options: SumOptions = DEFAULT_OPTIONS,
    **symbols: int,
) -> int:
    """Max elements any processor pair exchanges (buffer allocation)."""
    vol = communication_volume(dist, extent, shift, options=options)
    best = 0
    for q in range(dist.procs):
        for p in range(dist.procs):
            if p == q:
                continue
            env = dict(symbols)
            env.update({"q": q, "p": p})
            best = max(best, vol.evaluate(env))
    return best


def total_messages(
    dist: BlockCyclicDistribution,
    extent: Union[str, Formula],
    shift: int,
    options: SumOptions = DEFAULT_OPTIONS,
    **symbols: int,
) -> int:
    """Number of (sender, receiver) pairs that exchange any data."""
    vol = communication_volume(dist, extent, shift, options=options)
    n = 0
    for q in range(dist.procs):
        for p in range(dist.procs):
            if p == q:
                continue
            env = dict(symbols)
            env.update({"q": q, "p": p})
            if vol.evaluate(env) > 0:
                n += 1
    return n
